// Design study: power delivery for a next-generation AI accelerator.
//
// Walks the workflow a power architect would follow with this library:
//  1. scale the paper's system to a hypothetical 1.5 kW accelerator,
//  2. check vertical-interconnect feasibility and utilization,
//  3. sweep the power level to see where PCB-level conversion stops
//     being viable,
//  4. stress the chosen architecture with a realistic hotspot workload.
#include <cstdio>
#include <iostream>

#include "vpd/common/table.hpp"
#include "vpd/core/advisor.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/package/utilization.hpp"
#include "vpd/workload/power_map.hpp"

int main() {
  using namespace vpd;
  using namespace vpd::literals;

  // --- 1. The accelerator ---------------------------------------------------
  PowerDeliverySpec accel = paper_system();
  accel.total_power = Power{1500.0};
  accel.die_area = 600.0_mm2;
  std::printf("Accelerator: %.0f W, %.0f A at %.0f V, %.0f mm^2 die "
              "(%.2f A/mm^2)\n\n",
              accel.total_power.value, accel.die_current().value,
              accel.die_voltage.value, as_mm2(accel.die_area),
              as_A_per_mm2(accel.current_density()));

  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;

  // --- 2. Vertical interconnect feasibility ---------------------------------
  const Current i48 = accel.input_current(Power{1800.0});  // with margin
  const auto rows = utilization_report({
      {InterconnectLevel::kPcbToPackage, i48, std::nullopt},
      {InterconnectLevel::kPackageToInterposer, i48, std::nullopt},
      {InterconnectLevel::kThroughInterposer, accel.die_current(),
       std::nullopt},
      {InterconnectLevel::kInterposerToDiePad, accel.die_current(),
       std::nullopt},
  });
  TextTable util({"Level", "Current", "Used/net", "Available", "Fraction",
                  "Feasible"});
  for (const UtilizationRow& r : rows) {
    util.add_row({r.type, format_double(r.current.value, 1) + " A",
                  std::to_string(r.used_per_net),
                  std::to_string(r.available), format_percent(r.fraction),
                  r.feasible ? "yes" : "NO"});
  }
  std::cout << "Vertical interconnect utilization (48 V feed, VPD):\n"
            << util << '\n';

  // --- 3. Architecture choice vs power level --------------------------------
  std::cout << "Loss fraction vs accelerator power (DSCH, GaN):\n";
  TextTable sweep({"Power", "A0 (PCB VR)", "A1 (periphery)",
                   "A2 (below die)", "A3@12V"});
  for (double watts : {500.0, 1000.0, 1500.0, 2000.0}) {
    PowerDeliverySpec s = accel;
    s.total_power = Power{watts};
    auto loss = [&](ArchitectureKind arch) {
      const ArchitectureEvaluation ev = evaluate_architecture(
          arch, s, TopologyKind::kDsch, DeviceTechnology::kGalliumNitride,
          options);
      return format_percent(ev.loss_fraction(s.total_power));
    };
    sweep.add_row({format_double(watts, 0) + " W",
                   loss(ArchitectureKind::kA0_PcbConversion),
                   loss(ArchitectureKind::kA1_InterposerPeriphery),
                   loss(ArchitectureKind::kA2_InterposerBelowDie),
                   loss(ArchitectureKind::kA3_TwoStage12V)});
  }
  std::cout << sweep << '\n';

  // --- 4. Hotspot stress on the winner ---------------------------------------
  const ArchitectureExplorer explorer(accel, options);
  const Recommendation best = recommend(explorer.explore());
  std::printf("Recommended for this accelerator: %s\n\n",
              best.rationale.c_str());

  EvaluationOptions hotspot = options;
  hotspot.sink_map = [](const GridMesh& mesh, Current total) {
    return hotspot_power_map(mesh, total, 0.5, 0.5, 0.18, 0.4);
  };
  const ArchitectureEvaluation stressed = evaluate_architecture(
      best.architecture, accel,
      best.topology.value_or(TopologyKind::kDsch),
      DeviceTechnology::kGalliumNitride, hotspot);
  const Summary s = *stressed.vr_current_spread;
  std::printf("Hotspot workload on %s: per-VR current %.1f..%.1f A "
              "(mean %.1f A)%s\n",
              to_string(best.architecture), s.min, s.max, s.mean,
              stressed.within_rating ? "" : "  ** exceeds VR rating **");
  std::printf("Worst POL voltage: %.3f V\n",
              stressed.min_pol_voltage.value_or(Voltage{0.0}).value);
  return 0;
}
