// Transient voltage droop at the point of load: why vertical power
// delivery also wins dynamically. A load step is applied to the POL rail
// through two PDN models built from this library's parameters:
//
//  * "PCB VR" — the regulator sits on the board (architecture A0): the
//    current loop spans the PCB and package laterals (~0.3 mOhm) with
//    tens of nH of loop inductance, buffered by bulk decap;
//  * "IVR"    — the regulator sits on the interposer next to the die
//    (A1/A2): micro-ohms and sub-nH to the load.
#include <cstdio>

#include "vpd/circuit/transient.hpp"
#include "vpd/package/layers.hpp"
#include "vpd/workload/load_transient.hpp"

namespace {

struct PdnCase {
  const char* name;
  double loop_resistance;  // Ohm
  double loop_inductance;  // H
  double decap;            // F
};

double run_case(const PdnCase& c) {
  using namespace vpd;
  using namespace vpd::literals;

  Netlist nl;
  const NodeId vr = nl.add_node("vr");
  const NodeId mid = nl.add_node("mid");
  const NodeId pol = nl.add_node("pol");
  nl.add_vsource("Vvr", vr, kGround, 1.0_V);
  nl.add_resistor("Rpdn", vr, mid, Resistance{c.loop_resistance});
  nl.add_inductor("Lpdn", mid, pol, Inductance{c.loop_inductance});
  nl.add_capacitor("Cdecap", pol, kGround, Capacitance{c.decap}, 1.0_V);
  // 200 A baseline stepping to 300 A in 100 ns at t = 2 us.
  nl.add_isource("load", pol, kGround,
                 step_load(200.0_A, 100.0_A, Seconds{2e-6},
                           Seconds{100e-9}));

  TransientOptions opts;
  opts.t_stop = Seconds{20e-6};
  opts.dt = Seconds{2e-9};
  opts.initialize_from_dc = true;
  const TransientResult r = simulate(nl, opts);
  const Trace v = r.voltage("pol");
  return v.min();  // worst POL voltage during/after the step
}

}  // namespace

int main() {
  using namespace vpd;

  // Loop resistances from the library's lateral models.
  const double r_pcb_loop = pcb_lateral_segment().resistance().value +
                            package_lateral_segment().resistance().value +
                            interposer_lateral_segment().resistance().value;

  const PdnCase cases[] = {
      // Loop inductance: board+socket loop vs a sub-nH interposer hop.
      // Decap: bulk board capacitance vs the local interposer/die bank.
      {"PCB VR (A0)", r_pcb_loop, 10e-9, 2000e-6},
      {"IVR on interposer (A1/A2)", 50e-6, 0.05e-9, 200e-6},
  };

  std::printf("Load step 200 A -> 300 A in 100 ns on the 1 V rail:\n\n");
  std::printf("%-28s %-12s %-10s %-10s %s\n", "PDN", "R_loop", "L_loop",
              "decap", "worst VPOL");
  for (const PdnCase& c : cases) {
    const double v_min = run_case(c);
    std::printf("%-28s %7.1f uOhm %6.1f nH %7.0f uF %8.3f V  (droop %.1f mV)\n",
                c.name, 1e6 * c.loop_resistance, 1e9 * c.loop_inductance,
                1e6 * c.decap, v_min, 1e3 * (1.0 - v_min));
  }
  std::printf("\nThe IVR loop's lower inductance and resistance cut the "
              "first-droop excursion\nand let the rail recover within the "
              "regulator bandwidth.\n");
  return 0;
}
