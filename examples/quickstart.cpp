// Quickstart: explore the vertical power delivery architecture space for
// the paper's headline system (1 kW, 48 V feed, 1 V / 1 kA / 500 mm^2 die)
// and print a Fig. 7-style loss breakdown plus a recommendation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "vpd/common/table.hpp"
#include "vpd/core/advisor.hpp"
#include "vpd/core/explorer.hpp"

int main() {
  using namespace vpd;

  // 1. Describe the system.
  const PowerDeliverySpec spec = paper_system();
  std::printf("System: %.0f W, %.0f V feed, %.0f V / %.0f A die, %.0f mm^2 "
              "(%.1f A/mm^2)\n\n",
              spec.total_power.value, spec.pcb_voltage.value,
              spec.die_voltage.value, spec.die_current().value,
              as_mm2(spec.die_area), as_A_per_mm2(spec.current_density()));

  // 2. Evaluate every architecture x converter combination. The options
  //    mirror the paper's Fig. 7 setup (see EXPERIMENTS.md).
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  const ArchitectureExplorer explorer(spec, options);
  const ExplorationResult result = explorer.explore();

  // 3. Print the loss breakdown.
  TextTable table({"Architecture", "Converter", "Vertical", "Horizontal",
                   "Converters", "Total loss", "Efficiency"});
  for (const ExplorationEntry& entry : result.entries) {
    const std::string topo =
        entry.topology ? to_string(*entry.topology) : "PCB VR";
    if (entry.excluded()) {
      table.add_row({to_string(entry.architecture), topo, "-", "-", "-",
                     "N/A (rating)", "-"});
      continue;
    }
    const ArchitectureEvaluation& ev = *entry.evaluation;
    table.add_row({to_string(entry.architecture), topo,
                   format_double(ev.vertical_loss.value, 1) + " W",
                   format_double(ev.horizontal_loss.value, 1) + " W",
                   format_double(ev.conversion_loss().value, 1) + " W",
                   format_percent(ev.loss_fraction(spec.total_power)),
                   format_percent(ev.efficiency(spec.total_power))});
  }
  std::cout << table << '\n';

  // 4. Ask the advisor.
  const Recommendation best = recommend(result);
  std::printf("Recommended: %s\n", best.rationale.c_str());
  return 0;
}
