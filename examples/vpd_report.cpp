// Command-line design report: the library end to end as a tool.
//
//   vpd_report [total_watts] [die_mm2] [pcb_volts]
//
// Defaults reproduce the paper's 1 kW / 500 mm^2 / 48 V system. Prints
// the interconnect feasibility, the architecture exploration, the VR
// deployment optimization for the winner, and tolerance yield.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "vpd/common/table.hpp"
#include "vpd/core/advisor.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/core/variation.hpp"
#include "vpd/package/utilization.hpp"

namespace {

double arg_or(int argc, char** argv, int index, double fallback) {
  if (argc <= index) return fallback;
  char* end = nullptr;
  const double v = std::strtod(argv[index], &end);
  if (end == argv[index] || v <= 0.0) {
    std::fprintf(stderr, "ignoring invalid argument '%s'\n", argv[index]);
    return fallback;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpd;

  PowerDeliverySpec spec = paper_system();
  spec.total_power = Power{arg_or(argc, argv, 1, 1000.0)};
  spec.die_area = Area{arg_or(argc, argv, 2, 500.0) * 1e-6};
  spec.pcb_voltage = Voltage{arg_or(argc, argv, 3, 48.0)};
  spec.validate();

  std::printf("==============================================\n");
  std::printf(" VPD design report\n");
  std::printf("==============================================\n");
  std::printf("System: %.0f W | %.0f V feed | %.0f V / %.0f A die | "
              "%.0f mm^2 (%.2f A/mm^2)\n\n",
              spec.total_power.value, spec.pcb_voltage.value,
              spec.die_voltage.value, spec.die_current().value,
              as_mm2(spec.die_area), as_A_per_mm2(spec.current_density()));

  // --- 1. Interconnect feasibility -------------------------------------------
  const Current i_in = spec.input_current(
      Power{spec.total_power.value * 1.2});
  std::printf("[1] Vertical interconnect (48 V feed, conversion on "
              "interposer):\n");
  for (const auto& row : utilization_report(
           {{InterconnectLevel::kPcbToPackage, i_in, std::nullopt},
            {InterconnectLevel::kPackageToInterposer, i_in, std::nullopt},
            {InterconnectLevel::kThroughInterposer, spec.die_current(),
             std::nullopt},
            {InterconnectLevel::kInterposerToDiePad, spec.die_current(),
             std::nullopt}})) {
    std::printf("    %-7s %6.1f%% of %8zu sites  %s\n", row.type.c_str(),
                100.0 * row.fraction, row.available,
                row.feasible ? "ok" : "INFEASIBLE");
  }

  // --- 2. Architecture exploration --------------------------------------------
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;
  const ArchitectureExplorer explorer(spec, options);
  const ExplorationResult result = explorer.explore();

  std::printf("\n[2] Architecture space (loss as %% of %.0f W):\n",
              spec.total_power.value);
  for (const Recommendation& r : rank_architectures(result)) {
    std::printf("    %-7s %-10s %6.1f%%  (efficiency %.1f%%)\n",
                to_string(r.architecture),
                r.topology ? to_string(*r.topology) : "PCB VR",
                100.0 * r.loss_fraction, 100.0 * r.efficiency);
  }
  const Recommendation best = recommend(result);
  std::printf("    -> recommended: %s\n", best.rationale.c_str());

  // --- 3. VR deployment optimization -------------------------------------------
  if (best.topology) {
    const auto conv = make_topology(*best.topology);
    const unsigned base = static_cast<unsigned>(
        spec.die_current().value / (0.7 * conv->spec().max_current.value)) +
        1;
    const unsigned lo = base > 6 ? base - 6 : 1;
    const VrCountChoice choice =
        optimize_vr_count(spec, best.architecture, *best.topology, lo,
                          base + 10, options);
    std::printf("\n[3] VR count optimization for %s/%s: best %u VRs at "
                "%.1f%% loss\n",
                to_string(best.architecture), to_string(*best.topology),
                choice.count, 100.0 * choice.loss_fraction);
  }

  // --- 4. Tolerance yield --------------------------------------------------------
  if (best.topology) {
    const LossDistribution d = sample_architecture_loss(
        spec, best.architecture, *best.topology,
        DeviceTechnology::kGalliumNitride, options,
        best.loss_fraction * 1.25, {}, 30, 7);
    std::printf("\n[4] Monte Carlo (30 samples, PPDN spread): median loss "
                "%.1f%%, p95 %.1f%%,\n    yield vs 1.25x nominal target: "
                "%.0f%%\n",
                100.0 * d.loss_fraction.median,
                100.0 * d.loss_fraction.p95, 100.0 * d.yield);
  }
  return 0;
}
