// Evaluation-service quickstart: stand up an in-process EvaluationService
// (the same engine behind the vpdd daemon), submit a handful of design
// points concurrently — including a duplicate that coalesces, a repeat
// served from the result LRU, and a fault scenario — and print the JSON
// responses plus the service metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/service_quickstart
#include <cstdio>
#include <iostream>
#include <vector>

#include "vpd/io/schema.hpp"
#include "vpd/serve/service.hpp"

int main() {
  using namespace vpd;

  serve::ServiceConfig config;
  config.threads = 2;
  serve::EvaluationService service(config);

  // 1. Describe the design points as requests — the same structure vpdd
  //    parses off the wire. Defaults mirror the paper's 1 kW system.
  std::vector<io::EvaluationRequest> requests;

  io::EvaluationRequest a2;  // A2 / DSCH, the paper's headline winner
  a2.architecture = ArchitectureKind::kA2_InterposerBelowDie;
  a2.topology = TopologyKind::kDsch;
  requests.push_back(a2);

  io::EvaluationRequest a1;  // A1 / DSCH, periphery placement
  a1.architecture = ArchitectureKind::kA1_InterposerPeriphery;
  requests.push_back(a1);

  requests.push_back(a2);  // duplicate: coalesces or hits the result LRU

  io::EvaluationRequest faulted = a2;  // A2 with one VR dropped out
  FaultScenario scenario;
  scenario.label = "one dropped below-die VR";
  scenario.faults.push_back({FaultKind::kVrDropout, 3, {}, {}});
  faulted.options.faults = to_injection(scenario, FaultSeverity{});
  requests.push_back(faulted);

  io::EvaluationRequest excluded = a1;  // A1 / 3LHD: over its 12 A rating
  excluded.topology = TopologyKind::kDickson;
  requests.push_back(excluded);

  // 2. Submit everything up front — submit() never blocks — then read the
  //    futures. Responses are bit-identical to serial evaluation.
  std::vector<std::shared_future<serve::ServiceResponse>> futures;
  for (const io::EvaluationRequest& r : requests) {
    futures.push_back(service.submit(r));
  }

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::ServiceResponse& response = futures[i].get();
    std::printf("--- request %zu: %s / %s -> %s%s\n", i,
                to_string(requests[i].architecture),
                requests[i].topology ? to_string(*requests[i].topology)
                                     : "PCB VR",
                serve::to_string(response.status),
                response.from_cache ? " (cached)" : "");
    std::cout << io::dump_pretty(serve::to_json(response)) << "\n";
  }

  // 3. The service keeps its own score: throughput, latency, coalescing
  //    and both cache hit rates, exportable as JSON (vpdd's --metrics).
  std::printf("--- service metrics\n");
  std::cout << io::dump_pretty(service.metrics_json()) << "\n";
  return 0;
}
