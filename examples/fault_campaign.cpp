// Walkthrough of the fault-injection & resilience subsystem: run an N-1
// survivability campaign for one architecture, inspect the worst fault
// states, and show the degradation (load-shedding) policy.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "vpd/fault/campaign.hpp"

int main() {
  using namespace vpd;

  // The paper's 1 kW / 1 V system, below-die VRs (A2), DSCH converters.
  const PowerDeliverySpec spec = paper_system();
  EvaluationOptions options;
  options.below_die_area_fraction = 1.6;  // paper mode

  // Campaign: exhaustive N-1 over every fault site plus 16 sampled N-2
  // scenarios. Scenario i draws from Rng(seed, stream=i), so this
  // campaign is reproducible and thread-count independent.
  FaultCampaignConfig config;
  config.nk_samples = 16;
  config.nk_order = 2;

  const FaultCampaignRunner runner(spec, config);
  const FaultCampaignReport report =
      runner.run(ArchitectureKind::kA2_InterposerBelowDie, TopologyKind::kDsch,
                 DeviceTechnology::kGalliumNitride, options);

  std::printf("Campaign: %s / DSCH, %u below-die VRs\n",
              to_string(report.architecture), report.nominal.vr_count_stage2);
  std::printf("  scenarios         : %zu (N-0 + N-1 + %zu sampled N-2)\n",
              report.scenario_count(), config.nk_samples);
  std::printf("  survivability     : %.1f %%  (%zu / %zu)\n",
              100.0 * report.survivability(), report.survivor_count(),
              report.scenario_count());
  std::printf("  nominal droop     : %.2f %%\n",
              100.0 * report.outcomes.front().resilience.droop_fraction);
  std::printf("  worst-case droop  : %.2f %%\n",
              100.0 * report.worst_droop_fraction());
  std::printf("  worst load shed   : %.1f %%\n",
              100.0 * report.worst_load_shed_fraction());
  std::printf("  wall time         : %.0f ms (threads via sweep pool)\n\n",
              1e3 * report.wall_seconds);

  // Margin histogram: how much headroom the fault states keep. Negative
  // margin = at least one spec violation.
  const MarginHistogram h = report.margin_histogram(10);
  std::printf("Margin histogram [%.3f .. %.3f]:\n", h.lo, h.hi);
  const double width = (h.hi - h.lo) / static_cast<double>(h.counts.size());
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    std::printf("  %+.3f  %-40s %zu\n", h.lo + width * static_cast<double>(b),
                std::string(std::min<std::size_t>(h.counts[b], 40), '#')
                    .c_str(),
                h.counts[b]);
  }

  // The three tightest fault states, with the policy's response.
  std::vector<const FaultScenarioOutcome*> ranked;
  for (const FaultScenarioOutcome& outcome : report.outcomes) {
    if (outcome.evaluated) ranked.push_back(&outcome);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const FaultScenarioOutcome* a, const FaultScenarioOutcome* b) {
              return a->resilience.margin < b->resilience.margin;
            });
  std::printf("\nTightest fault states:\n");
  for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
    const FaultScenarioOutcome& o = *ranked[i];
    std::printf("  %-16s margin %+.3f, droop %.2f %%, shed %.1f %%%s\n",
                o.scenario.label.c_str(), o.resilience.margin,
                100.0 * o.resilience.droop_fraction,
                100.0 * o.resilience.load_shed_fraction,
                o.survives() ? "" : "  [VIOLATION]");
    for (const SpecViolation& v : o.resilience.violations) {
      std::printf("      %s: %s\n", to_string(v.kind), v.detail.c_str());
    }
  }
  return 0;
}
