// Simulate the paper's Fig. 6 converter circuits with the built-in MNA
// circuit engine and cross-check the analytical models:
//  (a) a synchronous buck (SMPS) regulating 12 V down to 1 V,
//  (b) a 2:1 series-parallel switched-capacitor charge pump, whose
//      simulated output droop is compared against the Seeman-Sanders
//      output-resistance model.
#include <cstdio>

#include "vpd/circuit/transient.hpp"
#include "vpd/converters/netlist_builder.hpp"
#include "vpd/converters/switched_capacitor.hpp"
#include "vpd/devices/technology.hpp"
#include "vpd/passives/capacitor.hpp"

int main() {
  using namespace vpd;
  using namespace vpd::literals;

  // --- (a) Synchronous buck, 12 V -> 1 V at 1 MHz -----------------------------
  BuckCircuitParams buck;
  buck.v_in = 12.0_V;
  buck.duty = 1.0 / 12.0;
  buck.f_sw = 2.0_MHz;
  buck.inductance = 1.0_uH;
  buck.output_capacitance = 47.0_uF;
  buck.load = Resistance{0.05};  // 20 A at 1 V
  const SimulatableConverter sim = build_buck_circuit(buck);

  TransientOptions opts;
  opts.t_stop = Seconds{40.0 * sim.switching_period.value};
  opts.dt = Seconds{sim.switching_period.value / 500.0};
  opts.controller = sim.controller;
  const TransientResult r = simulate(sim.netlist, opts);

  const double window = 8.0 * sim.switching_period.value;
  const Trace vout = r.voltage(sim.output_node);
  const Trace il = r.current("L1");
  std::printf("Synchronous buck 12V->1V @ 2 MHz (Fig. 6a):\n");
  std::printf("  Vout avg    : %.4f V (target 1.000 V)\n",
              vout.tail(window).average());
  std::printf("  Vout ripple : %.2f mV pp\n",
              1e3 * vout.tail(2.0 * sim.switching_period.value)
                        .peak_to_peak());
  std::printf("  IL avg      : %.2f A, ripple %.2f A pp\n",
              il.tail(window).average(),
              il.tail(2.0 * sim.switching_period.value).peak_to_peak());
  // Efficiency from measured dissipation (the raw input/output averages
  // still carry a trace of stored-energy settling, which Tellegen's
  // theorem balances but which would bias a direct Pout/Pin ratio).
  const double p_out = r.average_power(sim.load_element,
                                       Seconds{window}).value;
  const double p_switch = r.average_power("S_hi", Seconds{window}).value +
                          r.average_power("S_lo", Seconds{window}).value;
  std::printf("  efficiency  : %.1f%% (switch conduction only in this "
              "idealized netlist)\n\n",
              100.0 * p_out / (p_out + p_switch));

  // --- (b) 2:1 series-parallel SC charge pump --------------------------------
  ScCircuitParams sc;
  sc.v_in = 8.0_V;
  sc.ratio = 2;
  sc.f_sw = 1.0_MHz;
  sc.fly_capacitance = 10.0_uF;
  sc.switch_on_resistance = 10.0_mOhm;
  sc.output_capacitance = 4.7_uF;
  sc.load = 1.0_Ohm;
  const SimulatableConverter sc_sim = build_series_parallel_sc_circuit(sc);

  TransientOptions sc_opts;
  sc_opts.t_stop = Seconds{80.0 * sc_sim.switching_period.value};
  sc_opts.dt = Seconds{sc_sim.switching_period.value / 500.0};
  sc_opts.controller = sc_sim.controller;
  const TransientResult rs = simulate(sc_sim.netlist, sc_opts);

  const double sc_window = 10.0 * sc_sim.switching_period.value;
  const double v_avg =
      rs.voltage(sc_sim.output_node).tail(sc_window).average();
  const double i_avg =
      rs.current(sc_sim.load_element).tail(sc_window).average();
  const double r_out_sim = (4.0 - v_avg) / i_avg;

  ScDesignInputs model;
  model.device_tech = gan_technology();
  model.capacitor_tech = mlcc_technology();
  model.v_in = sc.v_in;
  model.ratio = sc.ratio;
  model.rated_current = 10.0_A;
  model.f_sw = sc.f_sw;
  model.fly_capacitance = sc.fly_capacitance;
  model.switch_resistance = sc.switch_on_resistance;
  const SeriesParallelSc analytic(model);

  std::printf("Series-parallel SC 2:1 charge pump (Fig. 6b):\n");
  std::printf("  Vout avg          : %.3f V (ideal 4.000 V)\n", v_avg);
  std::printf("  R_out simulated   : %.1f mOhm\n", 1e3 * r_out_sim);
  std::printf("  R_out Seeman model: %.1f mOhm (SSL %.1f / FSL %.1f)\n",
              1e3 * analytic.output_resistance().value,
              1e3 * analytic.ssl_resistance().value,
              1e3 * analytic.fsl_resistance().value);
  return 0;
}
