// Walkthrough of the design-space optimizer: search a slice of the VPD
// architecture space with the seeded NSGA-II loop, print the Pareto
// front over {loss, droop, area, vulnerability}, and demonstrate the
// determinism contract (same seed, any thread count -> the same front,
// bit for bit).
#include <cstdio>

#include "vpd/opt/optimizer.hpp"

int main() {
  using namespace vpd;

  // The paper's 1 kW / 1 V system. The space: both two-stage A3 variants
  // with a DSCH final stage, 36..48 VRs, and the full interconnect
  // allocation ranges (attach resistance, distribution sheet).
  const PowerDeliverySpec spec = paper_system();
  opt::DesignSpace space;
  space.architectures = {ArchitectureKind::kA3_TwoStage12V,
                         ArchitectureKind::kA3_TwoStage6V};
  space.topologies = {TopologyKind::kDsch};
  space.vr_count = {36, 48};

  // A small, quick run: 8 candidates per generation, 2 generations,
  // N-1 survivability scored on the 2 cheapest-front elites per
  // generation. Everything is counter-seeded from config.seed, so the
  // run reproduces exactly on any machine and thread count.
  opt::OptimizerConfig config;
  config.population = 8;
  config.generations = 2;
  config.survivability.max_elites = 2;
  config.base_options.mesh_nodes = 11;  // keep the example fast

  const opt::DesignOptimizer optimizer(spec, space, config);
  const opt::OptimizeReport report = optimizer.run();

  std::printf("Optimize: %zu evaluations, %zu candidates, "
              "%zu survivability campaigns, %.0f ms\n",
              report.evaluations, report.candidates,
              report.fault_campaigns, 1e3 * report.wall_seconds);
  std::printf("Mesh cache: %llu hits / %llu misses across the run\n\n",
              static_cast<unsigned long long>(report.cache_stats.hits),
              static_cast<unsigned long long>(report.cache_stats.misses));

  std::printf("Pareto front (%zu points, hypervolume %.4f):\n",
              report.front.size(), report.hypervolume);
  std::printf("  %-52s %8s %8s %8s %8s\n", "design", "loss", "droop",
              "area", "vuln");
  for (const opt::FrontEntry& entry : report.front) {
    std::printf("  %-52.52s %8.4f %8.4f %8.4f %8.4f\n",
                opt::design_point_key(entry.candidate.point).c_str(),
                entry.objectives[opt::kLossFraction],
                entry.objectives[opt::kDroopFraction],
                entry.objectives[opt::kAreaFraction],
                entry.objectives[opt::kVulnerability]);
  }

  // The determinism contract: a serial re-run of the same seed yields
  // the identical front, bit for bit.
  opt::OptimizerConfig serial = config;
  serial.sweep.threads = 1;
  const opt::OptimizeReport replay =
      opt::DesignOptimizer(spec, space, serial).run();
  bool identical = replay.front.size() == report.front.size();
  for (std::size_t i = 0; identical && i < report.front.size(); ++i) {
    identical = replay.front[i].candidate.id == report.front[i].candidate.id &&
                replay.front[i].objectives == report.front[i].objectives;
  }
  std::printf("\nSerial replay (threads=1): front %s\n",
              identical ? "bit-identical" : "DIFFERS (bug!)");
  return identical ? 0 : 1;
}
