// Steady-state thermal analysis of the die/interposer stack, and the
// electrothermal coupling loop. High power density is the flip side of
// the paper's 2 A/mm^2 target: converting a kilowatt under the die adds
// the VR losses to the die's own heat flux, and conduction losses rise
// with temperature (Rds_on tempco), closing a feedback loop.
//
// Model: the familiar electrical-thermal analogy on the same 2-D grid the
// IR-drop solver uses — lateral spreading through the silicon/interposer
// (a thermal sheet resistance per square) and a per-node path to the
// coolant (an area-specific theta). Solved with the SPD CG solver.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "vpd/common/matrix.hpp"
#include "vpd/common/units.hpp"
#include "vpd/package/mesh.hpp"

namespace vpd {

struct ThermalStack {
  /// Lateral spreading: thermal resistance per square of the die +
  /// interposer conductive stack [K/W]. Silicon k ~ 150 W/(m K) at
  /// ~0.7 mm effective thickness gives ~9.5 K/W per square.
  double lateral_sheet_k_per_w{9.5};
  /// Area-specific junction-to-coolant resistance [K m^2 / W]. A
  /// cold-plate class solution at ~0.15 K cm^2/W is 1.5e-5.
  double theta_to_coolant{1.5e-5};
  /// Coolant / ambient temperature [deg C].
  double coolant_temperature{40.0};
};

class ThermalSolver {
 public:
  ThermalSolver(Length die_side, std::size_t nodes_per_edge,
                ThermalStack stack);

  const GridMesh& mesh() const { return mesh_; }
  const ThermalStack& stack() const { return stack_; }

  /// Node temperatures [deg C] for a per-node heat input [W]
  /// (size = mesh().node_count()).
  Vector solve(const Vector& power_per_node) const;

  /// Transient temperature response to a time-varying heat map, backward
  /// Euler on C dT/dt = P(t) - G T. `heat_capacity_per_area` is the
  /// stack's areal heat capacity [J/(K m^2)] (silicon + lid,
  /// ~1.7e6 J/(K m^3) x effective thickness). Starts at the coolant
  /// temperature.
  struct TransientTemperatures {
    std::vector<double> times;
    std::vector<double> max_temperature;   // per sample
    std::vector<double> mean_temperature;  // per sample
    Vector final_field;
    /// Thermal time constant of the coolant path [s]: C / G.
    double time_constant{0.0};
  };
  TransientTemperatures solve_transient(
      const std::function<Vector(double)>& power_of_t, Seconds t_stop,
      Seconds dt, double heat_capacity_per_area = 1700.0) const;

  /// Convenience: max/mean of a temperature field.
  static double max_temperature(const Vector& temperatures);
  static double mean_temperature(const Vector& temperatures);

 private:
  GridMesh mesh_;
  ThermalStack stack_;
  double shunt_conductance_;  // per node, to coolant [W/K]
};

/// A heat-dissipating VR attached at a mesh node whose conduction loss
/// rises with its local temperature.
struct ThermalVr {
  std::size_t node{0};
  Power base_loss{};            // loss at the reference temperature
  double conduction_fraction{0.65};  // share of loss that carries tempco
  double tempco_per_k{0.004};   // Rds_on tempco (Si ~0.4%/K, GaN ~0.6%/K)
  double reference_temperature{25.0};
};

struct ElectrothermalResult {
  Vector temperatures;        // final converged field [deg C]
  double max_temperature{0.0};
  double mean_temperature{0.0};
  Power total_vr_loss{};      // after thermal uplift
  double loss_uplift{0.0};    // total_vr_loss / sum(base_loss) - 1
  unsigned iterations{0};
  bool converged{false};
};

/// Fixed-point electrothermal iteration: VR losses heat the die, the
/// temperature raises the conduction share of each VR's loss, repeat
/// until the temperature field moves less than `tolerance` [K].
ElectrothermalResult solve_electrothermal(
    const ThermalSolver& solver, const Vector& load_power_per_node,
    std::vector<ThermalVr> vrs, double tolerance = 0.01,
    unsigned max_iterations = 50);

}  // namespace vpd
