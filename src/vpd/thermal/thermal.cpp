#include "vpd/thermal/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/common/sparse.hpp"

namespace vpd {

ThermalSolver::ThermalSolver(Length die_side, std::size_t nodes_per_edge,
                             ThermalStack stack)
    : mesh_(die_side, die_side, nodes_per_edge, nodes_per_edge,
            stack.lateral_sheet_k_per_w),
      stack_(stack) {
  VPD_REQUIRE(stack.lateral_sheet_k_per_w > 0.0,
              "lateral thermal sheet must be positive");
  VPD_REQUIRE(stack.theta_to_coolant > 0.0,
              "theta to coolant must be positive");
  const double node_area = die_side.value * die_side.value /
                           static_cast<double>(mesh_.node_count());
  shunt_conductance_ = node_area / stack.theta_to_coolant;
}

Vector ThermalSolver::solve(const Vector& power_per_node) const {
  VPD_REQUIRE(power_per_node.size() == mesh_.node_count(),
              "power map has ", power_per_node.size(), " entries, mesh has ",
              mesh_.node_count(), " nodes");
  TripletList t = mesh_.laplacian();
  Vector rhs(mesh_.node_count());
  for (std::size_t i = 0; i < mesh_.node_count(); ++i) {
    VPD_REQUIRE(power_per_node[i] >= 0.0, "negative heat at node ", i);
    t.add(i, i, shunt_conductance_);
    rhs[i] = power_per_node[i] +
             shunt_conductance_ * stack_.coolant_temperature;
  }
  const CsrMatrix a(t);
  const CgResult cg = solve_cg(a, rhs);
  VPD_CHECK_NUMERIC(cg.converged, "thermal CG did not converge: residual ",
                    cg.residual_norm);
  return cg.x;
}

ThermalSolver::TransientTemperatures ThermalSolver::solve_transient(
    const std::function<Vector(double)>& power_of_t, Seconds t_stop,
    Seconds dt, double heat_capacity_per_area) const {
  VPD_REQUIRE(static_cast<bool>(power_of_t), "null power function");
  VPD_REQUIRE(t_stop.value > 0.0 && dt.value > 0.0 &&
                  dt.value < t_stop.value,
              "need 0 < dt < t_stop");
  VPD_REQUIRE(heat_capacity_per_area > 0.0,
              "heat capacity must be positive");
  const std::size_t n = mesh_.node_count();
  const double node_area =
      mesh_.width().value * mesh_.height().value / static_cast<double>(n);
  const double c_node = heat_capacity_per_area * node_area;  // J/K
  const double g_dt = c_node / dt.value;

  // System matrix (constant across steps): C/dt + G_lateral + G_shunt.
  TripletList t = mesh_.laplacian();
  for (std::size_t i = 0; i < n; ++i)
    t.add(i, i, shunt_conductance_ + g_dt);
  const CsrMatrix a(t);

  TransientTemperatures result;
  result.time_constant = c_node / shunt_conductance_;
  Vector temp(n, stack_.coolant_temperature);
  double time = 0.0;
  auto record = [&](double at) {
    result.times.push_back(at);
    result.max_temperature.push_back(max_temperature(temp));
    result.mean_temperature.push_back(mean_temperature(temp));
  };
  record(0.0);
  while (time < t_stop.value - 0.5 * dt.value) {
    const double t_next = time + dt.value;
    Vector power = power_of_t(t_next);
    VPD_REQUIRE(power.size() == n, "power map size mismatch at t=", t_next);
    Vector rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      VPD_REQUIRE(power[i] >= 0.0, "negative heat at node ", i);
      rhs[i] = power[i] + g_dt * temp[i] +
               shunt_conductance_ * stack_.coolant_temperature;
    }
    const CgResult cg = solve_cg(a, rhs);
    VPD_CHECK_NUMERIC(cg.converged, "thermal transient CG failed at t=",
                      t_next);
    temp = cg.x;
    time = t_next;
    record(time);
  }
  result.final_field = std::move(temp);
  return result;
}

double ThermalSolver::max_temperature(const Vector& temperatures) {
  VPD_REQUIRE(!temperatures.empty(), "empty field");
  return *std::max_element(temperatures.begin(), temperatures.end());
}

double ThermalSolver::mean_temperature(const Vector& temperatures) {
  VPD_REQUIRE(!temperatures.empty(), "empty field");
  double s = 0.0;
  for (double t : temperatures) s += t;
  return s / static_cast<double>(temperatures.size());
}

ElectrothermalResult solve_electrothermal(
    const ThermalSolver& solver, const Vector& load_power_per_node,
    std::vector<ThermalVr> vrs, double tolerance,
    unsigned max_iterations) {
  VPD_REQUIRE(!vrs.empty(), "need at least one VR");
  VPD_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  const std::size_t n = solver.mesh().node_count();
  VPD_REQUIRE(load_power_per_node.size() == n, "power map size mismatch");
  double base_total = 0.0;
  for (const ThermalVr& vr : vrs) {
    VPD_REQUIRE(vr.node < n, "VR node ", vr.node, " outside mesh");
    VPD_REQUIRE(vr.base_loss.value >= 0.0, "negative base loss");
    VPD_REQUIRE(vr.conduction_fraction >= 0.0 &&
                    vr.conduction_fraction <= 1.0,
                "conduction fraction outside [0,1]");
    base_total += vr.base_loss.value;
  }

  ElectrothermalResult result;
  Vector temperatures(n, solver.stack().coolant_temperature);
  std::vector<double> vr_losses(vrs.size());
  for (std::size_t k = 0; k < vrs.size(); ++k)
    vr_losses[k] = vrs[k].base_loss.value;

  for (unsigned iter = 0; iter < max_iterations; ++iter) {
    Vector heat = load_power_per_node;
    for (std::size_t k = 0; k < vrs.size(); ++k)
      heat[vrs[k].node] += vr_losses[k];
    Vector next = solver.solve(heat);

    // Update VR losses from their local temperatures.
    for (std::size_t k = 0; k < vrs.size(); ++k) {
      const ThermalVr& vr = vrs[k];
      const double dt = next[vr.node] - vr.reference_temperature;
      const double factor =
          1.0 + vr.conduction_fraction * vr.tempco_per_k * dt;
      vr_losses[k] = vr.base_loss.value * std::max(factor, 0.1);
    }

    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      delta = std::max(delta, std::fabs(next[i] - temperatures[i]));
    temperatures = std::move(next);
    result.iterations = iter + 1;
    if (delta < tolerance) {
      result.converged = true;
      break;
    }
  }

  result.temperatures = std::move(temperatures);
  result.max_temperature =
      ThermalSolver::max_temperature(result.temperatures);
  result.mean_temperature =
      ThermalSolver::mean_temperature(result.temperatures);
  double total = 0.0;
  for (double l : vr_losses) total += l;
  result.total_vr_loss = Power{total};
  result.loss_uplift = base_total > 0.0 ? total / base_total - 1.0 : 0.0;
  return result;
}

}  // namespace vpd
