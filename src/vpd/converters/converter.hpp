// The Converter interface consumed by the power-delivery architectures:
// every topology exposes a conversion scheme (Vin -> Vout), a load-current
// envelope, an efficiency curve, and an area model. Concrete topologies
// live in buck.hpp, switched_capacitor.hpp, dsch.hpp, dpmih.hpp,
// dickson.hpp, and transformer_stage.hpp.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "vpd/common/units.hpp"
#include "vpd/converters/loss_model.hpp"

namespace vpd {

/// Static characteristics of a converter design (Table II columns).
struct ConverterSpec {
  std::string name;
  Voltage v_in{};
  Voltage v_out{};
  Current max_current{};          // per-converter load limit
  unsigned switch_count{0};
  unsigned inductor_count{0};
  unsigned capacitor_count{0};
  Inductance total_inductance{};
  Capacitance total_capacitance{};
  Area area{};                    // VR footprint (switches + passives)

  double conversion_ratio() const { return v_in.value / v_out.value; }
  double switches_per_mm2() const;
};

class Converter {
 public:
  virtual ~Converter() = default;

  const ConverterSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// True if the converter can deliver `load` continuously.
  bool supports(Current load) const;

  /// Power lost inside the converter at output current `load`.
  /// Throws InfeasibleDesign if `load` exceeds max_current (callers decide
  /// whether to extrapolate via `loss_extrapolated`).
  Power loss(Current load) const;

  /// Model-extrapolated loss beyond the published rating; flagged so
  /// benches can report it as an estimate, as the paper does for 3LHD.
  Power loss_extrapolated(Current load) const;

  double efficiency(Current load) const;
  std::optional<double> efficiency_if_supported(Current load) const;

  Power input_power(Current load) const;
  Power output_power(Current load) const;

  const QuadraticLossModel& loss_model() const { return model_; }

 protected:
  Converter(ConverterSpec spec, QuadraticLossModel model);

 private:
  ConverterSpec spec_;
  QuadraticLossModel model_;
};

using ConverterPtr = std::shared_ptr<const Converter>;

}  // namespace vpd
