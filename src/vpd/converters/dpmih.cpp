#include "vpd/converters/dpmih.hpp"

namespace vpd {

using namespace vpd::literals;

HybridConverterData dpmih_data() {
  HybridConverterData d;
  d.name = "DPMIH";
  d.v_in = 48.0_V;
  d.v_out = 1.0_V;
  d.max_current = 100.0_A;
  d.peak_efficiency = 0.909;     // [9] / paper text (Table II prints 90.0%)
  d.current_at_peak = 30.0_A;
  d.switch_count = 8;
  d.inductor_count = 4;
  d.capacitor_count = 3;
  d.total_inductance = 4.0_uH;
  d.total_capacitance = 15.0_uF;
  d.switches_per_mm2 = 0.15;     // Table II
  d.reference_tech = DeviceTechnology::kGalliumNitride;  // [9] uses GaN
  d.device_switching_fraction = 0.6;
  return d;
}

std::shared_ptr<HybridSwitchedConverter> dpmih_converter(
    DeviceTechnology tech) {
  auto base = std::make_shared<HybridSwitchedConverter>(dpmih_data());
  if (tech == DeviceTechnology::kGalliumNitride) return base;
  return base->with_technology(tech);
}

}  // namespace vpd
