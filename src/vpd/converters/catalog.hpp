// Converter catalog: enumeration of the paper's Table II topologies, their
// published rows (for direct reproduction), and factories. Architectures
// iterate this catalog when exploring the design space.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vpd/converters/hybrid.hpp"

namespace vpd {

enum class TopologyKind {
  kDpmih,
  kDsch,
  kDickson,
};

const char* to_string(TopologyKind kind);
std::vector<TopologyKind> all_topologies();

/// Published prototype data for a topology.
HybridConverterData topology_data(TopologyKind kind);

/// Converter instance, optionally re-equipped with `tech` devices. The
/// paper's Fig. 7 evaluates all topologies with GaN power transistors.
std::shared_ptr<HybridSwitchedConverter> make_topology(
    TopologyKind kind,
    DeviceTechnology tech = DeviceTechnology::kGalliumNitride);

/// One row of the paper's Table II, including the published VR placement
/// counts (which this library also re-derives in vpd/arch/placement).
struct TableTwoRow {
  std::string label;
  TopologyKind kind;
  std::string conversion_scheme;
  Current max_load{};
  double peak_efficiency{0.0};
  Current current_at_peak{};
  unsigned switches{0};
  double switches_per_mm2{0.0};
  unsigned inductors{0};
  Inductance total_inductance{};
  unsigned capacitors{0};
  Capacitance total_capacitance{};
  unsigned vrs_along_periphery{0};  // published
  unsigned vrs_below_die{0};        // published
};

/// The paper's Table II, as published.
std::vector<TableTwoRow> published_table_two();

}  // namespace vpd
