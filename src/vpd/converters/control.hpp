// Closed-loop converter control for transient simulation: a sampled
// voltage-mode PI regulator that adjusts a synchronous buck's duty cycle
// once per switching period. Vertical power delivery relies on exactly
// this regulation to hold the POL rail through load and line steps; the
// open-loop netlists elsewhere in the library hold a fixed duty.
//
// Usage: construct, then hand `observer()` and `controller()` to
// TransientOptions. The observer samples the output node each step; the
// controller recomputes the duty at each period boundary and drives the
// complementary switch pair.
#pragma once

#include <memory>
#include <string>

#include "vpd/circuit/netlist.hpp"
#include "vpd/circuit/transient.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

struct PiControllerParams {
  Voltage reference{Voltage{1.0}};
  double kp{0.05};          // duty per volt of error
  double ki{2.0e4};         // duty per volt-second of integrated error
  Frequency f_sw{Frequency{1e6}};
  double initial_duty{0.5};
  double min_duty{0.02};
  double max_duty{0.95};
};

/// Voltage-mode PI for a two-switch synchronous buck. The controlled
/// switches are identified by their positions in netlist.switches()
/// order; the observed node by its NodeId.
class VoltageModePiController {
 public:
  VoltageModePiController(PiControllerParams params, NodeId observed_node,
                          std::size_t high_switch_position,
                          std::size_t low_switch_position);

  /// Samples the regulated node; wire into TransientOptions::observer.
  StepObserver observer();
  /// Drives the switch pair; wire into TransientOptions::controller.
  SwitchController controller();

  /// Most recent duty command (for inspection after a run).
  double duty() const;
  /// Most recent integrator state.
  double integrator() const;

 private:
  struct State;
  PiControllerParams params_;
  NodeId node_;
  std::size_t high_position_;
  std::size_t low_position_;
  std::shared_ptr<State> state_;  // shared with the two callbacks
};

}  // namespace vpd
