#include "vpd/converters/netlist_builder.hpp"

#include <string>

#include "vpd/circuit/pwm.hpp"
#include "vpd/common/error.hpp"

namespace vpd {

SimulatableConverter build_buck_circuit(const BuckCircuitParams& p) {
  VPD_REQUIRE(p.duty > 0.0 && p.duty < 1.0, "duty ", p.duty,
              " outside (0,1)");
  VPD_REQUIRE(p.v_in.value > 0.0 && p.f_sw.value > 0.0,
              "invalid Vin or f_sw");

  SimulatableConverter sim;
  Netlist& nl = sim.netlist;
  const NodeId vin = nl.add_node("vin");
  const NodeId sw = nl.add_node("sw");
  const NodeId out = nl.add_node("out");

  nl.add_vsource("Vin", vin, kGround, p.v_in);
  nl.add_switch("S_hi", vin, sw, p.switch_on_resistance,
                Resistance{1e8});
  nl.add_switch("S_lo", sw, kGround, p.switch_on_resistance,
                Resistance{1e8});

  const double v_out_ideal = p.duty * p.v_in.value;
  const Current il0{p.preload_steady_state
                        ? v_out_ideal / p.load.value
                        : 0.0};
  const Voltage vc0{p.preload_steady_state ? v_out_ideal : 0.0};
  nl.add_inductor("L1", sw, out, p.inductance, il0);
  nl.add_capacitor("Cout", out, kGround, p.output_capacitance, vc0);
  nl.add_resistor("Rload", out, kGround, p.load);

  GateDrive drive(nl);
  drive.assign_pair("S_hi", "S_lo", PwmSignal(p.f_sw, p.duty),
                    Seconds{0.0});
  sim.controller = drive.controller();
  sim.switching_period = Seconds{1.0 / p.f_sw.value};
  sim.output_node = "out";
  sim.input_source = "Vin";
  sim.load_element = "Rload";
  return sim;
}

SimulatableConverter build_series_parallel_sc_circuit(
    const ScCircuitParams& p) {
  VPD_REQUIRE(p.ratio >= 2, "ratio must be >= 2, got ", p.ratio);
  VPD_REQUIRE(p.v_in.value > 0.0 && p.f_sw.value > 0.0,
              "invalid Vin or f_sw");

  SimulatableConverter sim;
  Netlist& nl = sim.netlist;
  const unsigned n = p.ratio;
  const unsigned caps = n - 1;

  const NodeId vin = nl.add_node("vin");
  const NodeId out = nl.add_node("out");
  std::vector<NodeId> top(caps), bot(caps);
  for (unsigned i = 0; i < caps; ++i) {
    top[i] = nl.add_node("top" + std::to_string(i + 1));
    bot[i] = nl.add_node("bot" + std::to_string(i + 1));
  }

  nl.add_vsource("Vin", vin, kGround, p.v_in);

  const Resistance r_off{1e8};
  // Phase-1 (series) switches: vin -> C1 -> C2 -> ... -> out.
  nl.add_switch("Ss0", vin, top[0], p.switch_on_resistance, r_off);
  for (unsigned i = 0; i + 1 < caps; ++i)
    nl.add_switch("Ss" + std::to_string(i + 1), bot[i], top[i + 1],
                  p.switch_on_resistance, r_off);
  nl.add_switch("Ss" + std::to_string(caps), bot[caps - 1], out,
                p.switch_on_resistance, r_off);

  // Phase-2 (parallel) switches: each cap across the output.
  for (unsigned i = 0; i < caps; ++i) {
    nl.add_switch("Spt" + std::to_string(i + 1), top[i], out,
                  p.switch_on_resistance, r_off);
    nl.add_switch("Spb" + std::to_string(i + 1), bot[i], kGround,
                  p.switch_on_resistance, r_off);
  }

  const double v_cell = p.v_in.value / n;
  for (unsigned i = 0; i < caps; ++i)
    nl.add_capacitor("Cfly" + std::to_string(i + 1), top[i], bot[i],
                     p.fly_capacitance,
                     Voltage{p.preload_steady_state ? v_cell : 0.0});
  nl.add_capacitor("Cout", out, kGround, p.output_capacitance,
                   Voltage{p.preload_steady_state ? v_cell : 0.0});
  nl.add_resistor("Rload", out, kGround, p.load);

  // Two non-overlapping 48% phases.
  GateDrive drive(nl);
  const PwmSignal phase1(p.f_sw, 0.48, 0.0);
  const PwmSignal phase2(p.f_sw, 0.48, 0.5);
  for (unsigned i = 0; i <= caps; ++i)
    drive.assign("Ss" + std::to_string(i), phase1);
  for (unsigned i = 1; i <= caps; ++i) {
    drive.assign("Spt" + std::to_string(i), phase2);
    drive.assign("Spb" + std::to_string(i), phase2);
  }
  sim.controller = drive.controller();
  sim.switching_period = Seconds{1.0 / p.f_sw.value};
  sim.output_node = "out";
  sim.input_source = "Vin";
  sim.load_element = "Rload";
  return sim;
}

SimulatableConverter build_fcml3_circuit(const FcmlCircuitParams& p) {
  VPD_REQUIRE(p.duty > 0.0 && p.duty < 0.5,
              "3-level cell modeled for duty in (0, 0.5), got ", p.duty);
  VPD_REQUIRE(p.v_in.value > 0.0 && p.f_sw.value > 0.0,
              "invalid Vin or f_sw");

  SimulatableConverter sim;
  Netlist& nl = sim.netlist;
  const NodeId vin = nl.add_node("vin");
  const NodeId n1 = nl.add_node("n1");   // below S1 / flying-cap top
  const NodeId sw = nl.add_node("sw");   // switch node
  const NodeId n2 = nl.add_node("n2");   // flying-cap bottom / above S4
  const NodeId out = nl.add_node("out");

  nl.add_vsource("Vin", vin, kGround, p.v_in);
  const Resistance r_off{1e8};
  nl.add_switch("S1", vin, n1, p.switch_on_resistance, r_off);
  nl.add_switch("S2", n1, sw, p.switch_on_resistance, r_off);
  nl.add_switch("S3", sw, n2, p.switch_on_resistance, r_off);
  nl.add_switch("S4", n2, kGround, p.switch_on_resistance, r_off);
  nl.add_capacitor("Cfly", n1, n2, p.fly_capacitance,
                   Voltage{p.preload_steady_state ? p.v_in.value / 2.0
                                                  : 0.0});

  const double v_out_ideal = p.duty * p.v_in.value;
  nl.add_inductor("L1", sw, out, p.inductance,
                  Current{p.preload_steady_state
                              ? v_out_ideal / p.load.value
                              : 0.0});
  nl.add_capacitor("Cout", out, kGround, p.output_capacitance,
                   Voltage{p.preload_steady_state ? v_out_ideal : 0.0});
  nl.add_resistor("Rload", out, kGround, p.load);

  // Outer cell: S1 at phase 0, S4 its complement. Inner cell: S2 at
  // phase 0.5, S3 its complement. No dead time (no body diodes in the
  // switch model).
  GateDrive drive(nl);
  drive.assign_pair("S1", "S4", PwmSignal(p.f_sw, p.duty, 0.0),
                    Seconds{0.0});
  drive.assign_pair("S2", "S3", PwmSignal(p.f_sw, p.duty, 0.5),
                    Seconds{0.0});
  sim.controller = drive.controller();
  sim.switching_period = Seconds{1.0 / p.f_sw.value};
  sim.output_node = "out";
  sim.input_source = "Vin";
  sim.load_element = "Rload";
  return sim;
}

}  // namespace vpd
