#include "vpd/converters/dickson.hpp"

namespace vpd {

using namespace vpd::literals;

HybridConverterData dickson_data() {
  HybridConverterData d;
  d.name = "3LHD";
  d.v_in = 48.0_V;
  d.v_out = 1.0_V;
  d.max_current = 12.0_A;
  d.peak_efficiency = 0.904;     // [10], Table II
  d.current_at_peak = 3.0_A;
  d.switch_count = 11;
  d.inductor_count = 3;
  d.capacitor_count = 5;
  d.total_inductance = 1.86_uH;
  d.total_capacitance = 5.0_uF;
  d.switches_per_mm2 = 1.22;     // Table II
  d.reference_tech = DeviceTechnology::kSilicon;  // 9 of 11 switches are Si
  d.device_switching_fraction = 0.6;
  return d;
}

std::shared_ptr<HybridSwitchedConverter> dickson_converter(
    DeviceTechnology tech) {
  auto base = std::make_shared<HybridSwitchedConverter>(dickson_data());
  if (tech == DeviceTechnology::kSilicon) return base;
  return base->with_technology(tech);
}

}  // namespace vpd
