// Builders that turn converter designs into simulatable netlists for the
// circuit engine — used to validate the analytical loss/impedance models
// against first-principles transient simulation, and to reproduce the
// paper's Fig. 6 converter circuits (SMPS buck and SC series-parallel
// charge pump).
#pragma once

#include <string>

#include "vpd/circuit/netlist.hpp"
#include "vpd/circuit/transient.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

/// A netlist plus everything needed to run it: the switch schedule, the
/// switching period, and the names of the probe points.
struct SimulatableConverter {
  Netlist netlist;
  SwitchController controller;
  Seconds switching_period{};
  std::string output_node;
  std::string input_source;   // element name of the input V source
  std::string load_element;   // element name of the load
};

struct BuckCircuitParams {
  Voltage v_in{Voltage{12.0}};
  double duty{0.5};
  Frequency f_sw{Frequency{1e6}};
  Inductance inductance{Inductance{10e-6}};
  Capacitance output_capacitance{Capacitance{100e-6}};
  Resistance load{Resistance{1.0}};
  Resistance switch_on_resistance{Resistance{1e-3}};
  /// Start the filter at the ideal steady state to skip the LC settling.
  bool preload_steady_state{true};
};

/// Synchronous buck of Fig. 6(a).
SimulatableConverter build_buck_circuit(const BuckCircuitParams& params);

struct ScCircuitParams {
  Voltage v_in{Voltage{8.0}};
  unsigned ratio{2};  // n:1 series-parallel
  Frequency f_sw{Frequency{1e6}};
  Capacitance fly_capacitance{Capacitance{10e-6}};  // per flying cap
  Capacitance output_capacitance{Capacitance{100e-6}};
  Resistance load{Resistance{1.0}};
  Resistance switch_on_resistance{Resistance{10e-3}};
  bool preload_steady_state{true};
};

/// Series-parallel SC charge pump of Fig. 6(b): phase 1 strings the flying
/// capacitors in series with the input, phase 2 parallels them onto the
/// load.
SimulatableConverter build_series_parallel_sc_circuit(
    const ScCircuitParams& params);

struct FcmlCircuitParams {
  Voltage v_in{Voltage{48.0}};
  double duty{0.25};
  Frequency f_sw{Frequency{500e3}};  // per-cell frequency
  Inductance inductance{Inductance{2e-6}};
  Capacitance fly_capacitance{Capacitance{20e-6}};
  Capacitance output_capacitance{Capacitance{100e-6}};
  Resistance load{Resistance{1.0}};
  Resistance switch_on_resistance{Resistance{5e-3}};
  bool preload_steady_state{true};
};

/// Three-level flying-capacitor bridge ([7]'s cell, N = 3): outer pair
/// (S1/S4) and inner pair (S2/S3) run at `duty` with carriers 180 deg
/// apart, so the switch node sees 0 / Vin/2 levels at twice the cell
/// frequency and the flying capacitor (started at Vin/2) is exercised
/// symmetrically. Demonstrates the FCML frequency-multiplication and
/// stress-halving claims on the transient engine.
SimulatableConverter build_fcml3_circuit(const FcmlCircuitParams& params);

}  // namespace vpd
