#include "vpd/converters/switched_capacitor.hpp"

#include <cmath>
#include <utility>

#include "vpd/common/error.hpp"

namespace vpd {

struct SeriesParallelSc::Design {
  ConverterSpec spec;
  QuadraticLossModel model;
  double r_ssl;
  double r_fsl;
};

unsigned SeriesParallelSc::switch_count_for_ratio(unsigned ratio) {
  VPD_REQUIRE(ratio >= 2, "ratio must be >= 2, got ", ratio);
  return 3 * ratio - 2;
}

SeriesParallelSc::Design SeriesParallelSc::make_design(
    const ScDesignInputs& in) {
  VPD_REQUIRE(in.ratio >= 2, "sc '", in.name, "': ratio must be >= 2");
  VPD_REQUIRE(in.rated_current.value > 0.0, "sc '", in.name,
              "': non-positive rated current");
  VPD_REQUIRE(in.f_sw.value > 0.0, "sc '", in.name,
              "': non-positive frequency");
  VPD_REQUIRE(in.fly_capacitance.value > 0.0, "sc '", in.name,
              "': non-positive flying capacitance");
  VPD_REQUIRE(in.switch_resistance.value > 0.0, "sc '", in.name,
              "': non-positive switch resistance");

  const double n = in.ratio;
  // Seeman-Sanders charge multipliers for series-parallel n:1 step-down:
  // each of the (n-1) flying capacitors transfers q_out / n per cycle
  // (a_c = 1/n); each switch also carries q_out / n.
  const double r_ssl =
      (n - 1.0) / (n * n * in.fly_capacitance.value * in.f_sw.value);
  const unsigned switches = switch_count_for_ratio(in.ratio);
  // FSL: R_FSL = 2 * sum_i a_{r,i}^2 * R_i over all switches, with the
  // factor 2 from 50% duty conduction windows.
  const double r_fsl =
      2.0 * switches * (1.0 / (n * n)) * in.switch_resistance.value;
  const double r_out = std::hypot(r_ssl, r_fsl);

  // Device sizing for the switching overhead: each switch must block
  // roughly Vin/n; size it for the requested on-resistance.
  const Voltage block_voltage{in.v_in.value / n * in.voltage_margin};
  const PowerFet sw_fet = PowerFet::for_on_resistance(
      in.device_tech, block_voltage, in.switch_resistance);
  const double gate = switches * sw_fet.gate_loss(in.f_sw).value;
  // Hard charge-redistribution switching of Coss across ~Vin/n.
  const double coss =
      switches * sw_fet.coss_loss(Voltage{in.v_in.value / n}, in.f_sw).value;
  const double k0 = std::max(gate + coss, 1e-9);

  const Capacitor fly(in.capacitor_tech, in.fly_capacitance,
                      Voltage{std::min(in.v_in.value / n * 2.0,
                                       in.capacitor_tech.max_rating.value)});

  ConverterSpec spec;
  spec.name = in.name;
  spec.v_in = in.v_in;
  spec.v_out = Voltage{in.v_in.value / n};
  spec.max_current = in.rated_current;
  spec.switch_count = switches;
  spec.inductor_count = 0;
  spec.capacitor_count = in.ratio - 1;
  spec.total_inductance = Inductance{1e-15};  // none
  spec.total_capacitance =
      Capacitance{(in.ratio - 1) * in.fly_capacitance.value};
  spec.area = Area{switches * sw_fet.area().value +
                   (in.ratio - 1) * fly.footprint().value};

  return Design{std::move(spec), QuadraticLossModel(k0, 0.0, r_out), r_ssl,
                r_fsl};
}

SeriesParallelSc::SeriesParallelSc(const ScDesignInputs& inputs)
    : SeriesParallelSc(inputs, make_design(inputs)) {}

SeriesParallelSc::SeriesParallelSc(const ScDesignInputs& inputs,
                                   Design&& design)
    : Converter(std::move(design.spec), design.model),
      inputs_(inputs),
      r_ssl_(design.r_ssl),
      r_fsl_(design.r_fsl) {}

Resistance SeriesParallelSc::ssl_resistance() const {
  return Resistance{r_ssl_};
}

Resistance SeriesParallelSc::fsl_resistance() const {
  return Resistance{r_fsl_};
}

Resistance SeriesParallelSc::output_resistance() const {
  return Resistance{std::hypot(r_ssl_, r_fsl_)};
}

Voltage SeriesParallelSc::loaded_output_voltage(Current load) const {
  VPD_REQUIRE(load.value >= 0.0, "negative load");
  return Voltage{spec().v_out.value -
                 load.value * output_resistance().value};
}

}  // namespace vpd
