#include "vpd/converters/loss_model.hpp"

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/common/matrix.hpp"

namespace vpd {

QuadraticLossModel::QuadraticLossModel(double k0, double k1, double k2)
    : k0_(k0), k1_(k1), k2_(k2) {
  VPD_REQUIRE(k0 > 0.0 && k1 >= 0.0 && k2 > 0.0,
              "need k0 > 0, k1 >= 0, k2 > 0; got ", k0, ", ", k1, ", ", k2);
}

QuadraticLossModel QuadraticLossModel::fit_from_peak(double peak_efficiency,
                                                     Current current_at_peak,
                                                     Voltage v_out,
                                                     double k1) {
  VPD_REQUIRE(peak_efficiency > 0.0 && peak_efficiency < 1.0,
              "peak efficiency ", peak_efficiency, " outside (0,1)");
  VPD_REQUIRE(current_at_peak.value > 0.0, "peak current must be positive");
  VPD_REQUIRE(v_out.value > 0.0, "output voltage must be positive");
  VPD_REQUIRE(k1 >= 0.0, "negative k1");
  // eta* = V / (V + k1 + 2 s) with s = sqrt(k0 k2); I* = sqrt(k0 / k2).
  const double total = v_out.value * (1.0 / peak_efficiency - 1.0);
  const double two_s = total - k1;
  VPD_REQUIRE(two_s > 0.0, "k1 = ", k1,
              " already exceeds the loss budget for peak efficiency ",
              peak_efficiency, " at ", v_out.value, " V");
  const double s = 0.5 * two_s;
  return QuadraticLossModel(s * current_at_peak.value, k1,
                            s / current_at_peak.value);
}

QuadraticLossModel QuadraticLossModel::fit_least_squares(
    const std::vector<EfficiencyPoint>& points, Voltage v_out) {
  VPD_REQUIRE(points.size() >= 3, "need at least 3 points, got ",
              points.size());
  VPD_REQUIRE(v_out.value > 0.0, "output voltage must be positive");
  // Each measurement gives a loss sample:
  //   P_loss = V I (1/eta - 1) = k0 + k1 I + k2 I^2.
  // Solve the 3x3 normal equations of the linear least-squares problem.
  // `pin` forces a coefficient to a small positive floor when the
  // unconstrained solution leaves the valid domain.
  auto solve_fit = [&](bool pin_k0, bool pin_k1,
                       bool pin_k2) -> QuadraticLossModel {
    constexpr double kFloor0 = 1e-9;   // W
    constexpr double kFloor2 = 1e-12;  // Ohm
    std::vector<unsigned> cols;
    if (!pin_k0) cols.push_back(0);
    if (!pin_k1) cols.push_back(1);
    if (!pin_k2) cols.push_back(2);
    VPD_REQUIRE(!cols.empty(), "all coefficients pinned");
    Matrix ata(cols.size(), cols.size());
    Vector atb(cols.size(), 0.0);
    for (const EfficiencyPoint& p : points) {
      VPD_REQUIRE(p.load.value > 0.0, "non-positive load point");
      VPD_REQUIRE(p.efficiency > 0.0 && p.efficiency < 1.0,
                  "efficiency ", p.efficiency, " outside (0,1)");
      const double i = p.load.value;
      const double basis[3] = {1.0, i, i * i};
      double y = v_out.value * i * (1.0 / p.efficiency - 1.0);
      if (pin_k0) y -= kFloor0;
      if (pin_k2) y -= kFloor2 * i * i;
      for (std::size_t r = 0; r < cols.size(); ++r) {
        for (std::size_t c = 0; c < cols.size(); ++c)
          ata(r, c) += basis[cols[r]] * basis[cols[c]];
        atb[r] += basis[cols[r]] * y;
      }
    }
    const Vector x = solve_dense(ata, atb);
    double k[3] = {pin_k0 ? kFloor0 : 0.0, 0.0, pin_k2 ? kFloor2 : 0.0};
    for (std::size_t r = 0; r < cols.size(); ++r) k[cols[r]] = x[r];
    return QuadraticLossModel(k[0], k[1], k[2]);
  };

  // Try every pinning pattern, keep the fits that land in the valid
  // domain, and return the one with the smallest squared loss residual.
  auto residual = [&](const QuadraticLossModel& m) {
    double sse = 0.0;
    for (const EfficiencyPoint& p : points) {
      const double i = p.load.value;
      const double y = v_out.value * i * (1.0 / p.efficiency - 1.0);
      const double e = y - (m.k0() + m.k1() * i + m.k2() * i * i);
      sse += e * e;
    }
    return sse;
  };
  bool found = false;
  QuadraticLossModel best(1e-9, 0.0, 1e-12);
  double best_sse = 0.0;
  const bool patterns[4][2] = {
      {false, false}, {false, true}, {true, false}, {true, true}};
  for (const auto& pat : patterns) {
    try {
      const QuadraticLossModel candidate =
          solve_fit(pat[0], pat[1], false);
      const double sse = residual(candidate);
      if (!found || sse < best_sse) {
        found = true;
        best = candidate;
        best_sse = sse;
      }
    } catch (const InvalidArgument&) {
      continue;  // pattern left the valid domain
    }
  }
  if (found) return best;
  return solve_fit(true, true, false);  // last resort: fit k2 only
}

Power QuadraticLossModel::loss(Current output_current) const {
  const double i = output_current.value;
  VPD_REQUIRE(i >= 0.0, "negative output current ", i);
  return Power{k0_ + k1_ * i + k2_ * i * i};
}

double QuadraticLossModel::efficiency(Current output_current,
                                      Voltage v_out) const {
  VPD_REQUIRE(output_current.value > 0.0,
              "efficiency undefined at zero load");
  VPD_REQUIRE(v_out.value > 0.0, "output voltage must be positive");
  const double p_out = v_out.value * output_current.value;
  return p_out / (p_out + loss(output_current).value);
}

Current QuadraticLossModel::peak_current() const {
  return Current{std::sqrt(k0_ / k2_)};
}

double QuadraticLossModel::peak_efficiency(Voltage v_out) const {
  return efficiency(peak_current(), v_out);
}

QuadraticLossModel QuadraticLossModel::scaled(double switching_scale,
                                              double conduction_scale) const {
  VPD_REQUIRE(switching_scale > 0.0 && conduction_scale > 0.0,
              "scales must be positive, got ", switching_scale, ", ",
              conduction_scale);
  return QuadraticLossModel(k0_ * switching_scale, k1_,
                            k2_ * conduction_scale);
}

}  // namespace vpd
