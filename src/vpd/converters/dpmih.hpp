// Dual-phase multi-inductor hybrid (DPMIH) converter [9] (Das & Le 2019):
// an SC-derived topology where every flying capacitor is paired with an
// inductor, enabling soft charging (no hard cap-to-cap switching) and a
// continuously regulated conversion ratio. Published 48V-to-1V prototype:
// 100 A max, 90.9% peak efficiency at 30 A, GaN devices. Large (0.15
// switches/mm^2), so the paper reserves it for single-stage 48V-to-1V
// conversion and for first-stage 48V-to-12V / 48V-to-6V duty.
#pragma once

#include "vpd/converters/hybrid.hpp"

namespace vpd {

/// Published Table II characterization of the DPMIH prototype.
/// Note: Table II prints 90.0% peak efficiency while the paper text and
/// [9] report 90.9% at 30 A; we use 90.9% (see EXPERIMENTS.md).
HybridConverterData dpmih_data();

std::shared_ptr<HybridSwitchedConverter> dpmih_converter(
    DeviceTechnology tech = DeviceTechnology::kGalliumNitride);

}  // namespace vpd
