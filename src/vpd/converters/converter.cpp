#include "vpd/converters/converter.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

double ConverterSpec::switches_per_mm2() const {
  VPD_REQUIRE(area.value > 0.0, "converter '", name, "' has no area");
  return switch_count / as_mm2(area);
}

Converter::Converter(ConverterSpec spec, QuadraticLossModel model)
    : spec_(std::move(spec)), model_(model) {
  VPD_REQUIRE(spec_.v_in.value > spec_.v_out.value && spec_.v_out.value > 0.0,
              "converter '", spec_.name, "': need Vin > Vout > 0, got ",
              spec_.v_in.value, " -> ", spec_.v_out.value);
  VPD_REQUIRE(spec_.max_current.value > 0.0, "converter '", spec_.name,
              "': non-positive max current");
}

bool Converter::supports(Current load) const {
  return load.value > 0.0 && load.value <= spec_.max_current.value;
}

Power Converter::loss(Current load) const {
  if (!supports(load)) {
    throw InfeasibleDesign(detail::concat(
        "converter '", spec_.name, "' cannot deliver ", load.value,
        " A (rated ", spec_.max_current.value,
        " A); use loss_extrapolated() to estimate anyway"));
  }
  return model_.loss(load);
}

Power Converter::loss_extrapolated(Current load) const {
  VPD_REQUIRE(load.value > 0.0, "load must be positive");
  return model_.loss(load);
}

double Converter::efficiency(Current load) const {
  if (!supports(load)) {
    throw InfeasibleDesign(detail::concat(
        "converter '", spec_.name, "' cannot deliver ", load.value, " A"));
  }
  return model_.efficiency(load, spec_.v_out);
}

std::optional<double> Converter::efficiency_if_supported(Current load) const {
  if (!supports(load)) return std::nullopt;
  return model_.efficiency(load, spec_.v_out);
}

Power Converter::input_power(Current load) const {
  return output_power(load) + loss(load);
}

Power Converter::output_power(Current load) const {
  VPD_REQUIRE(load.value >= 0.0, "negative load");
  return Power{spec_.v_out.value * load.value};
}

}  // namespace vpd
