// Flying-capacitor multilevel (FCML) converter [7] (Rentmeister & Stauth,
// 48V:2V): an N-level bridge whose flying capacitors divide the input so
// each switch blocks only Vin/(N-1) and the inductor sees an effective
// ripple frequency of (N-1) x f_sw. The paper's Section III cites it as a
// high-ratio alternative whose balance must be actively managed
// (current-limit control in [7]); here the capacitors are assumed
// balanced and the model captures the loss/area consequences of the
// level count.
#pragma once

#include "vpd/converters/converter.hpp"
#include "vpd/devices/power_fet.hpp"
#include "vpd/passives/capacitor.hpp"
#include "vpd/passives/inductor.hpp"

namespace vpd {

struct FcmlInputs {
  std::string name{"fcml"};
  TechnologyParams device_tech;
  InductorTechnology inductor_tech;
  CapacitorTechnology capacitor_tech;
  Voltage v_in{};
  Voltage v_out{};
  unsigned levels{4};  // N >= 3 (N-1 cells, N-2 flying caps)
  Current rated_current{};
  Frequency f_sw{};    // per-cell switching frequency
  double ripple_fraction{0.4};
  double conduction_budget_fraction{0.01};
  double voltage_margin{1.3};
  /// Flying-capacitor voltage ripple target as a fraction of the cell
  /// voltage Vin/(N-1).
  double fly_cap_ripple_fraction{0.05};
};

class FlyingCapMultilevel : public Converter {
 public:
  explicit FlyingCapMultilevel(const FcmlInputs& inputs);

  unsigned levels() const { return inputs_.levels; }
  /// Per-switch blocking voltage: Vin / (N-1).
  Voltage switch_stress() const;
  /// The inductor's effective frequency: (N-1) x f_sw.
  Frequency effective_frequency() const;

  const PowerFet& cell_fet() const { return cell_fet_; }
  const Inductor& inductor() const { return inductor_; }
  Capacitance fly_capacitance_each() const { return fly_cap_each_; }

 private:
  struct Design;
  FlyingCapMultilevel(const FcmlInputs& inputs, Design&& design);
  static Design make_design(const FcmlInputs& inputs);

  FcmlInputs inputs_;
  PowerFet cell_fet_;
  Inductor inductor_;
  Capacitance fly_cap_each_{};
};

}  // namespace vpd
