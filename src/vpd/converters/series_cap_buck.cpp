#include "vpd/converters/series_cap_buck.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/passives/sizing.hpp"

namespace vpd {

struct SeriesCapacitorBuck::Design {
  ConverterSpec spec;
  QuadraticLossModel model;
  double duty;
  PowerFet phase_fet;
  Inductor inductor;
  Capacitor series_cap;
};

SeriesCapacitorBuck::Design SeriesCapacitorBuck::make_design(
    const SeriesCapBuckInputs& in) {
  VPD_REQUIRE(in.rated_current.value > 0.0, "scb '", in.name,
              "': non-positive rated current");
  VPD_REQUIRE(in.f_sw.value > 0.0, "scb '", in.name,
              "': non-positive frequency");
  const double duty = 2.0 * buck_duty(in.v_in, in.v_out);
  VPD_REQUIRE(duty < 1.0, "scb '", in.name,
              "': conversion ratio below 2:1 leaves no off-time");

  const double i_phase = in.rated_current.value / 2.0;
  const Voltage half_vin{in.v_in.value / 2.0};

  // Device sizing: four identical switches (two per phase), each seeing
  // ~Vin/2. Conduction budget split across the two phase paths.
  const double p_out = in.v_out.value * in.rated_current.value;
  const double budget_per_phase =
      in.conduction_budget_fraction * p_out / 2.0;
  // Per phase, one switch conducts at any time: R = budget / i^2.
  const Resistance r_fet{budget_per_phase / (i_phase * i_phase)};
  PowerFet fet = PowerFet::for_on_resistance(
      in.device_tech, Voltage{half_vin.value * in.voltage_margin}, r_fet);

  // Inductors: per phase, driven from Vin/2 at doubled duty.
  const Current ripple_pp{in.ripple_fraction * i_phase};
  const Inductance l_phase =
      buck_inductor_for_ripple(half_vin, in.v_out, in.f_sw, ripple_pp);
  Inductor inductor(in.inductor_tech, l_phase,
                    Current{(i_phase + 0.5 * ripple_pp.value) * 1.2});

  // Series capacitor: carries the phase current during its half-cycle;
  // C = I_phase * D / (f * dV).
  const double dv = in.series_cap_ripple_fraction * half_vin.value;
  VPD_REQUIRE(dv > 0.0, "scb '", in.name, "': zero cap ripple target");
  const Capacitance c_series{i_phase * duty / (in.f_sw.value * dv)};
  Capacitor series_cap(
      in.capacitor_tech, c_series,
      Voltage{std::min(half_vin.value * 1.5,
                       in.capacitor_tech.max_rating.value)});

  // Loss model.
  const double gate = 4.0 * fet.gate_loss(in.f_sw).value;
  // Soft charging of the series cap removes most hard Coss loss on two of
  // the four switches; count 2 hard + 2 half.
  const double coss = (2.0 + 1.0) * fet.coss_loss(half_vin, in.f_sw).value;
  const double cap_esr =
      2.0 * series_cap.loss(Current{i_phase * std::sqrt(duty)}).value / 2.0;
  const double inductor_ac =
      2.0 * inductor.loss(Current{0.0}, ripple_pp).value;
  const double k0 = gate + coss + cap_esr + inductor_ac;

  const double t_transition =
      in.device_tech.transition_time_per_volt * half_vin.value;
  const double k1 = half_vin.value * t_transition * in.f_sw.value;

  // Conduction: per phase one FET + DCR in series; two phases parallel.
  const double r_eff_phase =
      fet.on_resistance().value + inductor.dcr().value;
  const double k2 = r_eff_phase / 2.0;

  ConverterSpec spec;
  spec.name = in.name;
  spec.v_in = in.v_in;
  spec.v_out = in.v_out;
  spec.max_current = in.rated_current;
  spec.switch_count = 4;
  spec.inductor_count = 2;
  spec.capacitor_count = 1;
  spec.total_inductance = Inductance{2.0 * l_phase.value};
  spec.total_capacitance = c_series;
  spec.area = Area{4.0 * fet.area().value +
                   2.0 * inductor.footprint().value +
                   series_cap.footprint().value};

  return Design{std::move(spec), QuadraticLossModel(k0, k1, k2), duty,
                std::move(fet), std::move(inductor),
                std::move(series_cap)};
}

SeriesCapacitorBuck::SeriesCapacitorBuck(const SeriesCapBuckInputs& inputs)
    : SeriesCapacitorBuck(inputs, make_design(inputs)) {}

SeriesCapacitorBuck::SeriesCapacitorBuck(const SeriesCapBuckInputs& inputs,
                                         Design&& design)
    : Converter(std::move(design.spec), design.model),
      inputs_(inputs),
      duty_(design.duty),
      phase_fet_(std::move(design.phase_fet)),
      inductor_(std::move(design.inductor)),
      series_cap_(std::move(design.series_cap)) {}

Voltage SeriesCapacitorBuck::switch_stress() const {
  return Voltage{inputs_.v_in.value / 2.0};
}

}  // namespace vpd
