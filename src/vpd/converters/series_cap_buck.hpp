// Series-capacitor buck (SCB) converter [6] (Shenoy et al.): a two-phase
// buck whose input-side series capacitor splits the input voltage in half
// and soft-charges between the phases. Each phase then effectively
// converts from Vin/2, doubling the usable duty cycle and halving the
// switch stress — the first rung on the ladder from the plain buck toward
// the high-ratio hybrids the paper prefers (the DSCH is its close
// relative with a deeper 1/3 division).
#pragma once

#include "vpd/converters/converter.hpp"
#include "vpd/devices/power_fet.hpp"
#include "vpd/passives/capacitor.hpp"
#include "vpd/passives/inductor.hpp"

namespace vpd {

struct SeriesCapBuckInputs {
  std::string name{"series-cap-buck"};
  TechnologyParams device_tech;
  InductorTechnology inductor_tech;
  CapacitorTechnology capacitor_tech;
  Voltage v_in{};
  Voltage v_out{};
  Current rated_current{};  // total across both phases
  Frequency f_sw{};
  double ripple_fraction{0.4};
  double conduction_budget_fraction{0.01};
  double voltage_margin{1.3};
  /// Series capacitor ripple target as a fraction of Vin/2.
  double series_cap_ripple_fraction{0.05};
};

class SeriesCapacitorBuck : public Converter {
 public:
  explicit SeriesCapacitorBuck(const SeriesCapBuckInputs& inputs);

  /// Effective per-phase duty: 2 Vout / Vin — twice the plain buck's.
  double effective_duty() const { return duty_; }
  /// Switch blocking voltage: half the input.
  Voltage switch_stress() const;

  const PowerFet& phase_fet() const { return phase_fet_; }
  const Inductor& inductor() const { return inductor_; }
  const Capacitor& series_capacitor() const { return series_cap_; }

 private:
  struct Design;
  SeriesCapacitorBuck(const SeriesCapBuckInputs& inputs, Design&& design);
  static Design make_design(const SeriesCapBuckInputs& inputs);

  SeriesCapBuckInputs inputs_;
  double duty_;
  PowerFet phase_fet_;
  Inductor inductor_;
  Capacitor series_cap_;
};

}  // namespace vpd
