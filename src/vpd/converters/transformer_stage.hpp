// PCB-level reference conversion for architecture A0: the paper models a
// 90%-efficient 48V-to-1V chain built from a transformer-based 48V-to-12V
// first stage and a multiphase synchronous 12V-to-1V buck second stage,
// both on the PCB where area and frequency are unconstrained.
#pragma once

#include <memory>

#include "vpd/converters/converter.hpp"

namespace vpd {

/// A converter with a flat efficiency over its load range — appropriate for
/// PCB-scale converters operating far from their loss-curve extremes, and
/// exactly how the paper models A0's regulator.
class FixedEfficiencyConverter : public Converter {
 public:
  FixedEfficiencyConverter(std::string name, Voltage v_in, Voltage v_out,
                           Current max_current, double efficiency);

  double rated_efficiency() const { return rated_efficiency_; }

 private:
  double rated_efficiency_;
};

/// The A0 PCB regulator: 48V-to-1V at 90% efficiency (paper, Section IV),
/// sized for the full 1 kA system current.
std::shared_ptr<FixedEfficiencyConverter> pcb_reference_converter(
    Current max_current = Current{1500.0});

/// The transformer-based 48V-to-12V first stage alone (~96.5% efficient).
std::shared_ptr<FixedEfficiencyConverter> transformer_first_stage(
    Current max_current = Current{150.0});

}  // namespace vpd
