#include "vpd/converters/control.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

struct VoltageModePiController::State {
  double duty{0.5};
  double integral{0.0};        // integrated error [V s]
  double last_sample{0.0};     // latest observed output voltage
  double last_update_time{-1.0};
};

VoltageModePiController::VoltageModePiController(
    PiControllerParams params, NodeId observed_node,
    std::size_t high_switch_position, std::size_t low_switch_position)
    : params_(params),
      node_(observed_node),
      high_position_(high_switch_position),
      low_position_(low_switch_position),
      state_(std::make_shared<State>()) {
  VPD_REQUIRE(params.f_sw.value > 0.0, "f_sw must be positive");
  VPD_REQUIRE(params.min_duty > 0.0 && params.max_duty < 1.0 &&
                  params.min_duty < params.max_duty,
              "need 0 < min_duty < max_duty < 1, got ", params.min_duty,
              ", ", params.max_duty);
  VPD_REQUIRE(params.initial_duty >= params.min_duty &&
                  params.initial_duty <= params.max_duty,
              "initial duty ", params.initial_duty, " outside limits");
  VPD_REQUIRE(high_switch_position != low_switch_position,
              "switch positions must differ");
  state_->duty = params.initial_duty;
}

StepObserver VoltageModePiController::observer() {
  auto state = state_;
  const NodeId node = node_;
  return [state, node](double /*t*/, const Vector& node_voltages) {
    if (node < node_voltages.size()) state->last_sample = node_voltages[node];
  };
}

SwitchController VoltageModePiController::controller() {
  auto state = state_;
  const PiControllerParams params = params_;
  const std::size_t hi = high_position_;
  const std::size_t lo = low_position_;
  return [state, params, hi, lo](double t, SwitchStates& states) {
    const double period = 1.0 / params.f_sw.value;
    // Recompute the duty once per switching period, sampling the most
    // recent observed output voltage.
    const double cycle_index = std::floor(t / period);
    const double cycle_start = cycle_index * period;
    if (cycle_start > state->last_update_time + 0.5 * period) {
      state->last_update_time = cycle_start;
      const double error = params.reference.value - state->last_sample;
      state->integral += error * period;
      double duty = params.initial_duty + params.kp * error +
                    params.ki * state->integral;
      // Anti-windup: clamp and back-compute the integrator at the rails.
      if (duty > params.max_duty) {
        state->integral -=
            (duty - params.max_duty) / std::max(params.ki, 1e-12);
        duty = params.max_duty;
      } else if (duty < params.min_duty) {
        state->integral +=
            (params.min_duty - duty) / std::max(params.ki, 1e-12);
        duty = params.min_duty;
      }
      state->duty = duty;
    }
    double phase = t / period - cycle_index;
    if (phase < 0.0) phase += 1.0;
    const bool high_on = phase < state->duty;
    if (hi < states.size()) states[hi] = high_on;
    if (lo < states.size()) states[lo] = !high_on;
  };
}

double VoltageModePiController::duty() const { return state_->duty; }

double VoltageModePiController::integrator() const {
  return state_->integral;
}

}  // namespace vpd
