// Physically-designed synchronous (multiphase) buck converter: devices are
// sized from a conduction-loss budget, the filter from ripple targets, and
// the efficiency curve follows from the component models rather than a
// fitted curve. This is the workhorse for medium-ratio stages (12V-to-1V,
// 6V-to-1V) and the second stage of the reference architecture A0.
#pragma once

#include <vector>

#include "vpd/converters/converter.hpp"
#include "vpd/devices/power_fet.hpp"
#include "vpd/devices/switching_loss.hpp"
#include "vpd/passives/capacitor.hpp"
#include "vpd/passives/inductor.hpp"

namespace vpd {

struct BuckDesignInputs {
  std::string name{"buck"};
  TechnologyParams device_tech;
  InductorTechnology inductor_tech;
  CapacitorTechnology capacitor_tech;
  Voltage v_in{};
  Voltage v_out{};
  Current rated_current{};   // total output current across phases
  unsigned phases{1};
  Frequency f_sw{};
  /// Per-phase inductor ripple, peak-to-peak, as a fraction of the
  /// per-phase DC current at rating.
  double ripple_fraction{0.4};
  /// Output voltage ripple target (peak-to-peak).
  Voltage output_ripple{Voltage{10e-3}};
  /// Total FET conduction loss at rated load as a fraction of output power;
  /// sets the device areas.
  double conduction_budget_fraction{0.01};
  /// Voltage-rating margin applied to the input voltage when sizing FETs.
  double voltage_margin{1.3};
};

/// Per-category loss breakdown at a specific load.
struct BuckLossBreakdown {
  Power fet_conduction{0.0};
  Power fet_switching{0.0};  // gate + Coss + overlap
  Power inductor{0.0};
  Power capacitor{0.0};
  Power total() const {
    return fet_conduction + fet_switching + inductor + capacitor;
  }
};

class SynchronousBuck : public Converter {
 public:
  explicit SynchronousBuck(const BuckDesignInputs& inputs);

  double duty() const { return duty_; }
  unsigned phases() const { return inputs_.phases; }
  Frequency switching_frequency() const { return inputs_.f_sw; }

  const PowerFet& high_side_fet() const { return high_side_; }
  const PowerFet& low_side_fet() const { return low_side_; }
  /// Per-phase inductor.
  const Inductor& inductor() const { return inductor_; }
  const Capacitor& output_capacitor() const { return output_cap_; }

  /// Per-phase peak-to-peak inductor current ripple.
  Current inductor_ripple() const { return ripple_pp_; }

  /// Physical loss decomposition at `load` (total output current).
  BuckLossBreakdown loss_breakdown(Current load) const;

  // --- Phase shedding ---------------------------------------------------------
  // At light load a multiphase regulator disables phases: conduction loss
  // rises as N/m but the per-phase fixed (gate/Coss/ripple) loss falls
  // with m, so an interior optimum exists. Standard IVR practice and a
  // direct lever on the light-load end of the paper's efficiency curves.

  /// Loss with `active` of the designed phases running.
  Power loss_with_phases(Current load, unsigned active) const;
  /// The loss-minimizing active-phase count at `load`.
  unsigned optimal_active_phases(Current load) const;
  /// Efficiency with the optimal phase count engaged.
  double efficiency_with_shedding(Current load) const;

 private:
  struct Design;  // full design bundle, built once in the .cpp
  SynchronousBuck(const BuckDesignInputs& inputs, Design&& design);
  static Design make_design(const BuckDesignInputs& inputs);

  BuckDesignInputs inputs_;
  double duty_;
  PowerFet high_side_;
  PowerFet low_side_;
  Inductor inductor_;
  Capacitor output_cap_;
  Current ripple_pp_;
};

}  // namespace vpd
