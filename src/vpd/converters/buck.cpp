#include "vpd/converters/buck.hpp"

#include <cmath>
#include <utility>

#include "vpd/common/error.hpp"
#include "vpd/passives/sizing.hpp"

namespace vpd {

struct SynchronousBuck::Design {
  ConverterSpec spec;
  QuadraticLossModel model;
  double duty;
  PowerFet high_side;
  PowerFet low_side;
  Inductor inductor;
  Capacitor output_cap;
  Current ripple_pp;
};

SynchronousBuck::Design SynchronousBuck::make_design(
    const BuckDesignInputs& in) {
  VPD_REQUIRE(in.phases >= 1, "buck '", in.name, "': need >= 1 phase");
  VPD_REQUIRE(in.rated_current.value > 0.0, "buck '", in.name,
              "': non-positive rated current");
  VPD_REQUIRE(in.f_sw.value > 0.0, "buck '", in.name,
              "': non-positive switching frequency");
  VPD_REQUIRE(in.ripple_fraction > 0.0 && in.ripple_fraction <= 2.0,
              "buck '", in.name, "': ripple fraction ", in.ripple_fraction,
              " outside (0, 2]");
  VPD_REQUIRE(in.conduction_budget_fraction > 0.0, "buck '", in.name,
              "': non-positive conduction budget");

  const double duty = buck_duty(in.v_in, in.v_out);
  const double i_phase = in.rated_current.value / in.phases;

  // --- Device sizing --------------------------------------------------------
  // Total FET conduction budget at rated load, split between the high side
  // (conducting for duty D) and the low side (1 - D) in proportion to their
  // conduction duty so both see the same silicon utilization.
  const double p_out_rated = in.v_out.value * in.rated_current.value;
  const double budget_total = in.conduction_budget_fraction * p_out_rated;
  const double budget_per_phase = budget_total / in.phases;
  const Voltage fet_rating{in.v_in.value * in.voltage_margin};
  // Conduction losses: D * i^2 * R_hs + (1-D) * i^2 * R_ls = budget.
  // Split the budget evenly: R_hs = budget/2 / (D i^2).
  const Resistance r_hs{budget_per_phase / 2.0 /
                        (duty * i_phase * i_phase)};
  const Resistance r_ls{budget_per_phase / 2.0 /
                        ((1.0 - duty) * i_phase * i_phase)};
  PowerFet high_side =
      PowerFet::for_on_resistance(in.device_tech, fet_rating, r_hs);
  PowerFet low_side =
      PowerFet::for_on_resistance(in.device_tech, fet_rating, r_ls);

  // --- Filter sizing ----------------------------------------------------------
  const Current ripple_pp{in.ripple_fraction * i_phase};
  const Inductance l_phase =
      buck_inductor_for_ripple(in.v_in, in.v_out, in.f_sw, ripple_pp);
  // Saturation rating: DC + half ripple with 20% margin.
  const Current l_rating{(i_phase + 0.5 * ripple_pp.value) * 1.2};
  Inductor inductor(in.inductor_tech, l_phase, l_rating);

  const double cancel = interleaving_ripple_factor(duty, in.phases);
  const Current cap_ripple{std::max(ripple_pp.value * cancel,
                                    0.05 * ripple_pp.value)};
  const Capacitance c_out = buck_output_capacitor_for_ripple(
      cap_ripple, in.f_sw, in.output_ripple);
  Capacitor output_cap(in.capacitor_tech, c_out,
                       Voltage{std::min(in.v_out.value * 4.0,
                                        in.capacitor_tech.max_rating.value)});

  // --- Loss model coefficients -------------------------------------------------
  // k0: gate drive of both FETs (all phases) + hard-switched high-side Coss
  //     + half-weighted low-side Coss (near-ZVS) + inductor AC ripple loss.
  const double gate = in.phases * (high_side.gate_loss(in.f_sw).value +
                                   low_side.gate_loss(in.f_sw).value);
  const double coss =
      in.phases * (high_side.coss_loss(in.v_in, in.f_sw).value +
                   0.5 * low_side.coss_loss(in.v_in, in.f_sw).value);
  const double inductor_ac =
      in.phases *
      (inductor.loss(Current{0.0}, ripple_pp).value);
  const double cap_esr =
      in.phases * output_cap.loss(Current{cap_ripple.value /
                                          (2.0 * std::sqrt(3.0))})
          .value;
  const double k0 = gate + coss + inductor_ac + cap_esr;

  // k1: high-side V-I overlap (hard switching), expressed per total output
  // ampere; independent of phase count (see header discussion).
  const double t_transition =
      in.device_tech.transition_time_per_volt * in.v_in.value;
  const double k1 = in.v_in.value * t_transition * in.f_sw.value;

  // k2: conduction through FETs and inductor DCR; parallel phases divide
  // the effective resistance.
  const double r_eff_phase = duty * high_side.on_resistance().value +
                             (1.0 - duty) * low_side.on_resistance().value +
                             inductor.dcr().value;
  const double k2 = r_eff_phase / in.phases;

  ConverterSpec spec;
  spec.name = in.name;
  spec.v_in = in.v_in;
  spec.v_out = in.v_out;
  spec.max_current = in.rated_current;
  spec.switch_count = 2 * in.phases;
  spec.inductor_count = in.phases;
  spec.capacitor_count = 1;
  spec.total_inductance = Inductance{l_phase.value * in.phases};
  spec.total_capacitance = c_out;
  spec.area = Area{in.phases * (high_side.area().value +
                                low_side.area().value +
                                inductor.footprint().value) +
                   output_cap.footprint().value};

  return Design{std::move(spec),
                QuadraticLossModel(k0, k1, k2),
                duty,
                std::move(high_side),
                std::move(low_side),
                std::move(inductor),
                std::move(output_cap),
                ripple_pp};
}

SynchronousBuck::SynchronousBuck(const BuckDesignInputs& inputs)
    : SynchronousBuck(inputs, make_design(inputs)) {}

SynchronousBuck::SynchronousBuck(const BuckDesignInputs& inputs,
                                 Design&& design)
    : Converter(std::move(design.spec), design.model),
      inputs_(inputs),
      duty_(design.duty),
      high_side_(std::move(design.high_side)),
      low_side_(std::move(design.low_side)),
      inductor_(std::move(design.inductor)),
      output_cap_(std::move(design.output_cap)),
      ripple_pp_(design.ripple_pp) {}

Power SynchronousBuck::loss_with_phases(Current load,
                                        unsigned active) const {
  VPD_REQUIRE(load.value > 0.0, "load must be positive");
  VPD_REQUIRE(active >= 1 && active <= inputs_.phases, "active phases ",
              active, " outside [1, ", inputs_.phases, "]");
  // The design's model coefficients split as: k0 = N * per-phase fixed,
  // k2 = per-phase conduction / N. With m phases active:
  //   loss(m, I) = m * (k0/N) + k1 * I + (k2 * N / m) * I^2.
  const double n = inputs_.phases;
  const double m = active;
  const QuadraticLossModel& full = loss_model();
  return Power{m * (full.k0() / n) + full.k1() * load.value +
               (full.k2() * n / m) * load.value * load.value};
}

unsigned SynchronousBuck::optimal_active_phases(Current load) const {
  VPD_REQUIRE(load.value > 0.0, "load must be positive");
  unsigned best = 1;
  double best_loss = loss_with_phases(load, 1).value;
  for (unsigned m = 2; m <= inputs_.phases; ++m) {
    const double l = loss_with_phases(load, m).value;
    if (l < best_loss) {
      best_loss = l;
      best = m;
    }
  }
  return best;
}

double SynchronousBuck::efficiency_with_shedding(Current load) const {
  const unsigned m = optimal_active_phases(load);
  const double p_out = spec().v_out.value * load.value;
  return p_out / (p_out + loss_with_phases(load, m).value);
}

BuckLossBreakdown SynchronousBuck::loss_breakdown(Current load) const {
  VPD_REQUIRE(load.value > 0.0, "load must be positive");
  const double i_phase = load.value / inputs_.phases;
  BuckLossBreakdown b;
  b.fet_conduction =
      Power{inputs_.phases * i_phase * i_phase *
            (duty_ * high_side_.on_resistance().value +
             (1.0 - duty_) * low_side_.on_resistance().value)};
  const double gate = inputs_.phases *
                      (high_side_.gate_loss(inputs_.f_sw).value +
                       low_side_.gate_loss(inputs_.f_sw).value);
  const double coss =
      inputs_.phases *
      (high_side_.coss_loss(inputs_.v_in, inputs_.f_sw).value +
       0.5 * low_side_.coss_loss(inputs_.v_in, inputs_.f_sw).value);
  const double overlap =
      inputs_.phases * high_side_
                           .overlap_loss(inputs_.v_in, Current{i_phase},
                                         inputs_.f_sw)
                           .value;
  b.fet_switching = Power{gate + coss + overlap};
  b.inductor = Power{inputs_.phases *
                     inductor_.loss(Current{i_phase}, ripple_pp_).value};
  const double cancel =
      interleaving_ripple_factor(duty_, inputs_.phases);
  const double cap_ripple_rms =
      ripple_pp_.value * cancel / (2.0 * std::sqrt(3.0));
  b.capacitor = output_cap_.loss(Current{cap_ripple_rms});
  return b;
}

}  // namespace vpd
