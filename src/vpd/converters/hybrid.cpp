#include "vpd/converters/hybrid.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

ConverterSpec HybridSwitchedConverter::spec_from_data(
    const HybridConverterData& d) {
  VPD_REQUIRE(d.switches_per_mm2 > 0.0, "converter '", d.name,
              "': non-positive switch density");
  VPD_REQUIRE(d.switch_count > 0, "converter '", d.name, "': no switches");
  ConverterSpec spec;
  spec.name = d.name;
  spec.v_in = d.v_in;
  spec.v_out = d.v_out;
  spec.max_current = d.max_current;
  spec.switch_count = d.switch_count;
  spec.inductor_count = d.inductor_count;
  spec.capacitor_count = d.capacitor_count;
  spec.total_inductance = d.total_inductance;
  spec.total_capacitance = d.total_capacitance;
  spec.area = Area{d.switch_count / d.switches_per_mm2 * 1e-6};
  return spec;
}

double HybridSwitchedConverter::switching_scale(DeviceTechnology tech,
                                                DeviceTechnology ref) {
  if (tech == ref) return 1.0;
  const TechnologyParams a = technology(tech);
  const TechnologyParams b = technology(ref);
  const double fom_a = a.specific_on_resistance * a.gate_charge_density *
                       a.gate_drive.value;
  const double fom_b = b.specific_on_resistance * b.gate_charge_density *
                       b.gate_drive.value;
  return fom_a / fom_b;
}

HybridSwitchedConverter::HybridSwitchedConverter(HybridConverterData data)
    : HybridSwitchedConverter(
          data, data.reference_tech,
          QuadraticLossModel::fit_from_peak(data.peak_efficiency,
                                            data.current_at_peak,
                                            data.v_out)) {}

HybridSwitchedConverter::HybridSwitchedConverter(HybridConverterData data,
                                                 DeviceTechnology tech,
                                                 QuadraticLossModel model)
    : Converter(spec_from_data(data), model),
      data_(std::move(data)),
      tech_(tech) {}

std::shared_ptr<HybridSwitchedConverter>
HybridSwitchedConverter::with_technology(DeviceTechnology tech) const {
  // Only the device-attributable share of the fixed loss scales with the
  // technology FOM.
  const double f = data_.device_switching_fraction;
  VPD_REQUIRE(f >= 0.0 && f <= 1.0, "device_switching_fraction ", f,
              " outside [0,1]");
  const double scale =
      f * switching_scale(tech, tech_) + (1.0 - f);
  HybridConverterData d = data_;
  d.name = d.name + "/" + to_string(tech);
  // A shared_ptr-returning private-constructor factory: use new directly.
  return std::shared_ptr<HybridSwitchedConverter>(new HybridSwitchedConverter(
      std::move(d), tech, loss_model().scaled(scale, 1.0)));
}

std::shared_ptr<HybridSwitchedConverter>
HybridSwitchedConverter::with_conversion(
    Voltage v_in, Voltage v_out, ConversionRetarget mode,
    double switching_voltage_exponent) const {
  VPD_REQUIRE(v_in.value > v_out.value && v_out.value > 0.0,
              "need Vin > Vout > 0, got ", v_in.value, " -> ", v_out.value);
  VPD_REQUIRE(switching_voltage_exponent >= 0.0,
              "negative voltage exponent");
  HybridConverterData d = data_;
  d.v_in = v_in;
  d.v_out = v_out;
  d.name = d.name + "@" + std::to_string(static_cast<int>(v_in.value)) +
           "V-to-" + std::to_string(static_cast<int>(v_out.value)) + "V";

  QuadraticLossModel model = loss_model();
  switch (mode) {
    case ConversionRetarget::kPreserveEfficiency: {
      // eta(I) depends on loss/P_out = loss/(V_out I); scaling every loss
      // coefficient by the output-voltage ratio keeps eta(I) identical.
      const double v_ratio = v_out.value / data_.v_out.value;
      model = QuadraticLossModel(model.k0() * v_ratio, model.k1() * v_ratio,
                                 model.k2() * v_ratio);
      break;
    }
    case ConversionRetarget::kScaleSwitchingWithVin: {
      const double scale = std::pow(v_in.value / data_.v_in.value,
                                    switching_voltage_exponent);
      model = model.scaled(scale, 1.0);
      break;
    }
  }
  return std::shared_ptr<HybridSwitchedConverter>(
      new HybridSwitchedConverter(std::move(d), tech_, model));
}

}  // namespace vpd
