#include "vpd/converters/dsch.hpp"

namespace vpd {

using namespace vpd::literals;

HybridConverterData dsch_data() {
  HybridConverterData d;
  d.name = "DSCH";
  d.v_in = 48.0_V;
  d.v_out = 1.0_V;
  d.max_current = 30.0_A;
  d.peak_efficiency = 0.915;     // [8], Table II
  d.current_at_peak = 10.0_A;
  d.switch_count = 5;
  d.inductor_count = 2;
  d.capacitor_count = 2;
  d.total_inductance = 0.88_uH;
  d.total_capacitance = 6.6_uF;
  d.switches_per_mm2 = 0.69;     // Table II
  d.reference_tech = DeviceTechnology::kSilicon;  // [8] uses Si FETs
  d.device_switching_fraction = 0.6;
  return d;
}

std::shared_ptr<HybridSwitchedConverter> dsch_converter(
    DeviceTechnology tech) {
  auto base = std::make_shared<HybridSwitchedConverter>(dsch_data());
  if (tech == DeviceTechnology::kSilicon) return base;
  return base->with_technology(tech);
}

}  // namespace vpd
