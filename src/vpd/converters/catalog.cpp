#include "vpd/converters/catalog.hpp"

#include "vpd/common/error.hpp"
#include "vpd/converters/dickson.hpp"
#include "vpd/converters/dpmih.hpp"
#include "vpd/converters/dsch.hpp"

namespace vpd {

using namespace vpd::literals;

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDpmih: return "DPMIH";
    case TopologyKind::kDsch: return "DSCH";
    case TopologyKind::kDickson: return "3LHD";
  }
  return "unknown";
}

std::vector<TopologyKind> all_topologies() {
  return {TopologyKind::kDpmih, TopologyKind::kDsch, TopologyKind::kDickson};
}

HybridConverterData topology_data(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDpmih: return dpmih_data();
    case TopologyKind::kDsch: return dsch_data();
    case TopologyKind::kDickson: return dickson_data();
  }
  throw InvalidArgument("unknown topology kind");
}

std::shared_ptr<HybridSwitchedConverter> make_topology(TopologyKind kind,
                                                       DeviceTechnology tech) {
  switch (kind) {
    case TopologyKind::kDpmih: return dpmih_converter(tech);
    case TopologyKind::kDsch: return dsch_converter(tech);
    case TopologyKind::kDickson: return dickson_converter(tech);
  }
  throw InvalidArgument("unknown topology kind");
}

std::vector<TableTwoRow> published_table_two() {
  std::vector<TableTwoRow> rows;
  {
    TableTwoRow r;
    r.label = "DPMIH";
    r.kind = TopologyKind::kDpmih;
    r.conversion_scheme = "48V-to-1V";
    r.max_load = 100.0_A;
    r.peak_efficiency = 0.909;  // Table II prints 90.0%; text/[9] say 90.9%
    r.current_at_peak = 30.0_A;
    r.switches = 8;
    r.switches_per_mm2 = 0.15;
    r.inductors = 4;
    r.total_inductance = 4.0_uH;
    r.capacitors = 3;
    r.total_capacitance = 15.0_uF;
    r.vrs_along_periphery = 8;
    r.vrs_below_die = 7;
    rows.push_back(r);
  }
  {
    TableTwoRow r;
    r.label = "DSCH";
    r.kind = TopologyKind::kDsch;
    r.conversion_scheme = "48V-to-1V";
    r.max_load = 30.0_A;
    r.peak_efficiency = 0.915;
    r.current_at_peak = 10.0_A;
    r.switches = 5;
    r.switches_per_mm2 = 0.69;
    r.inductors = 2;
    r.total_inductance = 0.88_uH;
    r.capacitors = 2;
    r.total_capacitance = 6.6_uF;
    r.vrs_along_periphery = 48;
    r.vrs_below_die = 48;
    rows.push_back(r);
  }
  {
    TableTwoRow r;
    r.label = "3LHD";
    r.kind = TopologyKind::kDickson;
    r.conversion_scheme = "48V-to-1V";
    r.max_load = 12.0_A;
    r.peak_efficiency = 0.904;
    r.current_at_peak = 3.0_A;
    r.switches = 11;
    r.switches_per_mm2 = 1.22;
    r.inductors = 3;
    r.total_inductance = 1.86_uH;
    r.capacitors = 5;
    r.total_capacitance = 5.0_uF;
    r.vrs_along_periphery = 48;
    r.vrs_below_die = 48;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace vpd
