// Load-dependent converter loss models.
//
// A switching converter's loss decomposes, to good accuracy, into a
// load-independent term (gate drive, Coss, control), a load-linear term
// (V-I overlap), and a load-quadratic term (conduction in switches,
// inductor DCR, capacitor ESR):
//
//   P_loss(I) = k0 + k1 * I + k2 * I^2
//
// Efficiency at output voltage V is then eta(I) = V I / (V I + P_loss(I)),
// which peaks at I* = sqrt(k0 / k2) with
// eta* = V / (V + k1 + 2 sqrt(k0 k2)).
//
// The paper characterizes the published DSCH/DPMIH/3LHD prototypes by
// (peak efficiency, current at peak, max current); `fit_from_peak` inverts
// the relations above so the model curve passes exactly through the
// published peak point. Technology ablations (Si <-> GaN, frequency) scale
// k0 and k2 by physically-motivated ratios.
#pragma once

#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

class QuadraticLossModel {
 public:
  /// Direct coefficients: k0 [W], k1 [V], k2 [Ohm].
  QuadraticLossModel(double k0, double k1, double k2);

  /// Fits k0 and k2 so that the peak of eta(I) at output voltage `v_out`
  /// is exactly (`current_at_peak`, `peak_efficiency`), with the linear
  /// coefficient fixed at `k1`. Throws InvalidArgument if the requested
  /// peak is unreachable (k1 already exceeds the total loss budget).
  static QuadraticLossModel fit_from_peak(double peak_efficiency,
                                          Current current_at_peak,
                                          Voltage v_out, double k1 = 0.0);

  /// One sample of a measured efficiency curve.
  struct EfficiencyPoint {
    Current load{};
    double efficiency{0.0};
  };

  /// Least-squares fit of (k0, k1, k2) to a measured efficiency curve at
  /// output voltage `v_out` (e.g. digitized from a datasheet or a
  /// published prototype plot). Needs >= 3 points at distinct currents.
  /// Coefficients are clamped to the model's validity domain (k0, k2 > 0,
  /// k1 >= 0) by re-solving with the offending term pinned when the
  /// unconstrained optimum leaves it.
  static QuadraticLossModel fit_least_squares(
      const std::vector<EfficiencyPoint>& points, Voltage v_out);

  double k0() const { return k0_; }
  double k1() const { return k1_; }
  double k2() const { return k2_; }

  Power loss(Current output_current) const;
  double efficiency(Current output_current, Voltage v_out) const;

  /// Output current of maximum efficiency.
  Current peak_current() const;
  double peak_efficiency(Voltage v_out) const;

  /// Returns a model with the fixed term scaled by `switching_scale`
  /// (e.g. device Qg/Coss FOM ratio, or a frequency ratio) and the
  /// quadratic term scaled by `conduction_scale` (e.g. Ron ratio).
  QuadraticLossModel scaled(double switching_scale,
                            double conduction_scale) const;

 private:
  double k0_;
  double k1_;
  double k2_;
};

}  // namespace vpd
