#include "vpd/converters/transformer_stage.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

using namespace vpd::literals;

namespace {

// Encodes a flat efficiency eta as a quadratic model whose loss curve is
// almost purely linear-in-power over the load range: k1 dominates with
// tiny k0/k2 so that eta(I) ~ Vout / (Vout + k1) for all I.
QuadraticLossModel flat_model(double efficiency, Voltage v_out) {
  VPD_REQUIRE(efficiency > 0.0 && efficiency < 1.0, "efficiency ",
              efficiency, " outside (0,1)");
  const double k1 = v_out.value * (1.0 / efficiency - 1.0);
  return QuadraticLossModel(1e-9, k1, 1e-12);
}

}  // namespace

FixedEfficiencyConverter::FixedEfficiencyConverter(std::string name,
                                                   Voltage v_in,
                                                   Voltage v_out,
                                                   Current max_current,
                                                   double efficiency)
    : Converter(
          [&] {
            ConverterSpec spec;
            spec.name = std::move(name);
            spec.v_in = v_in;
            spec.v_out = v_out;
            spec.max_current = max_current;
            spec.switch_count = 12;    // representative PCB SMPS
            spec.inductor_count = 4;
            spec.capacitor_count = 8;
            spec.total_inductance = 20.0_uH;
            spec.total_capacitance = 500.0_uF;
            spec.area = 2000.0_mm2;    // PCB area, unconstrained
            return spec;
          }(),
          flat_model(efficiency, v_out)),
      rated_efficiency_(efficiency) {}

std::shared_ptr<FixedEfficiencyConverter> pcb_reference_converter(
    Current max_current) {
  return std::make_shared<FixedEfficiencyConverter>(
      "A0-PCB-48to1", 48.0_V, 1.0_V, max_current, 0.90);
}

std::shared_ptr<FixedEfficiencyConverter> transformer_first_stage(
    Current max_current) {
  return std::make_shared<FixedEfficiencyConverter>(
      "PCB-transformer-48to12", 48.0_V, 12.0_V, max_current, 0.965);
}

}  // namespace vpd
