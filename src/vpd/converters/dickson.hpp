// Three-level hybrid Dickson (3LHD) converter [10] (Gong, Zhang &
// Raychowdhury 2022): eleven switches, five self-balanced flying
// capacitors, three inductors. The Dickson front end steps 48 V down by
// 10x (to 4.8 V), relaxing transistor stress and raising the effective
// on-time from 2% to 20%. Published 48V-to-1V prototype: 12 A max, 90.4%
// peak efficiency at 3 A, with a 2-GaN / 9-Si hybrid switch set. The paper
// evaluates an all-GaN variant and notes that at the 20 A/VR its
// architectures require, no published efficiency exists — hence 3LHD rows
// are absent from Fig. 7 (this library marks them N/A, with a clearly
// flagged extrapolation available).
#pragma once

#include "vpd/converters/hybrid.hpp"

namespace vpd {

/// Published Table II characterization of the 3LHD prototype.
HybridConverterData dickson_data();

/// The reference prototype's mixed GaN/Si switch set is approximated as
/// silicon-dominant (9 of 11 switches are Si); pass kGalliumNitride for
/// the paper's all-GaN variant.
std::shared_ptr<HybridSwitchedConverter> dickson_converter(
    DeviceTechnology tech = DeviceTechnology::kSilicon);

}  // namespace vpd
