#include "vpd/converters/fcml.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/passives/sizing.hpp"

namespace vpd {

struct FlyingCapMultilevel::Design {
  ConverterSpec spec;
  QuadraticLossModel model;
  PowerFet cell_fet;
  Inductor inductor;
  Capacitance fly_cap_each;
};

FlyingCapMultilevel::Design FlyingCapMultilevel::make_design(
    const FcmlInputs& in) {
  VPD_REQUIRE(in.levels >= 3, "fcml '", in.name, "': need >= 3 levels");
  VPD_REQUIRE(in.rated_current.value > 0.0, "fcml '", in.name,
              "': non-positive rated current");
  VPD_REQUIRE(in.f_sw.value > 0.0, "fcml '", in.name,
              "': non-positive frequency");
  const double duty = buck_duty(in.v_in, in.v_out);

  const unsigned cells = in.levels - 1;           // series switch pairs
  const unsigned switches = 2 * cells;
  const unsigned fly_caps = in.levels - 2;
  const Voltage cell_voltage{in.v_in.value / cells};
  const Frequency f_eff{in.f_sw.value * cells};
  const double i_out = in.rated_current.value;

  // Conduction path: at any instant the inductor current flows through
  // (N-1) switches in series. Budget sets the per-switch resistance.
  const double p_out = in.v_out.value * i_out;
  const double budget = in.conduction_budget_fraction * p_out;
  const Resistance r_fet{budget / (cells * i_out * i_out)};
  PowerFet fet = PowerFet::for_on_resistance(
      in.device_tech, Voltage{cell_voltage.value * in.voltage_margin},
      r_fet);

  // Inductor: driven by Vin/(N-1) steps at (N-1) x f_sw — dramatically
  // smaller than a plain buck's. Ripple from the equivalent buck relation
  // at the cell voltage and effective frequency.
  const Current ripple_pp{in.ripple_fraction * i_out};
  // Guard: if Vout >= cell voltage the simple relation degenerates; the
  // inductor then sees |Vout - k*Vcell| < Vcell steps, bounded by Vcell.
  const double v_step =
      std::min(in.v_out.value, cell_voltage.value - in.v_out.value) > 0.0
          ? std::min(in.v_out.value, cell_voltage.value - in.v_out.value)
          : 0.25 * cell_voltage.value;
  const Inductance l{v_step / (ripple_pp.value * f_eff.value)};
  Inductor inductor(in.inductor_tech, l,
                    Current{(i_out + 0.5 * ripple_pp.value) * 1.2});

  // Flying caps: each carries the full inductor current for a 1/(N-1)
  // slice of the period; C = I * D_slice / (f * dV).
  const double dv = in.fly_cap_ripple_fraction * cell_voltage.value;
  const Capacitance c_each{i_out / (cells * in.f_sw.value * dv)};
  const Capacitor fly(in.capacitor_tech, c_each,
                      Voltage{std::min(cell_voltage.value * 2.0,
                                       in.capacitor_tech.max_rating.value)});

  // Loss model.
  const double gate = switches * fet.gate_loss(in.f_sw).value;
  const double coss =
      switches * fet.coss_loss(cell_voltage, in.f_sw).value;
  const double cap_esr =
      fly_caps * fly.loss(Current{i_out / std::sqrt(2.0 * cells)}).value;
  const double inductor_ac =
      inductor.loss(Current{0.0}, ripple_pp).value;
  const double k0 = gate + coss + cap_esr + inductor_ac;

  const double t_transition =
      in.device_tech.transition_time_per_volt * cell_voltage.value;
  // One cell commutates per cell period -> cells transitions per f_sw
  // period at the cell voltage.
  const double k1 =
      cell_voltage.value * t_transition * in.f_sw.value * cells;

  const double k2 = cells * fet.on_resistance().value +
                    inductor.dcr().value;

  ConverterSpec spec;
  spec.name = in.name;
  spec.v_in = in.v_in;
  spec.v_out = in.v_out;
  spec.max_current = in.rated_current;
  spec.switch_count = switches;
  spec.inductor_count = 1;
  spec.capacitor_count = fly_caps;
  spec.total_inductance = l;
  spec.total_capacitance = Capacitance{fly_caps * c_each.value};
  spec.area = Area{switches * fet.area().value +
                   inductor.footprint().value +
                   fly_caps * fly.footprint().value};
  (void)duty;

  return Design{std::move(spec), QuadraticLossModel(std::max(k0, 1e-9), k1,
                                                    std::max(k2, 1e-12)),
                std::move(fet), std::move(inductor), c_each};
}

FlyingCapMultilevel::FlyingCapMultilevel(const FcmlInputs& inputs)
    : FlyingCapMultilevel(inputs, make_design(inputs)) {}

FlyingCapMultilevel::FlyingCapMultilevel(const FcmlInputs& inputs,
                                         Design&& design)
    : Converter(std::move(design.spec), design.model),
      inputs_(inputs),
      cell_fet_(std::move(design.cell_fet)),
      inductor_(std::move(design.inductor)),
      fly_cap_each_(design.fly_cap_each) {}

Voltage FlyingCapMultilevel::switch_stress() const {
  return Voltage{inputs_.v_in.value / (inputs_.levels - 1)};
}

Frequency FlyingCapMultilevel::effective_frequency() const {
  return Frequency{inputs_.f_sw.value * (inputs_.levels - 1)};
}

}  // namespace vpd
