// Series-parallel switched-capacitor converter with the Seeman-Sanders
// output-impedance model: the converter behaves as an ideal n:1 transformer
// followed by an output resistance R_out(f) that interpolates between the
// slow-switching limit (SSL, charge-transfer dominated, ~1/(C f)) and the
// fast-switching limit (FSL, switch-resistance dominated).
//
// The paper's Fig. 6(b) shows this topology; SC-derived converters are the
// preferred front ends for high-ratio conversion because they avoid the
// ultra-low on-time a 48V-to-1V buck would need (Section III).
#pragma once

#include "vpd/converters/converter.hpp"
#include "vpd/devices/power_fet.hpp"
#include "vpd/passives/capacitor.hpp"

namespace vpd {

struct ScDesignInputs {
  std::string name{"sc-series-parallel"};
  TechnologyParams device_tech;
  CapacitorTechnology capacitor_tech;
  Voltage v_in{};
  unsigned ratio{2};               // n:1 step-down
  Current rated_current{};
  Frequency f_sw{};
  Capacitance fly_capacitance{};   // per flying capacitor
  Resistance switch_resistance{};  // per switch
  double voltage_margin{1.3};
};

class SeriesParallelSc : public Converter {
 public:
  explicit SeriesParallelSc(const ScDesignInputs& inputs);

  unsigned ratio() const { return inputs_.ratio; }
  Frequency switching_frequency() const { return inputs_.f_sw; }

  /// Slow-switching-limit output resistance: (n-1) / (n^2 C f).
  Resistance ssl_resistance() const;
  /// Fast-switching-limit output resistance: 2 * sum(a_r^2) * R_switch.
  Resistance fsl_resistance() const;
  /// Combined: sqrt(SSL^2 + FSL^2).
  Resistance output_resistance() const;

  /// Loaded output voltage: Vin/n - I * R_out.
  Voltage loaded_output_voltage(Current load) const;

  /// Switch count for the series-parallel n:1 cell: n series-phase
  /// switches plus 2(n-1) parallel-phase switches = 3n - 2.
  static unsigned switch_count_for_ratio(unsigned ratio);

 private:
  struct Design;
  SeriesParallelSc(const ScDesignInputs& inputs, Design&& design);
  static Design make_design(const ScDesignInputs& inputs);

  ScDesignInputs inputs_;
  double r_ssl_;
  double r_fsl_;
};

}  // namespace vpd
