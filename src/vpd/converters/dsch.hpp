// Double series-capacitor hybrid (DSCH) converter [8] (Kirshenboim &
// Peretz 2017): a buck-derived topology whose compact SC front end (two
// capacitors + one switch) steps the input down to one third before a
// dual-phase buck stage, sidestepping the ultra-low on-time of a direct
// 48V-to-1V buck. Published 48V-to-1V prototype: 30 A max, 91.5% peak
// efficiency at 10 A, with Si devices. Compact (0.69 switches/mm^2), so
// the paper prefers it for second-stage (12V/6V -> 1V) conversion.
#pragma once

#include "vpd/converters/hybrid.hpp"

namespace vpd {

/// Published Table II characterization of the DSCH prototype.
HybridConverterData dsch_data();

/// DSCH instance, optionally re-equipped with a different device
/// technology (the paper evaluates a GaN variant).
std::shared_ptr<HybridSwitchedConverter> dsch_converter(
    DeviceTechnology tech = DeviceTechnology::kSilicon);

}  // namespace vpd
