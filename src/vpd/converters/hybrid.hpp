// Hybrid (SC + inductor) converter models calibrated to published
// prototypes. The paper's Table II characterizes three state-of-the-art
// compact 48V-to-1V converters — DSCH [8], DPMIH [9], 3LHD [10] — by their
// published peak efficiency, the load at that peak, the maximum load, and
// component counts/areas. HybridSwitchedConverter carries that data, fits
// the quadratic loss model through the published peak, and supports two
// physically-motivated retargetings:
//
//  * device technology (Si <-> GaN): at equal on-resistance the switching
//    term scales with the Ron*Qg figure-of-merit (x gate-drive voltage)
//    ratio, conduction is unchanged;
//  * conversion scheme (e.g. 48V->12V first stage, 12V->1V second stage):
//    the switching term scales with input voltage (device stress), the
//    per-ampere conduction term is retained.
#pragma once

#include <memory>

#include "vpd/converters/converter.hpp"
#include "vpd/devices/technology.hpp"

namespace vpd {

struct HybridConverterData {
  std::string name;
  Voltage v_in{};
  Voltage v_out{};
  Current max_current{};
  double peak_efficiency{0.0};
  Current current_at_peak{};
  unsigned switch_count{0};
  unsigned inductor_count{0};
  unsigned capacitor_count{0};
  Inductance total_inductance{};
  Capacitance total_capacitance{};
  double switches_per_mm2{0.0};  // Table II row; area = count / density
  DeviceTechnology reference_tech{DeviceTechnology::kGalliumNitride};
  /// Fraction of the fixed (load-independent) loss attributable to the
  /// power FETs (gate + Coss); the rest — magnetics core loss, control,
  /// drivers — does not improve when swapping device technology.
  double device_switching_fraction{0.6};
};

class HybridSwitchedConverter : public Converter {
 public:
  /// Model at the published operating point with the published device
  /// technology.
  explicit HybridSwitchedConverter(HybridConverterData data);

  const HybridConverterData& data() const { return data_; }
  DeviceTechnology device_technology() const { return tech_; }

  /// Same topology re-equipped with `tech` devices at equal on-resistance.
  std::shared_ptr<HybridSwitchedConverter> with_technology(
      DeviceTechnology tech) const;

  /// How a conversion-scheme retarget maps the calibrated loss curve.
  enum class ConversionRetarget {
    /// The published efficiency-vs-current curve carries over unchanged:
    /// eta(I) at the new scheme equals eta(I) at the published one, so all
    /// loss coefficients scale with the output voltage. This is the
    /// paper's methodology (a converter's efficiency is treated as a
    /// property of the design, applied to whatever power it processes),
    /// and what reproduces Fig. 7's two-stage < single-stage ordering.
    kPreserveEfficiency,
    /// Physics-flavoured alternative: the fixed (switching) loss scales
    /// with input voltage as (v_in_new/v_in_old)^exponent, conduction per
    /// output ampere is retained. More optimistic for step-down stages.
    kScaleSwitchingWithVin,
  };

  /// Same topology retargeted to a different conversion scheme. Current
  /// limits carry over.
  std::shared_ptr<HybridSwitchedConverter> with_conversion(
      Voltage v_in, Voltage v_out,
      ConversionRetarget mode = ConversionRetarget::kPreserveEfficiency,
      double switching_voltage_exponent = 1.0) const;

 private:
  HybridSwitchedConverter(HybridConverterData data, DeviceTechnology tech,
                          QuadraticLossModel model);
  static ConverterSpec spec_from_data(const HybridConverterData& data);
  /// Ratio of switching loss for `tech` vs `ref` at equal Rds_on:
  /// (RonA * Qg/A * Vdrive) ratio.
  static double switching_scale(DeviceTechnology tech, DeviceTechnology ref);

  HybridConverterData data_;
  DeviceTechnology tech_;
};

}  // namespace vpd
