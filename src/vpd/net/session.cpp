#include "vpd/net/session.hpp"

#include <chrono>
#include <utility>

#include "vpd/obs/trace.hpp"

namespace vpd {
namespace net {

io::Value error_body(const std::string& message) {
  io::Value body = io::Value::object();
  body.set("status", "error");
  body.set("schema_version", io::kSchemaVersion);
  body.set("error", message);
  return body;
}

std::string response_line(const io::Value& id, const io::Value& body,
                          bool pretty) {
  io::Value framed = io::Value::object();
  framed.set("id", id);
  for (const auto& [key, value] : body.as_object()) {
    framed.set(key, value);
  }
  return pretty ? io::dump_pretty(framed) : io::dump(framed);
}

ResponseQueue::ResponseQueue(Sink sink) : sink_(std::move(sink)) {
  VPD_REQUIRE(sink_ != nullptr, "ResponseQueue needs a sink");
  writer_ = std::thread([this] { writer_loop(); });
}

ResponseQueue::~ResponseQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void ResponseQueue::push(std::function<std::string()> resolve) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(resolve));
    ++outstanding_;
  }
  ready_cv_.notify_one();
}

void ResponseQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

std::size_t ResponseQueue::emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

void ResponseQueue::writer_loop() {
  for (;;) {
    std::function<std::string()> resolve;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_cv_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) return;  // stop_ set and everything emitted
      resolve = std::move(queue_.front());
      queue_.pop_front();
    }
    // Resolving blocks until this response's turn completes — the whole
    // point: emission is driven by completion, not by the next input.
    std::string line;
    try {
      line = resolve();
    } catch (const std::exception& e) {
      line = response_line(io::Value(), error_body(e.what()),
                           /*pretty=*/false);
    }
    bool deliver;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      deliver = sink_alive_;
    }
    if (deliver) {
      try {
        sink_(line);
      } catch (...) {
        // Client vanished mid-stream: keep consuming resolvers so
        // in-flight work still completes, but stop writing.
        std::lock_guard<std::mutex> lock(mutex_);
        sink_alive_ = false;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++emitted_;
      --outstanding_;
    }
    idle_cv_.notify_all();
  }
}

LineSession::LineSession(serve::EvaluationService& service, Sink sink,
                         SessionOptions options)
    : service_(service),
      options_(std::move(options)),
      queue_(std::move(sink)) {}

bool LineSession::feed(std::string_view line) {
  if (shutdown_requested_) return false;
  if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
    return true;  // blank lines keep the stream alive but produce nothing
  }
  ++lines_in_;

  Pending item;
  try {
    const io::Value doc = io::parse(line);
    if (const io::Value* requested_id = doc.find("id")) {
      item.id = *requested_id;
    }
    // The envelope's "cmd" and "id" need no stripping: the schema reader
    // ignores unknown fields (the v2 compatibility rule).
    std::string cmd = "evaluate";
    if (const io::Value* requested_cmd = doc.find("cmd")) {
      cmd = requested_cmd->as_string();
    }
    if (cmd == "evaluate") {
      const io::EvaluationRequest request =
          io::evaluation_request_from_json(doc);
      item.kind = Pending::Kind::kEvaluate;
      item.future = service_.submit(request);
    } else if (cmd == "evaluate_batch") {
      const io::Value* requests = doc.find("requests");
      if (requests == nullptr) {
        throw InvalidArgument("evaluate_batch needs a \"requests\" array");
      }
      item.kind = Pending::Kind::kEvaluateBatch;
      for (const io::Value& entry : requests->as_array()) {
        item.batch.push_back(io::evaluation_request_from_json(entry));
      }
    } else if (cmd == "transient") {
      item.kind = Pending::Kind::kTransient;
      item.transient = io::transient_request_from_json(doc);
    } else if (cmd == "optimize") {
      item.kind = Pending::Kind::kOptimize;
      item.optimize = io::optimize_request_from_json(doc);
    } else if (cmd == "metrics") {
      item.kind = Pending::Kind::kMetrics;
    } else if (cmd == "trace") {
      item.kind = Pending::Kind::kTrace;
      if (const io::Value* path = doc.find("path")) {
        item.path = path->as_string();
      }
    } else if (cmd == "shutdown") {
      item.kind = Pending::Kind::kShutdown;
      shutdown_requested_ = true;
    } else {
      item.kind = Pending::Kind::kBody;
      item.body = error_body(
          "unknown cmd \"" + cmd +
          "\" (expected evaluate, evaluate_batch, transient, optimize, "
          "metrics, trace or shutdown)");
    }
  } catch (const Error& e) {
    // Queue a resolved error response so output order stays request order
    // even when a bad line lands between in-flight evaluations. The id is
    // recovered from the raw bytes when the envelope did not parse —
    // pipelining clients must never receive an orphaned error.
    item.kind = Pending::Kind::kBody;
    if (item.id.is_null()) item.id = io::recover_wire_id(line);
    item.body = error_body(e.what());
  }
  // shared_ptr because std::function requires a copyable callable.
  auto pending = std::make_shared<Pending>(std::move(item));
  queue_.push([this, pending] {
    return response_line(pending->id, resolve(*pending), options_.pretty);
  });
  return !shutdown_requested_;
}

void LineSession::drain() { queue_.wait_idle(); }

io::Value LineSession::resolve(Pending& item) {
  switch (item.kind) {
    case Pending::Kind::kBody:
      return std::move(item.body);
    case Pending::Kind::kMetrics: {
      io::Value body = io::Value::object();
      body.set("status", "ok");
      body.set("schema_version", io::kSchemaVersion);
      body.set("metrics", service_.metrics_json());
      return body;
    }
    case Pending::Kind::kTrace: {
      const std::string& path =
          item.path.empty() ? options_.default_trace_path : item.path;
      if (path.empty()) {
        return error_body(
            "trace: no output path (pass \"path\" or start vpdd with "
            "--trace FILE)");
      }
      if (!obs::write_trace(path)) {
        return error_body("trace: cannot write " + path);
      }
      io::Value body = io::Value::object();
      body.set("status", "ok");
      body.set("schema_version", io::kSchemaVersion);
      io::Value trace = io::Value::object();
      trace.set("path", path);
      trace.set("events", double(obs::trace_event_count()));
      trace.set("dropped", double(obs::trace_events_dropped()));
      body.set("trace", trace);
      return body;
    }
    case Pending::Kind::kEvaluateBatch: {
      // Synchronous at its output turn, like transient and optimize: the
      // batch engine runs on this thread, and a later "metrics" line sees
      // the whole batch's serve.batch.* accounting.
      const std::vector<serve::ServiceResponse> results =
          service_.evaluate_batch(item.batch);
      io::Value body = io::Value::object();
      body.set("status", "ok");
      body.set("schema_version", io::kSchemaVersion);
      io::Value array = io::Value::array();
      for (const serve::ServiceResponse& response : results) {
        array.push_back(serve::to_json(response));
      }
      body.set("results", std::move(array));
      return body;
    }
    case Pending::Kind::kTransient:
      // Runs synchronously at its output turn: the campaign owns its own
      // worker pool, and resolving in order keeps the pipelining contract
      // (a later "metrics" line sees the whole campaign).
      return serve::to_json(service_.run_transient(*item.transient));
    case Pending::Kind::kOptimize:
      // Same synchronous-at-turn rule as transient: the optimizer owns
      // its own worker pool and a later "metrics" line sees the run.
      return serve::to_json(service_.run_optimize(*item.optimize));
    case Pending::Kind::kShutdown: {
      // The shutdown response is the final metrics line: every earlier
      // request has resolved by this turn, so the snapshot is the
      // stream's complete accounting.
      io::Value body = io::Value::object();
      body.set("status", "ok");
      body.set("schema_version", io::kSchemaVersion);
      body.set("shutdown", true);
      body.set("metrics", service_.metrics_json());
      return body;
    }
    case Pending::Kind::kEvaluate:
      break;
  }
  return serve::to_json(item.future.get());
}

}  // namespace net
}  // namespace vpd
