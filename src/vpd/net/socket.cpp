#include "vpd/net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace vpd {
namespace net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool is_loopback_host(const std::string& host) {
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) != 1) return false;
  // 127.0.0.0/8.
  return (ntohl(addr.s_addr) >> 24) == 127;
}

int make_unix_socket(const Endpoint& endpoint, sockaddr_un* addr) {
  VPD_REQUIRE(!endpoint.path.empty(), "unix endpoint needs a path");
  VPD_REQUIRE(endpoint.path.size() < sizeof(addr->sun_path),
              "unix socket path too long: ", endpoint.path);
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, endpoint.path.c_str(), endpoint.path.size());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(errno_text("socket(AF_UNIX)"));
  return fd;
}

int make_tcp_socket(const Endpoint& endpoint, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(endpoint.port);
  VPD_REQUIRE(inet_pton(AF_INET, endpoint.host.c_str(), &addr->sin_addr) == 1,
              "invalid tcp host: ", endpoint.host);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(errno_text("socket(AF_INET)"));
  return fd;
}

}  // namespace

// --- Endpoint ---------------------------------------------------------------

Endpoint Endpoint::parse(std::string_view address) {
  Endpoint endpoint;
  if (address.rfind("unix:", 0) == 0) {
    endpoint.kind = Kind::kUnix;
    endpoint.path = std::string(address.substr(5));
    VPD_REQUIRE(!endpoint.path.empty(),
                "unix endpoint needs a path: ", std::string(address));
    return endpoint;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string_view rest = address.substr(4);
    const std::size_t colon = rest.rfind(':');
    VPD_REQUIRE(colon != std::string_view::npos && colon > 0,
                "tcp endpoint must be tcp:host:port: ", std::string(address));
    endpoint.kind = Kind::kTcp;
    endpoint.host = std::string(rest.substr(0, colon));
    const std::string port_text(rest.substr(colon + 1));
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    VPD_REQUIRE(end != nullptr && *end == '\0' && !port_text.empty() &&
                    port <= 65535,
                "invalid tcp port: ", port_text);
    endpoint.port = static_cast<std::uint16_t>(port);
    VPD_REQUIRE(is_loopback_host(endpoint.host),
                "tcp endpoints are restricted to loopback (127.0.0.0/8); "
                "front a proxy for remote access: ",
                std::string(address));
    return endpoint;
  }
  throw InvalidArgument("endpoint must start with unix: or tcp: — got \"" +
                        std::string(address) + "\"");
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// --- Connection -------------------------------------------------------------

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    read_fd_ = std::exchange(other.read_fd_, -1);
    write_fd_ = std::exchange(other.write_fd_, -1);
    use_plain_write_ = other.use_plain_write_;
    buffer_ = std::move(other.buffer_);
    buffer_pos_ = other.buffer_pos_;
  }
  return *this;
}

bool Connection::read_line(std::string* line) {
  line->clear();
  for (;;) {
    // Serve from the buffered tail first.
    const std::size_t newline = buffer_.find('\n', buffer_pos_);
    if (newline != std::string::npos) {
      line->assign(buffer_, buffer_pos_, newline - buffer_pos_);
      buffer_pos_ = newline + 1;
      if (buffer_pos_ == buffer_.size()) {
        buffer_.clear();
        buffer_pos_ = 0;
      }
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    if (read_fd_ < 0) break;
    char chunk[4096];
    const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      // A reset peer at a line boundary is a disconnect, not a failure.
      if (errno == ECONNRESET && buffer_pos_ >= buffer_.size()) break;
      throw IoError(errno_text("read"));
    }
    if (n == 0) break;  // EOF
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  // EOF: deliver an unterminated trailing line if one is buffered.
  if (buffer_pos_ < buffer_.size()) {
    line->assign(buffer_, buffer_pos_, buffer_.size() - buffer_pos_);
    buffer_.clear();
    buffer_pos_ = 0;
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return true;
  }
  return false;
}

void Connection::write_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  const char* data = framed.data();
  std::size_t remaining = framed.size();
  while (remaining > 0) {
    ssize_t n;
    if (use_plain_write_) {
      n = ::write(write_fd_, data, remaining);
    } else {
      // MSG_NOSIGNAL: a vanished peer must surface as IoError in this
      // thread, not SIGPIPE for the whole process.
      n = ::send(write_fd_, data, remaining, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        use_plain_write_ = true;  // pipe fd: fall back to write()
        continue;
      }
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(errno_text("write"));
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
}

void Connection::shutdown_read() {
  if (read_fd_ >= 0) ::shutdown(read_fd_, SHUT_RD);
}

void Connection::shutdown_write() {
  if (write_fd_ >= 0) {
    if (write_fd_ == read_fd_) {
      ::shutdown(write_fd_, SHUT_WR);
    } else {
      ::close(write_fd_);
      write_fd_ = -1;
    }
  }
}

void Connection::close() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  read_fd_ = -1;
  write_fd_ = -1;
  buffer_.clear();
  buffer_pos_ = 0;
}

Connection connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    const int fd = make_unix_socket(endpoint, &addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw IoError(errno_text(("connect " + endpoint.to_string()).c_str()));
    }
    return Connection(fd);
  }
  sockaddr_in addr;
  const int fd = make_tcp_socket(endpoint, &addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw IoError(errno_text(("connect " + endpoint.to_string()).c_str()));
  }
  return Connection(fd);
}

// --- Listener ---------------------------------------------------------------

Listener::Listener(const Endpoint& endpoint, int backlog)
    : endpoint_(endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    fd_ = make_unix_socket(endpoint, &addr);
    // A stale socket file from a crashed predecessor blocks bind; remove
    // it (a live listener would still hold the name via its bound fd, and
    // double-starting a daemon on one path is an operator error anyway).
    ::unlink(endpoint.path.c_str());
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string text =
          errno_text(("bind " + endpoint.to_string()).c_str());
      ::close(fd_);
      fd_ = -1;
      throw IoError(text);
    }
    unlink_path_ = endpoint.path;
  } else {
    sockaddr_in addr;
    fd_ = make_tcp_socket(endpoint, &addr);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string text =
          errno_text(("bind " + endpoint.to_string()).c_str());
      ::close(fd_);
      fd_ = -1;
      throw IoError(text);
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      endpoint_.port = ntohs(addr.sin_port);  // resolve port 0
    }
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string text =
        errno_text(("listen " + endpoint_.to_string()).c_str());
    close();
    throw IoError(text);
  }
}

Listener::~Listener() { close(); }

Connection Listener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Connection(fd);
    if (errno == EINTR) continue;
    // close() shut the listener down (EBADF/EINVAL), or it is gone.
    return Connection();
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    // shutdown() wakes a blocked accept() before the fd goes away.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

}  // namespace net
}  // namespace vpd
