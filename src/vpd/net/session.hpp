// The NDJSON request loop, factored out of the vpdd main loop so the
// stdin/stdout daemon and every socket connection run the identical
// protocol: one response line per input line, in request order, ids
// echoed (recovered from the raw bytes when the line is malformed), the
// reject-not-block backpressure of the underlying EvaluationService, and
// the verbs evaluate / evaluate_batch / transient / optimize / metrics /
// trace / shutdown.
//
// Response ordering works like the original daemon — evaluation is
// parallel and out of order, but every response waits in its future until
// its turn, and control verbs are resolved at their output turn so a
// "metrics" line reflects every request before it — with one deliberate
// upgrade: a per-session writer thread (ResponseQueue) emits each
// response the moment its turn completes, instead of only when the next
// input line or EOF prompts a flush. A client that pipelines a request
// and then waits gets its answer immediately; under the old
// flush-on-input loop it would wait forever while the daemon's read
// blocked — fatal once sessions sit behind persistent sockets or the
// router's shard pipes, where the stream stays open between requests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "vpd/io/json.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/serve/service.hpp"

namespace vpd {
namespace net {

/// Receives one complete response line (no trailing newline). Called on
/// the thread that runs feed()/drain().
using Sink = std::function<void(const std::string& line)>;

struct SessionOptions {
  bool pretty{false};
  /// Output file for {"cmd":"trace"} without an explicit "path" (the
  /// daemon's --trace flag).
  std::string default_trace_path;
};

/// One NDJSON stream. Implemented by LineSession (a vpdd process) and the
/// router's client sessions; the socket server drives either through this
/// interface.
class Session {
 public:
  virtual ~Session() = default;
  /// Feeds one raw input line. Emits any responses whose turn has come.
  /// Returns false once a shutdown verb has been accepted — the caller
  /// must stop feeding and call drain().
  virtual bool feed(std::string_view line) = 0;
  /// Blocks until every pending response (shutdown's final line included)
  /// has been emitted.
  virtual void drain() = 0;
};

/// Builds a session for one accepted connection, writing responses
/// through `sink`.
using SessionFactory = std::function<std::unique_ptr<Session>(Sink sink)>;

/// The canonical {"status":"error"} response body.
io::Value error_body(const std::string& message);

/// Frames a response line: the client's id first, then the body members.
std::string response_line(const io::Value& id, const io::Value& body,
                          bool pretty);

/// Order-preserving asynchronous response emitter: push() enqueues a
/// resolver per request, a dedicated writer thread runs each resolver at
/// its FIFO turn (blocking there until that response is ready) and hands
/// the line to the sink, so responses stream out the moment they
/// complete while output order stays request order. A sink that throws
/// (client gone mid-stream) mutes further emission but every resolver
/// still runs, so in-flight work is always consumed. A resolver that
/// throws emits a {"status":"error"} line instead of killing the stream.
class ResponseQueue {
 public:
  explicit ResponseQueue(Sink sink);
  /// Blocks until everything queued has been emitted, then stops the
  /// writer.
  ~ResponseQueue();

  ResponseQueue(const ResponseQueue&) = delete;
  ResponseQueue& operator=(const ResponseQueue&) = delete;

  /// Enqueues the resolver for the next response line. Called from the
  /// feeding thread only.
  void push(std::function<std::string()> resolve);
  /// Blocks until every resolver pushed so far has been emitted.
  void wait_idle();

  std::size_t emitted() const;

 private:
  void writer_loop();

  Sink sink_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;  // writer: work arrived / stopping
  std::condition_variable idle_cv_;   // wait_idle: outstanding hit zero
  std::deque<std::function<std::string()>> queue_;
  std::size_t outstanding_{0};  // pushed, not yet fully emitted
  std::size_t emitted_{0};
  bool stop_{false};
  bool sink_alive_{true};
  std::thread writer_;
};

class LineSession : public Session {
 public:
  LineSession(serve::EvaluationService& service, Sink sink,
              SessionOptions options = {});

  bool feed(std::string_view line) override;
  void drain() override;

  bool shutdown_requested() const { return shutdown_requested_; }
  std::size_t lines_in() const { return lines_in_; }
  std::size_t lines_out() const { return queue_.emitted(); }

 private:
  /// One response in flight, resolved in request order (see vpdd's
  /// original Pending): exactly one of `future` (evaluations) and `kind`
  /// != kEvaluate is active; control verbs build their bodies when their
  /// turn comes so they observe every earlier request.
  struct Pending {
    enum class Kind {
      kEvaluate,
      kEvaluateBatch,
      kBody,      // prebuilt (parse errors)
      kMetrics,
      kTrace,
      kTransient,
      kOptimize,
      kShutdown,  // final metrics line, then the stream ends
    };
    Kind kind{Kind::kEvaluate};
    io::Value id;
    std::shared_future<serve::ServiceResponse> future;  // kEvaluate
    io::Value body;                                     // kBody
    std::string path;  // kTrace ("" = default_trace_path)
    std::vector<io::EvaluationRequest> batch;           // kEvaluateBatch
    std::optional<io::TransientRequest> transient;      // kTransient
    std::optional<io::OptimizeRequest> optimize;        // kOptimize
  };

  io::Value resolve(Pending& item);

  serve::EvaluationService& service_;
  SessionOptions options_;
  bool shutdown_requested_{false};
  std::size_t lines_in_{0};
  ResponseQueue queue_;  // last member: writer stops before the rest dies
};

}  // namespace net
}  // namespace vpd
