// Wire-protocol vocabulary shared by the socket front-end and the shard
// router: the control-verb taxonomy, best-effort id recovery for
// malformed lines, and the stable key-affinity hash that pins a canonical
// request key to one shard — the property the whole fleet design rests
// on: identical requests always land on the same shard's coalescer and
// result LRU, so fleet-wide dedup needs no shared state at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "vpd/io/json.hpp"

namespace vpd {
namespace net {

/// 64-bit FNV-1a. Deterministic across processes and runs (no seed), so
/// a restarted router keeps routing keys to the same shards.
std::uint64_t fnv1a64(std::string_view bytes);

/// Shard index for a canonical request key. Plain modulo: the fleet size
/// is fixed for a router's lifetime, and a deterministic mapping beats a
/// consistent-hash ring's complexity at this scale.
std::size_t shard_for_key(std::string_view canonical_key,
                          std::size_t shard_count);

/// Everything the router needs to place one raw input line.
enum class Verb {
  kEvaluate,       // bare request or {"cmd":"evaluate"}
  kEvaluateBatch,  // {"cmd":"evaluate_batch","requests":[...]}
  kTransient,     // droop campaign
  kOptimize,      // design-space optimizer run
  kMetrics,       // per-process telemetry snapshot
  kTrace,         // flush the trace buffer
  kShutdown,      // graceful drain (vpdd and router)
  kFleetMetrics,  // router-level: aggregated fleet snapshot
  kUnknown,       // parseable envelope, unrecognized cmd
  kUnroutable,    // malformed JSON or an invalid request body
};

struct RouteInfo {
  Verb verb{Verb::kUnroutable};
  /// Transport id: parsed from the envelope, or recovered from the raw
  /// bytes (io::recover_wire_id) when the line is unroutable.
  io::Value id;
  /// FNV-1a of the canonical key; present only for routable
  /// evaluate/transient/optimize lines (control verbs round-robin
  /// instead).
  std::optional<std::uint64_t> key_hash;
  /// Diagnostic for kUnroutable (the authoritative error text comes from
  /// the shard that replays the line).
  std::string error;
};

/// Classifies one raw NDJSON line. Never throws: any failure degrades to
/// kUnroutable with the recovered id, because the router's contract is
/// that every line — however broken — gets exactly one response, and the
/// shard that replays the line produces the same error body vpdd would.
RouteInfo classify_line(std::string_view line);

}  // namespace net
}  // namespace vpd
