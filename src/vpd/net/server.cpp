#include "vpd/net/server.hpp"

#include <sys/socket.h>

#include <utility>

namespace vpd {
namespace net {

NdjsonServer::NdjsonServer(const Endpoint& endpoint, SessionFactory factory,
                           obs::Registry& registry, ServerOptions options)
    : listener_(endpoint, options.backlog),
      factory_(std::move(factory)),
      options_(options),
      connections_total_(registry.counter("net.connections_total")),
      connections_rejected_(registry.counter("net.connections_rejected")),
      lines_in_(registry.counter("net.lines_in")),
      lines_out_(registry.counter("net.lines_out")),
      connections_gauge_(registry.gauge("net.connections")) {
  VPD_REQUIRE(factory_ != nullptr, "NdjsonServer needs a session factory");
  VPD_REQUIRE(options_.max_connections > 0,
              "max_connections must be positive");
}

NdjsonServer::~NdjsonServer() {
  request_shutdown();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void NdjsonServer::serve() {
  for (;;) {
    Connection connection = listener_.accept();
    if (!connection.valid()) break;  // listener closed: drain started
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_.load()) continue;  // racing accept: drop, we are done
    if (active_connections_ >= options_.max_connections) {
      connections_rejected_.add(1);
      try {
        connection.write_line(io::dump(error_body(
            "too many connections (max " +
            std::to_string(options_.max_connections) + ")")));
      } catch (const IoError&) {
        // The rejected client vanished first; nothing to tell it.
      }
      continue;
    }
    ++active_connections_;
    connections_total_.add(1);
    connections_gauge_.set(static_cast<double>(active_connections_));
    threads_.emplace_back(
        [this, conn = std::move(connection)]() mutable {
          handle_connection(std::move(conn));
        });
  }
  // Join every connection thread so serve() returning means fully
  // drained. Threads spawned while we iterate are covered by the loop.
  for (;;) {
    std::thread worker;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (threads_.empty()) break;
      worker = std::move(threads_.back());
      threads_.pop_back();
    }
    if (worker.joinable()) worker.join();
  }
}

void NdjsonServer::request_shutdown() {
  if (draining_.exchange(true)) return;  // idempotent
  listener_.close();                     // wakes the accept loop
  std::lock_guard<std::mutex> lock(mutex_);
  for (const int fd : live_read_fds_) {
    // Half-close the read side: the connection's read_line sees EOF, the
    // session drains its already-fed lines, responses still flow out.
    ::shutdown(fd, SHUT_RD);
  }
}

void NdjsonServer::handle_connection(Connection connection) {
  std::list<int>::iterator fd_slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_read_fds_.push_front(connection.read_fd());
    fd_slot = live_read_fds_.begin();
    // A drain that raced our registration missed this fd in its SHUT_RD
    // sweep; apply it ourselves so the read loop cannot block forever.
    if (draining_.load()) connection.shutdown_read();
  }

  {
    // Scope: the session (and its writer thread) must be destroyed
    // before the connection closes below — the writer holds the fd.
    std::unique_ptr<Session> session =
        factory_([this, &connection](const std::string& line) {
          connection.write_line(line);
          lines_out_.add(1);
        });
    try {
      std::string line;
      while (connection.read_line(&line)) {
        lines_in_.add(1);
        if (!session->feed(line)) {
          // The client asked for shutdown: stop reading and take the
          // whole server down with us (the verb is fleet-scoped by
          // design).
          request_shutdown();
          break;
        }
        if (draining_.load()) break;
      }
    } catch (const IoError&) {
      // Peer went away mid-read; the drain below still consumes every
      // accepted line's result (the session mutes its sink on failure).
    }
    session->drain();  // every accepted line still gets its response
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_read_fds_.erase(fd_slot);
    --active_connections_;
    connections_gauge_.set(static_cast<double>(active_connections_));
  }
  connection.close();
}

}  // namespace net
}  // namespace vpd
