// Dependency-free POSIX stream-socket substrate for the serving layer:
// address parsing ("unix:/path" and "tcp:127.0.0.1:port"), an RAII
// Listener, and a Connection with NDJSON line framing (buffered
// read_line, full write_line). Nothing here knows about requests — the
// session layer (session.hpp) speaks the protocol; this file only moves
// framed lines. TCP is deliberately restricted to loopback addresses:
// vpdd carries no authentication, so the only safe remote transport is a
// fronting proxy, not a bare port (docs/sharding.md).
//
// Connections also wrap plain pipe file descriptors (the router's
// shard stdin/stdout), so one line-framing implementation serves both
// transports; writes probe send(MSG_NOSIGNAL) once and fall back to
// write() for non-sockets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "vpd/common/error.hpp"

namespace vpd {
namespace net {

/// Transport-level failure (connect/accept/read/write). Carries errno
/// context in the message; never used for protocol-level errors, which
/// are JSON response lines.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Parsed listener/connect address.
///   unix:/run/vpd/shard0.sock   Unix-domain stream socket
///   tcp:127.0.0.1:7070          TCP on a loopback address (port 0 asks
///                               the kernel for an ephemeral port; the
///                               Listener reports the resolved one)
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind{Kind::kUnix};
  std::string path;         // kUnix
  std::string host;         // kTcp (loopback only)
  std::uint16_t port{0};    // kTcp

  /// Parses the "unix:..." / "tcp:host:port" forms above; anything else
  /// (including non-loopback TCP hosts) throws InvalidArgument.
  static Endpoint parse(std::string_view address);
  std::string to_string() const;
};

/// RAII stream with line framing over a socket or pipe fd pair. Reads and
/// writes may come from different threads (the session reads while
/// responses drain), but each direction must have a single caller.
class Connection {
 public:
  Connection() = default;
  /// Takes ownership of a connected socket fd (read and write).
  explicit Connection(int fd) : read_fd_(fd), write_fd_(fd) {}
  /// Takes ownership of a distinct fd per direction (a pipe pair).
  Connection(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {}
  ~Connection() { close(); }

  Connection(Connection&& other) noexcept { *this = std::move(other); }
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool valid() const { return read_fd_ >= 0 || write_fd_ >= 0; }
  int read_fd() const { return read_fd_; }

  /// Reads the next '\n'-terminated line (terminator stripped, CR
  /// trimmed). Returns false on clean EOF; a trailing unterminated line
  /// is still delivered. Throws IoError on transport errors.
  bool read_line(std::string* line);
  /// Writes `line` plus '\n' fully. Throws IoError if the peer is gone.
  void write_line(std::string_view line);

  /// Half-close: no more reads will be issued / no more writes follow.
  void shutdown_read();
  void shutdown_write();
  void close();

 private:
  int read_fd_{-1};
  int write_fd_{-1};
  bool use_plain_write_{false};  // pipe fds: send() is not available
  std::string buffer_;
  std::size_t buffer_pos_{0};
};

/// Connects to a listening endpoint. Throws IoError when nobody listens.
Connection connect_to(const Endpoint& endpoint);

/// RAII listening socket. close() is thread-safe and wakes a blocked
/// accept(), which is how the server initiates graceful drain.
class Listener {
 public:
  explicit Listener(const Endpoint& endpoint, int backlog = 64);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound address; for "tcp:...:0" the kernel-resolved port.
  const Endpoint& endpoint() const { return endpoint_; }

  /// Blocks for the next client. Returns an invalid Connection after
  /// close().
  Connection accept();
  void close();

 private:
  int fd_{-1};
  Endpoint endpoint_;
  std::string unlink_path_;  // bound unix socket file, removed on close
};

}  // namespace net
}  // namespace vpd
