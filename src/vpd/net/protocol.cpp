#include "vpd/net/protocol.hpp"

#include "vpd/io/schema.hpp"

namespace vpd {
namespace net {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::size_t shard_for_key(std::string_view canonical_key,
                          std::size_t shard_count) {
  VPD_REQUIRE(shard_count > 0, "shard_for_key needs at least one shard");
  return static_cast<std::size_t>(fnv1a64(canonical_key) % shard_count);
}

RouteInfo classify_line(std::string_view line) {
  RouteInfo info;
  io::Value doc;
  try {
    doc = io::parse(line);
  } catch (const Error& e) {
    info.id = io::recover_wire_id(line);
    info.error = e.what();
    return info;
  }
  if (const io::Value* id = doc.find("id")) info.id = *id;
  std::string cmd = "evaluate";
  try {
    if (const io::Value* requested = doc.find("cmd")) {
      cmd = requested->as_string();
    }
    if (cmd == "evaluate") {
      info.key_hash = fnv1a64(
          io::canonical_request_key(io::evaluation_request_from_json(doc)));
      info.verb = Verb::kEvaluate;
    } else if (cmd == "evaluate_batch") {
      // One batch lands on one shard; hashing the concatenated member
      // keys keeps identical batches on the same shard's caches, the
      // same affinity rule the point verbs follow.
      const io::Value* requests = doc.find("requests");
      VPD_REQUIRE(requests != nullptr,
                  "evaluate_batch needs a \"requests\" array");
      std::string combined;
      for (const io::Value& entry : requests->as_array()) {
        combined +=
            io::canonical_request_key(io::evaluation_request_from_json(entry));
        combined += '\n';
      }
      info.key_hash = fnv1a64(combined);
      info.verb = Verb::kEvaluateBatch;
    } else if (cmd == "transient") {
      info.key_hash = fnv1a64(
          io::canonical_transient_key(io::transient_request_from_json(doc)));
      info.verb = Verb::kTransient;
    } else if (cmd == "optimize") {
      info.key_hash = fnv1a64(
          io::canonical_optimize_key(io::optimize_request_from_json(doc)));
      info.verb = Verb::kOptimize;
    } else if (cmd == "metrics") {
      info.verb = Verb::kMetrics;
    } else if (cmd == "trace") {
      info.verb = Verb::kTrace;
    } else if (cmd == "shutdown") {
      info.verb = Verb::kShutdown;
    } else if (cmd == "fleet_metrics") {
      info.verb = Verb::kFleetMetrics;
    } else {
      info.verb = Verb::kUnknown;
    }
  } catch (const Error& e) {
    // Invalid body (unknown enum, bad schema version, ...): forward to a
    // shard for the authoritative error reply.
    info.verb = Verb::kUnroutable;
    info.error = e.what();
  }
  return info;
}

}  // namespace net
}  // namespace vpd
