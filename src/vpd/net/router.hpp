// Sharded-fleet front-end: ShardRouter spawns N vpdd worker processes
// (NDJSON over stdin/stdout pipes) and routes each request line to a
// shard by stable hash of its canonical key, so identical requests always
// land on the same shard and its caches. Control verbs without a key
// round-robin. Lines are forwarded verbatim and shard replies are passed
// through untouched, which keeps fleet responses bit-identical to a
// single vpdd process reading the same lines.
//
// Supervision: a crashed shard fails its outstanding requests with error
// replies (never silent loss), then respawns with doubling backoff capped
// at RouterConfig::backoff_max_seconds. Graceful drain sends every shard
// the {"cmd":"shutdown"} verb, lets in-flight work finish, and merges the
// final per-shard metrics into one fleet Snapshot (obs::Snapshot::merge).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

#include "vpd/net/protocol.hpp"
#include "vpd/net/session.hpp"
#include "vpd/net/socket.hpp"
#include "vpd/obs/registry.hpp"

namespace vpd {
namespace net {

struct RouterConfig {
  /// Worker process count (>= 1).
  std::size_t shards{2};
  /// argv of one shard worker, e.g. {"./vpdd", "--threads", "2"}. The
  /// command must speak the NDJSON protocol on stdin/stdout and honor
  /// {"cmd":"shutdown"}.
  std::vector<std::string> shard_command;
  /// Restart backoff: starts at `backoff_initial_seconds` after a crash,
  /// doubles per consecutive crash, capped at `backoff_max_seconds`;
  /// resets on the first successful reply from the respawned shard.
  double backoff_initial_seconds{0.05};
  double backoff_max_seconds{2.0};
};

/// Receives one complete response line. Invoked exactly once per
/// forwarded line — with the shard's verbatim reply, or with a
/// synthesized {"status":"error"} line if the shard died or the router
/// is draining. May be called from a shard reader thread.
using Reply = std::function<void(std::string line)>;

class ShardRouter {
 public:
  /// Spawns every shard immediately; throws IoError if the pipes cannot
  /// be created. `registry` receives the net.router.* instruments and is
  /// folded into fleet snapshots.
  ShardRouter(RouterConfig config, obs::Registry& registry);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// Key-affinity shard choice: evaluate/transient map by canonical-key
  /// hash, everything else round-robins.
  std::size_t route(const RouteInfo& info);

  /// Forwards `line` verbatim to `shard`'s stdin and registers `reply`
  /// for its FIFO-correlated response. `id` is used only for synthesized
  /// error replies. Never blocks on the shard; never drops a reply.
  void forward(std::size_t shard, const std::string& line, io::Value id,
               Reply reply);

  /// Broadcasts {"cmd":"metrics"} to every live shard and merges the
  /// replies (plus this router's own registry) into one fleet Snapshot.
  /// Shards that are down or crash mid-request are skipped; the returned
  /// snapshot's net.router.shards_reporting counter says how many
  /// answered.
  obs::Snapshot fleet_snapshot();

  /// Graceful drain (idempotent, thread-safe): stop accepting forwards,
  /// send every shard the shutdown verb, wait for all in-flight replies
  /// and the shards' final metrics lines, reap the processes, and return
  /// the merged fleet snapshot. Concurrent callers block and receive the
  /// same snapshot.
  obs::Snapshot drain();

  bool draining() const { return draining_.load(); }
  std::uint64_t restarts() const { return restarts_.value(); }

 private:
  /// One forwarded line awaiting its shard reply, in write order (vpdd
  /// replies in request order, so FIFO position is the correlation).
  struct PendingReply {
    io::Value id;
    Reply reply;
  };

  struct Shard {
    std::mutex mutex;  // guards conn writes, inflight, up, closing
    Connection conn;   // read = shard stdout, write = shard stdin
    std::deque<PendingReply> inflight;
    pid_t pid{-1};
    bool up{false};
    bool closing{false};  // shutdown verb written; no further forwards
    double backoff_seconds{0.0};
    std::thread reader;
  };

  void spawn_locked(Shard& shard);
  void reader_loop(std::size_t index);
  void fail_locked(Shard& shard, std::deque<PendingReply>* orphans);
  std::string synth_error(const io::Value& id,
                          const std::string& message) const;

  RouterConfig config_;
  std::vector<char*> argv_;  // points into config_.shard_command + nullptr
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> round_robin_{0};

  std::atomic<bool> draining_{false};
  std::mutex backoff_mutex_;
  std::condition_variable backoff_cv_;  // wakes crash-backoff sleepers

  std::mutex drain_mutex_;  // serializes drain(); holders own drained_
  bool drained_{false};
  obs::Snapshot drain_result_;

  obs::Registry& registry_;
  obs::Counter& forwarded_;
  obs::Counter& failed_;
  obs::Counter& restarts_;
  obs::Gauge& shards_up_;
};

/// The router-side Session: classifies each client line, forwards it to
/// its shard (passing the shard's reply through verbatim), and resolves
/// the two fleet-level verbs locally — {"cmd":"fleet_metrics"} (merged
/// fleet snapshot) and {"cmd":"shutdown"} (drain the whole fleet, reply
/// with the final merged metrics). Output order is request order, and
/// like LineSession each response is emitted (by the ResponseQueue
/// writer) the moment its turn completes.
class RouterSession : public Session {
 public:
  RouterSession(ShardRouter& router, Sink sink, bool pretty = false);

  bool feed(std::string_view line) override;
  void drain() override;

 private:
  io::Value fleet_body(const obs::Snapshot& snapshot, bool shutdown) const;

  ShardRouter& router_;
  bool pretty_;
  bool shutdown_requested_{false};
  ResponseQueue queue_;  // last member: writer stops before the rest dies
};

}  // namespace net
}  // namespace vpd
