#include "vpd/net/router.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

namespace vpd {
namespace net {

ShardRouter::ShardRouter(RouterConfig config, obs::Registry& registry)
    : config_(std::move(config)),
      registry_(registry),
      forwarded_(registry.counter("net.router.forwarded")),
      failed_(registry.counter("net.router.failed")),
      restarts_(registry.counter("net.router.restarts")),
      shards_up_(registry.gauge("net.router.shards_up")) {
  VPD_REQUIRE(config_.shards > 0, "router needs at least one shard");
  VPD_REQUIRE(!config_.shard_command.empty(),
              "router needs a shard command to exec");
  // execvp wants a mutable char* array; the strings live in config_ and
  // never move after this point.
  for (std::string& arg : config_.shard_command) {
    argv_.push_back(arg.data());
  }
  argv_.push_back(nullptr);

  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& shard = *shards_.back();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.backoff_seconds = config_.backoff_initial_seconds;
    spawn_locked(shard);
  }
  shards_up_.set(static_cast<double>(shards_.size()));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->reader = std::thread([this, i] { reader_loop(i); });
  }
}

ShardRouter::~ShardRouter() {
  try {
    drain();
  } catch (...) {
    // Best-effort teardown; reader threads still need joining below.
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->reader.joinable()) shard->reader.join();
  }
}

void ShardRouter::spawn_locked(Shard& shard) {
  int to_child[2];    // router writes requests -> shard stdin
  int from_child[2];  // shard stdout -> router reads replies
  // O_CLOEXEC keeps one shard's pipe ends out of its siblings (dup2 onto
  // 0/1 in the child clears the flag for the two fds it actually needs).
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    throw IoError("pipe2 failed spawning shard");
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw IoError("pipe2 failed spawning shard");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    throw IoError("fork failed spawning shard");
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::execvp(argv_[0], argv_.data());
    ::_exit(127);  // exec failed; the reader sees instant EOF
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  shard.pid = pid;
  shard.conn = Connection(from_child[0], to_child[1]);
  shard.up = true;
  shard.closing = false;
}

std::size_t ShardRouter::route(const RouteInfo& info) {
  if ((info.verb == Verb::kEvaluate || info.verb == Verb::kEvaluateBatch ||
       info.verb == Verb::kTransient || info.verb == Verb::kOptimize) &&
      info.key_hash.has_value()) {
    return static_cast<std::size_t>(*info.key_hash % shards_.size());
  }
  return round_robin_.fetch_add(1) % shards_.size();
}

std::string ShardRouter::synth_error(const io::Value& id,
                                     const std::string& message) const {
  return response_line(id, error_body(message), /*pretty=*/false);
}

void ShardRouter::forward(std::size_t shard_index, const std::string& line,
                          io::Value id, Reply reply) {
  Shard& shard = *shards_.at(shard_index);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!draining_.load() && shard.up && !shard.closing) {
      try {
        shard.conn.write_line(line);
        shard.inflight.push_back({std::move(id), std::move(reply)});
        forwarded_.add(1);
        return;
      } catch (const IoError&) {
        // Shard died under the write; its reader notices the EOF and
        // respawns. This line was never accepted, so answer here.
      }
    }
  }
  failed_.add(1);
  const std::string reason =
      draining_.load()
          ? "router is draining; request rejected"
          : "shard " + std::to_string(shard_index) +
                " is down (restarting); request rejected";
  reply(synth_error(id, reason));
}

void ShardRouter::fail_locked(Shard& shard,
                              std::deque<PendingReply>* orphans) {
  orphans->clear();
  std::lock_guard<std::mutex> lock(shard.mutex);
  orphans->swap(shard.inflight);
  shard.up = false;
  shard.conn.close();
}

void ShardRouter::reader_loop(std::size_t index) {
  Shard& shard = *shards_[index];
  std::string line;
  for (;;) {
    bool got = false;
    try {
      got = shard.conn.read_line(&line);
    } catch (const IoError&) {
      got = false;
    }
    if (got) {
      PendingReply pending;
      bool matched = false;
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (!shard.inflight.empty()) {
          pending = std::move(shard.inflight.front());
          shard.inflight.pop_front();
          matched = true;
        }
        // A full round trip proves the shard healthy again.
        shard.backoff_seconds = config_.backoff_initial_seconds;
      }
      // Unsolicited output (a shard writing junk to stdout) is dropped;
      // FIFO correlation only pairs lines we actually forwarded.
      if (matched) pending.reply(std::move(line));
      continue;
    }

    // EOF: the shard exited (drain) or crashed. Reap it and answer every
    // outstanding request with an error — replies are never dropped.
    std::deque<PendingReply> orphans;
    fail_locked(shard, &orphans);
    if (shard.pid > 0) {
      int status = 0;
      ::waitpid(shard.pid, &status, 0);
      shard.pid = -1;
    }
    for (PendingReply& orphan : orphans) {
      failed_.add(1);
      orphan.reply(synth_error(
          orphan.id, "shard " + std::to_string(index) +
                         " exited before replying; request was lost"));
    }
    shards_up_.set(shards_up_.value() - 1.0);
    if (draining_.load()) return;

    // Crash: respawn with doubling backoff, interruptible by drain().
    {
      std::unique_lock<std::mutex> wait_lock(backoff_mutex_);
      backoff_cv_.wait_for(
          wait_lock,
          std::chrono::duration<double>(shard.backoff_seconds),
          [this] { return draining_.load(); });
    }
    if (draining_.load()) return;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.backoff_seconds = std::min(shard.backoff_seconds * 2.0,
                                       config_.backoff_max_seconds);
      try {
        spawn_locked(shard);
      } catch (const IoError&) {
        continue;  // pipes exhausted; retry after the next backoff
      }
    }
    restarts_.add(1);
    shards_up_.set(shards_up_.value() + 1.0);
  }
}

namespace {

/// Parses one shard metrics reply and merges body["metrics"] into
/// `merged`. Returns false (and leaves `merged` untouched) when the reply
/// is an error line or malformed.
bool merge_metrics_reply(const std::string& reply_line,
                         obs::Snapshot* merged) {
  try {
    const io::Value doc = io::parse(reply_line);
    const io::Value* metrics = doc.find("metrics");
    if (metrics == nullptr) return false;
    merged->merge(obs::snapshot_from_json(*metrics));
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace

obs::Snapshot ShardRouter::fleet_snapshot() {
  std::vector<std::future<std::string>> replies;
  replies.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto promise = std::make_shared<std::promise<std::string>>();
    replies.push_back(promise->get_future());
    forward(i, "{\"cmd\":\"metrics\",\"id\":\"__fleet__\"}",
            io::Value("__fleet__"),
            [promise](std::string reply) {
              promise->set_value(std::move(reply));
            });
  }
  obs::Snapshot merged;
  std::uint64_t reporting = 0;
  for (std::future<std::string>& reply : replies) {
    if (merge_metrics_reply(reply.get(), &merged)) ++reporting;
  }
  merged.merge(registry_.snapshot());
  merged.set_counter("net.router.shards_reporting", reporting);
  return merged;
}

obs::Snapshot ShardRouter::drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  if (drained_) return drain_result_;
  draining_.store(true);
  {
    std::lock_guard<std::mutex> wake(backoff_mutex_);
  }
  backoff_cv_.notify_all();  // crashed shards stop waiting to respawn

  // The shutdown verb queues behind every in-flight line on the shard's
  // stdin, so each shard finishes accepted work, replies with its final
  // metrics, and exits 0 — zero loss by construction.
  std::vector<std::future<std::string>> finals;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.up || shard.closing) continue;
    auto promise = std::make_shared<std::promise<std::string>>();
    try {
      shard.conn.write_line("{\"cmd\":\"shutdown\",\"id\":\"__drain__\"}");
    } catch (const IoError&) {
      continue;  // died this instant; its reader synthesizes the errors
    }
    shard.closing = true;
    shard.inflight.push_back(
        {io::Value("__drain__"), [promise](std::string reply) {
           promise->set_value(std::move(reply));
         }});
    finals.push_back(promise->get_future());
  }

  obs::Snapshot merged;
  std::uint64_t reporting = 0;
  for (std::future<std::string>& final_line : finals) {
    if (merge_metrics_reply(final_line.get(), &merged)) ++reporting;
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->reader.joinable()) shard->reader.join();
  }
  merged.merge(registry_.snapshot());
  merged.set_counter("net.router.shards_reporting", reporting);
  drained_ = true;
  drain_result_ = merged;
  return drain_result_;
}

RouterSession::RouterSession(ShardRouter& router, Sink sink, bool pretty)
    : router_(router), pretty_(pretty), queue_(std::move(sink)) {}

bool RouterSession::feed(std::string_view line) {
  if (shutdown_requested_) return false;
  if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
    return true;
  }
  const RouteInfo info = classify_line(line);
  const io::Value id = info.id;
  switch (info.verb) {
    case Verb::kShutdown:
      // Resolved at its output turn, after every earlier line of this
      // stream: the drained snapshot is the stream's complete fleet
      // accounting.
      shutdown_requested_ = true;
      queue_.push([this, id] {
        return response_line(id, fleet_body(router_.drain(),
                                            /*shutdown=*/true),
                             pretty_);
      });
      break;
    case Verb::kFleetMetrics:
      queue_.push([this, id] {
        return response_line(id, fleet_body(router_.fleet_snapshot(),
                                            /*shutdown=*/false),
                             pretty_);
      });
      break;
    default: {
      // Everything else — including lines that did not parse — goes to a
      // shard verbatim: the shard produces the authoritative reply (or
      // error), byte-identical to a lone vpdd reading the same stream.
      auto promise = std::make_shared<std::promise<std::string>>();
      auto reply = std::make_shared<std::shared_future<std::string>>(
          promise->get_future().share());
      router_.forward(router_.route(info), std::string(line), info.id,
                      [promise](std::string shard_reply) {
                        promise->set_value(std::move(shard_reply));
                      });
      queue_.push([reply] { return reply->get(); });
      break;
    }
  }
  return !shutdown_requested_;
}

void RouterSession::drain() { queue_.wait_idle(); }

io::Value RouterSession::fleet_body(const obs::Snapshot& snapshot,
                                    bool shutdown) const {
  io::Value body = io::Value::object();
  body.set("status", "ok");
  body.set("schema_version", io::kSchemaVersion);
  if (shutdown) body.set("shutdown", true);
  io::Value fleet = io::Value::object();
  fleet.set("shards", double(router_.shard_count()));
  fleet.set("restarts", double(router_.restarts()));
  body.set("fleet", fleet);
  body.set("metrics", snapshot.to_json());
  return body;
}

}  // namespace net
}  // namespace vpd
