// NDJSON-over-socket listener: accepts many concurrent clients and runs
// one Session per connection on its own thread, so a single vpdd (or
// vpd-router) process serves a whole fleet of clients with per-connection
// read/write framing while the underlying EvaluationService applies its
// reject-not-block backpressure. A {"cmd":"shutdown"} from any client —
// or request_shutdown() from the embedding process — drains gracefully:
// the listener closes, every connection stops reading, every already-fed
// line still gets its response, then serve() returns.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

#include "vpd/net/session.hpp"
#include "vpd/net/socket.hpp"
#include "vpd/obs/registry.hpp"

namespace vpd {
namespace net {

struct ServerOptions {
  /// Concurrent client connections beyond this are answered with one
  /// {"status":"error"} line and closed — the same reject-not-block
  /// stance as the service queue.
  std::size_t max_connections{64};
  int backlog{64};
};

class NdjsonServer {
 public:
  /// Binds immediately (so the caller can print the resolved endpoint
  /// before serving). `registry` receives the net.* instruments —
  /// typically the service registry, so one snapshot covers transport
  /// and evaluation. `factory` builds a Session per connection.
  NdjsonServer(const Endpoint& endpoint, SessionFactory factory,
               obs::Registry& registry, ServerOptions options = {});
  ~NdjsonServer();

  NdjsonServer(const NdjsonServer&) = delete;
  NdjsonServer& operator=(const NdjsonServer&) = delete;

  /// The bound address (for "tcp:...:0", the kernel-resolved port).
  const Endpoint& endpoint() const { return listener_.endpoint(); }

  /// Blocking accept loop; returns once shutdown has been requested and
  /// every connection has drained.
  void serve();

  /// Thread-safe graceful drain: closes the listener and half-closes
  /// every connection's read side. Already-fed lines still resolve.
  void request_shutdown();

  bool draining() const { return draining_.load(); }

 private:
  void handle_connection(Connection connection);

  Listener listener_;
  SessionFactory factory_;
  ServerOptions options_;
  std::atomic<bool> draining_{false};

  std::mutex mutex_;
  std::vector<std::thread> threads_;       // guarded by mutex_
  std::list<int> live_read_fds_;           // guarded by mutex_
  std::size_t active_connections_{0};      // guarded by mutex_

  obs::Counter& connections_total_;
  obs::Counter& connections_rejected_;
  obs::Counter& lines_in_;
  obs::Counter& lines_out_;
  obs::Gauge& connections_gauge_;
};

}  // namespace net
}  // namespace vpd
