// Time-series traces produced by transient simulation, with the standard
// power-electronics measurements: average, RMS, peak-to-peak ripple, and
// windowed (last-N-cycles) variants used for periodic-steady-state checks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vpd {

/// A sampled signal. Time points are shared across all traces of a
/// simulation; a Trace pairs a name with its sample values.
class Trace {
 public:
  Trace() = default;
  Trace(std::string name, std::vector<double> times,
        std::vector<double> values);

  const std::string& name() const { return name_; }
  std::size_t sample_count() const { return values_.size(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  double front() const;
  double back() const;

  /// Linear interpolation at time t (clamped to the trace's span).
  double at(double t) const;

  /// Time-weighted (trapezoidal) average over [t0, t1].
  double average(double t0, double t1) const;
  double average() const;

  /// Trapezoidal RMS over [t0, t1].
  double rms(double t0, double t1) const;
  double rms() const;

  double min(double t0, double t1) const;
  double max(double t0, double t1) const;
  double min() const;
  double max() const;

  /// max - min over [t0, t1]: the ripple measurement.
  double peak_to_peak(double t0, double t1) const;
  double peak_to_peak() const;

  /// Sub-trace covering the last `duration` seconds.
  Trace tail(double duration) const;

  /// Magnitude of the signal's component at `frequency` over [t0, t1]
  /// (single-bin DFT, trapezoidal): |(2/T) * integral v(t) e^{-j w t} dt|.
  /// For an exact integer number of periods of a sinusoid of amplitude A
  /// this returns A.
  double harmonic_magnitude(double frequency, double t0, double t1) const;
  double harmonic_magnitude(double frequency) const;

 private:
  void check_window(double t0, double t1) const;

  std::string name_;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace vpd
