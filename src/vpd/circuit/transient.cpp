#include "vpd/circuit/transient.hpp"

#include <cmath>
#include <cstring>
#include <map>
#include <memory>

#include "vpd/circuit/dc_solver.hpp"
#include "vpd/common/error.hpp"

namespace vpd {

const LuFactorization& TransientFactorCache::get(
    const std::string& key, const std::function<Matrix()>& build_matrix) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return *it->second;
  }
  // Factor under the lock: factorizations are rare (a handful per netlist
  // per campaign) and this guarantees each key is factored exactly once,
  // from a matrix the key determines bit for bit.
  ++stats_.misses;
  it = entries_
           .emplace(key, std::make_unique<LuFactorization>(build_matrix()))
           .first;
  return *it->second;
}

TransientFactorCache::Stats TransientFactorCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t TransientFactorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

TransientResult::TransientResult(const Netlist& netlist,
                                 std::vector<double> times,
                                 std::vector<Vector> node_voltages,
                                 std::vector<Vector> element_currents)
    : netlist_(&netlist),
      times_(std::move(times)),
      node_voltages_(std::move(node_voltages)),
      element_currents_(std::move(element_currents)) {
  VPD_REQUIRE(times_.size() == node_voltages_.size() &&
                  times_.size() == element_currents_.size(),
              "inconsistent sample counts");
}

Trace TransientResult::voltage(NodeId node) const {
  VPD_REQUIRE(node < netlist_->node_count(), "node id ", node,
              " out of range");
  std::vector<double> values(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i)
    values[i] = node_voltages_[i][node];
  return Trace("v(" + netlist_->node_name(node) + ")", times_, std::move(values));
}

Trace TransientResult::voltage(const std::string& node_name) const {
  return voltage(netlist_->node(node_name));
}

Trace TransientResult::current(ElementId element) const {
  VPD_REQUIRE(element < netlist_->element_count(), "element id ", element,
              " out of range");
  std::vector<double> values(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i)
    values[i] = element_currents_[i][element];
  return Trace("i(" + netlist_->element(element).name + ")", times_,
               std::move(values));
}

Trace TransientResult::current(const std::string& element_name) const {
  return current(netlist_->element_id(element_name));
}

Trace TransientResult::power(ElementId element) const {
  const Element& e = netlist_->element(element);
  std::vector<double> values(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i) {
    const double v_ab =
        node_voltages_[i][e.node_a] - node_voltages_[i][e.node_b];
    values[i] = v_ab * element_currents_[i][element];
  }
  return Trace("p(" + e.name + ")", times_, std::move(values));
}

Trace TransientResult::power(const std::string& element_name) const {
  return power(netlist_->element_id(element_name));
}

Energy TransientResult::energy(const std::string& element_name) const {
  const Trace p = power(element_name);
  if (p.sample_count() < 2) return Energy{0.0};
  const double span = p.times().back() - p.times().front();
  return Energy{p.average() * span};
}

Power TransientResult::average_power(const std::string& element_name,
                                     Seconds window) const {
  const Trace p = power(element_name).tail(window.value);
  return Power{p.average()};
}

namespace {

struct ReactiveState {
  // Indexed by ElementId; only meaningful for the matching element kind.
  Vector cap_voltage;     // v_ab across each capacitor
  Vector cap_current;     // i_ab through each capacitor
  Vector ind_current;     // i_ab through each inductor
  Vector ind_voltage;     // v_ab across each inductor
};

/// Appends the bit pattern of a double to a cache key (exact match, no
/// formatting round-trip).
void append_bits(std::string& key, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    key.push_back(static_cast<char>((bits >> shift) & 0xff));
  }
}

/// Everything matrix-relevant about the netlist itself: element kinds,
/// terminals and values (sources excluded — they only enter the RHS) plus
/// gmin. Shared-cache keys prefix this so distinct netlists never alias.
std::string netlist_matrix_key(const Netlist& netlist, double gmin) {
  std::string key;
  key.reserve(netlist.element_count() * 24 + 16);
  append_bits(key, static_cast<double>(netlist.node_count()));
  append_bits(key, gmin);
  for (const Element& e : netlist.elements()) {
    key.push_back(static_cast<char>(e.kind));
    append_bits(key, static_cast<double>(e.node_a));
    append_bits(key, static_cast<double>(e.node_b));
    switch (e.kind) {
      case ElementKind::kResistor:
      case ElementKind::kCapacitor:
      case ElementKind::kInductor:
        append_bits(key, e.value);
        break;
      case ElementKind::kSwitch:
        append_bits(key, e.r_on);
        append_bits(key, e.r_off);
        break;
      case ElementKind::kVoltageSource:
      case ElementKind::kCurrentSource:
        break;
    }
  }
  return key;
}

}  // namespace

TransientResult simulate(const Netlist& netlist,
                         const TransientOptions& options) {
  const double t_stop = options.t_stop.value;
  const double dt = options.dt.value;
  VPD_REQUIRE(t_stop > 0.0, "t_stop must be positive, got ", t_stop);
  VPD_REQUIRE(dt > 0.0 && dt < t_stop, "dt must be in (0, t_stop), got ", dt);

  const MnaLayout layout(netlist);
  const std::size_t n_elements = netlist.element_count();
  const std::vector<ElementId> switch_ids = netlist.switches();

  SwitchStates states = initial_switch_states(netlist);

  // --- Initial conditions ---------------------------------------------------
  Vector v_nodes(netlist.node_count(), 0.0);
  ReactiveState rs;
  rs.cap_voltage.assign(n_elements, 0.0);
  rs.cap_current.assign(n_elements, 0.0);
  rs.ind_current.assign(n_elements, 0.0);
  rs.ind_voltage.assign(n_elements, 0.0);

  if (options.initialize_from_dc) {
    DcOptions dc;
    dc.gmin = std::max(options.gmin, 1e-12);
    dc.switch_states = states;
    const DcSolution op = solve_dc(netlist, dc);
    for (NodeId n = 0; n < netlist.node_count(); ++n)
      v_nodes[n] = op.voltage(n).value;
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      if (e.kind == ElementKind::kCapacitor)
        rs.cap_voltage[i] = v_nodes[e.node_a] - v_nodes[e.node_b];
      if (e.kind == ElementKind::kInductor) {
        rs.ind_current[i] = op.current(i).value;
        rs.ind_voltage[i] = 0.0;
      }
    }
  } else {
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      if (e.kind == ElementKind::kCapacitor) rs.cap_voltage[i] = e.initial;
      if (e.kind == ElementKind::kInductor) rs.ind_current[i] = e.initial;
    }
    // Consistent t = 0 node voltages: solve the network with capacitors
    // replaced by voltage sources at their initial voltage and inductors by
    // current sources at their initial current.
    Netlist snapshot;
    for (NodeId n = 1; n < netlist.node_count(); ++n)
      snapshot.add_node(netlist.node_name(n));
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      switch (e.kind) {
        case ElementKind::kCapacitor:
          snapshot.add_vsource(e.name, e.node_a, e.node_b,
                               Voltage{e.initial});
          break;
        case ElementKind::kInductor:
          snapshot.add_isource(e.name, e.node_a, e.node_b,
                               Current{e.initial});
          break;
        case ElementKind::kResistor:
          snapshot.add_resistor(e.name, e.node_a, e.node_b,
                                Resistance{e.value});
          break;
        case ElementKind::kSwitch:
          snapshot.add_switch(e.name, e.node_a, e.node_b,
                              Resistance{e.r_on}, Resistance{e.r_off},
                              e.initially_closed);
          break;
        case ElementKind::kVoltageSource:
          snapshot.add_vsource(e.name, e.node_a, e.node_b, e.source);
          break;
        case ElementKind::kCurrentSource:
          snapshot.add_isource(e.name, e.node_a, e.node_b, e.source);
          break;
      }
    }
    DcOptions dc;
    dc.gmin = std::max(options.gmin, 1e-12);
    const DcSolution t0 = solve_dc(snapshot, dc);
    for (NodeId n = 0; n < netlist.node_count(); ++n)
      v_nodes[n] = t0.voltage(n).value;
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      // Inrush current through each capacitor (its substitute V source)
      // and initial voltage across each inductor seed the trapezoidal
      // history with consistent values.
      if (e.kind == ElementKind::kCapacitor)
        rs.cap_current[i] = t0.current(e.name).value;
      if (e.kind == ElementKind::kInductor)
        rs.ind_voltage[i] = v_nodes[e.node_a] - v_nodes[e.node_b];
    }
  }

  // --- Step schedule ---------------------------------------------------------
  // Full steps of dt plus, when dt does not divide t_stop, one shortened
  // final step, so the last sample lands exactly on t_stop. Step times are
  // multiples of dt (never accumulated), so long runs do not drift.
  std::size_t n_full = static_cast<std::size_t>(std::floor(t_stop / dt));
  double remainder = t_stop - static_cast<double>(n_full) * dt;
  if (remainder <= 1e-9 * dt) {
    // dt divides t_stop (up to FP slop): no partial step.
    remainder = 0.0;
  } else if (remainder >= (1.0 - 1e-9) * dt) {
    // floor() landed one full step short of an exact multiple.
    ++n_full;
    remainder = 0.0;
  }
  const std::size_t n_steps = n_full + (remainder > 0.0 ? 1 : 0);

  // --- Recording -------------------------------------------------------------
  std::vector<double> times;
  std::vector<Vector> node_voltages;
  std::vector<Vector> element_currents;
  times.reserve(n_steps + 1);
  node_voltages.reserve(n_steps + 1);
  element_currents.reserve(n_steps + 1);

  auto compute_currents = [&](double t, const Vector& v,
                              const ReactiveState& state,
                              const Vector& branch,
                              const SwitchStates& sw) {
    Vector currents(n_elements, 0.0);
    std::size_t sw_pos = 0;
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      const double v_ab = v[e.node_a] - v[e.node_b];
      switch (e.kind) {
        case ElementKind::kResistor:
          currents[i] = v_ab / e.value;
          break;
        case ElementKind::kSwitch:
          currents[i] = v_ab / switch_resistance(e, sw[sw_pos]);
          ++sw_pos;
          break;
        case ElementKind::kCapacitor:
          currents[i] = state.cap_current[i];
          break;
        case ElementKind::kInductor:
          currents[i] = state.ind_current[i];
          break;
        case ElementKind::kVoltageSource:
          currents[i] = branch[layout.branch_row(i) -
                               layout.node_unknowns()];
          break;
        case ElementKind::kCurrentSource:
          currents[i] = e.source(t);
          break;
      }
    }
    return currents;
  };

  auto record = [&](double t, const Vector& v, Vector currents) {
    times.push_back(t);
    node_voltages.push_back(v);
    element_currents.push_back(std::move(currents));
  };

  // The t = 0 sample: currents come from the initialization solve so the
  // energy bookkeeping starts consistent (source inrush currents included).
  {
    Vector currents0(n_elements, 0.0);
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      switch (e.kind) {
        case ElementKind::kCapacitor:
          currents0[i] = rs.cap_current[i];
          break;
        case ElementKind::kInductor:
          currents0[i] = rs.ind_current[i];
          break;
        case ElementKind::kCurrentSource:
          currents0[i] = e.source(0.0);
          break;
        default: {
          // Resistive elements and V-source branch currents follow from the
          // initial node voltages by KCL; approximate the V-source current
          // from the adjacent resistive elements is fragile, so recompute
          // via initial_currents_ set below where available.
          const double v_ab = v_nodes[e.node_a] - v_nodes[e.node_b];
          if (e.kind == ElementKind::kResistor) currents0[i] = v_ab / e.value;
          if (e.kind == ElementKind::kSwitch) {
            std::size_t sw_pos = 0;
            for (ElementId id : switch_ids) {
              if (id == i) break;
              ++sw_pos;
            }
            currents0[i] = v_ab / switch_resistance(e, states[sw_pos]);
          }
          break;
        }
      }
    }
    // V-source currents at t = 0 from KCL: the branch current equals the
    // negated sum of all other element currents leaving the source's + node.
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      if (e.kind != ElementKind::kVoltageSource) continue;
      double leaving = 0.0;
      for (std::size_t j = 0; j < n_elements; ++j) {
        if (j == i) continue;
        const Element& other = netlist.element(j);
        if (other.node_a == e.node_a) leaving += currents0[j];
        if (other.node_b == e.node_a) leaving -= currents0[j];
      }
      currents0[i] = -leaving;
    }
    record(0.0, v_nodes, std::move(currents0));
  }

  // --- LU cache keyed by (step size, method, switch states) -----------------
  // The MNA matrix depends only on (topology, h, method, switch states);
  // sources and history enter through the RHS. PWM simulations revisit a
  // handful of patterns thousands of times. With a shared factor_cache the
  // reuse extends across simulate() calls: the key is prefixed with the
  // netlist's matrix-relevant content, so distinct netlists never alias.
  std::map<std::string, const LuFactorization*> lu_cache;
  std::vector<std::unique_ptr<LuFactorization>> owned_factors;
  const std::string base_key = options.factor_cache != nullptr
                                   ? netlist_matrix_key(netlist, options.gmin)
                                   : std::string();

  auto build_matrix = [&](IntegrationMethod method, double h,
                          const SwitchStates& sw) -> Matrix {
    MnaStamper stamper(layout);
    std::size_t sw_pos = 0;
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      switch (e.kind) {
        case ElementKind::kResistor:
          stamper.stamp_conductance(e.node_a, e.node_b, 1.0 / e.value);
          break;
        case ElementKind::kSwitch:
          stamper.stamp_conductance(e.node_a, e.node_b,
                                    1.0 / switch_resistance(e, sw[sw_pos]));
          ++sw_pos;
          break;
        case ElementKind::kCapacitor: {
          const double g = (method == IntegrationMethod::kBackwardEuler
                                ? e.value / h
                                : 2.0 * e.value / h);
          stamper.stamp_conductance(e.node_a, e.node_b, g);
          break;
        }
        case ElementKind::kInductor: {
          const double r_eq = (method == IntegrationMethod::kBackwardEuler
                                   ? e.value / h
                                   : 2.0 * e.value / h);
          stamper.stamp_inductor_branch(layout.branch_row(i), e.node_a,
                                        e.node_b, r_eq, 0.0);
          break;
        }
        case ElementKind::kVoltageSource:
          stamper.stamp_voltage_source(layout.branch_row(i), e.node_a,
                                       e.node_b, 0.0);
          break;
        case ElementKind::kCurrentSource:
          break;
      }
    }
    stamper.stamp_gmin(options.gmin);
    return stamper.matrix();
  };

  auto factorization_for = [&](IntegrationMethod method, double h,
                               const SwitchStates& sw)
      -> const LuFactorization& {
    std::string key;
    key.reserve(base_key.size() + sw.size() + 10);
    key = base_key;
    key.push_back(method == IntegrationMethod::kBackwardEuler ? 'b' : 't');
    append_bits(key, h);
    for (bool s : sw) key.push_back(s ? '1' : '0');
    auto it = lu_cache.find(key);
    if (it != lu_cache.end()) return *it->second;
    const LuFactorization* factors = nullptr;
    if (options.factor_cache != nullptr) {
      factors = &options.factor_cache->get(
          key, [&] { return build_matrix(method, h, sw); });
    } else {
      owned_factors.push_back(
          std::make_unique<LuFactorization>(build_matrix(method, h, sw)));
      factors = owned_factors.back().get();
    }
    lu_cache.emplace(std::move(key), factors);
    return *factors;
  };

  // --- Time stepping ----------------------------------------------------------
  bool first_step = true;
  for (std::size_t step = 1; step <= n_steps; ++step) {
    const bool final_partial = remainder > 0.0 && step == n_steps;
    const double h = final_partial ? remainder : dt;
    const double t_next =
        step == n_steps ? t_stop : static_cast<double>(step) * dt;
    // First step uses backward Euler: trapezoidal needs consistent initial
    // element currents, which the ICs do not provide.
    const IntegrationMethod method = first_step
                                         ? IntegrationMethod::kBackwardEuler
                                         : options.method;

    if (options.controller) options.controller(t_next, states);

    const LuFactorization& factors = factorization_for(method, h, states);

    // RHS for this step.
    MnaStamper rhs_stamper(layout);
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      switch (e.kind) {
        case ElementKind::kCapacitor: {
          if (method == IntegrationMethod::kBackwardEuler) {
            const double g = e.value / h;
            rhs_stamper.stamp_current_injection(e.node_b, e.node_a,
                                                g * rs.cap_voltage[i]);
          } else {
            const double g = 2.0 * e.value / h;
            rhs_stamper.stamp_current_injection(
                e.node_b, e.node_a,
                g * rs.cap_voltage[i] + rs.cap_current[i]);
          }
          break;
        }
        case ElementKind::kInductor: {
          const std::size_t row = layout.branch_row(i);
          if (method == IntegrationMethod::kBackwardEuler) {
            rhs_stamper.rhs()[row] = -(e.value / h) * rs.ind_current[i];
          } else {
            rhs_stamper.rhs()[row] =
                -(2.0 * e.value / h) * rs.ind_current[i] - rs.ind_voltage[i];
          }
          break;
        }
        case ElementKind::kVoltageSource:
          rhs_stamper.rhs()[layout.branch_row(i)] = e.source(t_next);
          break;
        case ElementKind::kCurrentSource:
          rhs_stamper.stamp_current_injection(e.node_a, e.node_b,
                                              e.source(t_next));
          break;
        default:
          break;
      }
    }

    const Vector x = factors.solve(rhs_stamper.rhs());

    Vector v_new(netlist.node_count(), 0.0);
    for (NodeId n = 1; n < netlist.node_count(); ++n)
      v_new[n] = x[layout.node_row(n)];
    const Vector branch(x.begin() + static_cast<long>(layout.node_unknowns()),
                        x.end());

    // Update reactive histories.
    for (std::size_t i = 0; i < n_elements; ++i) {
      const Element& e = netlist.element(i);
      if (e.kind == ElementKind::kCapacitor) {
        const double v_ab = v_new[e.node_a] - v_new[e.node_b];
        if (method == IntegrationMethod::kBackwardEuler) {
          rs.cap_current[i] = (e.value / h) * (v_ab - rs.cap_voltage[i]);
        } else {
          rs.cap_current[i] =
              (2.0 * e.value / h) * (v_ab - rs.cap_voltage[i]) -
              rs.cap_current[i];
        }
        rs.cap_voltage[i] = v_ab;
      } else if (e.kind == ElementKind::kInductor) {
        rs.ind_current[i] = branch[layout.branch_row(i) -
                                   layout.node_unknowns()];
        rs.ind_voltage[i] = v_new[e.node_a] - v_new[e.node_b];
      }
    }

    if (options.observer) options.observer(t_next, v_new);
    record(t_next, v_new, compute_currents(t_next, v_new, rs, branch, states));
    first_step = false;
  }

  return TransientResult(netlist, std::move(times), std::move(node_voltages),
                         std::move(element_currents));
}

std::vector<double> cycle_averages(const Trace& trace, double period) {
  VPD_REQUIRE(period > 0.0, "period must be positive");
  const double t0 = trace.times().front();
  const double t_end = trace.times().back();
  // Each window is anchored at t0 + i * period (never accumulated with
  // repeated += period, which drifts by an ulp per cycle and loses or
  // gains windows over thousands of MHz-burst cycles). The tolerance is
  // relative to the period, not absolute, for the same reason.
  const double tol = 1e-9 * period;
  std::vector<double> averages;
  for (std::size_t i = 0;; ++i) {
    const double start = t0 + static_cast<double>(i) * period;
    const double end = start + period;
    if (end > t_end + tol) break;
    const double clamped_end = std::min(end, t_end);
    VPD_REQUIRE(start >= t0 && start < clamped_end,
                "cycle window [", start, ", ", clamped_end,
                ") escaped the trace span [", t0, ", ", t_end, "]");
    averages.push_back(trace.average(start, clamped_end));
  }
  return averages;
}

std::optional<std::size_t> first_steady_cycle(const Trace& trace,
                                              double period, double tol) {
  const std::vector<double> averages = cycle_averages(trace, period);
  for (std::size_t i = 0; i + 1 < averages.size(); ++i)
    if (std::fabs(averages[i + 1] - averages[i]) < tol) return i;
  return std::nullopt;
}

}  // namespace vpd
