#include "vpd/circuit/spice_export.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "vpd/common/error.hpp"

namespace vpd {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char ch : name)
    out += (std::isalnum(static_cast<unsigned char>(ch)) != 0) ? ch : '_';
  return out;
}

std::string spice_node(const Netlist& nl, NodeId node) {
  if (node == kGround) return "0";
  return sanitize(nl.node_name(node));
}

std::string spice_value(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// SPICE element names must start with the type letter.
std::string spice_name(char prefix, const std::string& name) {
  std::string s = sanitize(name);
  if (s.empty() ||
      std::toupper(static_cast<unsigned char>(s[0])) != prefix) {
    s = std::string(1, prefix) + "_" + s;
  }
  return s;
}

}  // namespace

std::string to_spice(const Netlist& netlist,
                     const SpiceExportOptions& options) {
  const SwitchStates states =
      options.switch_states.value_or(initial_switch_states(netlist));
  VPD_REQUIRE(states.size() == netlist.switches().size(),
              "switch_states has ", states.size(), " entries, netlist has ",
              netlist.switches().size(), " switches");

  std::ostringstream os;
  os << "* " << options.title << "\n";
  os << "* exported by vpd (vertical power delivery library)\n";

  std::size_t sw_pos = 0;
  for (std::size_t i = 0; i < netlist.element_count(); ++i) {
    const Element& e = netlist.element(i);
    const std::string a = spice_node(netlist, e.node_a);
    const std::string b = spice_node(netlist, e.node_b);
    switch (e.kind) {
      case ElementKind::kResistor:
        os << spice_name('R', e.name) << ' ' << a << ' ' << b << ' '
           << spice_value(e.value) << "\n";
        break;
      case ElementKind::kCapacitor:
        os << spice_name('C', e.name) << ' ' << a << ' ' << b << ' '
           << spice_value(e.value);
        if (options.initial_conditions)
          os << " IC=" << spice_value(e.initial);
        os << "\n";
        break;
      case ElementKind::kInductor:
        os << spice_name('L', e.name) << ' ' << a << ' ' << b << ' '
           << spice_value(e.value);
        if (options.initial_conditions)
          os << " IC=" << spice_value(e.initial);
        os << "\n";
        break;
      case ElementKind::kVoltageSource:
        os << spice_name('V', e.name) << ' ' << a << ' ' << b << " DC "
           << spice_value(e.source(0.0))
           << "  * value sampled at t=0\n";
        break;
      case ElementKind::kCurrentSource:
        os << spice_name('I', e.name) << ' ' << a << ' ' << b << " DC "
           << spice_value(e.source(0.0))
           << "  * value sampled at t=0\n";
        break;
      case ElementKind::kSwitch: {
        const bool closed = states[sw_pos++];
        os << spice_name('R', e.name) << ' ' << a << ' ' << b << ' '
           << spice_value(closed ? e.r_on : e.r_off)
           << "  * switch frozen " << (closed ? "closed" : "open") << "\n";
        break;
      }
    }
  }

  if (options.operating_point) os << ".op\n";
  if (!options.tran_card.empty()) os << ".tran " << options.tran_card
                                     << "\n";
  os << ".end\n";
  return os.str();
}

}  // namespace vpd
