// Circuit netlist: nodes plus linear two-terminal elements (R, L, C,
// independent V/I sources, and resistively-modeled switches). This is the
// substrate the converter topologies are simulated on. All elements are
// linear at any instant — switches change their resistance between time
// steps under external control — so every analysis step is a single linear
// MNA solve (no Newton iteration needed).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

/// Node handle. Node 0 is ground.
using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

/// Element handle: index into the netlist's element array.
using ElementId = std::size_t;

enum class ElementKind {
  kResistor,
  kCapacitor,
  kInductor,
  kVoltageSource,
  kCurrentSource,
  kSwitch,
};

const char* to_string(ElementKind kind);

/// Time-dependent source value. Constant sources wrap a fixed value.
using SourceFn = std::function<double(double /*time*/)>;

struct Element {
  ElementKind kind;
  std::string name;
  NodeId node_a;  // + terminal for sources
  NodeId node_b;  // - terminal for sources
  double value{0.0};        // R [Ohm], C [F], L [H]; unused for sources
  double initial{0.0};      // C: v(0) across a->b; L: i(0) flowing a->b
  double r_on{1e-3};        // switches only
  double r_off{1e9};        // switches only
  bool initially_closed{false};
  SourceFn source;          // sources only
};

class Netlist {
 public:
  Netlist();

  /// Adds a named node; names must be unique. Returns its id.
  NodeId add_node(const std::string& name);
  /// Node lookup by name ("0" / "gnd" resolve to ground). Throws if unknown.
  NodeId node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  /// Total node count including ground.
  std::size_t node_count() const { return node_names_.size(); }

  ElementId add_resistor(const std::string& name, NodeId a, NodeId b,
                         Resistance r);
  ElementId add_capacitor(const std::string& name, NodeId a, NodeId b,
                          Capacitance c, Voltage initial = Voltage{0.0});
  ElementId add_inductor(const std::string& name, NodeId a, NodeId b,
                         Inductance l, Current initial = Current{0.0});
  /// DC voltage source: node_a is +, node_b is -.
  ElementId add_vsource(const std::string& name, NodeId pos, NodeId neg,
                        Voltage v);
  /// Time-varying voltage source.
  ElementId add_vsource(const std::string& name, NodeId pos, NodeId neg,
                        SourceFn v_of_t);
  /// DC current source pushing current out of `pos` through the external
  /// circuit into `neg` (i.e. conventional current flows pos -> external ->
  /// neg inside the source symbol current goes neg -> pos).
  ElementId add_isource(const std::string& name, NodeId from, NodeId to,
                        Current i);
  ElementId add_isource(const std::string& name, NodeId from, NodeId to,
                        SourceFn i_of_t);
  /// Switch modeled as r_on when closed, r_off when open.
  ElementId add_switch(const std::string& name, NodeId a, NodeId b,
                       Resistance r_on = Resistance{1e-3},
                       Resistance r_off = Resistance{1e9},
                       bool initially_closed = false);

  const Element& element(ElementId id) const;
  ElementId element_id(const std::string& name) const;
  std::size_t element_count() const { return elements_.size(); }
  const std::vector<Element>& elements() const { return elements_; }

  /// Ids of all switches, in insertion order.
  std::vector<ElementId> switches() const;
  /// Ids of all elements of `kind`, in insertion order.
  std::vector<ElementId> elements_of_kind(ElementKind kind) const;

 private:
  ElementId add_element(Element e);
  void check_nodes(NodeId a, NodeId b, const std::string& name) const;

  std::vector<std::string> node_names_;
  std::vector<Element> elements_;
};

}  // namespace vpd
