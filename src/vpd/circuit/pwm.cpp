#include "vpd/circuit/pwm.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

PwmSignal::PwmSignal(Frequency frequency, double duty, double phase) {
  VPD_REQUIRE(frequency.value > 0.0, "frequency must be positive, got ",
              frequency.value);
  VPD_REQUIRE(duty >= 0.0 && duty <= 1.0, "duty ", duty, " outside [0,1]");
  VPD_REQUIRE(phase >= 0.0 && phase < 1.0, "phase ", phase, " outside [0,1)");
  period_ = 1.0 / frequency.value;
  duty_ = duty;
  phase_ = phase;
}

PwmSignal::PwmSignal(double period, double duty, double phase,
                     double lead_guard, double tail_guard)
    : period_(period),
      duty_(duty),
      phase_(phase),
      lead_guard_(lead_guard),
      tail_guard_(tail_guard) {}

bool PwmSignal::is_high(double time) const {
  double u = std::fmod(time / period_ - phase_, 1.0);
  if (u < 0.0) u += 1.0;
  return u >= lead_guard_ && u < duty_ - tail_guard_;
}

PwmSignal PwmSignal::complement(Seconds dead_time) const {
  VPD_REQUIRE(dead_time.value >= 0.0, "negative dead time");
  const double guard = dead_time.value / period_;
  VPD_REQUIRE(2.0 * guard < 1.0 - duty_,
              "dead time ", dead_time.value, " s leaves no on-time for the "
              "complementary switch at duty ", duty_);
  // Complement occupies [duty, 1) of the original period, shrunk by the
  // guard on both edges.
  double phase = phase_ + duty_;
  phase -= std::floor(phase);
  return PwmSignal(period_, 1.0 - duty_, phase, guard, guard);
}

GateDrive::GateDrive(const Netlist& netlist)
    : netlist_(&netlist), switch_ids_(netlist.switches()) {
  assignments_.resize(switch_ids_.size());
}

void GateDrive::assign(const std::string& switch_name, PwmSignal signal) {
  const ElementId id = netlist_->element_id(switch_name);
  VPD_REQUIRE(netlist_->element(id).kind == ElementKind::kSwitch, "element '",
              switch_name, "' is not a switch");
  for (std::size_t pos = 0; pos < switch_ids_.size(); ++pos) {
    if (switch_ids_[pos] == id) {
      VPD_REQUIRE(assignments_[pos].empty(), "switch '", switch_name,
                  "' already has a drive signal");
      assignments_[pos].push_back(signal);
      return;
    }
  }
  throw InvalidArgument(detail::concat("switch '", switch_name,
                                       "' not found in netlist"));
}

void GateDrive::assign_pair(const std::string& high_switch,
                            const std::string& low_switch, PwmSignal signal,
                            Seconds dead_time) {
  assign(high_switch, signal);
  assign(low_switch, signal.complement(dead_time));
}

bool GateDrive::fully_assigned() const {
  for (const auto& a : assignments_)
    if (a.empty()) return false;
  return true;
}

std::function<void(double, SwitchStates&)> GateDrive::controller() const {
  // Copy assignment table by value so the controller outlives this object.
  auto assignments = assignments_;
  return [assignments](double time, SwitchStates& states) {
    for (std::size_t pos = 0; pos < assignments.size() && pos < states.size();
         ++pos) {
      if (!assignments[pos].empty())
        states[pos] = assignments[pos].front().is_high(time);
    }
  };
}

}  // namespace vpd
