// Small-signal AC (frequency-domain) analysis: the phasor response of the
// linearized network at a single frequency, and impedance sweeps. The
// workhorse of PDN design — the POL rail's impedance profile Z(f) against
// a target impedance Z_target = dV_allowed / dI_step decides whether a
// decap/VR deployment survives transient load steps.
//
// Stimulus convention (SPICE-like): exactly one element is driven with a
// unit (or chosen) AC magnitude; all other independent sources are nulled
// (V sources short, I sources open). Capacitors stamp j*w*C, inductors
// j*w*L on their branch; switches use the resistance of their configured
// state.
#pragma once

#include <optional>

#include "vpd/circuit/mna.hpp"
#include "vpd/circuit/netlist.hpp"
#include "vpd/common/complex_linear.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

struct AcOptions {
  double gmin{1e-12};
  /// Switch states; defaults to each switch's `initially_closed`.
  std::optional<SwitchStates> switch_states;
};

class AcSolution {
 public:
  AcSolution(const Netlist& netlist, ComplexVector node_voltages,
             ComplexVector branch_currents, const MnaLayout& layout,
             SwitchStates switch_states, double omega);

  /// Phasor node voltage.
  Complex voltage(NodeId node) const;
  Complex voltage(const std::string& node_name) const;

  /// Phasor element current (a->b orientation).
  Complex current(ElementId element) const;
  Complex current(const std::string& element_name) const;

 private:
  const Netlist* netlist_;
  ComplexVector node_voltages_;    // by NodeId, [0] = 0
  ComplexVector branch_currents_;  // by branch row - node unknowns
  std::size_t node_unknowns_;
  std::vector<std::size_t> branch_rows_;
  SwitchStates switch_states_;
  double omega_;
};

/// Single-frequency AC solve with `stimulus` driven at `magnitude` (as a
/// V amplitude for a V source, an A amplitude for an I source) and every
/// other source nulled. Throws InvalidArgument unless `stimulus` is an
/// independent source.
AcSolution solve_ac(const Netlist& netlist, Frequency frequency,
                    ElementId stimulus, double magnitude = 1.0,
                    const AcOptions& options = {});

/// One point of an impedance sweep.
struct ImpedancePoint {
  double frequency{0.0};  // Hz
  Complex impedance{};    // Ohm

  double magnitude() const;
  double phase_degrees() const;
};

/// Impedance seen by a current-source port: drives `port` (an I source)
/// with 1 A AC and reports V(port+) - V(port-) at each frequency.
std::vector<ImpedancePoint> impedance_sweep(
    const Netlist& netlist, ElementId port,
    const std::vector<double>& frequencies, const AcOptions& options = {});

/// The sweep's peak impedance magnitude (anti-resonance) and where.
ImpedancePoint peak_impedance(const std::vector<ImpedancePoint>& sweep);

/// Target impedance for a load step: Z_target = allowed ripple / dI.
Resistance target_impedance(Voltage allowed_ripple, Current load_step);

}  // namespace vpd
