// Fixed-step transient simulation with switch scheduling. Capacitors and
// inductors are replaced by their companion models each step (backward
// Euler for the first step, then the configured method); the resulting
// linear system is LU-solved. LU factorizations are cached per switch-state
// pattern, so periodic PWM simulations re-factor only when a new switching
// configuration first appears.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "vpd/circuit/mna.hpp"
#include "vpd/circuit/netlist.hpp"
#include "vpd/circuit/waveform.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

enum class IntegrationMethod {
  kBackwardEuler,
  kTrapezoidal,
};

/// Called before each step with the step's end time; writes desired switch
/// states (indexed in netlist.switches() order).
using SwitchController = std::function<void(double, SwitchStates&)>;

/// Called after each accepted step with the step's end time and the node
/// voltages (indexed by NodeId). Feedback controllers use this to sample
/// the output rail.
using StepObserver = std::function<void(double, const Vector&)>;

struct TransientOptions {
  Seconds t_stop{0.0};
  Seconds dt{0.0};
  IntegrationMethod method{IntegrationMethod::kTrapezoidal};
  double gmin{1e-12};
  /// Optional switch schedule; absent means switches hold initial states.
  SwitchController controller;
  /// Optional per-step observer (runs after the step is solved).
  StepObserver observer;
  /// Start from the DC operating point (with initial switch states) instead
  /// of element initial conditions.
  bool initialize_from_dc{false};
};

/// Full simulation record: node voltages and element currents at every
/// sample (t = 0, dt, 2 dt, ..., t_stop).
class TransientResult {
 public:
  TransientResult(const Netlist& netlist, std::vector<double> times,
                  std::vector<Vector> node_voltages,
                  std::vector<Vector> element_currents);

  std::size_t sample_count() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }

  /// Voltage trace of a node.
  Trace voltage(NodeId node) const;
  Trace voltage(const std::string& node_name) const;

  /// Current trace of an element (a->b orientation).
  Trace current(ElementId element) const;
  Trace current(const std::string& element_name) const;

  /// Instantaneous absorbed power trace of an element (v_ab * i_ab).
  Trace power(ElementId element) const;
  Trace power(const std::string& element_name) const;

  /// Energy absorbed by an element over the whole run (trapezoidal
  /// integral of the power trace).
  Energy energy(const std::string& element_name) const;

  /// Average absorbed power over the final `window`.
  Power average_power(const std::string& element_name, Seconds window) const;

 private:
  const Netlist* netlist_;
  std::vector<double> times_;
  std::vector<Vector> node_voltages_;     // per sample, indexed by NodeId
  std::vector<Vector> element_currents_;  // per sample, indexed by ElementId
};

/// Runs the transient analysis. Throws InvalidArgument for bad options and
/// NumericalError if a step's system is singular.
TransientResult simulate(const Netlist& netlist,
                         const TransientOptions& options);

/// Per-cycle averages of a trace (cycle length `period`, anchored at the
/// trace start). Used for periodic-steady-state detection.
std::vector<double> cycle_averages(const Trace& trace, double period);

/// Index of the first cycle whose average differs from the next cycle's by
/// less than `tol` (absolute); nullopt if never converged.
std::optional<std::size_t> first_steady_cycle(const Trace& trace,
                                              double period, double tol);

}  // namespace vpd
