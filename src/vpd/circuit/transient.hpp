// Fixed-step transient simulation with switch scheduling. Capacitors and
// inductors are replaced by their companion models each step (backward
// Euler for the first step, then the configured method); the resulting
// linear system is LU-solved. LU factorizations are cached per
// (step size, method, switch-state) pattern, so periodic PWM simulations
// re-factor only when a new switching configuration first appears; an
// optional shared TransientFactorCache extends that reuse across
// simulations of the same netlist (campaign runners revisit one reduced
// PDN with many source waveforms).
//
// End-time contract: the returned samples are t = 0, dt, 2 dt, ..., and
// the final sample lands exactly on t_stop. When dt does not divide
// t_stop the engine takes one shortened final step (companion models are
// re-stamped for the partial step size), so droop and settling metrics
// near the window end are never computed on a truncated record.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vpd/circuit/mna.hpp"
#include "vpd/circuit/netlist.hpp"
#include "vpd/circuit/waveform.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

enum class IntegrationMethod {
  kBackwardEuler,
  kTrapezoidal,
};

/// Called before each step with the step's end time; writes desired switch
/// states (indexed in netlist.switches() order).
using SwitchController = std::function<void(double, SwitchStates&)>;

/// Called after each accepted step with the step's end time and the node
/// voltages (indexed by NodeId). Feedback controllers use this to sample
/// the output rail.
using StepObserver = std::function<void(double, const Vector&)>;

/// Shared cache of transient-step LU factorizations, keyed exactly on
/// everything that enters the stamped matrix (netlist topology and element
/// values, gmin, integration method, step size, switch states). The MNA
/// matrix is independent of sources and history — they enter through the
/// RHS — so simulations of one netlist under different waveforms share
/// factorizations, and a campaign of thousands of steps amortizes a
/// handful of factorizations. Thread-safe: concurrent simulations may
/// share one cache, and because a key determines the matrix bit for bit,
/// results are identical whichever thread populated an entry.
class TransientFactorCache {
 public:
  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
  };

  /// Returns the factorization for `key`, building it from `build_matrix`
  /// on first use. The reference stays valid for the cache's lifetime.
  const LuFactorization& get(const std::string& key,
                             const std::function<Matrix()>& build_matrix);

  Stats stats() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<LuFactorization>> entries_;
  Stats stats_;
};

struct TransientOptions {
  Seconds t_stop{0.0};
  Seconds dt{0.0};
  IntegrationMethod method{IntegrationMethod::kTrapezoidal};
  double gmin{1e-12};
  /// Optional switch schedule; absent means switches hold initial states.
  SwitchController controller;
  /// Optional per-step observer (runs after the step is solved).
  StepObserver observer;
  /// Start from the DC operating point (with initial switch states) instead
  /// of element initial conditions.
  bool initialize_from_dc{false};
  /// Optional shared factorization cache (see TransientFactorCache).
  /// nullptr keeps the per-simulation cache; the pointed-to cache must
  /// outlive the simulate() call. Results are bit-identical either way.
  TransientFactorCache* factor_cache{nullptr};
};

/// Full simulation record: node voltages and element currents at every
/// sample (t = 0, dt, 2 dt, ..., t_stop — the final sample lands exactly
/// on t_stop even when dt does not divide it; see the end-time contract
/// above).
class TransientResult {
 public:
  TransientResult(const Netlist& netlist, std::vector<double> times,
                  std::vector<Vector> node_voltages,
                  std::vector<Vector> element_currents);

  std::size_t sample_count() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }

  /// Voltage trace of a node.
  Trace voltage(NodeId node) const;
  Trace voltage(const std::string& node_name) const;

  /// Current trace of an element (a->b orientation).
  Trace current(ElementId element) const;
  Trace current(const std::string& element_name) const;

  /// Instantaneous absorbed power trace of an element (v_ab * i_ab).
  Trace power(ElementId element) const;
  Trace power(const std::string& element_name) const;

  /// Energy absorbed by an element over the whole run (trapezoidal
  /// integral of the power trace).
  Energy energy(const std::string& element_name) const;

  /// Average absorbed power over the final `window`.
  Power average_power(const std::string& element_name, Seconds window) const;

 private:
  const Netlist* netlist_;
  std::vector<double> times_;
  std::vector<Vector> node_voltages_;     // per sample, indexed by NodeId
  std::vector<Vector> element_currents_;  // per sample, indexed by ElementId
};

/// Runs the transient analysis. Throws InvalidArgument for bad options and
/// NumericalError if a step's system is singular.
TransientResult simulate(const Netlist& netlist,
                         const TransientOptions& options);

/// Per-cycle averages of a trace (cycle length `period`, anchored at the
/// trace start). Used for periodic-steady-state detection.
std::vector<double> cycle_averages(const Trace& trace, double period);

/// Index of the first cycle whose average differs from the next cycle's by
/// less than `tol` (absolute); nullopt if never converged.
std::optional<std::size_t> first_steady_cycle(const Trace& trace,
                                              double period, double tol);

}  // namespace vpd
