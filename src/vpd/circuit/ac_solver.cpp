#include "vpd/circuit/ac_solver.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

AcSolution::AcSolution(const Netlist& netlist, ComplexVector node_voltages,
                       ComplexVector branch_currents,
                       const MnaLayout& layout, SwitchStates switch_states,
                       double omega)
    : netlist_(&netlist),
      node_voltages_(std::move(node_voltages)),
      branch_currents_(std::move(branch_currents)),
      node_unknowns_(layout.node_unknowns()),
      switch_states_(std::move(switch_states)),
      omega_(omega) {
  branch_rows_.resize(netlist.element_count(), MnaLayout::kNoRow);
  for (std::size_t i = 0; i < netlist.element_count(); ++i)
    if (layout.has_branch(i)) branch_rows_[i] = layout.branch_row(i);
}

Complex AcSolution::voltage(NodeId node) const {
  VPD_REQUIRE(node < node_voltages_.size(), "node id ", node,
              " out of range");
  return node_voltages_[node];
}

Complex AcSolution::voltage(const std::string& node_name) const {
  return voltage(netlist_->node(node_name));
}

Complex AcSolution::current(ElementId element) const {
  const Element& e = netlist_->element(element);
  const Complex v_ab =
      node_voltages_[e.node_a] - node_voltages_[e.node_b];
  switch (e.kind) {
    case ElementKind::kResistor:
      return v_ab / e.value;
    case ElementKind::kCapacitor:
      return v_ab * Complex{0.0, omega_ * e.value};
    case ElementKind::kSwitch: {
      std::size_t position = 0;
      for (ElementId id : netlist_->switches()) {
        if (id == element) break;
        ++position;
      }
      return v_ab / switch_resistance(e, switch_states_[position]);
    }
    case ElementKind::kCurrentSource:
      // Nulled unless it was the stimulus; callers read the stimulus
      // current from the drive amplitude.
      return Complex{0.0, 0.0};
    case ElementKind::kVoltageSource:
    case ElementKind::kInductor:
      return branch_currents_[branch_rows_[element] - node_unknowns_];
  }
  throw InvalidArgument("unknown element kind");
}

Complex AcSolution::current(const std::string& element_name) const {
  return current(netlist_->element_id(element_name));
}

AcSolution solve_ac(const Netlist& netlist, Frequency frequency,
                    ElementId stimulus, double magnitude,
                    const AcOptions& options) {
  VPD_REQUIRE(frequency.value > 0.0, "frequency must be positive, got ",
              frequency.value);
  const Element& drive = netlist.element(stimulus);
  VPD_REQUIRE(drive.kind == ElementKind::kVoltageSource ||
                  drive.kind == ElementKind::kCurrentSource,
              "stimulus '", drive.name, "' is not an independent source");

  const double omega = kTwoPi * frequency.value;
  const MnaLayout layout(netlist);
  const std::size_t n = layout.unknown_count();
  ComplexMatrix a(n, n);
  ComplexVector b(n, Complex{0.0, 0.0});

  SwitchStates states =
      options.switch_states.value_or(initial_switch_states(netlist));
  VPD_REQUIRE(states.size() == netlist.switches().size(),
              "switch_states has ", states.size(), " entries, netlist has ",
              netlist.switches().size(), " switches");

  auto stamp_admittance = [&](NodeId na, NodeId nb, Complex y) {
    const std::size_t ra = layout.node_row(na);
    const std::size_t rb = layout.node_row(nb);
    if (ra != MnaLayout::kNoRow) a(ra, ra) += y;
    if (rb != MnaLayout::kNoRow) a(rb, rb) += y;
    if (ra != MnaLayout::kNoRow && rb != MnaLayout::kNoRow) {
      a(ra, rb) -= y;
      a(rb, ra) -= y;
    }
  };

  std::size_t sw_pos = 0;
  for (std::size_t i = 0; i < netlist.element_count(); ++i) {
    const Element& e = netlist.element(i);
    switch (e.kind) {
      case ElementKind::kResistor:
        stamp_admittance(e.node_a, e.node_b, Complex{1.0 / e.value, 0.0});
        break;
      case ElementKind::kSwitch: {
        const double r = switch_resistance(e, states[sw_pos++]);
        stamp_admittance(e.node_a, e.node_b, Complex{1.0 / r, 0.0});
        break;
      }
      case ElementKind::kCapacitor:
        stamp_admittance(e.node_a, e.node_b,
                         Complex{0.0, omega * e.value});
        break;
      case ElementKind::kInductor: {
        const std::size_t row = layout.branch_row(i);
        const std::size_t ra = layout.node_row(e.node_a);
        const std::size_t rb = layout.node_row(e.node_b);
        if (ra != MnaLayout::kNoRow) {
          a(ra, row) += 1.0;
          a(row, ra) += 1.0;
        }
        if (rb != MnaLayout::kNoRow) {
          a(rb, row) -= 1.0;
          a(row, rb) -= 1.0;
        }
        a(row, row) -= Complex{0.0, omega * e.value};
        break;
      }
      case ElementKind::kVoltageSource: {
        const std::size_t row = layout.branch_row(i);
        const std::size_t ra = layout.node_row(e.node_a);
        const std::size_t rb = layout.node_row(e.node_b);
        if (ra != MnaLayout::kNoRow) {
          a(ra, row) += 1.0;
          a(row, ra) += 1.0;
        }
        if (rb != MnaLayout::kNoRow) {
          a(rb, row) -= 1.0;
          a(row, rb) -= 1.0;
        }
        // AC magnitude only on the stimulus; others are shorts.
        b[row] = (i == stimulus) ? Complex{magnitude, 0.0}
                                 : Complex{0.0, 0.0};
        break;
      }
      case ElementKind::kCurrentSource:
        if (i == stimulus) {
          const std::size_t rf = layout.node_row(e.node_a);
          const std::size_t rt = layout.node_row(e.node_b);
          if (rf != MnaLayout::kNoRow) b[rf] -= Complex{magnitude, 0.0};
          if (rt != MnaLayout::kNoRow) b[rt] += Complex{magnitude, 0.0};
        }
        break;
    }
  }
  for (std::size_t r = 0; r < layout.node_unknowns(); ++r)
    a(r, r) += Complex{options.gmin, 0.0};

  const ComplexVector x = solve_dense_complex(std::move(a), b);
  ComplexVector node_voltages(netlist.node_count(), Complex{0.0, 0.0});
  for (NodeId node = 1; node < netlist.node_count(); ++node)
    node_voltages[node] = x[layout.node_row(node)];
  ComplexVector branch(x.begin() + static_cast<long>(layout.node_unknowns()),
                       x.end());
  return AcSolution(netlist, std::move(node_voltages), std::move(branch),
                    layout, std::move(states), omega);
}

double ImpedancePoint::magnitude() const { return std::abs(impedance); }

double ImpedancePoint::phase_degrees() const {
  return std::arg(impedance) * 180.0 / 3.141592653589793;
}

std::vector<ImpedancePoint> impedance_sweep(
    const Netlist& netlist, ElementId port,
    const std::vector<double>& frequencies, const AcOptions& options) {
  VPD_REQUIRE(!frequencies.empty(), "empty frequency list");
  const Element& e = netlist.element(port);
  VPD_REQUIRE(e.kind == ElementKind::kCurrentSource, "port '", e.name,
              "' must be a current source");
  std::vector<ImpedancePoint> points;
  points.reserve(frequencies.size());
  for (double f : frequencies) {
    const AcSolution sol =
        solve_ac(netlist, Frequency{f}, port, 1.0, options);
    ImpedancePoint p;
    p.frequency = f;
    // The port is a load: it draws the 1 A test current out of node_a
    // and returns it at node_b, so node_a's voltage sags by Z * 1 A.
    // Z = -(V(a) - V(b)) is then positive-real for a resistive network.
    p.impedance = sol.voltage(e.node_b) - sol.voltage(e.node_a);
    points.push_back(p);
  }
  return points;
}

ImpedancePoint peak_impedance(const std::vector<ImpedancePoint>& sweep) {
  VPD_REQUIRE(!sweep.empty(), "empty sweep");
  const ImpedancePoint* best = &sweep.front();
  for (const ImpedancePoint& p : sweep)
    if (p.magnitude() > best->magnitude()) best = &p;
  return *best;
}

Resistance target_impedance(Voltage allowed_ripple, Current load_step) {
  VPD_REQUIRE(allowed_ripple.value > 0.0 && load_step.value > 0.0,
              "ripple and step must be positive");
  return Resistance{allowed_ripple.value / load_step.value};
}

}  // namespace vpd
