// PWM gate-signal generation for switching-converter simulation: phase-
// shifted carriers, complementary pairs with dead time, and helpers that
// bind PWM signals to netlist switches as a transient SwitchController.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "vpd/circuit/mna.hpp"
#include "vpd/circuit/netlist.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

/// Rectangular PWM signal: high during [phase, phase + duty) of each
/// normalized period.
class PwmSignal {
 public:
  /// duty in [0, 1]; phase in [0, 1) as a fraction of the period.
  PwmSignal(Frequency frequency, double duty, double phase = 0.0);

  bool is_high(double time) const;
  double duty() const { return duty_; }
  double phase() const { return phase_; }
  double period() const { return period_; }

  /// Complementary signal with symmetric dead time: low a little after this
  /// signal falls and high a little before it rises, never overlapping.
  PwmSignal complement(Seconds dead_time = Seconds{0.0}) const;

 private:
  PwmSignal(double period, double duty, double phase, double lead_guard,
            double tail_guard);

  double period_;
  double duty_;
  double phase_;
  // Guard intervals (fractions of the period) trimmed from the high window;
  // used by complementary signals to realize dead time.
  double lead_guard_{0.0};
  double tail_guard_{0.0};
};

/// Assigns PWM signals to switches of a netlist and exposes the
/// SwitchController the transient engine consumes.
class GateDrive {
 public:
  explicit GateDrive(const Netlist& netlist);

  /// Drives switch `switch_name` with `signal`.
  void assign(const std::string& switch_name, PwmSignal signal);

  /// Drives a complementary pair (high-side, low-side) from one signal with
  /// dead time on both edges.
  void assign_pair(const std::string& high_switch,
                   const std::string& low_switch, PwmSignal signal,
                   Seconds dead_time);

  /// True if every switch in the netlist has a driving signal.
  bool fully_assigned() const;

  /// Controller callback: writes each assigned switch's state; unassigned
  /// switches keep their previous state.
  std::function<void(double, SwitchStates&)> controller() const;

 private:
  const Netlist* netlist_;
  std::vector<ElementId> switch_ids_;                 // netlist switch order
  std::vector<std::vector<PwmSignal>> assignments_;   // per switch position
};

}  // namespace vpd
