#include "vpd/circuit/mna.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

MnaLayout::MnaLayout(const Netlist& netlist) {
  node_unknowns_ = netlist.node_count() - 1;  // ground excluded
  branch_rows_.assign(netlist.element_count(), kNoRow);
  std::size_t next = node_unknowns_;
  for (std::size_t i = 0; i < netlist.element_count(); ++i) {
    const ElementKind kind = netlist.element(i).kind;
    if (kind == ElementKind::kVoltageSource ||
        kind == ElementKind::kInductor) {
      branch_rows_[i] = next++;
    }
  }
  unknown_count_ = next;
}

std::size_t MnaLayout::node_row(NodeId node) const {
  if (node == kGround) return kNoRow;
  VPD_REQUIRE(node <= node_unknowns_, "node id ", node, " out of range");
  return node - 1;
}

std::size_t MnaLayout::branch_row(ElementId element) const {
  VPD_REQUIRE(element < branch_rows_.size(), "element id ", element,
              " out of range");
  VPD_REQUIRE(branch_rows_[element] != kNoRow, "element ", element,
              " has no branch-current unknown");
  return branch_rows_[element];
}

bool MnaLayout::has_branch(ElementId element) const {
  VPD_REQUIRE(element < branch_rows_.size(), "element id ", element,
              " out of range");
  return branch_rows_[element] != kNoRow;
}

MnaStamper::MnaStamper(const MnaLayout& layout)
    : layout_(layout),
      a_(layout.unknown_count(), layout.unknown_count()),
      b_(layout.unknown_count(), 0.0) {}

void MnaStamper::stamp_conductance(NodeId a, NodeId b, double g) {
  const std::size_t ra = layout_.node_row(a);
  const std::size_t rb = layout_.node_row(b);
  if (ra != MnaLayout::kNoRow) a_(ra, ra) += g;
  if (rb != MnaLayout::kNoRow) a_(rb, rb) += g;
  if (ra != MnaLayout::kNoRow && rb != MnaLayout::kNoRow) {
    a_(ra, rb) -= g;
    a_(rb, ra) -= g;
  }
}

void MnaStamper::stamp_current_injection(NodeId from, NodeId to, double i) {
  const std::size_t rf = layout_.node_row(from);
  const std::size_t rt = layout_.node_row(to);
  if (rf != MnaLayout::kNoRow) b_[rf] -= i;
  if (rt != MnaLayout::kNoRow) b_[rt] += i;
}

void MnaStamper::stamp_voltage_source(std::size_t row, NodeId pos, NodeId neg,
                                      double volts) {
  const std::size_t rp = layout_.node_row(pos);
  const std::size_t rn = layout_.node_row(neg);
  if (rp != MnaLayout::kNoRow) {
    a_(rp, row) += 1.0;
    a_(row, rp) += 1.0;
  }
  if (rn != MnaLayout::kNoRow) {
    a_(rn, row) -= 1.0;
    a_(row, rn) -= 1.0;
  }
  b_[row] = volts;
}

void MnaStamper::stamp_inductor_branch(std::size_t row, NodeId a, NodeId b,
                                       double r_equiv, double rhs) {
  const std::size_t ra = layout_.node_row(a);
  const std::size_t rb = layout_.node_row(b);
  if (ra != MnaLayout::kNoRow) {
    a_(ra, row) += 1.0;
    a_(row, ra) += 1.0;
  }
  if (rb != MnaLayout::kNoRow) {
    a_(rb, row) -= 1.0;
    a_(row, rb) -= 1.0;
  }
  a_(row, row) -= r_equiv;
  b_[row] = rhs;
}

void MnaStamper::stamp_gmin(double gmin) {
  if (gmin <= 0.0) return;
  for (std::size_t r = 0; r < layout_.node_unknowns(); ++r) a_(r, r) += gmin;
}

SwitchStates initial_switch_states(const Netlist& netlist) {
  SwitchStates states;
  for (ElementId id : netlist.switches())
    states.push_back(netlist.element(id).initially_closed);
  return states;
}

double switch_resistance(const Element& e, bool closed) {
  VPD_REQUIRE(e.kind == ElementKind::kSwitch, "element '", e.name,
              "' is not a switch");
  return closed ? e.r_on : e.r_off;
}

}  // namespace vpd
