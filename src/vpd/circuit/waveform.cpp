#include "vpd/circuit/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

Trace::Trace(std::string name, std::vector<double> times,
             std::vector<double> values)
    : name_(std::move(name)),
      times_(std::move(times)),
      values_(std::move(values)) {
  VPD_REQUIRE(times_.size() == values_.size(), "trace '", name_, "': ",
              times_.size(), " times vs ", values_.size(), " values");
  VPD_REQUIRE(!times_.empty(), "trace '", name_, "' is empty");
  for (std::size_t i = 1; i < times_.size(); ++i)
    VPD_REQUIRE(times_[i] > times_[i - 1], "trace '", name_,
                "': time not strictly increasing at sample ", i);
}

double Trace::front() const { return values_.front(); }
double Trace::back() const { return values_.back(); }

double Trace::at(double t) const {
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

void Trace::check_window(double t0, double t1) const {
  VPD_REQUIRE(t0 < t1, "window [", t0, ", ", t1, "] is empty");
  VPD_REQUIRE(t0 >= times_.front() - 1e-15 && t1 <= times_.back() + 1e-15,
              "window [", t0, ", ", t1, "] outside trace span [",
              times_.front(), ", ", times_.back(), "]");
}

double Trace::average(double t0, double t1) const {
  check_window(t0, t1);
  // Trapezoidal integral over the window using interpolated endpoints.
  double integral = 0.0;
  double prev_t = t0;
  double prev_v = at(t0);
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] <= t0) continue;
    if (times_[i] >= t1) break;
    integral += 0.5 * (prev_v + values_[i]) * (times_[i] - prev_t);
    prev_t = times_[i];
    prev_v = values_[i];
  }
  integral += 0.5 * (prev_v + at(t1)) * (t1 - prev_t);
  return integral / (t1 - t0);
}

double Trace::average() const {
  if (times_.size() == 1) return values_[0];
  return average(times_.front(), times_.back());
}

double Trace::rms(double t0, double t1) const {
  check_window(t0, t1);
  // Exact integral of the square of the piecewise-linear signal:
  // for v linear on a segment, the segment contributes
  // (va^2 + va*vb + vb^2)/3 * dt.
  auto segment = [](double va, double vb, double dt_seg) {
    return (va * va + va * vb + vb * vb) / 3.0 * dt_seg;
  };
  double integral = 0.0;
  double prev_t = t0;
  double prev_v = at(t0);
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] <= t0) continue;
    if (times_[i] >= t1) break;
    integral += segment(prev_v, values_[i], times_[i] - prev_t);
    prev_t = times_[i];
    prev_v = values_[i];
  }
  integral += segment(prev_v, at(t1), t1 - prev_t);
  return std::sqrt(integral / (t1 - t0));
}

double Trace::rms() const {
  if (times_.size() == 1) return std::fabs(values_[0]);
  return rms(times_.front(), times_.back());
}

double Trace::min(double t0, double t1) const {
  check_window(t0, t1);
  double m = std::min(at(t0), at(t1));
  for (std::size_t i = 0; i < times_.size(); ++i)
    if (times_[i] > t0 && times_[i] < t1) m = std::min(m, values_[i]);
  return m;
}

double Trace::max(double t0, double t1) const {
  check_window(t0, t1);
  double m = std::max(at(t0), at(t1));
  for (std::size_t i = 0; i < times_.size(); ++i)
    if (times_[i] > t0 && times_[i] < t1) m = std::max(m, values_[i]);
  return m;
}

double Trace::min() const {
  return *std::min_element(values_.begin(), values_.end());
}

double Trace::max() const {
  return *std::max_element(values_.begin(), values_.end());
}

double Trace::peak_to_peak(double t0, double t1) const {
  return max(t0, t1) - min(t0, t1);
}

double Trace::peak_to_peak() const { return max() - min(); }

double Trace::harmonic_magnitude(double frequency, double t0,
                                 double t1) const {
  check_window(t0, t1);
  VPD_REQUIRE(frequency > 0.0, "frequency must be positive");
  const double w = 2.0 * 3.141592653589793 * frequency;
  // Trapezoidal integration of v(t) cos(wt) and v(t) sin(wt) over the
  // window, using the trace samples plus interpolated endpoints.
  double re = 0.0, im = 0.0;
  double prev_t = t0;
  double prev_vc = at(t0) * std::cos(w * t0);
  double prev_vs = at(t0) * std::sin(w * t0);
  auto accumulate = [&](double t, double v) {
    const double vc = v * std::cos(w * t);
    const double vs = v * std::sin(w * t);
    re += 0.5 * (prev_vc + vc) * (t - prev_t);
    im += 0.5 * (prev_vs + vs) * (t - prev_t);
    prev_t = t;
    prev_vc = vc;
    prev_vs = vs;
  };
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] <= t0) continue;
    if (times_[i] >= t1) break;
    accumulate(times_[i], values_[i]);
  }
  accumulate(t1, at(t1));
  const double span = t1 - t0;
  return 2.0 / span * std::hypot(re, im);
}

double Trace::harmonic_magnitude(double frequency) const {
  VPD_REQUIRE(times_.size() >= 2, "trace too short");
  return harmonic_magnitude(frequency, times_.front(), times_.back());
}

Trace Trace::tail(double duration) const {
  VPD_REQUIRE(duration > 0.0, "duration must be positive, got ", duration);
  const double t0 = std::max(times_.front(), times_.back() - duration);
  std::vector<double> ts, vs;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t0) {
      ts.push_back(times_[i]);
      vs.push_back(values_[i]);
    }
  }
  return Trace(name_, std::move(ts), std::move(vs));
}

}  // namespace vpd
