#include "vpd/circuit/netlist.hpp"

#include <algorithm>

#include "vpd/common/error.hpp"

namespace vpd {

const char* to_string(ElementKind kind) {
  switch (kind) {
    case ElementKind::kResistor: return "resistor";
    case ElementKind::kCapacitor: return "capacitor";
    case ElementKind::kInductor: return "inductor";
    case ElementKind::kVoltageSource: return "vsource";
    case ElementKind::kCurrentSource: return "isource";
    case ElementKind::kSwitch: return "switch";
  }
  return "unknown";
}

Netlist::Netlist() { node_names_.push_back("gnd"); }

NodeId Netlist::add_node(const std::string& name) {
  VPD_REQUIRE(!name.empty(), "node name must be non-empty");
  VPD_REQUIRE(std::find(node_names_.begin(), node_names_.end(), name) ==
                  node_names_.end(),
              "duplicate node name '", name, "'");
  node_names_.push_back(name);
  return node_names_.size() - 1;
}

NodeId Netlist::node(const std::string& name) const {
  if (name == "0" || name == "gnd") return kGround;
  const auto it = std::find(node_names_.begin(), node_names_.end(), name);
  VPD_REQUIRE(it != node_names_.end(), "unknown node '", name, "'");
  return static_cast<NodeId>(it - node_names_.begin());
}

const std::string& Netlist::node_name(NodeId id) const {
  VPD_REQUIRE(id < node_names_.size(), "node id ", id, " out of range");
  return node_names_[id];
}

void Netlist::check_nodes(NodeId a, NodeId b, const std::string& name) const {
  VPD_REQUIRE(a < node_names_.size() && b < node_names_.size(), "element '",
              name, "': node id out of range");
  VPD_REQUIRE(a != b, "element '", name, "': both terminals on node ", a);
}

ElementId Netlist::add_element(Element e) {
  VPD_REQUIRE(!e.name.empty(), "element name must be non-empty");
  for (const Element& existing : elements_)
    VPD_REQUIRE(existing.name != e.name, "duplicate element name '", e.name,
                "'");
  elements_.push_back(std::move(e));
  return elements_.size() - 1;
}

ElementId Netlist::add_resistor(const std::string& name, NodeId a, NodeId b,
                                Resistance r) {
  check_nodes(a, b, name);
  VPD_REQUIRE(r.value > 0.0, "resistor '", name, "': non-positive R ",
              r.value);
  Element e;
  e.kind = ElementKind::kResistor;
  e.name = name;
  e.node_a = a;
  e.node_b = b;
  e.value = r.value;
  return add_element(std::move(e));
}

ElementId Netlist::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                 Capacitance c, Voltage initial) {
  check_nodes(a, b, name);
  VPD_REQUIRE(c.value > 0.0, "capacitor '", name, "': non-positive C ",
              c.value);
  Element e;
  e.kind = ElementKind::kCapacitor;
  e.name = name;
  e.node_a = a;
  e.node_b = b;
  e.value = c.value;
  e.initial = initial.value;
  return add_element(std::move(e));
}

ElementId Netlist::add_inductor(const std::string& name, NodeId a, NodeId b,
                                Inductance l, Current initial) {
  check_nodes(a, b, name);
  VPD_REQUIRE(l.value > 0.0, "inductor '", name, "': non-positive L ",
              l.value);
  Element e;
  e.kind = ElementKind::kInductor;
  e.name = name;
  e.node_a = a;
  e.node_b = b;
  e.value = l.value;
  e.initial = initial.value;
  return add_element(std::move(e));
}

ElementId Netlist::add_vsource(const std::string& name, NodeId pos,
                               NodeId neg, Voltage v) {
  const double value = v.value;
  return add_vsource(name, pos, neg, [value](double) { return value; });
}

ElementId Netlist::add_vsource(const std::string& name, NodeId pos,
                               NodeId neg, SourceFn v_of_t) {
  check_nodes(pos, neg, name);
  VPD_REQUIRE(static_cast<bool>(v_of_t), "vsource '", name,
              "': null waveform");
  Element e;
  e.kind = ElementKind::kVoltageSource;
  e.name = name;
  e.node_a = pos;
  e.node_b = neg;
  e.source = std::move(v_of_t);
  return add_element(std::move(e));
}

ElementId Netlist::add_isource(const std::string& name, NodeId from,
                               NodeId to, Current i) {
  const double value = i.value;
  return add_isource(name, from, to, [value](double) { return value; });
}

ElementId Netlist::add_isource(const std::string& name, NodeId from,
                               NodeId to, SourceFn i_of_t) {
  check_nodes(from, to, name);
  VPD_REQUIRE(static_cast<bool>(i_of_t), "isource '", name,
              "': null waveform");
  Element e;
  e.kind = ElementKind::kCurrentSource;
  e.name = name;
  e.node_a = from;
  e.node_b = to;
  e.source = std::move(i_of_t);
  return add_element(std::move(e));
}

ElementId Netlist::add_switch(const std::string& name, NodeId a, NodeId b,
                              Resistance r_on, Resistance r_off,
                              bool initially_closed) {
  check_nodes(a, b, name);
  VPD_REQUIRE(r_on.value > 0.0 && r_off.value > r_on.value, "switch '", name,
              "': need 0 < r_on < r_off, got r_on=", r_on.value,
              " r_off=", r_off.value);
  Element e;
  e.kind = ElementKind::kSwitch;
  e.name = name;
  e.node_a = a;
  e.node_b = b;
  e.r_on = r_on.value;
  e.r_off = r_off.value;
  e.initially_closed = initially_closed;
  return add_element(std::move(e));
}

const Element& Netlist::element(ElementId id) const {
  VPD_REQUIRE(id < elements_.size(), "element id ", id, " out of range");
  return elements_[id];
}

ElementId Netlist::element_id(const std::string& name) const {
  for (std::size_t i = 0; i < elements_.size(); ++i)
    if (elements_[i].name == name) return i;
  throw InvalidArgument(detail::concat("unknown element '", name, "'"));
}

std::vector<ElementId> Netlist::switches() const {
  return elements_of_kind(ElementKind::kSwitch);
}

std::vector<ElementId> Netlist::elements_of_kind(ElementKind kind) const {
  std::vector<ElementId> ids;
  for (std::size_t i = 0; i < elements_.size(); ++i)
    if (elements_[i].kind == kind) ids.push_back(i);
  return ids;
}

}  // namespace vpd
