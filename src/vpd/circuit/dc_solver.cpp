#include "vpd/circuit/dc_solver.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

DcSolution::DcSolution(const Netlist& netlist, Vector node_voltages,
                       Vector branch_currents, const MnaLayout& layout,
                       SwitchStates switch_states, double time)
    : netlist_(&netlist),
      node_voltages_(std::move(node_voltages)),
      branch_currents_(std::move(branch_currents)),
      node_unknowns_(layout.node_unknowns()),
      switch_states_(std::move(switch_states)),
      time_(time) {
  branch_rows_.resize(netlist.element_count(), MnaLayout::kNoRow);
  for (std::size_t i = 0; i < netlist.element_count(); ++i)
    if (layout.has_branch(i)) branch_rows_[i] = layout.branch_row(i);
}

Voltage DcSolution::voltage(NodeId node) const {
  VPD_REQUIRE(node < node_voltages_.size(), "node id ", node,
              " out of range");
  return Voltage{node_voltages_[node]};
}

Voltage DcSolution::voltage(const std::string& node_name) const {
  return voltage(netlist_->node(node_name));
}

Current DcSolution::current(ElementId element) const {
  const Element& e = netlist_->element(element);
  const double va = node_voltages_[e.node_a];
  const double vb = node_voltages_[e.node_b];
  switch (e.kind) {
    case ElementKind::kResistor:
      return Current{(va - vb) / e.value};
    case ElementKind::kCapacitor:
      return Current{0.0};
    case ElementKind::kSwitch: {
      // Position within netlist.switches() order.
      std::size_t position = 0;
      for (ElementId id : netlist_->switches()) {
        if (id == element) break;
        ++position;
      }
      const double r = switch_resistance(e, switch_states_[position]);
      return Current{(va - vb) / r};
    }
    case ElementKind::kCurrentSource:
      return Current{e.source(time_)};
    case ElementKind::kVoltageSource:
    case ElementKind::kInductor:
      return Current{branch_currents_[branch_rows_[element] - node_unknowns_]};
  }
  throw InvalidArgument("unknown element kind");
}

Current DcSolution::current(const std::string& element_name) const {
  return current(netlist_->element_id(element_name));
}

Power DcSolution::power(ElementId element) const {
  const Element& e = netlist_->element(element);
  const double va = node_voltages_[e.node_a];
  const double vb = node_voltages_[e.node_b];
  if (e.kind == ElementKind::kCurrentSource) {
    // Source pushes current from node_a to node_b through itself; power
    // absorbed is v_ab * i with current entering at a.
    return Power{(va - vb) * e.source(time_)};
  }
  return Power{(va - vb) * current(element).value};
}

Power DcSolution::power(const std::string& element_name) const {
  return power(netlist_->element_id(element_name));
}

Power DcSolution::total_power() const {
  Power total{0.0};
  for (std::size_t i = 0; i < netlist_->element_count(); ++i)
    total += power(i);
  return total;
}

Power DcSolution::dissipated_power() const {
  Power total{0.0};
  for (std::size_t i = 0; i < netlist_->element_count(); ++i) {
    const ElementKind kind = netlist_->element(i).kind;
    if (kind == ElementKind::kResistor || kind == ElementKind::kSwitch)
      total += power(i);
  }
  return total;
}

DcSolution solve_dc(const Netlist& netlist, const DcOptions& options) {
  const MnaLayout layout(netlist);
  MnaStamper stamper(layout);

  SwitchStates states =
      options.switch_states.value_or(initial_switch_states(netlist));
  VPD_REQUIRE(states.size() == netlist.switches().size(),
              "switch_states has ", states.size(), " entries, netlist has ",
              netlist.switches().size(), " switches");

  std::size_t switch_position = 0;
  for (std::size_t i = 0; i < netlist.element_count(); ++i) {
    const Element& e = netlist.element(i);
    switch (e.kind) {
      case ElementKind::kResistor:
        stamper.stamp_conductance(e.node_a, e.node_b, 1.0 / e.value);
        break;
      case ElementKind::kCapacitor:
        break;  // open in DC
      case ElementKind::kSwitch: {
        const double r = switch_resistance(e, states[switch_position++]);
        stamper.stamp_conductance(e.node_a, e.node_b, 1.0 / r);
        break;
      }
      case ElementKind::kCurrentSource:
        stamper.stamp_current_injection(e.node_a, e.node_b,
                                        e.source(options.time));
        break;
      case ElementKind::kVoltageSource:
        stamper.stamp_voltage_source(layout.branch_row(i), e.node_a, e.node_b,
                                     e.source(options.time));
        break;
      case ElementKind::kInductor:
        stamper.stamp_inductor_branch(layout.branch_row(i), e.node_a,
                                      e.node_b, /*r_equiv=*/0.0, /*rhs=*/0.0);
        break;
    }
  }
  stamper.stamp_gmin(options.gmin);

  const Vector x = solve_dense(stamper.matrix(), stamper.rhs());

  Vector node_voltages(netlist.node_count(), 0.0);
  for (NodeId n = 1; n < netlist.node_count(); ++n)
    node_voltages[n] = x[layout.node_row(n)];
  Vector branch_currents(x.begin() + static_cast<long>(layout.node_unknowns()),
                         x.end());
  return DcSolution(netlist, std::move(node_voltages),
                    std::move(branch_currents), layout, std::move(states),
                    options.time);
}

}  // namespace vpd
