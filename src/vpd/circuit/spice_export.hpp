// SPICE netlist export: writes a vpd::Netlist as a standard .cir deck so
// results can be cross-checked in ngspice/LTspice or shared with circuit
// designers. Time-varying sources are sampled at t = 0 with a comment;
// switches are exported at a chosen static state (as resistors), because
// a portable SPICE switch needs a control network this library does not
// model.
#pragma once

#include <optional>
#include <string>

#include "vpd/circuit/mna.hpp"
#include "vpd/circuit/netlist.hpp"

namespace vpd {

struct SpiceExportOptions {
  std::string title{"vpd netlist"};
  /// Switch states to freeze into resistors; defaults to initial states.
  std::optional<SwitchStates> switch_states;
  /// Emit a .op card.
  bool operating_point{true};
  /// Optional .tran card: "tstep tstop" (e.g. "1n 100u"); empty = none.
  std::string tran_card;
  /// Include element initial conditions (IC=) on C and L.
  bool initial_conditions{true};
};

/// Renders the netlist as a SPICE deck. Node 0 is ground; other nodes use
/// their vpd names (sanitized to alphanumerics/underscore).
std::string to_spice(const Netlist& netlist,
                     const SpiceExportOptions& options = {});

}  // namespace vpd
