// DC operating-point analysis: capacitors open, inductors short, sources at
// t = 0. Every element is linear, so the operating point is one LU solve.
#pragma once

#include <optional>

#include "vpd/circuit/mna.hpp"
#include "vpd/circuit/netlist.hpp"
#include "vpd/common/matrix.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

struct DcOptions {
  /// Leak conductance node->ground to keep floating nodes solvable.
  double gmin{1e-12};
  /// Switch states; defaults to each switch's `initially_closed`.
  std::optional<SwitchStates> switch_states;
  /// Time at which time-varying sources are evaluated.
  double time{0.0};
};

/// Operating point. Currents follow the a->b (pos->neg / from->to) element
/// orientation.
class DcSolution {
 public:
  DcSolution(const Netlist& netlist, Vector node_voltages,
             Vector branch_currents, const MnaLayout& layout,
             SwitchStates switch_states, double time);

  /// Node voltage relative to ground.
  Voltage voltage(NodeId node) const;
  Voltage voltage(const std::string& node_name) const;

  /// Current through an element in its a->b orientation. Capacitors carry
  /// zero DC current; V sources and inductors report their branch unknown.
  Current current(ElementId element) const;
  Current current(const std::string& element_name) const;

  /// Power absorbed by an element: v_ab * i_ab. Positive for dissipation,
  /// negative for elements delivering power (sources).
  Power power(ElementId element) const;
  Power power(const std::string& element_name) const;

  /// Sum of power absorbed by all elements; ~0 for a consistent solution
  /// (Tellegen's theorem) up to gmin leakage.
  Power total_power() const;

  /// Total power dissipated in resistors and switches.
  Power dissipated_power() const;

 private:
  const Netlist* netlist_;
  Vector node_voltages_;    // indexed by NodeId; [0] = 0 (ground)
  Vector branch_currents_;  // indexed by branch row - node_unknowns
  std::size_t node_unknowns_;
  std::vector<std::size_t> branch_rows_;  // per element, kNoRow if none
  SwitchStates switch_states_;
  double time_;
};

/// Solves the DC operating point. Throws NumericalError on singular
/// topologies (e.g. a voltage-source loop).
DcSolution solve_dc(const Netlist& netlist, const DcOptions& options = {});

}  // namespace vpd
