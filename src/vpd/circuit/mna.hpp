// Modified nodal analysis: unknown layout and matrix stamping shared by the
// DC and transient solvers.
//
// Unknowns are the non-ground node voltages followed by one branch current
// per voltage source and per inductor (inductors use the branch formulation
// so DC treats them as exact shorts and transient companion models stay
// well-conditioned for small L/h).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "vpd/circuit/netlist.hpp"
#include "vpd/common/matrix.hpp"

namespace vpd {

/// Maps netlist nodes/elements to MNA matrix rows.
class MnaLayout {
 public:
  static constexpr std::size_t kNoRow = std::numeric_limits<std::size_t>::max();

  explicit MnaLayout(const Netlist& netlist);

  std::size_t unknown_count() const { return unknown_count_; }
  std::size_t node_unknowns() const { return node_unknowns_; }

  /// Row of a node voltage unknown; kNoRow for ground.
  std::size_t node_row(NodeId node) const;
  /// Row of the branch-current unknown of a V source or inductor.
  /// Throws InvalidArgument for other element kinds.
  std::size_t branch_row(ElementId element) const;
  /// True if the element carries a branch-current unknown.
  bool has_branch(ElementId element) const;

 private:
  std::size_t node_unknowns_{0};
  std::size_t unknown_count_{0};
  std::vector<std::size_t> branch_rows_;  // indexed by ElementId
};

/// Accumulates MNA stamps into a dense system A x = b.
class MnaStamper {
 public:
  MnaStamper(const MnaLayout& layout);

  Matrix& matrix() { return a_; }
  Vector& rhs() { return b_; }
  const Matrix& matrix() const { return a_; }
  const Vector& rhs() const { return b_; }

  /// Conductance g between nodes a and b.
  void stamp_conductance(NodeId a, NodeId b, double g);
  /// Current `i` injected into node `to` and drawn from node `from`
  /// (i.e. an ideal current source from -> to).
  void stamp_current_injection(NodeId from, NodeId to, double i);
  /// Ideal voltage source pos->neg of value `volts` on branch row `row`.
  /// Branch current is defined flowing pos -> neg through the source
  /// (SPICE convention: negative when the source delivers power).
  void stamp_voltage_source(std::size_t row, NodeId pos, NodeId neg,
                            double volts);
  /// Inductor branch: v_a - v_b - r_equiv * i = rhs on branch row `row`.
  /// DC uses r_equiv = 0, rhs = 0 (a short); transient companion models use
  /// r_equiv = L/h (BE) or 2L/h (trapezoidal) with the matching history rhs.
  void stamp_inductor_branch(std::size_t row, NodeId a, NodeId b,
                             double r_equiv, double rhs);
  /// Small conductance from every node to ground; keeps matrices
  /// nonsingular when capacitors leave nodes floating in DC.
  void stamp_gmin(double gmin);

 private:
  const MnaLayout& layout_;
  Matrix a_;
  Vector b_;
};

/// Switch states indexed in netlist.switches() order.
using SwitchStates = std::vector<bool>;

/// Initial switch states from each switch's `initially_closed` flag.
SwitchStates initial_switch_states(const Netlist& netlist);

/// Resistance of switch `e` given its state.
double switch_resistance(const Element& e, bool closed);

}  // namespace vpd
