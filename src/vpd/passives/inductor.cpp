#include "vpd/passives/inductor.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

const char* to_string(InductorIntegration integration) {
  switch (integration) {
    case InductorIntegration::kEmbeddedInterposer: return "embedded-interposer";
    case InductorIntegration::kEmbeddedPackage: return "embedded-package";
    case InductorIntegration::kDiscreteOnInterposer:
      return "discrete-on-interposer";
    case InductorIntegration::kDiscretePcb: return "discrete-pcb";
  }
  return "unknown";
}

InductorTechnology embedded_interposer_inductor_technology() {
  InductorTechnology t;
  t.integration = InductorIntegration::kEmbeddedInterposer;
  t.name = "embedded-interposer";
  t.max_current_density = CurrentDensity{1e6};  // 1 A/mm^2 [14]
  t.inductance_density = 150e-9 / 1e-6;  // ~150 nH per mm^2
  t.dcr_coefficient = 8e4;  // 1 uH in 10 mm^2 -> ~8 mOhm
  t.ac_resistance_factor = 4.0;
  return t;
}

InductorTechnology embedded_package_inductor_technology() {
  InductorTechnology t;
  t.integration = InductorIntegration::kEmbeddedPackage;
  t.name = "embedded-package";
  t.max_current_density = CurrentDensity{1e6};  // 1 A/mm^2 [14]
  t.inductance_density = 250e-9 / 1e-6;  // ~250 nH per mm^2
  t.dcr_coefficient = 5e4;
  t.ac_resistance_factor = 3.5;
  return t;
}

InductorTechnology discrete_interposer_inductor_technology() {
  InductorTechnology t;
  t.integration = InductorIntegration::kDiscreteOnInterposer;
  t.name = "discrete-on-interposer";
  t.max_current_density = CurrentDensity{3e6};  // 3 A/mm^2 footprint
  t.inductance_density = 1000e-9 / 1e-6;  // 1 uH per mm^2 (chip inductor)
  t.dcr_coefficient = 2e4;
  t.ac_resistance_factor = 3.0;
  return t;
}

InductorTechnology discrete_pcb_inductor_technology() {
  InductorTechnology t;
  t.integration = InductorIntegration::kDiscretePcb;
  t.name = "discrete-pcb";
  t.max_current_density = CurrentDensity{8e6};  // tall ferrite power parts
  t.inductance_density = 4000e-9 / 1e-6;
  t.dcr_coefficient = 5e3;
  t.ac_resistance_factor = 2.5;
  return t;
}

Inductor::Inductor(InductorTechnology tech, Inductance inductance,
                   Current rated_current)
    : tech_(std::move(tech)), inductance_(inductance), rated_(rated_current) {
  VPD_REQUIRE(inductance.value > 0.0, "inductance must be positive, got ",
              inductance.value);
  VPD_REQUIRE(rated_current.value > 0.0, "rated current must be positive");
  VPD_REQUIRE(tech_.max_current_density.value > 0.0 &&
                  tech_.inductance_density > 0.0,
              "technology '", tech_.name, "' has non-positive densities");
}

Area Inductor::footprint() const {
  const double current_limited =
      rated_.value / tech_.max_current_density.value;
  const double inductance_limited =
      inductance_.value / tech_.inductance_density;
  return Area{std::max(current_limited, inductance_limited)};
}

Resistance Inductor::dcr() const {
  return Resistance{tech_.dcr_coefficient * inductance_.value /
                    footprint().value * 1e-6};
}

bool Inductor::saturates_at(Current peak) const {
  return std::fabs(peak.value) > rated_.value;
}

Power Inductor::loss(Current dc_current, Current ripple_pp) const {
  VPD_REQUIRE(ripple_pp.value >= 0.0, "negative ripple");
  const double r_dc = dcr().value;
  const double r_ac = r_dc * tech_.ac_resistance_factor;
  const double i_ac_rms = ripple_pp.value / (2.0 * std::sqrt(3.0));
  return Power{dc_current.value * dc_current.value * r_dc +
               i_ac_rms * i_ac_rms * r_ac};
}

}  // namespace vpd
