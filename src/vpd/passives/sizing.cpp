#include "vpd/passives/sizing.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

double buck_duty(Voltage v_in, Voltage v_out) {
  VPD_REQUIRE(v_in.value > 0.0 && v_out.value > 0.0 &&
                  v_out.value < v_in.value,
              "need 0 < Vout < Vin, got Vin=", v_in.value,
              " Vout=", v_out.value);
  return v_out.value / v_in.value;
}

Inductance buck_inductor_for_ripple(Voltage v_in, Voltage v_out,
                                    Frequency f_sw, Current ripple_pp) {
  const double d = buck_duty(v_in, v_out);
  VPD_REQUIRE(f_sw.value > 0.0, "frequency must be positive");
  VPD_REQUIRE(ripple_pp.value > 0.0, "ripple must be positive");
  return Inductance{v_out.value * (1.0 - d) /
                    (ripple_pp.value * f_sw.value)};
}

Current buck_inductor_ripple(Voltage v_in, Voltage v_out, Frequency f_sw,
                             Inductance l) {
  const double d = buck_duty(v_in, v_out);
  VPD_REQUIRE(f_sw.value > 0.0, "frequency must be positive");
  VPD_REQUIRE(l.value > 0.0, "inductance must be positive");
  return Current{v_out.value * (1.0 - d) / (l.value * f_sw.value)};
}

Capacitance buck_output_capacitor_for_ripple(Current inductor_ripple_pp,
                                             Frequency f_sw,
                                             Voltage ripple_pp) {
  VPD_REQUIRE(inductor_ripple_pp.value > 0.0, "ripple current must be positive");
  VPD_REQUIRE(f_sw.value > 0.0, "frequency must be positive");
  VPD_REQUIRE(ripple_pp.value > 0.0, "voltage ripple must be positive");
  return Capacitance{inductor_ripple_pp.value /
                     (8.0 * f_sw.value * ripple_pp.value)};
}

Voltage buck_output_ripple(Current inductor_ripple_pp, Frequency f_sw,
                           Capacitance c_out) {
  VPD_REQUIRE(inductor_ripple_pp.value >= 0.0, "negative ripple current");
  VPD_REQUIRE(f_sw.value > 0.0, "frequency must be positive");
  VPD_REQUIRE(c_out.value > 0.0, "capacitance must be positive");
  return Voltage{inductor_ripple_pp.value /
                 (8.0 * f_sw.value * c_out.value)};
}

double interleaving_ripple_factor(double duty, unsigned phases) {
  VPD_REQUIRE(duty > 0.0 && duty < 1.0, "duty ", duty, " outside (0,1)");
  VPD_REQUIRE(phases >= 1, "need at least one phase");
  if (phases == 1) return 1.0;
  // Aggregate ripple of N interleaved phases relative to a single phase:
  // with m = floor(N*D), factor = (N*D - m) * (m + 1 - N*D) / (N * D * (1-D)).
  const double nd = phases * duty;
  const double m = std::floor(nd);
  const double factor =
      (nd - m) * (m + 1.0 - nd) / (phases * duty * (1.0 - duty));
  return factor;
}

}  // namespace vpd
