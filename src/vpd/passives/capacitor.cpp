#include "vpd/passives/capacitor.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

const char* to_string(CapacitorIntegration integration) {
  switch (integration) {
    case CapacitorIntegration::kDiscreteMlcc: return "discrete-mlcc";
    case CapacitorIntegration::kDeepTrench: return "deep-trench";
    case CapacitorIntegration::kPlanarEmbedded: return "planar-embedded";
  }
  return "unknown";
}

CapacitorTechnology mlcc_technology() {
  CapacitorTechnology t;
  t.integration = CapacitorIntegration::kDiscreteMlcc;
  t.name = "MLCC";
  t.capacitance_density = 10e-6 / 1e-6;   // ~10 uF per mm^2 footprint
  t.esr_coefficient = 2e-3 * 22e-6;       // 22 uF part -> ~2 mOhm
  t.bias_derating = 0.55;                 // class-II ceramic at rated bias
  t.max_rating = Voltage{100.0};
  return t;
}

CapacitorTechnology deep_trench_technology() {
  CapacitorTechnology t;
  t.integration = CapacitorIntegration::kDeepTrench;
  t.name = "deep-trench";
  t.capacitance_density = 1e-6 / 1e-6;    // ~1 uF per mm^2
  t.esr_coefficient = 5e-3 * 1e-6;        // 1 uF -> ~5 mOhm
  t.bias_derating = 0.95;
  t.max_rating = Voltage{14.0};
  return t;
}

CapacitorTechnology planar_embedded_technology() {
  CapacitorTechnology t;
  t.integration = CapacitorIntegration::kPlanarEmbedded;
  t.name = "planar-embedded";
  t.capacitance_density = 50e-9 / 1e-6;   // ~50 nF per mm^2
  t.esr_coefficient = 10e-3 * 100e-9;     // 100 nF -> ~10 mOhm
  t.bias_derating = 0.98;
  t.max_rating = Voltage{60.0};
  return t;
}

Capacitor::Capacitor(CapacitorTechnology tech, Capacitance nominal,
                     Voltage rating)
    : tech_(std::move(tech)), nominal_(nominal), rating_(rating) {
  VPD_REQUIRE(nominal.value > 0.0, "capacitance must be positive, got ",
              nominal.value);
  VPD_REQUIRE(rating.value > 0.0, "rating must be positive");
  VPD_REQUIRE(rating.value <= tech_.max_rating.value, "rating ", rating.value,
              " V exceeds technology '", tech_.name, "' limit ",
              tech_.max_rating.value, " V");
  VPD_REQUIRE(tech_.capacitance_density > 0.0 && tech_.esr_coefficient > 0.0,
              "technology '", tech_.name, "' has non-positive parameters");
}

Capacitance Capacitor::effective() const {
  return Capacitance{nominal_.value * tech_.bias_derating};
}

Area Capacitor::footprint() const {
  return Area{nominal_.value / tech_.capacitance_density};
}

Resistance Capacitor::esr() const {
  return Resistance{tech_.esr_coefficient / nominal_.value};
}

Power Capacitor::loss(Current ripple_rms) const {
  VPD_REQUIRE(ripple_rms.value >= 0.0, "negative ripple current");
  return Power{ripple_rms.value * ripple_rms.value * esr().value};
}

Energy Capacitor::stored_energy(Voltage bias) const {
  return Energy{0.5 * effective().value * bias.value * bias.value};
}

}  // namespace vpd
