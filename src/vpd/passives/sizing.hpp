// Ripple-driven filter sizing for buck-derived converter stages: the
// standard steady-state relations between switching frequency, duty cycle,
// inductance, capacitance, and ripple.
#pragma once

#include "vpd/common/units.hpp"

namespace vpd {

/// Buck duty cycle D = Vout / Vin. Throws unless 0 < Vout < Vin.
double buck_duty(Voltage v_in, Voltage v_out);

/// Inductance for a target peak-to-peak inductor current ripple:
/// L = Vout * (1 - D) / (dI * f).
Inductance buck_inductor_for_ripple(Voltage v_in, Voltage v_out,
                                    Frequency f_sw, Current ripple_pp);

/// Peak-to-peak inductor ripple of a given inductor:
/// dI = Vout * (1 - D) / (L * f).
Current buck_inductor_ripple(Voltage v_in, Voltage v_out, Frequency f_sw,
                             Inductance l);

/// Output capacitance for a target output voltage ripple (capacitor-
/// dominated): C = dI / (8 * f * dV).
Capacitance buck_output_capacitor_for_ripple(Current inductor_ripple_pp,
                                             Frequency f_sw,
                                             Voltage ripple_pp);

/// Output voltage ripple given the output capacitance.
Voltage buck_output_ripple(Current inductor_ripple_pp, Frequency f_sw,
                           Capacitance c_out);

/// Effective duty seen by an N-phase interleaved buck's output capacitor:
/// ripple cancellation reduces the per-phase ripple by the standard factor
/// (N * D' - floor(N * D')) * (1 - (N * D' - floor(N * D'))) / (N * D' ...).
/// We expose the simpler, widely used cancellation multiplier for the
/// aggregate current ripple.
double interleaving_ripple_factor(double duty, unsigned phases);

}  // namespace vpd
