// Capacitor models for integrated voltage regulators: discrete MLCCs,
// silicon deep-trench capacitors (interposer-embeddable), and planar
// build-up capacitors. Capacitance density and ESR set the area cost and
// loss of the flying/decoupling banks in the converter topologies.
#pragma once

#include <string>

#include "vpd/common/units.hpp"

namespace vpd {

enum class CapacitorIntegration {
  kDiscreteMlcc,      // surface-mount MLCC (PCB / interposer top)
  kDeepTrench,        // Si deep-trench, in-interposer
  kPlanarEmbedded,    // laminate build-up planar capacitor
};

const char* to_string(CapacitorIntegration integration);

struct CapacitorTechnology {
  CapacitorIntegration integration{CapacitorIntegration::kDiscreteMlcc};
  std::string name;
  /// Capacitance per footprint area [F/m^2].
  double capacitance_density{0.0};
  /// ESR coefficient: esr = coefficient / C [Ohm * F].
  double esr_coefficient{0.0};
  /// Fraction of nominal capacitance retained at rated DC bias (MLCC
  /// class-II ceramics derate heavily; trench and planar caps barely).
  double bias_derating{1.0};
  Voltage max_rating{Voltage{100.0}};
};

CapacitorTechnology mlcc_technology();
CapacitorTechnology deep_trench_technology();
CapacitorTechnology planar_embedded_technology();

class Capacitor {
 public:
  Capacitor(CapacitorTechnology tech, Capacitance nominal, Voltage rating);

  const CapacitorTechnology& technology() const { return tech_; }
  Capacitance nominal() const { return nominal_; }
  Voltage rating() const { return rating_; }

  /// Capacitance at full rated DC bias.
  Capacitance effective() const;

  Area footprint() const;
  Resistance esr() const;

  /// ESR loss at a given RMS ripple current.
  Power loss(Current ripple_rms) const;

  /// Energy stored at a given bias voltage: C_eff * V^2 / 2.
  Energy stored_energy(Voltage bias) const;

 private:
  CapacitorTechnology tech_;
  Capacitance nominal_;
  Voltage rating_;
};

}  // namespace vpd
