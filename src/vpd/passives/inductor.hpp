// Inductor models for integrated voltage regulators. The key constraint the
// paper highlights ([14], Section IV): state-of-the-art embedded (in-package
// / in-interposer) inductors only support ~1 A/mm^2 of footprint current
// density, so the inductor footprint — not the switch area — often limits
// how much current a small-form-factor VR can deliver.
#pragma once

#include <string>

#include "vpd/common/units.hpp"

namespace vpd {

enum class InductorIntegration {
  kEmbeddedInterposer,  // laminated in the interposer build-up layers
  kEmbeddedPackage,     // package-embedded (e.g. [14])
  kDiscreteOnInterposer,  // discrete chip inductor mounted on interposer
  kDiscretePcb,           // discrete power inductor on the PCB
};

const char* to_string(InductorIntegration integration);

/// Technology envelope for a class of inductors.
struct InductorTechnology {
  InductorIntegration integration{InductorIntegration::kEmbeddedPackage};
  std::string name;
  /// Max footprint current density [A/m^2].
  CurrentDensity max_current_density{CurrentDensity{1e6}};  // 1 A/mm^2
  /// Achievable inductance per footprint area [H/m^2].
  double inductance_density{0.0};
  /// DCR coefficient: dcr = coefficient * L / footprint [Ohm, with L in H
  /// and footprint in m^2 normalized by the reference below].
  double dcr_coefficient{0.0};
  /// AC-resistance multiplier applied to DCR for ripple-frequency current.
  double ac_resistance_factor{3.0};
};

InductorTechnology embedded_interposer_inductor_technology();
InductorTechnology embedded_package_inductor_technology();
InductorTechnology discrete_interposer_inductor_technology();
InductorTechnology discrete_pcb_inductor_technology();

/// An inductor instance: a technology committed to an inductance and a
/// rated (saturation) current. The footprint is the larger of the
/// current-density-limited and inductance-density-limited areas.
class Inductor {
 public:
  Inductor(InductorTechnology tech, Inductance inductance,
           Current rated_current);

  const InductorTechnology& technology() const { return tech_; }
  Inductance inductance() const { return inductance_; }
  Current rated_current() const { return rated_; }

  /// Footprint area implied by the technology limits.
  Area footprint() const;

  /// DC winding resistance.
  Resistance dcr() const;

  /// True if `peak` exceeds the rated (saturation) current.
  bool saturates_at(Current peak) const;

  /// Conduction loss: DCR * I_dc^2 plus AC loss on the triangular ripple
  /// (RMS of a triangle of peak-to-peak `ripple_pp` is pp / (2*sqrt(3))).
  Power loss(Current dc_current, Current ripple_pp) const;

 private:
  InductorTechnology tech_;
  Inductance inductance_;
  Current rated_;
};

}  // namespace vpd
