#include "vpd/io/schema.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "vpd/common/error.hpp"

namespace vpd {
namespace io {
namespace {

// Tolerant object reader: fields are pulled by name, absent fields fall
// back to the C++ default, and members nobody asked for are ignored — the
// v2 compatibility rule, which lets a v2 peer add fields without breaking
// a v1-era reader. Values remain strict: a present field with the wrong
// type or an unknown enum name still throws.
class FieldReader {
 public:
  FieldReader(const Value& v, const char* what)
      : object_(v.as_object()), what_(what) {}

  const Value* get(std::string_view key) const {
    for (std::size_t i = 0; i < object_.size(); ++i) {
      if (object_[i].first == key) return &object_[i].second;
    }
    return nullptr;
  }

  const Value& require(std::string_view key) const {
    const Value* v = get(key);
    if (v == nullptr) {
      throw InvalidArgument(detail::concat(what_, ": missing required field \"",
                                           key, "\""));
    }
    return *v;
  }

 private:
  const Value::Object& object_;
  const char* what_;
};

std::size_t as_index(const Value& v, const char* what) {
  const double n = v.as_number();
  if (n < 0.0 || n != std::floor(n) || n > 9.007199254740992e15) {
    throw InvalidArgument(
        detail::concat(what, ": expected a non-negative integer, got ",
                       dump_number(n)));
  }
  return static_cast<std::size_t>(n);
}

double number_or(FieldReader& r, std::string_view key, double fallback) {
  const Value* v = r.get(key);
  return v != nullptr ? v->as_number() : fallback;
}

bool bool_or(FieldReader& r, std::string_view key, bool fallback) {
  const Value* v = r.get(key);
  return v != nullptr ? v->as_bool() : fallback;
}

std::size_t index_or(FieldReader& r, std::string_view key,
                     std::size_t fallback) {
  const Value* v = r.get(key);
  return v != nullptr ? as_index(*v, "field") : fallback;
}

template <typename Kind, typename FromString>
Kind enum_from_json(const Value& v, const char* what, FromString candidates) {
  const std::string& name = v.as_string();
  for (Kind kind : candidates()) {
    if (name == to_string(kind)) return kind;
  }
  throw InvalidArgument(detail::concat("unknown ", what, " \"", name, "\""));
}

}  // namespace

void check_schema_version(const Value& v, const char* what) {
  if (!v.is_object()) return;  // shape errors surface in the field reads
  const Value* version = v.find("schema_version");
  if (version == nullptr) return;  // v1: the field did not exist yet
  const double n = version->as_number();
  if (n != std::floor(n) || n < 1.0 ||
      n > static_cast<double>(kSchemaVersion)) {
    throw InvalidArgument(detail::concat(
        what, ": unsupported schema_version ", dump_number(n),
        " (this build speaks versions 1..", kSchemaVersion, ")"));
  }
}

Value recover_wire_id(std::string_view line) {
  // Hand-rolled scan, not a parse: the whole point is that `line` already
  // failed the strict parser. Track brace/bracket depth and string state,
  // find the "id" key at depth 1, then parse just its scalar value.
  std::size_t depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t token_start = std::string_view::npos;  // current string token
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        if (depth == 1 && token_start != std::string_view::npos &&
            line.substr(token_start, i - token_start) == "id") {
          // Key candidate: confirm the next non-space char is ':'.
          std::size_t j = i + 1;
          while (j < line.size() &&
                 (line[j] == ' ' || line[j] == '\t')) {
            ++j;
          }
          if (j >= line.size() || line[j] != ':') continue;
          ++j;
          while (j < line.size() &&
                 (line[j] == ' ' || line[j] == '\t')) {
            ++j;
          }
          if (j >= line.size() || line[j] == '{' || line[j] == '[') {
            return Value();  // structured or truncated id: unrecoverable
          }
          // Scalar extent: a complete string, or the run up to the next
          // top-level delimiter.
          std::size_t end = j;
          if (line[j] == '"') {
            bool value_escaped = false;
            for (end = j + 1; end < line.size(); ++end) {
              if (value_escaped) {
                value_escaped = false;
              } else if (line[end] == '\\') {
                value_escaped = true;
              } else if (line[end] == '"') {
                ++end;
                break;
              }
            }
          } else {
            while (end < line.size() && line[end] != ',' &&
                   line[end] != '}' && line[end] != ' ' &&
                   line[end] != '\t' && line[end] != '\r') {
              ++end;
            }
          }
          try {
            return parse(line.substr(j, end - j));
          } catch (const Error&) {
            return Value();  // the id itself is malformed
          }
        }
        token_start = std::string_view::npos;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        token_start = i + 1;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (depth > 0) --depth;
        break;
      default:
        break;
    }
  }
  return Value();
}

// --- Enums -----------------------------------------------------------------

Value to_json(ArchitectureKind kind) { return Value(to_string(kind)); }
Value to_json(TopologyKind kind) { return Value(to_string(kind)); }
Value to_json(DeviceTechnology tech) { return Value(to_string(tech)); }
Value to_json(FaultKind kind) { return Value(to_string(kind)); }

ArchitectureKind architecture_from_json(const Value& v) {
  return enum_from_json<ArchitectureKind>(v, "architecture",
                                          all_architectures);
}

TopologyKind topology_from_json(const Value& v) {
  return enum_from_json<TopologyKind>(v, "topology", all_topologies);
}

DeviceTechnology technology_from_json(const Value& v) {
  return enum_from_json<DeviceTechnology>(v, "device technology", [] {
    return std::vector<DeviceTechnology>{DeviceTechnology::kSilicon,
                                         DeviceTechnology::kGalliumNitride};
  });
}

FaultKind fault_kind_from_json(const Value& v) {
  return enum_from_json<FaultKind>(v, "fault kind", [] {
    return std::vector<FaultKind>{
        FaultKind::kVrDropout, FaultKind::kVrDerate, FaultKind::kAttachFault,
        FaultKind::kMeshRegionFault, FaultKind::kStage2Dropout};
  });
}

// --- Spec and options ------------------------------------------------------

Value to_json(const PowerDeliverySpec& spec) {
  Value v = Value::object();
  v.set("total_power", spec.total_power.value);
  v.set("pcb_voltage", spec.pcb_voltage.value);
  v.set("die_voltage", spec.die_voltage.value);
  v.set("die_area", spec.die_area.value);
  return v;
}

PowerDeliverySpec spec_from_json(const Value& v) {
  FieldReader r(v, "spec");
  PowerDeliverySpec spec;
  spec.total_power = Power{number_or(r, "total_power", spec.total_power.value)};
  spec.pcb_voltage = Voltage{number_or(r, "pcb_voltage", spec.pcb_voltage.value)};
  spec.die_voltage = Voltage{number_or(r, "die_voltage", spec.die_voltage.value)};
  spec.die_area = Area{number_or(r, "die_area", spec.die_area.value)};
  spec.validate();
  return spec;
}

Value to_json(const EdgeScaleRegion& region) {
  Value v = Value::object();
  v.set("x0", region.x0.value);
  v.set("y0", region.y0.value);
  v.set("x1", region.x1.value);
  v.set("y1", region.y1.value);
  v.set("scale", region.scale);
  return v;
}

EdgeScaleRegion edge_scale_region_from_json(const Value& v) {
  FieldReader r(v, "mesh_perturbation region");
  EdgeScaleRegion region;
  region.x0 = Length{r.require("x0").as_number()};
  region.y0 = Length{r.require("y0").as_number()};
  region.x1 = Length{r.require("x1").as_number()};
  region.y1 = Length{r.require("y1").as_number()};
  region.scale = number_or(r, "scale", region.scale);
  return region;
}

Value to_json(const VrDerate& derate) {
  Value v = Value::object();
  v.set("current_limit_scale", derate.current_limit_scale);
  v.set("loss_scale", derate.loss_scale);
  return v;
}

VrDerate vr_derate_from_json(const Value& v) {
  FieldReader r(v, "derate");
  VrDerate derate;
  derate.current_limit_scale =
      number_or(r, "current_limit_scale", derate.current_limit_scale);
  derate.loss_scale = number_or(r, "loss_scale", derate.loss_scale);
  return derate;
}

Value to_json(const FaultInjection& injection) {
  Value v = Value::object();
  Value dropped = Value::array();
  for (std::size_t site : injection.dropped_sites) dropped.push_back(site);
  v.set("dropped_sites", std::move(dropped));
  Value attach = Value::array();
  for (const auto& [site, scale] : injection.attach_scale) {
    Value entry = Value::object();
    entry.set("site", site);
    entry.set("scale", scale);
    attach.push_back(std::move(entry));
  }
  v.set("attach_scale", std::move(attach));
  Value derates = Value::array();
  for (const auto& [site, derate] : injection.derates) {
    Value entry = Value::object();
    entry.set("site", site);
    entry.set("current_limit_scale", derate.current_limit_scale);
    entry.set("loss_scale", derate.loss_scale);
    derates.push_back(std::move(entry));
  }
  v.set("derates", std::move(derates));
  Value stage2 = Value::array();
  for (std::size_t site : injection.dropped_stage2) stage2.push_back(site);
  v.set("dropped_stage2", std::move(stage2));
  Value regions = Value::array();
  for (const EdgeScaleRegion& region : injection.mesh_perturbation) {
    regions.push_back(to_json(region));
  }
  v.set("mesh_perturbation", std::move(regions));
  return v;
}

FaultInjection fault_injection_from_json(const Value& v) {
  FieldReader r(v, "faults");
  FaultInjection injection;
  if (const Value* sites = r.get("dropped_sites")) {
    for (const Value& site : sites->as_array()) {
      injection.dropped_sites.push_back(as_index(site, "dropped_sites"));
    }
  }
  if (const Value* attach = r.get("attach_scale")) {
    for (const Value& entry : attach->as_array()) {
      FieldReader er(entry, "attach_scale entry");
      const std::size_t site = as_index(er.require("site"), "attach site");
      const double scale = er.require("scale").as_number();
      injection.attach_scale.emplace_back(site, scale);
    }
  }
  if (const Value* derates = r.get("derates")) {
    for (const Value& entry : derates->as_array()) {
      FieldReader er(entry, "derate entry");
      const std::size_t site = as_index(er.require("site"), "derate site");
      VrDerate derate;
      derate.current_limit_scale =
          number_or(er, "current_limit_scale", derate.current_limit_scale);
      derate.loss_scale = number_or(er, "loss_scale", derate.loss_scale);
      injection.derates.emplace_back(site, derate);
    }
  }
  if (const Value* stage2 = r.get("dropped_stage2")) {
    for (const Value& site : stage2->as_array()) {
      injection.dropped_stage2.push_back(as_index(site, "dropped_stage2"));
    }
  }
  if (const Value* regions = r.get("mesh_perturbation")) {
    for (const Value& region : regions->as_array()) {
      injection.mesh_perturbation.push_back(edge_scale_region_from_json(region));
    }
  }
  return injection;
}

Value to_json(const EvaluationOptions& options) {
  VPD_REQUIRE(!options.sink_map,
              "EvaluationOptions::sink_map is a C++ callback and has no "
              "wire representation");
  Value v = Value::object();
  v.set("mesh_nodes", options.mesh_nodes);
  v.set("distribution_sheet_ohms", options.distribution_sheet_ohms);
  v.set("vr_attach_series", options.vr_attach_series.value);
  v.set("vr_patch", options.vr_patch.value);
  v.set("ring_series_squares", options.ring_series_squares);
  v.set("derating", options.derating);
  v.set("below_die_area_fraction", options.below_die_area_fraction);
  v.set("allow_extrapolation", options.allow_extrapolation);
  v.set("fixed_final_stage_vrs", options.fixed_final_stage_vrs);
  v.set("max_periphery_rings", options.max_periphery_rings);
  v.set("irdrop_relative_tolerance", options.irdrop_relative_tolerance);
  v.set("cg_warm_start", options.cg_warm_start);
  v.set("irdrop_preconditioner",
        options.irdrop_preconditioner.has_value()
            ? std::string(to_string(*options.irdrop_preconditioner))
            : std::string("auto"));
  v.set("faults", to_json(options.faults));
  return v;
}

EvaluationOptions evaluation_options_from_json(const Value& v) {
  FieldReader r(v, "options");
  EvaluationOptions options;
  options.mesh_nodes = index_or(r, "mesh_nodes", options.mesh_nodes);
  options.distribution_sheet_ohms = number_or(
      r, "distribution_sheet_ohms", options.distribution_sheet_ohms);
  options.vr_attach_series =
      Resistance{number_or(r, "vr_attach_series",
                           options.vr_attach_series.value)};
  options.vr_patch = Length{number_or(r, "vr_patch", options.vr_patch.value)};
  options.ring_series_squares =
      number_or(r, "ring_series_squares", options.ring_series_squares);
  options.derating = number_or(r, "derating", options.derating);
  options.below_die_area_fraction = number_or(
      r, "below_die_area_fraction", options.below_die_area_fraction);
  options.allow_extrapolation =
      bool_or(r, "allow_extrapolation", options.allow_extrapolation);
  options.fixed_final_stage_vrs = static_cast<unsigned>(
      index_or(r, "fixed_final_stage_vrs", options.fixed_final_stage_vrs));
  options.max_periphery_rings = static_cast<unsigned>(
      index_or(r, "max_periphery_rings", options.max_periphery_rings));
  options.irdrop_relative_tolerance = number_or(
      r, "irdrop_relative_tolerance", options.irdrop_relative_tolerance);
  options.cg_warm_start = bool_or(r, "cg_warm_start", options.cg_warm_start);
  // Optional so pre-preconditioner requests keep parsing; absent and
  // "auto" both mean the automatic mesh-size choice (see
  // resolved_irdrop_preconditioner).
  if (const Value* precond = r.get("irdrop_preconditioner")) {
    const std::string& name = precond->as_string();
    if (name == "auto") {
      options.irdrop_preconditioner.reset();
    } else if (name == to_string(CgPreconditioner::kJacobi)) {
      options.irdrop_preconditioner = CgPreconditioner::kJacobi;
    } else if (name == to_string(CgPreconditioner::kIncompleteCholesky)) {
      options.irdrop_preconditioner = CgPreconditioner::kIncompleteCholesky;
    } else if (name == to_string(CgPreconditioner::kMultigrid)) {
      options.irdrop_preconditioner = CgPreconditioner::kMultigrid;
    } else {
      throw InvalidArgument(detail::concat(
          "unknown irdrop_preconditioner \"", name,
          "\" (expected \"auto\", \"jacobi\", \"ic0\" or \"multigrid\")"));
    }
  }
  if (const Value* faults = r.get("faults")) {
    options.faults = fault_injection_from_json(*faults);
  }
  return options;
}

// --- Fault scenarios -------------------------------------------------------

Value to_json(const Fault& fault) {
  Value v = Value::object();
  v.set("kind", to_json(fault.kind));
  if (fault.kind == FaultKind::kMeshRegionFault) {
    v.set("x", fault.x.value);
    v.set("y", fault.y.value);
  } else {
    v.set("site", fault.site);
  }
  return v;
}

Fault fault_from_json(const Value& v) {
  FieldReader r(v, "fault");
  Fault fault;
  fault.kind = fault_kind_from_json(r.require("kind"));
  if (fault.kind == FaultKind::kMeshRegionFault) {
    fault.x = Length{r.require("x").as_number()};
    fault.y = Length{r.require("y").as_number()};
  } else {
    fault.site = as_index(r.require("site"), "fault site");
  }
  return fault;
}

Value to_json(const FaultSeverity& severity) {
  Value v = Value::object();
  v.set("derate_current_limit_scale", severity.derate_current_limit_scale);
  v.set("derate_loss_scale", severity.derate_loss_scale);
  v.set("attach_resistance_scale", severity.attach_resistance_scale);
  v.set("mesh_conductance_scale", severity.mesh_conductance_scale);
  v.set("mesh_region_side", severity.mesh_region_side.value);
  return v;
}

FaultSeverity fault_severity_from_json(const Value& v) {
  FieldReader r(v, "fault_severity");
  FaultSeverity severity;
  severity.derate_current_limit_scale = number_or(
      r, "derate_current_limit_scale", severity.derate_current_limit_scale);
  severity.derate_loss_scale =
      number_or(r, "derate_loss_scale", severity.derate_loss_scale);
  severity.attach_resistance_scale = number_or(
      r, "attach_resistance_scale", severity.attach_resistance_scale);
  severity.mesh_conductance_scale = number_or(
      r, "mesh_conductance_scale", severity.mesh_conductance_scale);
  severity.mesh_region_side =
      Length{number_or(r, "mesh_region_side", severity.mesh_region_side.value)};
  severity.validate();
  return severity;
}

Value to_json(const FaultScenario& scenario) {
  Value v = Value::object();
  v.set("label", scenario.label);
  Value faults = Value::array();
  for (const Fault& fault : scenario.faults) faults.push_back(to_json(fault));
  v.set("faults", std::move(faults));
  return v;
}

FaultScenario fault_scenario_from_json(const Value& v) {
  FieldReader r(v, "fault_scenario");
  FaultScenario scenario;
  if (const Value* label = r.get("label")) scenario.label = label->as_string();
  if (const Value* faults = r.get("faults")) {
    for (const Value& fault : faults->as_array()) {
      scenario.faults.push_back(fault_from_json(fault));
    }
  }
  return scenario;
}

// --- Transient droop campaigns ---------------------------------------------

Value to_json(TransientKind kind) { return Value(to_string(kind)); }

TransientKind transient_kind_from_json(const Value& v) {
  return enum_from_json<TransientKind>(v, "transient kind",
                                       all_transient_kinds);
}

Value to_json(const TransientScenario& scenario) {
  Value v = Value::object();
  v.set("kind", to_json(scenario.kind));
  v.set("label", scenario.label);
  if (scenario.kind == TransientKind::kVrDropout) {
    v.set("site", scenario.site);
  } else {
    v.set("tile_x", scenario.tile_x);
    v.set("tile_y", scenario.tile_y);
    v.set("tile_sigma", scenario.tile_sigma);
    v.set("tile_background", scenario.tile_background);
    v.set("step_fraction", scenario.step_fraction);
  }
  v.set("base_fraction", scenario.base_fraction);
  v.set("t_event", scenario.t_event.value);
  v.set("edge", scenario.edge.value);
  if (scenario.kind == TransientKind::kLoadBurst) {
    v.set("burst_frequency", scenario.burst_frequency.value);
    v.set("burst_duty", scenario.burst_duty);
  }
  return v;
}

TransientScenario transient_scenario_from_json(const Value& v) {
  FieldReader r(v, "transient_scenario");
  TransientScenario scenario;
  scenario.kind = transient_kind_from_json(r.require("kind"));
  if (const Value* label = r.get("label")) {
    scenario.label = label->as_string();
  }
  scenario.tile_x = number_or(r, "tile_x", scenario.tile_x);
  scenario.tile_y = number_or(r, "tile_y", scenario.tile_y);
  scenario.tile_sigma = number_or(r, "tile_sigma", scenario.tile_sigma);
  scenario.tile_background =
      number_or(r, "tile_background", scenario.tile_background);
  scenario.base_fraction =
      number_or(r, "base_fraction", scenario.base_fraction);
  scenario.step_fraction =
      number_or(r, "step_fraction", scenario.step_fraction);
  scenario.t_event = Seconds{number_or(r, "t_event", scenario.t_event.value)};
  scenario.edge = Seconds{number_or(r, "edge", scenario.edge.value)};
  scenario.burst_frequency = Frequency{
      number_or(r, "burst_frequency", scenario.burst_frequency.value)};
  scenario.burst_duty = number_or(r, "burst_duty", scenario.burst_duty);
  scenario.site = index_or(r, "site", scenario.site);
  scenario.validate();
  return scenario;
}

Value to_json(const ResilienceSpec& rspec) {
  Value v = Value::object();
  v.set("droop_tolerance", rspec.droop_tolerance);
  v.set("vr_overcurrent_factor", rspec.vr_overcurrent_factor);
  v.set("interconnect_stress_margin", rspec.interconnect_stress_margin);
  v.set("transient_droop_tolerance", rspec.transient_droop_tolerance);
  v.set("settling_time_limit", rspec.settling_time_limit);
  v.set("recovery_band", rspec.recovery_band);
  v.set("steady_cycle_limit", rspec.steady_cycle_limit);
  return v;
}

ResilienceSpec resilience_spec_from_json(const Value& v) {
  FieldReader r(v, "resilience");
  ResilienceSpec rspec;
  rspec.droop_tolerance =
      number_or(r, "droop_tolerance", rspec.droop_tolerance);
  rspec.vr_overcurrent_factor =
      number_or(r, "vr_overcurrent_factor", rspec.vr_overcurrent_factor);
  rspec.interconnect_stress_margin = number_or(
      r, "interconnect_stress_margin", rspec.interconnect_stress_margin);
  rspec.transient_droop_tolerance = number_or(
      r, "transient_droop_tolerance", rspec.transient_droop_tolerance);
  rspec.settling_time_limit =
      number_or(r, "settling_time_limit", rspec.settling_time_limit);
  rspec.recovery_band = number_or(r, "recovery_band", rspec.recovery_band);
  rspec.steady_cycle_limit =
      index_or(r, "steady_cycle_limit", rspec.steady_cycle_limit);
  rspec.validate();
  return rspec;
}

namespace {

const char* method_name(IntegrationMethod method) {
  return method == IntegrationMethod::kBackwardEuler ? "backward-euler"
                                                     : "trapezoidal";
}

IntegrationMethod method_from_json(const Value& v) {
  const std::string& name = v.as_string();
  if (name == "trapezoidal") return IntegrationMethod::kTrapezoidal;
  if (name == "backward-euler") return IntegrationMethod::kBackwardEuler;
  throw InvalidArgument(detail::concat(
      "unknown integration method \"", name,
      "\" (expected \"trapezoidal\" or \"backward-euler\")"));
}

}  // namespace

Value to_json(const DroopCampaignConfig& config) {
  Value v = Value::object();
  v.set("resilience", to_json(config.resilience));
  Value model = Value::object();
  model.set("decap",
            config.model.decap ? Value(config.model.decap->value) : Value());
  model.set("decap_esr", config.model.decap_esr.value);
  v.set("model", std::move(model));
  v.set("t_stop", config.t_stop.value);
  v.set("dt", config.dt.value);
  v.set("method", std::string(method_name(config.method)));
  v.set("tile_grid", config.tile_grid);
  v.set("tile_sigma", config.tile_sigma);
  v.set("tile_background", config.tile_background);
  v.set("base_fraction", config.base_fraction);
  v.set("step_fraction", config.step_fraction);
  v.set("t_event", config.t_event.value);
  v.set("edge", config.edge.value);
  v.set("burst_frequency", config.burst_frequency.value);
  v.set("burst_duty", config.burst_duty);
  v.set("include_load_steps", config.include_load_steps);
  v.set("include_bursts", config.include_bursts);
  v.set("include_ramps", config.include_ramps);
  v.set("include_vr_dropouts", config.include_vr_dropouts);
  v.set("max_dropout_sites", config.max_dropout_sites);
  v.set("threads", config.sweep.threads);
  return v;
}

DroopCampaignConfig droop_campaign_config_from_json(const Value& v) {
  FieldReader r(v, "campaign config");
  DroopCampaignConfig config;
  if (const Value* rspec = r.get("resilience")) {
    config.resilience = resilience_spec_from_json(*rspec);
  }
  if (const Value* model = r.get("model")) {
    FieldReader mr(*model, "campaign model");
    if (const Value* decap = mr.get("decap")) {
      if (!decap->is_null()) {
        config.model.decap = Capacitance{decap->as_number()};
      }
    }
    config.model.decap_esr =
        Resistance{number_or(mr, "decap_esr", config.model.decap_esr.value)};
  }
  config.t_stop = Seconds{number_or(r, "t_stop", config.t_stop.value)};
  config.dt = Seconds{number_or(r, "dt", config.dt.value)};
  if (const Value* method = r.get("method")) {
    config.method = method_from_json(*method);
  }
  config.tile_grid = index_or(r, "tile_grid", config.tile_grid);
  config.tile_sigma = number_or(r, "tile_sigma", config.tile_sigma);
  config.tile_background =
      number_or(r, "tile_background", config.tile_background);
  config.base_fraction =
      number_or(r, "base_fraction", config.base_fraction);
  config.step_fraction =
      number_or(r, "step_fraction", config.step_fraction);
  config.t_event = Seconds{number_or(r, "t_event", config.t_event.value)};
  config.edge = Seconds{number_or(r, "edge", config.edge.value)};
  config.burst_frequency = Frequency{
      number_or(r, "burst_frequency", config.burst_frequency.value)};
  config.burst_duty = number_or(r, "burst_duty", config.burst_duty);
  config.include_load_steps =
      bool_or(r, "include_load_steps", config.include_load_steps);
  config.include_bursts = bool_or(r, "include_bursts", config.include_bursts);
  config.include_ramps = bool_or(r, "include_ramps", config.include_ramps);
  config.include_vr_dropouts =
      bool_or(r, "include_vr_dropouts", config.include_vr_dropouts);
  config.max_dropout_sites =
      index_or(r, "max_dropout_sites", config.max_dropout_sites);
  config.sweep.threads = index_or(r, "threads", config.sweep.threads);
  config.validate();
  return config;
}

// --- Requests --------------------------------------------------------------

Value to_json(const EvaluationRequest& request) {
  Value v = Value::object();
  v.set("schema_version", kSchemaVersion);
  v.set("architecture", to_json(request.architecture));
  v.set("topology",
        request.topology ? to_json(*request.topology) : Value());
  v.set("tech", to_json(request.tech));
  v.set("spec", to_json(request.spec));
  v.set("options", to_json(request.options));
  return v;
}

EvaluationRequest evaluation_request_from_json(const Value& v) {
  check_schema_version(v, "request");
  FieldReader r(v, "request");
  EvaluationRequest request;
  request.architecture = architecture_from_json(r.require("architecture"));
  request.topology.reset();
  if (const Value* topo = r.get("topology")) {
    if (!topo->is_null()) request.topology = topology_from_json(*topo);
  } else if (request.architecture != ArchitectureKind::kA0_PcbConversion) {
    request.topology = TopologyKind::kDsch;  // schema default
  }
  if (const Value* tech = r.get("tech")) {
    request.tech = technology_from_json(*tech);
  }
  if (const Value* spec = r.get("spec")) {
    request.spec = spec_from_json(*spec);
  }
  if (const Value* options = r.get("options")) {
    request.options = evaluation_options_from_json(*options);
  }
  // A fault scenario may be given instead of a low-level injection; it is
  // lowered here so the canonical key does not depend on which form the
  // client used.
  const Value* scenario = r.get("fault_scenario");
  const Value* severity = r.get("fault_severity");
  if (severity != nullptr && scenario == nullptr) {
    throw InvalidArgument("request: fault_severity without fault_scenario");
  }
  if (scenario != nullptr) {
    if (!request.options.faults.empty()) {
      throw InvalidArgument(
          "request: give either options.faults or fault_scenario, not both");
    }
    const FaultSeverity sev = severity != nullptr
                                  ? fault_severity_from_json(*severity)
                                  : FaultSeverity{};
    request.options.faults =
        to_injection(fault_scenario_from_json(*scenario), sev);
  }
  if (request.architecture == ArchitectureKind::kA0_PcbConversion) {
    request.topology.reset();
  } else if (!request.topology) {
    throw InvalidArgument(
        "request: topology must not be null for a VPD architecture");
  }
  return request;
}

std::string canonical_request_key(const EvaluationRequest& request) {
  return dump(to_json(request));
}

Value to_json(const SweepPoint& point) {
  Value v = Value::object();
  v.set("architecture", to_json(point.architecture));
  v.set("topology", point.topology ? to_json(*point.topology) : Value());
  v.set("tech", to_json(point.tech));
  v.set("options", to_json(point.options));
  v.set("label", point.label);
  return v;
}

SweepPoint sweep_point_from_json(const Value& v) {
  FieldReader r(v, "sweep point");
  SweepPoint point;
  point.architecture = architecture_from_json(r.require("architecture"));
  point.topology.reset();
  if (const Value* topo = r.get("topology")) {
    if (!topo->is_null()) point.topology = topology_from_json(*topo);
  }
  if (const Value* tech = r.get("tech")) {
    point.tech = technology_from_json(*tech);
  }
  if (const Value* options = r.get("options")) {
    point.options = evaluation_options_from_json(*options);
  }
  if (const Value* label = r.get("label")) point.label = label->as_string();
  return point;
}

Value to_json(const TransientRequest& request) {
  VPD_REQUIRE(request.options.faults.empty(),
              "transient request: base options must be fault-free (the "
              "campaign owns the injections)");
  Value v = Value::object();
  v.set("schema_version", kSchemaVersion);
  v.set("architecture", to_json(request.architecture));
  v.set("topology", to_json(request.topology));
  v.set("tech", to_json(request.tech));
  v.set("spec", to_json(request.spec));
  v.set("options", to_json(request.options));
  v.set("config", to_json(request.config));
  return v;
}

TransientRequest transient_request_from_json(const Value& v) {
  check_schema_version(v, "transient request");
  FieldReader r(v, "transient request");
  TransientRequest request;
  request.architecture = architecture_from_json(r.require("architecture"));
  if (request.architecture == ArchitectureKind::kA0_PcbConversion) {
    throw InvalidArgument(
        "transient request: droop campaigns need a distribution mesh; A0 "
        "has none");
  }
  if (const Value* topo = r.get("topology")) {
    request.topology = topology_from_json(*topo);
  }
  if (const Value* tech = r.get("tech")) {
    request.tech = technology_from_json(*tech);
  }
  if (const Value* spec = r.get("spec")) {
    request.spec = spec_from_json(*spec);
  }
  if (const Value* options = r.get("options")) {
    request.options = evaluation_options_from_json(*options);
    if (!request.options.faults.empty()) {
      throw InvalidArgument(
          "transient request: options.faults must be empty (give dropout "
          "scenarios through the campaign config instead)");
    }
  }
  if (const Value* config = r.get("config")) {
    request.config = droop_campaign_config_from_json(*config);
  }
  return request;
}

std::string canonical_transient_key(const TransientRequest& request) {
  return dump(to_json(request));
}

// --- Design-space optimization ---------------------------------------------

Value to_json(const opt::ParamRange& range) {
  Value v = Value::object();
  v.set("lo", range.lo);
  v.set("hi", range.hi);
  return v;
}

opt::ParamRange param_range_from_json(const Value& v) {
  FieldReader r(v, "param range");
  opt::ParamRange range;
  range.lo = r.require("lo").as_number();
  range.hi = r.require("hi").as_number();
  return range;
}

Value to_json(const opt::CountRange& range) {
  Value v = Value::object();
  v.set("lo", range.lo);
  v.set("hi", range.hi);
  return v;
}

opt::CountRange count_range_from_json(const Value& v) {
  FieldReader r(v, "count range");
  opt::CountRange range;
  range.lo = static_cast<unsigned>(as_index(r.require("lo"), "count range"));
  range.hi = static_cast<unsigned>(as_index(r.require("hi"), "count range"));
  return range;
}

Value to_json(const opt::DesignSpace& space) {
  Value v = Value::object();
  Value architectures = Value::array();
  for (ArchitectureKind arch : space.architectures) {
    architectures.push_back(to_json(arch));
  }
  v.set("architectures", std::move(architectures));
  Value topologies = Value::array();
  for (TopologyKind topo : space.topologies) {
    topologies.push_back(to_json(topo));
  }
  v.set("topologies", std::move(topologies));
  Value technologies = Value::array();
  for (DeviceTechnology tech : space.technologies) {
    technologies.push_back(to_json(tech));
  }
  v.set("technologies", std::move(technologies));
  v.set("vr_count", to_json(space.vr_count));
  v.set("periphery_rings", to_json(space.periphery_rings));
  v.set("below_die_area_fraction", to_json(space.below_die_area_fraction));
  v.set("vr_attach_series_ohms", to_json(space.vr_attach_series_ohms));
  v.set("distribution_sheet_ohms", to_json(space.distribution_sheet_ohms));
  return v;
}

opt::DesignSpace design_space_from_json(const Value& v) {
  FieldReader r(v, "design space");
  opt::DesignSpace space;
  if (const Value* archs = r.get("architectures")) {
    space.architectures.clear();
    for (const Value& e : archs->as_array()) {
      space.architectures.push_back(architecture_from_json(e));
    }
  }
  if (const Value* topos = r.get("topologies")) {
    space.topologies.clear();
    for (const Value& e : topos->as_array()) {
      space.topologies.push_back(topology_from_json(e));
    }
  }
  if (const Value* techs = r.get("technologies")) {
    space.technologies.clear();
    for (const Value& e : techs->as_array()) {
      space.technologies.push_back(technology_from_json(e));
    }
  }
  if (const Value* range = r.get("vr_count")) {
    space.vr_count = count_range_from_json(*range);
  }
  if (const Value* range = r.get("periphery_rings")) {
    space.periphery_rings = count_range_from_json(*range);
  }
  if (const Value* range = r.get("below_die_area_fraction")) {
    space.below_die_area_fraction = param_range_from_json(*range);
  }
  if (const Value* range = r.get("vr_attach_series_ohms")) {
    space.vr_attach_series_ohms = param_range_from_json(*range);
  }
  if (const Value* range = r.get("distribution_sheet_ohms")) {
    space.distribution_sheet_ohms = param_range_from_json(*range);
  }
  space.validate();
  return space;
}

Value to_json(const opt::DesignPoint& point) {
  Value v = Value::object();
  v.set("architecture", to_json(point.architecture));
  v.set("topology", to_json(point.topology));
  v.set("tech", to_json(point.tech));
  v.set("vr_count", point.vr_count);
  v.set("periphery_rings", point.periphery_rings);
  v.set("below_die_area_fraction", point.below_die_area_fraction);
  v.set("vr_attach_series_ohms", point.vr_attach_series_ohms);
  v.set("distribution_sheet_ohms", point.distribution_sheet_ohms);
  return v;
}

opt::DesignPoint design_point_from_json(const Value& v) {
  FieldReader r(v, "design point");
  opt::DesignPoint point;
  point.architecture = architecture_from_json(r.require("architecture"));
  point.topology = topology_from_json(r.require("topology"));
  if (const Value* tech = r.get("tech")) {
    point.tech = technology_from_json(*tech);
  }
  point.vr_count = static_cast<unsigned>(
      index_or(r, "vr_count", point.vr_count));
  point.periphery_rings = static_cast<unsigned>(
      index_or(r, "periphery_rings", point.periphery_rings));
  point.below_die_area_fraction = number_or(
      r, "below_die_area_fraction", point.below_die_area_fraction);
  point.vr_attach_series_ohms = number_or(
      r, "vr_attach_series_ohms", point.vr_attach_series_ohms);
  point.distribution_sheet_ohms = number_or(
      r, "distribution_sheet_ohms", point.distribution_sheet_ohms);
  return point;
}

Value to_json(const opt::SurvivabilityScoring& scoring) {
  Value v = Value::object();
  v.set("max_elites", scoring.max_elites);
  v.set("severity", to_json(scoring.severity));
  v.set("resilience", to_json(scoring.resilience));
  v.set("include_attach_faults", scoring.include_attach_faults);
  v.set("include_mesh_regions", scoring.include_mesh_regions);
  v.set("mesh_region_grid", scoring.mesh_region_grid);
  return v;
}

opt::SurvivabilityScoring survivability_scoring_from_json(const Value& v) {
  FieldReader r(v, "survivability scoring");
  opt::SurvivabilityScoring scoring;
  scoring.max_elites = index_or(r, "max_elites", scoring.max_elites);
  if (const Value* severity = r.get("severity")) {
    scoring.severity = fault_severity_from_json(*severity);
  }
  if (const Value* rspec = r.get("resilience")) {
    scoring.resilience = resilience_spec_from_json(*rspec);
  }
  scoring.include_attach_faults =
      bool_or(r, "include_attach_faults", scoring.include_attach_faults);
  scoring.include_mesh_regions =
      bool_or(r, "include_mesh_regions", scoring.include_mesh_regions);
  scoring.mesh_region_grid =
      index_or(r, "mesh_region_grid", scoring.mesh_region_grid);
  return scoring;
}

Value to_json(const opt::OptimizerConfig& config) {
  Value v = Value::object();
  v.set("population", config.population);
  v.set("generations", config.generations);
  v.set("max_evaluations", config.max_evaluations);
  v.set("seed", static_cast<double>(config.seed));
  v.set("crossover_rate", config.crossover_rate);
  v.set("mutation_rate", config.mutation_rate);
  v.set("mutation_scale", config.mutation_scale);
  Value epsilon = Value::array();
  for (double e : config.epsilon) epsilon.push_back(e);
  v.set("epsilon", std::move(epsilon));
  Value reference = Value::array();
  for (double rf : config.reference) reference.push_back(rf);
  v.set("reference", std::move(reference));
  v.set("survivability", to_json(config.survivability));
  Value warm = Value::array();
  for (const opt::DesignPoint& point : config.warm_start) {
    warm.push_back(to_json(point));
  }
  v.set("warm_start", std::move(warm));
  v.set("threads", config.sweep.threads);
  return v;
}

opt::OptimizerConfig optimizer_config_from_json(const Value& v) {
  FieldReader r(v, "optimizer config");
  opt::OptimizerConfig config;
  config.population = index_or(r, "population", config.population);
  config.generations = index_or(r, "generations", config.generations);
  config.max_evaluations =
      index_or(r, "max_evaluations", config.max_evaluations);
  if (const Value* seed = r.get("seed")) {
    config.seed = as_index(*seed, "optimizer seed");
  }
  config.crossover_rate =
      number_or(r, "crossover_rate", config.crossover_rate);
  config.mutation_rate = number_or(r, "mutation_rate", config.mutation_rate);
  config.mutation_scale =
      number_or(r, "mutation_scale", config.mutation_scale);
  if (const Value* epsilon = r.get("epsilon")) {
    config.epsilon.clear();
    for (const Value& e : epsilon->as_array()) {
      config.epsilon.push_back(e.as_number());
    }
  }
  if (const Value* reference = r.get("reference")) {
    config.reference.clear();
    for (const Value& e : reference->as_array()) {
      config.reference.push_back(e.as_number());
    }
  }
  if (const Value* scoring = r.get("survivability")) {
    config.survivability = survivability_scoring_from_json(*scoring);
  }
  if (const Value* warm = r.get("warm_start")) {
    for (const Value& e : warm->as_array()) {
      config.warm_start.push_back(design_point_from_json(e));
    }
  }
  config.sweep.threads = index_or(r, "threads", config.sweep.threads);
  return config;
}

Value to_json(const OptimizeRequest& request) {
  VPD_REQUIRE(request.config.base_options.faults.empty(),
              "optimize request: base options must be fault-free "
              "(survivability scoring owns the injections)");
  Value v = Value::object();
  v.set("schema_version", kSchemaVersion);
  v.set("spec", to_json(request.spec));
  v.set("space", to_json(request.space));
  v.set("config", to_json(request.config));
  v.set("options", to_json(request.config.base_options));
  return v;
}

OptimizeRequest optimize_request_from_json(const Value& v) {
  check_schema_version(v, "optimize request");
  FieldReader r(v, "optimize request");
  OptimizeRequest request;
  if (const Value* spec = r.get("spec")) {
    request.spec = spec_from_json(*spec);
  }
  if (const Value* space = r.get("space")) {
    request.space = design_space_from_json(*space);
  }
  if (const Value* config = r.get("config")) {
    request.config = optimizer_config_from_json(*config);
  }
  if (const Value* options = r.get("options")) {
    request.config.base_options = evaluation_options_from_json(*options);
    if (!request.config.base_options.faults.empty()) {
      throw InvalidArgument(
          "optimize request: options.faults must be empty (survivability "
          "scoring owns the injections)");
    }
  }
  request.spec.validate();
  request.space.validate();
  request.config.validate();
  for (const opt::DesignPoint& point : request.config.warm_start) {
    if (!opt::contains(request.space, point)) {
      throw InvalidArgument(detail::concat(
          "optimize request: warm-start point \"",
          opt::design_point_key(point), "\" lies outside the design space"));
    }
  }
  return request;
}

std::string canonical_optimize_key(const OptimizeRequest& request) {
  return dump(to_json(request));
}

// --- Results ---------------------------------------------------------------

Value to_json(const Summary& summary) {
  Value v = Value::object();
  v.set("count", summary.count);
  v.set("min", summary.min);
  v.set("max", summary.max);
  v.set("mean", summary.mean);
  v.set("stddev", summary.stddev);
  v.set("median", summary.median);
  v.set("p05", summary.p05);
  v.set("p95", summary.p95);
  return v;
}

Value to_json(const MeshSolveCache::Stats& stats) {
  Value v = Value::object();
  v.set("hits", stats.hits);
  v.set("misses", stats.misses);
  return v;
}

Value to_json(const SweepStats& stats) {
  Value v = Value::object();
  v.set("wall_seconds", stats.wall_seconds);
  v.set("cg_iterations", stats.cg_iterations);
  return v;
}

Value to_json(const PathStage& stage) {
  Value v = Value::object();
  v.set("name", stage.name);
  v.set("resistance", stage.resistance.value);
  v.set("current", stage.current.value);
  v.set("vertical", stage.vertical);
  v.set("vias_per_net", stage.vias_per_net);
  v.set("loss", stage.loss().value);
  return v;
}

Value to_json(const ArchitectureEvaluation& evaluation) {
  Value v = Value::object();
  v.set("architecture", to_json(evaluation.architecture));
  v.set("converter", evaluation.converter_label);
  v.set("vertical_loss", evaluation.vertical_loss.value);
  v.set("horizontal_loss", evaluation.horizontal_loss.value);
  v.set("conversion_stage1", evaluation.conversion_stage1.value);
  v.set("conversion_stage2", evaluation.conversion_stage2.value);
  v.set("conversion_loss", evaluation.conversion_loss().value);
  v.set("ppdn_loss", evaluation.ppdn_loss().value);
  v.set("total_loss", evaluation.total_loss().value);
  v.set("input_power", evaluation.input_power.value);
  v.set("vr_count_stage1", evaluation.vr_count_stage1);
  v.set("vr_count_stage2", evaluation.vr_count_stage2);
  v.set("periphery_rings", evaluation.periphery_rings);
  v.set("vr_current_spread", evaluation.vr_current_spread
                                 ? to_json(*evaluation.vr_current_spread)
                                 : Value());
  v.set("min_pol_voltage", evaluation.min_pol_voltage
                               ? Value(evaluation.min_pol_voltage->value)
                               : Value());
  v.set("distribution_rail", evaluation.distribution_rail
                                 ? Value(evaluation.distribution_rail->value)
                                 : Value());
  v.set("min_distribution_voltage",
        evaluation.min_distribution_voltage
            ? Value(evaluation.min_distribution_voltage->value)
            : Value());
  Value site_currents = Value::array();
  for (double current : evaluation.fault_site_currents) {
    site_currents.push_back(current);
  }
  v.set("fault_site_currents", std::move(site_currents));
  v.set("cg_iterations", evaluation.cg_iterations);
  v.set("within_rating", evaluation.within_rating);
  v.set("used_extrapolation", evaluation.used_extrapolation);
  Value notes = Value::array();
  for (const std::string& note : evaluation.notes) notes.push_back(note);
  v.set("notes", std::move(notes));
  Value stages = Value::array();
  for (const PathStage& stage : evaluation.stages) {
    stages.push_back(to_json(stage));
  }
  v.set("stages", std::move(stages));
  return v;
}

Value to_json(const ExplorationEntry& entry) {
  Value v = Value::object();
  v.set("architecture", to_json(entry.architecture));
  v.set("topology", entry.topology ? to_json(*entry.topology) : Value());
  v.set("excluded", entry.excluded());
  v.set("exclusion_reason", entry.exclusion_reason);
  v.set("evaluation",
        entry.evaluation ? to_json(*entry.evaluation) : Value());
  v.set("extrapolated",
        entry.extrapolated ? to_json(*entry.extrapolated) : Value());
  return v;
}

Value to_json(const SpecViolation& violation) {
  Value v = Value::object();
  v.set("kind", std::string(to_string(violation.kind)));
  v.set("site", violation.site == static_cast<std::size_t>(-1)
                    ? Value()
                    : Value(static_cast<double>(violation.site)));
  v.set("value", violation.value);
  v.set("limit", violation.limit);
  v.set("detail", violation.detail);
  return v;
}

Value to_json(const DroopMetrics& metrics) {
  Value v = Value::object();
  v.set("rail", metrics.rail);
  v.set("v_min", metrics.v_min);
  v.set("v_settled", metrics.v_settled);
  v.set("v_predicted", metrics.v_predicted);
  v.set("undershoot_fraction", metrics.undershoot_fraction);
  v.set("settled_droop_fraction", metrics.settled_droop_fraction);
  v.set("settling_time", metrics.settling_time.value);
  v.set("steady_cycle",
        metrics.steady_cycle
            ? Value(static_cast<double>(*metrics.steady_cycle))
            : Value());
  v.set("samples", metrics.samples);
  return v;
}

Value to_json(const TransientScenarioOutcome& outcome) {
  Value v = Value::object();
  v.set("scenario", to_json(outcome.scenario));
  v.set("evaluated", outcome.evaluated);
  v.set("extrapolated", outcome.extrapolated);
  v.set("failure_reason", outcome.failure_reason);
  v.set("metrics", outcome.evaluated ? to_json(outcome.metrics) : Value());
  Value violations = Value::array();
  for (const SpecViolation& violation : outcome.violations) {
    violations.push_back(to_json(violation));
  }
  v.set("violations", std::move(violations));
  v.set("margin", outcome.margin);
  v.set("passes", outcome.passes());
  return v;
}

Value to_json(const DroopCampaignReport& report) {
  Value v = Value::object();
  v.set("architecture", to_json(report.architecture));
  v.set("topology", report.topology ? to_json(*report.topology) : Value());
  v.set("tech", to_json(report.tech));
  v.set("scenario_count", report.scenario_count());
  v.set("pass_count", report.pass_count());
  v.set("pass_fraction", report.pass_fraction());
  v.set("worst_undershoot_fraction", report.worst_undershoot_fraction());
  v.set("worst_settling_seconds", report.worst_settling_time().value);
  v.set("worst_margin", report.worst_margin());
  v.set("transient_steps", report.transient_steps);
  v.set("wall_seconds", report.wall_seconds);
  v.set("nominal", to_json(report.nominal));
  Value outcomes = Value::array();
  for (const TransientScenarioOutcome& outcome : report.outcomes) {
    outcomes.push_back(to_json(outcome));
  }
  v.set("outcomes", std::move(outcomes));
  /// The unified telemetry shape (transient.* + solver.* instruments).
  v.set("observability", report.snapshot().to_json());
  return v;
}

Value to_json(const opt::Candidate& candidate) {
  Value v = Value::object();
  v.set("id", candidate.id);
  v.set("generation", candidate.generation);
  v.set("point", to_json(candidate.point));
  v.set("feasible", candidate.feasible);
  v.set("exclusion_reason", candidate.exclusion_reason);
  v.set("loss_fraction", candidate.loss_fraction);
  v.set("droop_fraction", candidate.droop_fraction);
  v.set("area_fraction", candidate.area_fraction);
  v.set("survivability", candidate.survivability
                             ? Value(*candidate.survivability)
                             : Value());
  return v;
}

Value to_json(const opt::FrontEntry& entry) {
  Value v = Value::object();
  v.set("candidate", to_json(entry.candidate));
  Value objectives = Value::array();
  for (double f : entry.objectives) objectives.push_back(f);
  v.set("objectives", std::move(objectives));
  return v;
}

Value to_json(const opt::OptimizeReport& report) {
  // Deterministic members first; everything from "wall_seconds" onward is
  // the scheduling-dependent tail (the bit-identity smoke tests cut the
  // line at `,"wall_seconds"`).
  Value v = Value::object();
  Value front = Value::array();
  for (const opt::FrontEntry& entry : report.front) {
    front.push_back(to_json(entry));
  }
  v.set("front", std::move(front));
  v.set("front_size", report.front_size());
  v.set("evaluations", report.evaluations);
  v.set("candidates", report.candidates);
  v.set("generations", report.generations_run);
  v.set("fault_campaigns", report.fault_campaigns);
  Value epsilon = Value::array();
  for (double e : report.epsilon) epsilon.push_back(e);
  v.set("epsilon", std::move(epsilon));
  Value reference = Value::array();
  for (double rf : report.reference) reference.push_back(rf);
  v.set("reference", std::move(reference));
  v.set("hypervolume", report.hypervolume);
  v.set("wall_seconds", report.wall_seconds);
  v.set("mesh_cache", to_json(report.cache_stats));
  /// The unified telemetry shape (opt.* + solver.* instruments).
  v.set("observability", report.snapshot().to_json());
  return v;
}

}  // namespace io
}  // namespace vpd
