// JSON schema for the library's public request/response surface: every
// design point, sweep point or fault scenario expressible through the C++
// API round-trips through these functions, so external clients (the vpdd
// daemon, scripted experiment harnesses) speak the same vocabulary as the
// in-process evaluators.
//
// Conventions:
//  * all quantities are bare numbers in SI units (W, V, A, Ohm, m, m^2);
//  * enums serialize as their to_string() names ("A1", "DSCH", "GaN",
//    "vr-dropout") and parse strictly — an unknown name is an
//    InvalidArgument, never a silent default;
//  * readers treat absent fields as the C++ default and IGNORE unknown
//    fields (the v2 compatibility rule: a newer client may send fields an
//    older server does not know, and vice versa). Field *values* are still
//    strict — a wrong type or unknown enum name is an InvalidArgument;
//  * requests and responses carry "schema_version" (see kSchemaVersion).
//    Readers accept an absent field (v1, the pre-versioning wire form) and
//    any version up to kSchemaVersion; writers always emit the current one;
//  * writers materialize every field in a fixed order, which makes the
//    compact dump of a request its canonical form — the evaluation
//    service keys coalescing and its result cache on exactly that string.
//
// Not representable on the wire: EvaluationOptions::sink_map (an arbitrary
// C++ callback; serialization throws if one is set) and
// EvaluationOptions::mesh_cache (a process-local pointer; ignored on write,
// always null after parse — the service wires in its own cache).
#pragma once

#include <optional>
#include <string>

#include "vpd/arch/evaluator.hpp"
#include "vpd/arch/report.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/fault/fault_model.hpp"
#include "vpd/fault/resilience.hpp"
#include "vpd/fault/transient_scenario.hpp"
#include "vpd/io/json.hpp"
#include "vpd/opt/optimizer.hpp"
#include "vpd/package/mesh_cache.hpp"
#include "vpd/sweep/sweep.hpp"
#include "vpd/workload/droop_campaign.hpp"

namespace vpd {
namespace io {

/// Current wire schema version, stamped as "schema_version" on every
/// request and response. v1 is the unversioned PR-3 wire form (the field
/// is simply absent); v2 adds the field, the ignore-unknown-keys rule and
/// the unified telemetry shape (obs::kTelemetrySchemaVersion mirrors it).
inline constexpr int kSchemaVersion = 2;

/// Validates an optional "schema_version" member of `v`: absent (v1) and
/// 1..kSchemaVersion are accepted, anything else throws InvalidArgument
/// naming `what`. Call sites parse the rest of the object normally — the
/// schema is backward-compatible within the accepted range.
void check_schema_version(const Value& v, const char* what);

/// Best-effort recovery of the transport "id" from a request line that
/// failed full parsing, so even malformed-payload error replies keep the
/// client's correlation id (a pipelining client cannot match an
/// {"id":null} error to anything). Scans the raw line for a top-level
/// "id" member and parses its scalar value (string / number / bool /
/// null); returns null when the line does not get far enough to contain
/// one, or when the id itself is unparseable or structured.
Value recover_wire_id(std::string_view line);

// --- Enums -----------------------------------------------------------------

Value to_json(ArchitectureKind kind);
Value to_json(TopologyKind kind);
Value to_json(DeviceTechnology tech);
Value to_json(FaultKind kind);

ArchitectureKind architecture_from_json(const Value& v);
TopologyKind topology_from_json(const Value& v);
DeviceTechnology technology_from_json(const Value& v);
FaultKind fault_kind_from_json(const Value& v);

// --- Spec and options ------------------------------------------------------

Value to_json(const PowerDeliverySpec& spec);
PowerDeliverySpec spec_from_json(const Value& v);

Value to_json(const EdgeScaleRegion& region);
EdgeScaleRegion edge_scale_region_from_json(const Value& v);

Value to_json(const VrDerate& derate);
VrDerate vr_derate_from_json(const Value& v);

Value to_json(const FaultInjection& injection);
FaultInjection fault_injection_from_json(const Value& v);

Value to_json(const EvaluationOptions& options);
EvaluationOptions evaluation_options_from_json(const Value& v);

// --- Fault scenarios -------------------------------------------------------

Value to_json(const Fault& fault);
Fault fault_from_json(const Value& v);

Value to_json(const FaultSeverity& severity);
FaultSeverity fault_severity_from_json(const Value& v);

Value to_json(const FaultScenario& scenario);
FaultScenario fault_scenario_from_json(const Value& v);

// --- Transient droop campaigns ---------------------------------------------

Value to_json(TransientKind kind);
TransientKind transient_kind_from_json(const Value& v);

Value to_json(const TransientScenario& scenario);
TransientScenario transient_scenario_from_json(const Value& v);

/// Serializes both the DC thresholds and the dynamic (time-domain) droop
/// limits of the resilience spec.
Value to_json(const ResilienceSpec& rspec);
ResilienceSpec resilience_spec_from_json(const Value& v);

/// Campaign knobs. Not representable on the wire: the trace parent (a
/// process-local context, omitted on write, default after parse) and the
/// sweep mesh-cache pointer (the server wires in its own); the worker
/// count rides along as "threads".
Value to_json(const DroopCampaignConfig& config);
DroopCampaignConfig droop_campaign_config_from_json(const Value& v);

// --- Requests --------------------------------------------------------------

/// One evaluation request: a design point plus the system spec it is
/// evaluated against. The wire form accepts either explicit
/// `options.faults` (low-level injection) or a `fault_scenario` +
/// optional `fault_severity` pair, which is lowered onto the injection at
/// parse time via to_injection() — after parsing, only `options.faults`
/// is populated, so the canonical key is scenario-representation-blind.
struct EvaluationRequest {
  ArchitectureKind architecture{ArchitectureKind::kA1_InterposerPeriphery};
  std::optional<TopologyKind> topology{TopologyKind::kDsch};  // nullopt: A0
  DeviceTechnology tech{DeviceTechnology::kGalliumNitride};
  PowerDeliverySpec spec;  // defaults to the paper's 1 kW system
  EvaluationOptions options;
};

Value to_json(const EvaluationRequest& request);
EvaluationRequest evaluation_request_from_json(const Value& v);

/// Compact dump of the fully-materialized request — the canonical wire
/// key used for coalescing and result caching. Two requests with equal
/// canonical keys describe bit-identical evaluations.
std::string canonical_request_key(const EvaluationRequest& request);

/// Sweep points round-trip too, so a whole sweep grid is expressible as a
/// JSON array of points.
Value to_json(const SweepPoint& point);
SweepPoint sweep_point_from_json(const Value& v);

/// One droop-campaign request: the combination to integrate plus the
/// campaign configuration. `options` are the campaign's base evaluation
/// options and must arrive fault-free (the campaign owns its injections);
/// the parser rejects a populated `options.faults`.
struct TransientRequest {
  ArchitectureKind architecture{ArchitectureKind::kA1_InterposerPeriphery};
  TopologyKind topology{TopologyKind::kDsch};
  DeviceTechnology tech{DeviceTechnology::kGalliumNitride};
  PowerDeliverySpec spec;  // defaults to the paper's 1 kW system
  EvaluationOptions options;
  DroopCampaignConfig config;
};

Value to_json(const TransientRequest& request);
TransientRequest transient_request_from_json(const Value& v);

/// Canonical wire key of a fully-materialized transient request (same
/// convention as canonical_request_key).
std::string canonical_transient_key(const TransientRequest& request);

// --- Design-space optimization ---------------------------------------------

Value to_json(const opt::ParamRange& range);
opt::ParamRange param_range_from_json(const Value& v);

Value to_json(const opt::CountRange& range);
opt::CountRange count_range_from_json(const Value& v);

Value to_json(const opt::DesignSpace& space);
opt::DesignSpace design_space_from_json(const Value& v);

Value to_json(const opt::DesignPoint& point);
opt::DesignPoint design_point_from_json(const Value& v);

Value to_json(const opt::SurvivabilityScoring& scoring);
opt::SurvivabilityScoring survivability_scoring_from_json(const Value& v);

/// Optimizer search knobs. Not representable on the wire: base_options
/// (they travel at the request level as "options"), the trace parent and
/// the sweep mesh-cache pointer; the worker count rides as "threads".
/// The seed is a JSON number, so it must stay a non-negative integer
/// within 2^53 (the parser enforces this).
Value to_json(const opt::OptimizerConfig& config);
opt::OptimizerConfig optimizer_config_from_json(const Value& v);

/// One design-space optimization request: the system spec, the
/// searchable space and the search configuration. `options` are the
/// optimizer's base evaluation options and must arrive fault-free
/// (survivability scoring owns the injections).
struct OptimizeRequest {
  PowerDeliverySpec spec;  // defaults to the paper's 1 kW system
  opt::DesignSpace space;
  opt::OptimizerConfig config;
};

Value to_json(const OptimizeRequest& request);
OptimizeRequest optimize_request_from_json(const Value& v);

/// Canonical wire key of a fully-materialized optimize request (same
/// convention as canonical_request_key). The fleet router hashes this
/// key, so equal-seed repeats land on the same shard.
std::string canonical_optimize_key(const OptimizeRequest& request);

// --- Results (serialize-only: responses are produced, not consumed) --------

Value to_json(const Summary& summary);
Value to_json(const MeshSolveCache::Stats& stats);
Value to_json(const SweepStats& stats);
Value to_json(const PathStage& stage);
Value to_json(const ArchitectureEvaluation& evaluation);
Value to_json(const ExplorationEntry& entry);

Value to_json(const SpecViolation& violation);
Value to_json(const DroopMetrics& metrics);
Value to_json(const TransientScenarioOutcome& outcome);
Value to_json(const DroopCampaignReport& report);

/// Optimizer results. to_json(OptimizeReport) materializes every
/// deterministic member first and the scheduling-dependent tail
/// ("wall_seconds" onward) last, so bit-identity checks can strip the
/// tail with a single cut.
Value to_json(const opt::Candidate& candidate);
Value to_json(const opt::FrontEntry& entry);
Value to_json(const opt::OptimizeReport& report);

}  // namespace io
}  // namespace vpd
