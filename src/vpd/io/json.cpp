#include "vpd/io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vpd {
namespace io {
namespace {

const char* type_name(Value::Type type) {
  switch (type) {
    case Value::Type::kNull: return "null";
    case Value::Type::kBool: return "bool";
    case Value::Type::kNumber: return "number";
    case Value::Type::kString: return "string";
    case Value::Type::kArray: return "array";
    case Value::Type::kObject: return "object";
  }
  return "unknown";
}

[[noreturn]] void type_error(const char* wanted, Value::Type got) {
  throw InvalidArgument(detail::concat("JSON value is ", type_name(got),
                                       ", expected ", wanted));
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Value::Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Value::Array& Value::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Value::Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Value::Object& Value::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_);
}

void Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(v));
}

Value& Value::set(std::string key, Value v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw InvalidArgument(
        detail::concat("JSON object has no member \"", key, "\""));
  }
  return *v;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the RFC 8259 grammar with a nesting-depth
// guard so adversarial input cannot overflow the stack.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMaxDepth = 192;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(detail::concat("JSON parse error at byte ", pos_, ": ",
                                    message),
                     pos_);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char take() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (eof() || text_[pos_] != c) {
      fail(detail::concat("expected '", std::string(1, c), "'"));
    }
    ++pos_;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail(detail::concat("invalid literal, expected \"", literal, "\""));
    }
    pos_ += literal.size();
  }

  Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case 'n': expect_literal("null"); return Value();
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case '"': return Value(parse_string());
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    Value v = Value::array();
    skip_whitespace();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_whitespace();
      v.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (eof()) fail("unterminated array");
      const char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    Value v = Value::object();
    skip_whitespace();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      // Duplicate keys: last one wins (set overwrites in place), so the
      // parsed value is deterministic for any input.
      v.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (eof()) fail("unterminated object");
      const char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (eof() || take() != '\\' || eof() || take() != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          --pos_;
          fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      fail("invalid value");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit expected after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit expected in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    if (!std::isfinite(value)) fail("number out of double range");
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_{0};
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_value(std::string& out, const Value& v, int indent, int level) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int lvl) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * lvl, ' ');
  };
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; return;
    case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Type::kNumber: out += dump_number(v.as_number()); return;
    case Value::Type::kString: write_escaped(out, v.as_string()); return;
    case Value::Type::kArray: {
      const Value::Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(level + 1);
        write_value(out, a[i], indent, level + 1);
      }
      newline_pad(level);
      out.push_back(']');
      return;
    }
    case Value::Type::kObject: {
      const Value::Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(level + 1);
        write_escaped(out, o[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        write_value(out, o[i].second, indent, level + 1);
      }
      newline_pad(level);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string dump(const Value& value) {
  std::string out;
  write_value(out, value, -1, 0);
  return out;
}

std::string dump_pretty(const Value& value, int indent) {
  VPD_REQUIRE(indent >= 0, "indent must be non-negative");
  std::string out;
  write_value(out, value, indent, 0);
  return out;
}

std::string dump_number(double value) {
  VPD_REQUIRE(std::isfinite(value), "JSON cannot represent NaN/Inf");
  // Exact integers (|v| < 2^53) print without fraction or exponent so
  // counts and indices look like integers on the wire.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  // Shortest of %.15g / %.16g / %.17g that round-trips to identical bits.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace io
}  // namespace vpd
