// Dependency-free JSON value type with a strict parser and a canonical
// writer. This is the wire substrate of the evaluation service: requests
// and responses cross process boundaries as JSON documents, and the
// service keys its coalescing and result-cache maps on the canonical
// compact serialization, so the writer is deterministic by construction —
// objects preserve insertion order, numbers print in the shortest form
// that round-trips bit-exactly through strtod, and there is no
// locale-dependent formatting anywhere.
//
// The parser accepts exactly the JSON grammar (RFC 8259): no comments, no
// trailing commas, no NaN/Infinity literals. Malformed input throws
// io::ParseError (a vpd::Error) carrying the byte offset — it never
// crashes and never returns a partial value.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "vpd/common/error.hpp"

namespace vpd {
namespace io {

/// Malformed JSON text. `offset()` is the byte position of the failure.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : Error(what), offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value;

/// One JSON value. Objects are insertion-ordered member lists (not maps):
/// serialization order equals construction order, which is what makes a
/// canonical request key possible without a separate normalization pass.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() = default;  // null
  Value(std::nullptr_t) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double v) : type_(Type::kNumber), number_(v) {}
  Value(int v) : Value(static_cast<double>(v)) {}
  Value(unsigned v) : Value(static_cast<double>(v)) {}
  Value(long v) : Value(static_cast<double>(v)) {}
  Value(unsigned long v) : Value(static_cast<double>(v)) {}
  Value(long long v) : Value(static_cast<double>(v)) {}
  Value(unsigned long long v) : Value(static_cast<double>(v)) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::kString), string_(s) {}

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors: throw vpd::InvalidArgument naming the actual type
  /// (structured error, not a crash) on a mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Array element count or object member count; throws otherwise.
  std::size_t size() const;

  /// Appends to an array (first call on a null value makes it an array).
  void push_back(Value v);

  /// Sets an object member, overwriting an existing key in place (first
  /// call on a null value makes it an object). Returns *this for chaining.
  Value& set(std::string key, Value v);

  /// Member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Member lookup; throws vpd::InvalidArgument when absent.
  const Value& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Deep structural equality (numbers compare by value).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  Type type_{Type::kNull};
  bool bool_{false};
  double number_{0.0};
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one complete JSON document (trailing non-whitespace is an
/// error). Throws ParseError on malformed input.
Value parse(std::string_view text);

/// Compact canonical serialization: no whitespace, members in insertion
/// order, numbers in shortest round-trip form. Two structurally equal
/// values built in the same member order always serialize identically.
std::string dump(const Value& value);

/// Indented serialization for human consumption (same number/member
/// rules, `indent` spaces per level).
std::string dump_pretty(const Value& value, int indent = 2);

/// Shortest decimal form that strtod parses back to the identical bits.
/// Integral values within the exact-double range print without a decimal
/// point or exponent. Throws vpd::InvalidArgument for NaN/Inf (JSON has
/// no representation for them).
std::string dump_number(double value);

}  // namespace io
}  // namespace vpd
