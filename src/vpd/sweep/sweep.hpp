// Design-space sweep engine: enumerates architecture x topology x device
// technology x evaluation-option grids and evaluates every point on a
// worker pool, sharing one MeshSolveCache so each distinct mesh geometry
// is assembled exactly once per sweep. Points ride the batch evaluation
// engine (core/batch.hpp) by default: same-operator points — sink-map
// variants, fault load scalings — solve their distinct right-hand sides
// together as block-CG panels instead of one scalar solve each.
//
// Determinism contract: results come back in input order, and a parallel
// run is bit-identical to a serial run of the same points. This holds
// because probing and replay run the same pure routine
// (evaluate_with_exclusion) with no cross-point mutable state — the CG
// warm start is a flat rail-voltage vector derived from the point itself,
// cached mesh operators are immutable and numerically identical to a
// per-call assembly, and batch grouping happens single-threaded in input
// order, independent of probe completion order. Only SweepStats timing
// fields vary run to run. With batch_block=false (or batch=false) results
// are additionally bit-identical to the pre-batch scalar loop; block
// panels answer to the same certified backward-error tolerance instead.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "vpd/arch/evaluator.hpp"
#include "vpd/core/batch.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace vpd {

/// One evaluation point. `options.mesh_cache` is overwritten by the
/// runner (the sweep owns the cache); every other field is honoured.
struct SweepPoint {
  ArchitectureKind architecture{};
  std::optional<TopologyKind> topology;  // nullopt only for A0
  DeviceTechnology tech{DeviceTechnology::kGalliumNitride};
  EvaluationOptions options;
  std::string label;  // free-form; the grid builder fills "A1/DSCH/GaN"
};

/// Per-point measurements. `wall_seconds` is scheduling-dependent;
/// `cg_iterations` is deterministic (it mirrors the evaluation).
struct SweepStats {
  double wall_seconds{0.0};
  std::size_t cg_iterations{0};
};

struct SweepOutcome {
  SweepPoint point;
  ExplorationEntry entry;
  SweepStats stats;
};

struct SweepConfig {
  /// Worker threads; 0 picks std::thread::hardware_concurrency(). A
  /// value of 1 runs the points inline on the calling thread (the serial
  /// reference path — bit-identical to any parallel run).
  std::size_t threads{0};
  /// Share assembled mesh operators across points. Off reproduces the
  /// assemble-per-call behaviour (still bit-identical, just slower).
  bool use_mesh_cache{true};
  /// External cache to share across multiple run() calls; nullptr makes
  /// the runner use one private cache per run(). Ignored when
  /// use_mesh_cache is false. Must outlive the runner's run() calls.
  MeshSolveCache* cache{nullptr};
  /// Route the points through the batch evaluation engine (core/batch.hpp):
  /// same-operator points solve their distinct sink vectors together
  /// instead of one scalar solve each. false reproduces the pre-batch
  /// point-at-a-time loop exactly.
  bool batch{true};
  /// Solve batched groups as block-CG panels (certified backward error,
  /// counted in solver.cg_block_panels). false runs each group as a
  /// sequential loop over its columns — bit-identical to batch=false.
  bool batch_block{true};
};

struct SweepReport {
  /// One outcome per input point, in input order.
  std::vector<SweepOutcome> outcomes;
  double wall_seconds{0.0};
  std::size_t threads_used{0};
  /// Aggregate over whichever cache the run used (external or private).
  /// Hits + misses counts mesh lookups across all points; misses equals
  /// the number of distinct mesh geometries regardless of scheduling.
  MeshSolveCache::Stats cache_stats;
  /// Process-wide solver counter delta across the run (see
  /// solver_counters()). cg_solves and cg_iterations are deterministic;
  /// the factorization/reuse split depends on how points land on the
  /// thread-local solver workspaces, i.e. on scheduling.
  SolverCounters solver;
  /// Batch-engine accounting (all zero when SweepConfig::batch is false).
  /// Deterministic in the point list alone.
  BatchStats batch;

  std::size_t total_cg_iterations() const;

  /// The report's metrics in the unified telemetry shape (sweep.* counters
  /// and gauges, mesh_cache.* and solver.* counters, and a
  /// sweep.point_seconds histogram over the per-point wall times); emitted
  /// via obs::Snapshot::to_json() by the --json benches.
  obs::Snapshot snapshot() const;
};

class SweepRunner {
 public:
  explicit SweepRunner(PowerDeliverySpec spec, SweepConfig config = {});

  const PowerDeliverySpec& spec() const { return spec_; }
  const SweepConfig& config() const { return config_; }

  /// Evaluates every point. Infeasible/over-rating points come back as
  /// excluded entries (the explorer's exclusion rule); any other error
  /// is rethrown on the calling thread — the first one in input order,
  /// after all workers have finished.
  SweepReport run(const std::vector<SweepPoint>& points) const;

 private:
  PowerDeliverySpec spec_;
  SweepConfig config_;
};

/// Builds the cross-product point list in the canonical exploration
/// order: for each technology, A0 once, then every architecture x
/// topology pair with architectures outermost. The default grid matches
/// ArchitectureExplorer::explore (all architectures, all topologies,
/// GaN).
class SweepGridBuilder {
 public:
  explicit SweepGridBuilder(EvaluationOptions base_options = {});

  SweepGridBuilder& architectures(std::vector<ArchitectureKind> archs);
  SweepGridBuilder& topologies(std::vector<TopologyKind> topos);
  SweepGridBuilder& technologies(std::vector<DeviceTechnology> techs);
  /// Appends option variants (each produces a full grid copy, in the
  /// order added). `label` tags the variant in the point labels. When no
  /// variant is added the base options form the single variant.
  SweepGridBuilder& add_option_variant(EvaluationOptions options,
                                       std::string label = "");

  std::vector<SweepPoint> build() const;

 private:
  EvaluationOptions base_options_;
  std::vector<ArchitectureKind> architectures_;
  std::vector<TopologyKind> topologies_;
  std::vector<DeviceTechnology> technologies_;
  std::vector<std::pair<EvaluationOptions, std::string>> variants_;
};

/// "A1" / "A1/DSCH" / "A1/DSCH/Si" / "A1/DSCH/Si/variant" label used by
/// the grid builder (tech omitted for GaN, the paper's default).
std::string sweep_point_label(ArchitectureKind arch,
                              std::optional<TopologyKind> topo,
                              DeviceTechnology tech,
                              const std::string& variant = "");

}  // namespace vpd
