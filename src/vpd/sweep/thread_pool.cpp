#include "vpd/sweep/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "vpd/common/error.hpp"

namespace vpd {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  VPD_REQUIRE(task != nullptr, "cannot submit a null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    VPD_REQUIRE(!shutdown_, "submit after shutdown");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace vpd
