#include "vpd/sweep/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "vpd/common/error.hpp"
#include "vpd/sweep/thread_pool.hpp"

namespace vpd {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::size_t SweepReport::total_cg_iterations() const {
  std::size_t total = 0;
  for (const SweepOutcome& o : outcomes) total += o.stats.cg_iterations;
  return total;
}

obs::Snapshot SweepReport::snapshot() const {
  obs::Snapshot s;
  s.set_counter("sweep.points", outcomes.size());
  s.set_counter("sweep.threads", threads_used);
  s.set_counter("sweep.cg_iterations", total_cg_iterations());
  s.set_counter("mesh_cache.hits", cache_stats.hits);
  s.set_counter("mesh_cache.misses", cache_stats.misses);
  s.set_counter("solver.cg_solves", solver.cg_solves);
  s.set_counter("solver.cg_iterations", solver.cg_iterations);
  s.set_counter("solver.precond_factorizations",
                solver.precond_factorizations);
  s.set_counter("solver.precond_reuses", solver.precond_reuses);
  s.set_counter("solver.cg_block_panels", solver.cg_block_panels);
  s.set_counter("solver.cg_block_columns", solver.cg_block_columns);
  s.set_counter("sweep.batch_groups", batch.groups);
  s.set_counter("sweep.batch_grouped_points", batch.grouped_points);
  s.set_counter("sweep.batch_scalar_points", batch.scalar_points);
  s.set_counter("sweep.batch_panel_columns", batch.panel_columns);
  s.set_counter("sweep.batch_deduped_solves", batch.deduped_solves);
  s.set_gauge("sweep.wall_seconds", wall_seconds, wall_seconds);
  obs::HistogramData point_seconds(obs::default_latency_bounds());
  for (const SweepOutcome& o : outcomes) {
    point_seconds.record(o.stats.wall_seconds);
  }
  s.set_histogram("sweep.point_seconds", std::move(point_seconds));
  return s;
}

SweepRunner::SweepRunner(PowerDeliverySpec spec, SweepConfig config)
    : spec_(spec), config_(config) {
  spec_.validate();
}

SweepReport SweepRunner::run(const std::vector<SweepPoint>& points) const {
  const auto run_start = std::chrono::steady_clock::now();

  // Whichever cache the run uses lives at least as long as the workers.
  MeshSolveCache private_cache;
  MeshSolveCache* cache = nullptr;
  if (config_.use_mesh_cache) {
    cache = config_.cache != nullptr ? config_.cache : &private_cache;
  }
  const MeshSolveCache::Stats stats_before =
      cache != nullptr ? cache->stats() : MeshSolveCache::Stats{};
  const SolverCounters solver_before = solver_counters();

  SweepReport report;
  report.outcomes.resize(points.size());

  const auto harvest_cg = [](SweepOutcome& out) {
    const ArchitectureEvaluation* eval =
        out.entry.evaluation ? &*out.entry.evaluation
                             : (out.entry.extrapolated
                                    ? &*out.entry.extrapolated
                                    : nullptr);
    if (eval != nullptr) out.stats.cg_iterations = eval->cg_iterations;
  };

  std::size_t threads = config_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  if (config_.batch) {
    std::vector<EvaluationPoint> batch_points;
    batch_points.reserve(points.size());
    for (const SweepPoint& point : points) {
      EvaluationPoint p{point.architecture, point.topology, point.tech,
                        point.options};
      p.options.mesh_cache = cache;
      batch_points.push_back(std::move(p));
    }
    BatchConfig batch_config;
    batch_config.block = config_.batch_block;
    EvaluationBatch batch(spec_, std::move(batch_points), batch_config);
    if (threads == 1 || points.size() <= 1) {
      // Serial reference path: same phases, calling thread.
      batch.run();
      report.threads_used = 1;
    } else {
      // The phases parallelize without changing results: probe and
      // execute tasks own disjoint slots, and the single-threaded plan()
      // groups in input order regardless of probe completion order.
      ThreadPool pool(threads);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        pool.submit([&batch, i] { batch.probe(i); });
      }
      pool.wait_idle();
      batch.plan();
      for (std::size_t u = 0; u < batch.unit_count(); ++u) {
        pool.submit([&batch, u] { batch.execute(u); });
      }
      pool.wait_idle();
      report.threads_used = pool.thread_count();
    }
    // Surface the first failure in input order (deterministic, unlike
    // completion order).
    batch.rethrow_first_error();
    report.batch = batch.stats();
    for (std::size_t i = 0; i < points.size(); ++i) {
      SweepOutcome& out = report.outcomes[i];
      out.point = points[i];
      out.entry = std::move(batch.entry(i));
      out.stats.wall_seconds = batch.wall_seconds(i);
      harvest_cg(out);
    }
  } else {
    std::vector<std::exception_ptr> errors(points.size());

    // Pre-batch scalar loop, kept as the bit-identity reference. Each
    // task owns exactly one pre-assigned slot, so no result
    // synchronization is needed beyond the pool's quiescence barrier;
    // slot order (== input order) is independent of completion order.
    const auto evaluate_point = [&](std::size_t index) {
      const SweepPoint& point = points[index];
      SweepOutcome& out = report.outcomes[index];
      out.point = point;
      const auto start = std::chrono::steady_clock::now();
      try {
        EvaluationOptions options = point.options;
        options.mesh_cache = cache;
        out.entry = evaluate_with_exclusion(spec_, point.architecture,
                                            point.topology, point.tech,
                                            options);
        harvest_cg(out);
      } catch (...) {
        errors[index] = std::current_exception();
      }
      out.stats.wall_seconds = seconds_since(start);
    };

    if (threads == 1 || points.size() <= 1) {
      // Serial reference path: same evaluation routine, calling thread.
      for (std::size_t i = 0; i < points.size(); ++i) evaluate_point(i);
      report.threads_used = 1;
    } else {
      ThreadPool pool(threads);
      for (std::size_t i = 0; i < points.size(); ++i) {
        pool.submit([&evaluate_point, i] { evaluate_point(i); });
      }
      pool.wait_idle();
      report.threads_used = pool.thread_count();
    }

    // Surface the first failure in input order (deterministic, unlike
    // completion order).
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  if (cache != nullptr) {
    const MeshSolveCache::Stats after = cache->stats();
    report.cache_stats.hits = after.hits - stats_before.hits;
    report.cache_stats.misses = after.misses - stats_before.misses;
  }
  report.solver = solver_counters() - solver_before;
  report.wall_seconds = seconds_since(run_start);
  return report;
}

std::string sweep_point_label(ArchitectureKind arch,
                              std::optional<TopologyKind> topo,
                              DeviceTechnology tech,
                              const std::string& variant) {
  std::string label = to_string(arch);
  if (topo) label += std::string("/") + to_string(*topo);
  if (tech != DeviceTechnology::kGalliumNitride) {
    label += std::string("/") + to_string(tech);
  }
  if (!variant.empty()) label += "/" + variant;
  return label;
}

SweepGridBuilder::SweepGridBuilder(EvaluationOptions base_options)
    : base_options_(std::move(base_options)),
      architectures_(all_architectures()),
      topologies_(all_topologies()),
      technologies_{DeviceTechnology::kGalliumNitride} {}

SweepGridBuilder& SweepGridBuilder::architectures(
    std::vector<ArchitectureKind> archs) {
  architectures_ = std::move(archs);
  return *this;
}

SweepGridBuilder& SweepGridBuilder::topologies(
    std::vector<TopologyKind> topos) {
  topologies_ = std::move(topos);
  return *this;
}

SweepGridBuilder& SweepGridBuilder::technologies(
    std::vector<DeviceTechnology> techs) {
  technologies_ = std::move(techs);
  return *this;
}

SweepGridBuilder& SweepGridBuilder::add_option_variant(
    EvaluationOptions options, std::string label) {
  variants_.emplace_back(std::move(options), std::move(label));
  return *this;
}

std::vector<SweepPoint> SweepGridBuilder::build() const {
  VPD_REQUIRE(!architectures_.empty(), "no architectures selected");
  VPD_REQUIRE(!technologies_.empty(), "no technologies selected");
  const std::vector<std::pair<EvaluationOptions, std::string>> variants =
      variants_.empty()
          ? std::vector<std::pair<EvaluationOptions, std::string>>{
                {base_options_, std::string()}}
          : variants_;

  std::vector<SweepPoint> points;
  for (const auto& [options, variant] : variants) {
    for (DeviceTechnology tech : technologies_) {
      for (ArchitectureKind arch : architectures_) {
        if (arch == ArchitectureKind::kA0_PcbConversion) {
          SweepPoint p;
          p.architecture = arch;
          p.tech = tech;
          p.options = options;
          p.label = sweep_point_label(arch, std::nullopt, tech, variant);
          points.push_back(std::move(p));
          continue;
        }
        VPD_REQUIRE(!topologies_.empty(),
                    "no topologies selected for a VPD architecture");
        for (TopologyKind topo : topologies_) {
          SweepPoint p;
          p.architecture = arch;
          p.topology = topo;
          p.tech = tech;
          p.options = options;
          p.label = sweep_point_label(arch, topo, tech, variant);
          points.push_back(std::move(p));
        }
      }
    }
  }
  return points;
}

}  // namespace vpd
