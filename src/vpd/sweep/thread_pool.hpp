// Minimal fixed-size worker pool for the sweep engine. Tasks are opaque
// closures executed in FIFO submission order (though completion order is
// scheduler-dependent); the pool exists so a SweepRunner can saturate the
// machine while each task writes only to its own pre-assigned result
// slot. Exceptions must be handled inside the task — a throw that
// escapes a worker terminates the process, which is the correct behaviour
// for a bug in the harness itself (the runner wraps every evaluation in
// its own try/catch and transports errors by std::exception_ptr).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vpd {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least one). The pool is fixed-size for its lifetime.
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue (pending tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe; may be called from worker threads
  /// (tasks may submit follow-up tasks).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Tasks
  /// submitted while waiting extend the wait.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;   // workers wait for work/shutdown
  std::condition_variable idle_;         // wait_idle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::size_t active_{0};  // tasks currently executing
  bool shutdown_{false};
  std::vector<std::thread> workers_;
};

}  // namespace vpd
