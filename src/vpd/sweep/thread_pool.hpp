// Minimal fixed-size worker pool for the sweep engine and the evaluation
// service. Tasks are opaque closures executed in FIFO submission order
// (though completion order is scheduler-dependent); the pool exists so a
// SweepRunner or EvaluationService can saturate the machine while each
// task writes only to its own pre-assigned result slot. An exception that
// escapes a task no longer terminates the process: the worker catches it,
// the first one per wait_idle() epoch is kept (later ones in the same
// epoch are dropped — workers keep draining the queue), and the next
// wait_idle() call rethrows it to the waiter. Harnesses that want
// per-task error attribution (the sweep runner, the service) still wrap
// their evaluations in their own try/catch and never trip this path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vpd {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least one). The pool is fixed-size for its lifetime.
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue (pending tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe; may be called from worker threads
  /// (tasks may submit follow-up tasks).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Tasks
  /// submitted while waiting extend the wait. If any task threw since the
  /// last wait_idle(), rethrows the first such exception (the epoch's
  /// capture is cleared by the rethrow; the pool stays usable). An
  /// exception still pending at destruction is discarded.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;   // workers wait for work/shutdown
  std::condition_variable idle_;         // wait_idle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::size_t active_{0};  // tasks currently executing
  std::exception_ptr first_error_;  // first escaped task exception
  bool shutdown_{false};
  std::vector<std::thread> workers_;
};

}  // namespace vpd
