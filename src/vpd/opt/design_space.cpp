#include "vpd/opt/design_space.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/io/json.hpp"

namespace vpd {
namespace opt {
namespace {

template <typename Kind>
void check_axis(const std::vector<Kind>& axis, const char* what) {
  VPD_REQUIRE(!axis.empty(), what, " axis must not be empty");
  for (std::size_t i = 0; i < axis.size(); ++i) {
    for (std::size_t j = i + 1; j < axis.size(); ++j) {
      VPD_REQUIRE(axis[i] != axis[j], what, " axis repeats \"",
                  to_string(axis[i]), "\"");
    }
  }
}

void check_range(const ParamRange& range, const char* what) {
  VPD_REQUIRE(std::isfinite(range.lo) && std::isfinite(range.hi), what,
              " bounds must be finite");
  VPD_REQUIRE(range.lo > 0.0, what, " lower bound must be positive");
  VPD_REQUIRE(range.lo <= range.hi, what, " bounds are inverted");
}

}  // namespace

double ParamRange::clamp(double value) const {
  return std::min(hi, std::max(lo, value));
}

unsigned CountRange::clamp(long long value) const {
  if (value < static_cast<long long>(lo)) return lo;
  if (value > static_cast<long long>(hi)) return hi;
  return static_cast<unsigned>(value);
}

void DesignSpace::validate() const {
  check_axis(architectures, "architecture");
  check_axis(topologies, "topology");
  check_axis(technologies, "technology");
  for (ArchitectureKind arch : architectures) {
    VPD_REQUIRE(arch != ArchitectureKind::kA0_PcbConversion,
                "A0 has no distributed VRs to optimize; the reference "
                "architecture is a baseline, not a design-space member");
  }
  VPD_REQUIRE(vr_count.lo >= 1,
              "vr_count lower bound must be >= 1 (the optimizer searches "
              "explicit counts)");
  VPD_REQUIRE(vr_count.lo <= vr_count.hi, "vr_count bounds are inverted");
  VPD_REQUIRE(periphery_rings.lo >= 1,
              "periphery_rings lower bound must be >= 1");
  VPD_REQUIRE(periphery_rings.lo <= periphery_rings.hi,
              "periphery_rings bounds are inverted");
  check_range(below_die_area_fraction, "below_die_area_fraction");
  check_range(vr_attach_series_ohms, "vr_attach_series_ohms");
  check_range(distribution_sheet_ohms, "distribution_sheet_ohms");
}

std::size_t DesignSpace::categorical_combinations() const {
  return architectures.size() * topologies.size() * technologies.size();
}

bool contains(const DesignSpace& space, const DesignPoint& point) {
  const auto on_axis = [](const auto& axis, auto value) {
    return std::find(axis.begin(), axis.end(), value) != axis.end();
  };
  return on_axis(space.architectures, point.architecture) &&
         on_axis(space.topologies, point.topology) &&
         on_axis(space.technologies, point.tech) &&
         point.vr_count >= space.vr_count.lo &&
         point.vr_count <= space.vr_count.hi &&
         point.periphery_rings >= space.periphery_rings.lo &&
         point.periphery_rings <= space.periphery_rings.hi &&
         point.below_die_area_fraction >=
             space.below_die_area_fraction.lo &&
         point.below_die_area_fraction <=
             space.below_die_area_fraction.hi &&
         point.vr_attach_series_ohms >= space.vr_attach_series_ohms.lo &&
         point.vr_attach_series_ohms <= space.vr_attach_series_ohms.hi &&
         point.distribution_sheet_ohms >=
             space.distribution_sheet_ohms.lo &&
         point.distribution_sheet_ohms <= space.distribution_sheet_ohms.hi;
}

EvaluationOptions lower(const DesignPoint& point,
                        const EvaluationOptions& base) {
  VPD_REQUIRE(base.faults.empty(),
              "optimizer base options must be fault-free (survivability "
              "scoring owns the injections)");
  EvaluationOptions options = base;
  options.fixed_final_stage_vrs = point.vr_count;
  options.max_periphery_rings = point.periphery_rings;
  options.below_die_area_fraction = point.below_die_area_fraction;
  options.vr_attach_series = Resistance{point.vr_attach_series_ohms};
  options.distribution_sheet_ohms = point.distribution_sheet_ohms;
  return options;
}

std::string design_point_key(const DesignPoint& point) {
  return detail::concat(
      to_string(point.architecture), "/", to_string(point.topology), "/",
      to_string(point.tech), "/vrs=", point.vr_count,
      "/rings=", point.periphery_rings,
      "/area=", io::dump_number(point.below_die_area_fraction),
      "/attach=", io::dump_number(point.vr_attach_series_ohms),
      "/sheet=", io::dump_number(point.distribution_sheet_ohms));
}

DesignPoint sample(const DesignSpace& space, Rng& rng) {
  DesignPoint point;
  point.architecture = space.architectures[rng.next_below(
      static_cast<std::uint32_t>(space.architectures.size()))];
  point.topology = space.topologies[rng.next_below(
      static_cast<std::uint32_t>(space.topologies.size()))];
  point.tech = space.technologies[rng.next_below(
      static_cast<std::uint32_t>(space.technologies.size()))];
  point.vr_count =
      space.vr_count.lo + rng.next_below(space.vr_count.span() + 1);
  point.periphery_rings = space.periphery_rings.lo +
                          rng.next_below(space.periphery_rings.span() + 1);
  point.below_die_area_fraction = rng.uniform(
      space.below_die_area_fraction.lo, space.below_die_area_fraction.hi);
  point.vr_attach_series_ohms = rng.uniform(space.vr_attach_series_ohms.lo,
                                            space.vr_attach_series_ohms.hi);
  point.distribution_sheet_ohms = rng.uniform(
      space.distribution_sheet_ohms.lo, space.distribution_sheet_ohms.hi);
  return point;
}

DesignPoint repair(const DesignSpace& space, DesignPoint point) {
  const auto on_axis = [](const auto& axis, auto value) {
    return std::find(axis.begin(), axis.end(), value) != axis.end();
  };
  VPD_REQUIRE(on_axis(space.architectures, point.architecture),
              "architecture \"", to_string(point.architecture),
              "\" is not on the space's axis");
  VPD_REQUIRE(on_axis(space.topologies, point.topology), "topology \"",
              to_string(point.topology), "\" is not on the space's axis");
  VPD_REQUIRE(on_axis(space.technologies, point.tech), "technology \"",
              to_string(point.tech), "\" is not on the space's axis");
  point.vr_count = space.vr_count.clamp(point.vr_count);
  point.periphery_rings = space.periphery_rings.clamp(point.periphery_rings);
  point.below_die_area_fraction =
      space.below_die_area_fraction.clamp(point.below_die_area_fraction);
  point.vr_attach_series_ohms =
      space.vr_attach_series_ohms.clamp(point.vr_attach_series_ohms);
  point.distribution_sheet_ohms =
      space.distribution_sheet_ohms.clamp(point.distribution_sheet_ohms);
  return point;
}

}  // namespace opt
}  // namespace vpd
