#include "vpd/opt/optimizer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "vpd/common/error.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/fault/campaign.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace vpd {
namespace opt {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// RNG stream plan. Streams are disjoint by construction: axis
// permutations, per-candidate init jitter and per-(generation, child)
// variation each live in their own block, so no draw ever depends on
// evaluation or completion order.
constexpr std::uint64_t kAxisStreamBase = 1ull << 32;
constexpr std::uint64_t kInitStreamBase = 1ull << 33;
constexpr std::uint64_t kChildStreamBase = 1ull << 34;
constexpr std::uint64_t kGenerationStride = 1ull << 20;

enum Axis : std::size_t {
  kAxisArchitecture = 0,
  kAxisTopology,
  kAxisTechnology,
  kAxisVrCount,
  kAxisRings,
  kAxisArea,
  kAxisAttach,
  kAxisSheet,
  kAxisCount,
};

std::vector<std::size_t> permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(static_cast<std::uint32_t>(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

/// Latin-hypercube generation-0 points: each numeric axis is cut into n
/// strata and every stratum is used exactly once (per-axis permutations
/// from dedicated streams); categorical axes cycle their permutation so
/// every category appears within any window of axis-size candidates.
std::vector<DesignPoint> latin_hypercube(const DesignSpace& space,
                                         std::size_t n,
                                         std::uint64_t seed) {
  std::vector<std::vector<std::size_t>> perms(kAxisCount);
  for (std::size_t axis = 0; axis < kAxisCount; ++axis) {
    Rng rng(seed, kAxisStreamBase + axis);
    perms[axis] = permutation(n, rng);
  }
  const auto stratified_count = [n](const CountRange& range,
                                    std::size_t stratum, double jitter) {
    const double cells = static_cast<double>(range.span()) + 1.0;
    const double offset =
        (static_cast<double>(stratum) + jitter) / static_cast<double>(n);
    return range.clamp(static_cast<long long>(range.lo) +
                       static_cast<long long>(std::floor(offset * cells)));
  };
  const auto stratified_param = [n](const ParamRange& range,
                                    std::size_t stratum, double jitter) {
    const double offset =
        (static_cast<double>(stratum) + jitter) / static_cast<double>(n);
    return range.clamp(range.lo + offset * range.span());
  };

  std::vector<DesignPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng jitter(seed, kInitStreamBase + i);
    DesignPoint p;
    p.architecture =
        space.architectures[perms[kAxisArchitecture][i] %
                            space.architectures.size()];
    p.topology =
        space.topologies[perms[kAxisTopology][i] % space.topologies.size()];
    p.tech = space.technologies[perms[kAxisTechnology][i] %
                                space.technologies.size()];
    p.vr_count = stratified_count(space.vr_count, perms[kAxisVrCount][i],
                                  jitter.next_double());
    p.periphery_rings = stratified_count(
        space.periphery_rings, perms[kAxisRings][i], jitter.next_double());
    p.below_die_area_fraction = stratified_param(
        space.below_die_area_fraction, perms[kAxisArea][i],
        jitter.next_double());
    p.vr_attach_series_ohms = stratified_param(
        space.vr_attach_series_ohms, perms[kAxisAttach][i],
        jitter.next_double());
    p.distribution_sheet_ohms = stratified_param(
        space.distribution_sheet_ohms, perms[kAxisSheet][i],
        jitter.next_double());
    points.push_back(p);
  }
  return points;
}

/// VR silicon area of the deployment as a fraction of the die footprint:
/// per-VR area is the Table II switch count over the published switch
/// density; two-stage architectures add their DPMIH-derived first stage.
double area_fraction_of(const DesignPoint& point,
                        const ArchitectureEvaluation& eval,
                        const PowerDeliverySpec& spec) {
  const auto per_vr_mm2 = [](TopologyKind kind) {
    const HybridConverterData data = topology_data(kind);
    VPD_REQUIRE(data.switches_per_mm2 > 0.0,
                "topology \"", data.name, "\" has no switch density");
    return static_cast<double>(data.switch_count) / data.switches_per_mm2;
  };
  double total_mm2 =
      static_cast<double>(eval.vr_count_stage2) * per_vr_mm2(point.topology);
  if (eval.vr_count_stage1 > 0) {
    total_mm2 += static_cast<double>(eval.vr_count_stage1) *
                 per_vr_mm2(TopologyKind::kDpmih);
  }
  const double die_mm2 = spec.die_area.value * 1e6;
  return total_mm2 / die_mm2;
}

double droop_fraction_of(const ArchitectureEvaluation& eval) {
  if (!eval.distribution_rail.has_value() ||
      !eval.min_distribution_voltage.has_value() ||
      eval.distribution_rail->value <= 0.0) {
    return 0.0;
  }
  return (eval.distribution_rail->value -
          eval.min_distribution_voltage->value) /
         eval.distribution_rail->value;
}

/// Non-dominated sorting over the candidates' cheap objectives,
/// restricted to `ids`. Returns fronts in rank order; each front keeps
/// ids ascending. Classic O(n^2 d) — population sizes are tens.
std::vector<std::vector<std::size_t>> nondominated_fronts(
    const std::vector<Candidate>& all, std::vector<std::size_t> ids) {
  std::sort(ids.begin(), ids.end());
  const std::size_t n = ids.size();
  std::vector<std::vector<double>> objectives(n);
  for (std::size_t i = 0; i < n; ++i) {
    objectives[i] = all[ids[i]].cheap_objectives();
  }
  std::vector<std::size_t> dominated_by(n, 0);
  std::vector<std::vector<std::size_t>> dominated(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates(objectives[i], objectives[j])) {
        dominated[i].push_back(j);
        ++dominated_by[j];
      } else if (dominates(objectives[j], objectives[i])) {
        dominated[j].push_back(i);
        ++dominated_by[i];
      }
    }
  }
  std::vector<std::vector<std::size_t>> fronts;
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (dominated_by[i] == 0) current.push_back(i);
  }
  while (!current.empty()) {
    std::vector<std::size_t> next;
    std::vector<std::size_t> front_ids;
    front_ids.reserve(current.size());
    for (std::size_t i : current) front_ids.push_back(ids[i]);
    for (std::size_t i : current) {
      for (std::size_t j : dominated[i]) {
        if (--dominated_by[j] == 0) next.push_back(j);
      }
    }
    std::sort(front_ids.begin(), front_ids.end());
    std::sort(next.begin(), next.end());
    fronts.push_back(std::move(front_ids));
    current = std::move(next);
  }
  return fronts;
}

/// NSGA-II crowding distance of one front (cheap objectives). Boundary
/// points get +inf; interior points the normalized neighbour gap sum.
std::unordered_map<std::size_t, double> crowding_distances(
    const std::vector<Candidate>& all, const std::vector<std::size_t>& front) {
  std::unordered_map<std::size_t, double> crowd;
  for (std::size_t id : front) crowd[id] = 0.0;
  if (front.empty()) return crowd;
  const std::size_t dims = all[front.front()].cheap_objectives().size();
  for (std::size_t axis = 0; axis < dims; ++axis) {
    std::vector<std::size_t> order = front;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const double fa = all[a].cheap_objectives()[axis];
                const double fb = all[b].cheap_objectives()[axis];
                if (fa != fb) return fa < fb;
                return a < b;
              });
    const double lo = all[order.front()].cheap_objectives()[axis];
    const double hi = all[order.back()].cheap_objectives()[axis];
    crowd[order.front()] = std::numeric_limits<double>::infinity();
    crowd[order.back()] = std::numeric_limits<double>::infinity();
    if (hi <= lo) continue;
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      const double below = all[order[i - 1]].cheap_objectives()[axis];
      const double above = all[order[i + 1]].cheap_objectives()[axis];
      crowd[order[i]] += (above - below) / (hi - lo);
    }
  }
  return crowd;
}

}  // namespace

void OptimizerConfig::validate() const {
  VPD_REQUIRE(population >= 4, "population must be >= 4, got ", population);
  VPD_REQUIRE(generations >= 1, "generations must be >= 1");
  VPD_REQUIRE(std::isfinite(crossover_rate) && crossover_rate >= 0.0 &&
                  crossover_rate <= 1.0,
              "crossover_rate must be in [0, 1]");
  VPD_REQUIRE(std::isfinite(mutation_rate) && mutation_rate >= 0.0 &&
                  mutation_rate <= 1.0,
              "mutation_rate must be in [0, 1]");
  VPD_REQUIRE(std::isfinite(mutation_scale) && mutation_scale > 0.0,
              "mutation_scale must be positive");
  for (double e : epsilon) {
    VPD_REQUIRE(std::isfinite(e) && e >= 0.0,
                "epsilon sides must be finite and >= 0");
  }
  for (double r : reference) {
    VPD_REQUIRE(std::isfinite(r), "reference coordinates must be finite");
  }
  VPD_REQUIRE(base_options.faults.empty(),
              "optimizer base options must be fault-free (survivability "
              "scoring owns the injections)");
  VPD_REQUIRE(survivability.mesh_region_grid >= 1,
              "mesh_region_grid must be >= 1");
  survivability.severity.validate();
  survivability.resilience.validate();
}

std::vector<double> default_epsilon(std::size_t objective_count) {
  VPD_REQUIRE(objective_count == 3 || objective_count == 4,
              "the optimizer emits 3 or 4 objectives, got ",
              objective_count);
  std::vector<double> eps{2e-4, 2e-4, 1e-3};
  if (objective_count == 4) eps.push_back(1e-2);
  return eps;
}

std::vector<double> default_reference(std::size_t objective_count) {
  VPD_REQUIRE(objective_count == 3 || objective_count == 4,
              "the optimizer emits 3 or 4 objectives, got ",
              objective_count);
  // The area bound must clear the two-stage architectures, whose VR
  // silicon (stage 1 + stage 2) can approach the die footprint itself —
  // a 0.5 bound would clip every A3 point out of the hypervolume box.
  std::vector<double> ref{0.5, 0.2, 2.0};
  if (objective_count == 4) ref.push_back(1.0);
  return ref;
}

std::vector<double> Candidate::cheap_objectives() const {
  return {loss_fraction, droop_fraction, area_fraction};
}

std::vector<double> cheap_objectives_of(const PowerDeliverySpec& spec,
                                        const DesignPoint& point,
                                        const ArchitectureEvaluation& eval) {
  return {eval.loss_fraction(spec.total_power), droop_fraction_of(eval),
          area_fraction_of(point, eval, spec)};
}

obs::Snapshot OptimizeReport::snapshot() const {
  obs::Snapshot s;
  s.set_counter("opt.evaluations", evaluations);
  s.set_counter("opt.candidates", candidates);
  s.set_counter("opt.generations", generations_run);
  s.set_counter("opt.fault_campaigns", fault_campaigns);
  s.set_counter("opt.front_size", front.size());
  s.set_counter("mesh_cache.hits", cache_stats.hits);
  s.set_counter("mesh_cache.misses", cache_stats.misses);
  s.set_counter("solver.cg_solves", solver.cg_solves);
  s.set_counter("solver.cg_iterations", solver.cg_iterations);
  s.set_counter("solver.precond_factorizations",
                solver.precond_factorizations);
  s.set_counter("solver.precond_reuses", solver.precond_reuses);
  s.set_counter("solver.cg_block_panels", solver.cg_block_panels);
  s.set_counter("solver.cg_block_columns", solver.cg_block_columns);
  s.set_counter("opt.batch_groups", batch.groups);
  s.set_counter("opt.batch_grouped_points", batch.grouped_points);
  s.set_counter("opt.batch_scalar_points", batch.scalar_points);
  s.set_counter("opt.batch_panel_columns", batch.panel_columns);
  s.set_counter("opt.batch_deduped_solves", batch.deduped_solves);
  s.set_gauge("opt.hypervolume", hypervolume, hypervolume);
  s.set_gauge("opt.wall_seconds", wall_seconds, wall_seconds);
  return s;
}

DesignOptimizer::DesignOptimizer(PowerDeliverySpec spec, DesignSpace space,
                                 OptimizerConfig config)
    : spec_(spec), space_(std::move(space)), config_(std::move(config)) {
  spec_.validate();
  space_.validate();
  config_.validate();
}

std::size_t DesignOptimizer::objective_count() const {
  return config_.survivability.max_elites == 0 ? 3 : 4;
}

OptimizeReport DesignOptimizer::run() const {
  const auto run_start = std::chrono::steady_clock::now();
  const OptimizerConfig& cfg = config_;
  const std::size_t nobj = objective_count();

  std::vector<double> eps =
      cfg.epsilon.empty() ? default_epsilon(nobj) : cfg.epsilon;
  VPD_REQUIRE(eps.size() == nobj, "epsilon carries ", eps.size(),
              " sides for ", nobj, " objectives");
  std::vector<double> reference =
      cfg.reference.empty() ? default_reference(nobj) : cfg.reference;
  VPD_REQUIRE(reference.size() == nobj, "reference carries ",
              reference.size(), " coordinates for ", nobj, " objectives");

  const std::size_t max_evaluations =
      cfg.max_evaluations != 0 ? cfg.max_evaluations
                               : cfg.population * (cfg.generations + 1);

  obs::Span run_span("opt.run", cfg.trace);

  // One cache spans the whole run (every generation and every
  // survivability campaign), so each distinct mesh geometry is assembled
  // once no matter which generation rediscovers it.
  MeshSolveCache private_cache;
  SweepConfig sweep_config = cfg.sweep;
  if (sweep_config.use_mesh_cache && sweep_config.cache == nullptr) {
    sweep_config.cache = &private_cache;
  }
  const MeshSolveCache::Stats cache_before =
      sweep_config.use_mesh_cache ? sweep_config.cache->stats()
                                  : MeshSolveCache::Stats{};
  const SolverCounters solver_before = solver_counters();
  SweepRunner runner(spec_, sweep_config);

  std::vector<Candidate> all;
  std::vector<bool> evaluated;
  std::unordered_map<std::string, std::size_t> index_by_key;
  std::size_t evaluations = 0;
  std::size_t fault_campaigns = 0;
  BatchStats batch_stats;

  // Dedup intern: a design point gets one candidate id forever; ids are
  // assigned in proposal order, which every tie-break leans on.
  const auto intern = [&](const DesignPoint& point, std::size_t generation) {
    std::string key = design_point_key(point);
    const auto it = index_by_key.find(key);
    if (it != index_by_key.end()) return it->second;
    const std::size_t id = all.size();
    Candidate c;
    c.id = id;
    c.generation = generation;
    c.point = point;
    all.push_back(std::move(c));
    evaluated.push_back(false);
    index_by_key.emplace(std::move(key), id);
    return id;
  };

  // Batch-evaluates not-yet-evaluated candidates through the sweep
  // runner (input-order results, parallel == serial bit-identical).
  // Returns the ids that actually ran; ids beyond the evaluation budget
  // are dropped in id order.
  const auto evaluate_batch = [&](std::vector<std::size_t> ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    ids.erase(std::remove_if(ids.begin(), ids.end(),
                             [&](std::size_t id) { return evaluated[id]; }),
              ids.end());
    if (evaluations + ids.size() > max_evaluations) {
      ids.resize(max_evaluations - evaluations);
    }
    if (ids.empty()) return ids;
    std::vector<SweepPoint> points;
    points.reserve(ids.size());
    for (std::size_t id : ids) {
      SweepPoint sp;
      sp.architecture = all[id].point.architecture;
      sp.topology = all[id].point.topology;
      sp.tech = all[id].point.tech;
      sp.options = lower(all[id].point, cfg.base_options);
      sp.options.trace = run_span.context();
      sp.label = design_point_key(all[id].point);
      points.push_back(std::move(sp));
    }
    const SweepReport batch = runner.run(points);
    batch_stats += batch.batch;
    evaluations += ids.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Candidate& c = all[ids[i]];
      const ExplorationEntry& entry = batch.outcomes[i].entry;
      c.feasible = !entry.excluded();
      c.exclusion_reason = entry.exclusion_reason;
      if (c.feasible) {
        const std::vector<double> objectives =
            cheap_objectives_of(spec_, c.point, *entry.evaluation);
        c.loss_fraction = objectives[kLossFraction];
        c.droop_fraction = objectives[kDroopFraction];
        c.area_fraction = objectives[kAreaFraction];
      }
      evaluated[ids[i]] = true;
    }
    return ids;
  };

  // NSGA-II environmental selection over an id pool: whole fronts while
  // they fit, the last front by crowding (descending, id ascending),
  // infeasible candidates only to pad out a short population.
  const auto select_population = [&](std::vector<std::size_t> pool) {
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    std::vector<std::size_t> feasible;
    std::vector<std::size_t> infeasible;
    for (std::size_t id : pool) {
      (all[id].feasible ? feasible : infeasible).push_back(id);
    }
    std::vector<std::size_t> next;
    for (auto& front : nondominated_fronts(all, feasible)) {
      if (next.size() >= cfg.population) break;
      if (next.size() + front.size() <= cfg.population) {
        next.insert(next.end(), front.begin(), front.end());
        continue;
      }
      const auto crowd = crowding_distances(all, front);
      std::sort(front.begin(), front.end(),
                [&](std::size_t a, std::size_t b) {
                  const double ca = crowd.at(a);
                  const double cb = crowd.at(b);
                  if (ca != cb) return ca > cb;
                  return a < b;
                });
      front.resize(cfg.population - next.size());
      next.insert(next.end(), front.begin(), front.end());
    }
    for (std::size_t id : infeasible) {
      if (next.size() >= cfg.population) break;
      next.push_back(id);
    }
    std::sort(next.begin(), next.end());
    return next;
  };

  // Scores up to max_elites unscored members of the current cheap front
  // with an exhaustive N-1 campaign each, in the front's stable order.
  const auto score_elites = [&]() {
    if (cfg.survivability.max_elites == 0) return;
    std::vector<std::size_t> feasible;
    for (std::size_t id = 0; id < all.size(); ++id) {
      if (evaluated[id] && all[id].feasible) feasible.push_back(id);
    }
    if (feasible.empty()) return;
    std::vector<std::size_t> front =
        nondominated_fronts(all, std::move(feasible)).front();
    std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
      const auto fa = all[a].cheap_objectives();
      const auto fb = all[b].cheap_objectives();
      if (fa != fb) return fa < fb;
      return a < b;
    });
    FaultCampaignConfig campaign;
    campaign.severity = cfg.survivability.severity;
    campaign.resilience = cfg.survivability.resilience;
    campaign.nk_samples = 0;  // exhaustive N-1 only
    campaign.include_dropouts = true;
    campaign.include_derates = true;
    campaign.include_attach_faults = cfg.survivability.include_attach_faults;
    campaign.include_mesh_regions = cfg.survivability.include_mesh_regions;
    campaign.mesh_region_grid = cfg.survivability.mesh_region_grid;
    campaign.sweep = sweep_config;
    const FaultCampaignRunner campaign_runner(spec_, campaign);
    std::size_t scored = 0;
    for (std::size_t id : front) {
      if (all[id].survivability.has_value()) continue;
      if (scored == cfg.survivability.max_elites) break;
      EvaluationOptions options = lower(all[id].point, cfg.base_options);
      options.trace = run_span.context();
      const FaultCampaignReport report = campaign_runner.run(
          all[id].point.architecture, all[id].point.topology,
          all[id].point.tech, options);
      all[id].survivability = report.survivability();
      batch_stats += report.batch;
      ++fault_campaigns;
      ++scored;
    }
  };

  // --- Generation 0: warm start + Latin hypercube -----------------------
  std::vector<std::size_t> generation_ids;
  for (const DesignPoint& point : cfg.warm_start) {
    VPD_REQUIRE(contains(space_, point), "warm-start point \"",
                design_point_key(point), "\" lies outside the design space");
    generation_ids.push_back(intern(point, 0));
  }
  for (const DesignPoint& point :
       latin_hypercube(space_, cfg.population, cfg.seed)) {
    generation_ids.push_back(intern(point, 0));
  }
  evaluate_batch(generation_ids);
  generation_ids.erase(
      std::remove_if(generation_ids.begin(), generation_ids.end(),
                     [&](std::size_t id) { return !evaluated[id]; }),
      generation_ids.end());
  std::vector<std::size_t> population = select_population(generation_ids);
  score_elites();

  // --- Generation loop --------------------------------------------------
  std::size_t generations_run = 0;
  for (std::size_t g = 1; g <= cfg.generations; ++g) {
    if (evaluations >= max_evaluations || population.empty()) break;

    // Parent ranks for the binary tournaments: (front, crowding, id).
    std::unordered_map<std::size_t, std::pair<std::size_t, double>> rank;
    {
      std::vector<std::size_t> feasible;
      for (std::size_t id : population) {
        if (all[id].feasible) feasible.push_back(id);
      }
      const auto fronts = nondominated_fronts(all, feasible);
      for (std::size_t f = 0; f < fronts.size(); ++f) {
        const auto crowd = crowding_distances(all, fronts[f]);
        for (std::size_t id : fronts[f]) rank[id] = {f, crowd.at(id)};
      }
      for (std::size_t id : population) {
        if (rank.find(id) == rank.end()) {
          rank[id] = {fronts.size() + 1, 0.0};  // infeasible: worst rank
        }
      }
    }
    const auto better = [&](std::size_t a, std::size_t b) {
      const auto& ra = rank.at(a);
      const auto& rb = rank.at(b);
      if (ra.first != rb.first) return ra.first < rb.first;
      if (ra.second != rb.second) return ra.second > rb.second;
      return a < b;
    };

    std::vector<std::size_t> children;
    for (std::size_t j = 0; j < cfg.population; ++j) {
      Rng rng(cfg.seed, kChildStreamBase + g * kGenerationStride + j);
      const auto tournament = [&]() {
        const std::size_t a = population[rng.next_below(
            static_cast<std::uint32_t>(population.size()))];
        const std::size_t b = population[rng.next_below(
            static_cast<std::uint32_t>(population.size()))];
        return better(a, b) ? a : b;
      };
      const DesignPoint& pa = all[tournament()].point;
      const DesignPoint& pb = all[tournament()].point;

      DesignPoint child = pa;
      if (rng.next_double() < cfg.crossover_rate) {
        // Uniform crossover on the discrete genes, arithmetic blend on
        // the continuous ones.
        if (rng.next_double() < 0.5) child.architecture = pb.architecture;
        if (rng.next_double() < 0.5) child.topology = pb.topology;
        if (rng.next_double() < 0.5) child.tech = pb.tech;
        if (rng.next_double() < 0.5) child.vr_count = pb.vr_count;
        if (rng.next_double() < 0.5) child.periphery_rings =
            pb.periphery_rings;
        child.below_die_area_fraction +=
            rng.next_double() *
            (pb.below_die_area_fraction - pa.below_die_area_fraction);
        child.vr_attach_series_ohms +=
            rng.next_double() *
            (pb.vr_attach_series_ohms - pa.vr_attach_series_ohms);
        child.distribution_sheet_ohms +=
            rng.next_double() *
            (pb.distribution_sheet_ohms - pa.distribution_sheet_ohms);
      }

      const auto mutate_count = [&](unsigned value, const CountRange& range) {
        if (rng.next_double() >= cfg.mutation_rate) return value;
        long long delta = std::llround(
            rng.normal() * cfg.mutation_scale *
            (static_cast<double>(range.span()) + 1.0));
        if (delta == 0) delta = rng.next_double() < 0.5 ? -1 : 1;
        return range.clamp(static_cast<long long>(value) + delta);
      };
      const auto mutate_param = [&](double value, const ParamRange& range) {
        if (rng.next_double() >= cfg.mutation_rate) return value;
        return range.clamp(value +
                           rng.normal() * cfg.mutation_scale * range.span());
      };
      if (rng.next_double() < cfg.mutation_rate) {
        child.architecture = space_.architectures[rng.next_below(
            static_cast<std::uint32_t>(space_.architectures.size()))];
      }
      if (rng.next_double() < cfg.mutation_rate) {
        child.topology = space_.topologies[rng.next_below(
            static_cast<std::uint32_t>(space_.topologies.size()))];
      }
      if (rng.next_double() < cfg.mutation_rate) {
        child.tech = space_.technologies[rng.next_below(
            static_cast<std::uint32_t>(space_.technologies.size()))];
      }
      child.vr_count = mutate_count(child.vr_count, space_.vr_count);
      child.periphery_rings =
          mutate_count(child.periphery_rings, space_.periphery_rings);
      child.below_die_area_fraction = mutate_param(
          child.below_die_area_fraction, space_.below_die_area_fraction);
      child.vr_attach_series_ohms = mutate_param(
          child.vr_attach_series_ohms, space_.vr_attach_series_ohms);
      child.distribution_sheet_ohms = mutate_param(
          child.distribution_sheet_ohms, space_.distribution_sheet_ohms);

      children.push_back(intern(repair(space_, child), g));
    }

    evaluate_batch(children);
    std::vector<std::size_t> pool = population;
    for (std::size_t id : children) {
      if (evaluated[id]) pool.push_back(id);
    }
    population = select_population(pool);
    score_elites();
    ++generations_run;
  }
  // One final pass so a budget-truncated last batch still gets its
  // cheap-front elites scored before the archive forms.
  score_elites();

  // --- Final ε-dominance archive ----------------------------------------
  ParetoArchive archive(eps);
  for (const Candidate& c : all) {
    if (!evaluated[c.id] || !c.feasible) continue;
    std::vector<double> objectives = c.cheap_objectives();
    if (nobj == 4) {
      if (!c.survivability.has_value()) continue;
      objectives.push_back(1.0 - *c.survivability);
    }
    archive.insert(c.id, std::move(objectives));
  }

  OptimizeReport report;
  for (const ArchiveEntry& entry : archive.entries()) {
    report.front.push_back(FrontEntry{all[entry.id], entry.objectives});
  }
  std::vector<std::vector<double>> front_objectives;
  front_objectives.reserve(report.front.size());
  for (const FrontEntry& entry : report.front) {
    front_objectives.push_back(entry.objectives);
  }
  report.evaluations = evaluations;
  report.candidates = all.size();
  report.generations_run = generations_run;
  report.fault_campaigns = fault_campaigns;
  report.batch = batch_stats;
  report.epsilon = std::move(eps);
  report.reference = std::move(reference);
  report.hypervolume = hypervolume(front_objectives, report.reference);
  if (sweep_config.use_mesh_cache) {
    const MeshSolveCache::Stats after = sweep_config.cache->stats();
    report.cache_stats.hits = after.hits - cache_before.hits;
    report.cache_stats.misses = after.misses - cache_before.misses;
  }
  report.solver = solver_counters() - solver_before;
  report.wall_seconds = seconds_since(run_start);
  run_span.set_arg("evaluations", static_cast<double>(report.evaluations));
  run_span.set_arg("front_size", static_cast<double>(report.front.size()));
  return report;
}

}  // namespace opt
}  // namespace vpd
