#include "vpd/opt/pareto.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {
namespace opt {
namespace {

/// Box-corner dominance: the ε-grid cell ordering that gives the archive
/// its bounded resolution. Corners are exact objective values on ε=0
/// axes, so an all-zero epsilon degrades to plain Pareto dominance.
bool box_dominates(const std::vector<double>& a,
                   const std::vector<double>& b) {
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

}  // namespace

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  VPD_REQUIRE(!a.empty() && a.size() == b.size(),
              "objective vectors must have equal, nonzero size");
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

ParetoArchive::ParetoArchive(std::vector<double> epsilon)
    : epsilon_(std::move(epsilon)) {
  VPD_REQUIRE(!epsilon_.empty(), "archive needs at least one objective");
  for (double e : epsilon_) {
    VPD_REQUIRE(std::isfinite(e) && e >= 0.0,
                "epsilon sides must be finite and >= 0");
  }
}

std::vector<double> ParetoArchive::box_of(
    const std::vector<double>& objectives) const {
  std::vector<double> box(objectives.size());
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    if (epsilon_[i] == 0.0) {
      box[i] = objectives[i];  // exact axis: the corner is the value
    } else {
      box[i] = std::floor(objectives[i] / epsilon_[i]) * epsilon_[i];
    }
  }
  return box;
}

double ParetoArchive::corner_distance(
    const std::vector<double>& objectives,
    const std::vector<double>& box) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    const double offset = objectives[i] - box[i];
    d2 += offset * offset;
  }
  return d2;
}

bool ParetoArchive::insert(std::size_t id, std::vector<double> objectives) {
  VPD_REQUIRE(objectives.size() == epsilon_.size(),
              "expected ", epsilon_.size(), " objectives, got ",
              objectives.size());
  for (double f : objectives) {
    VPD_REQUIRE(std::isfinite(f), "objectives must be finite");
  }
  const std::vector<double> box = box_of(objectives);

  // Same-box duel first: boxes are equivalence classes, so at most one
  // member can share the box. Closest-to-corner wins; an exact distance
  // tie prefers lexicographically smaller objectives, then smaller id —
  // all insertion-order-free criteria.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (boxes_[i] != box) continue;
    const ArchiveEntry& incumbent = entries_[i];
    if (dominates(incumbent.objectives, objectives)) return false;
    if (!dominates(objectives, incumbent.objectives)) {
      const double mine = corner_distance(objectives, box);
      const double theirs = corner_distance(incumbent.objectives, box);
      if (theirs < mine) return false;
      if (theirs == mine) {
        if (incumbent.objectives < objectives) return false;
        if (incumbent.objectives == objectives && incumbent.id < id) {
          return false;
        }
      }
    }
    entries_[i] = ArchiveEntry{id, std::move(objectives)};
    boxes_[i] = box;
    return true;
  }

  // Different boxes: box dominance gates acceptance, then the newcomer
  // evicts every member whose box it dominates.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (box_dominates(boxes_[i], box)) return false;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (box_dominates(box, boxes_[i])) continue;
    if (kept != i) {
      entries_[kept] = std::move(entries_[i]);
      boxes_[kept] = std::move(boxes_[i]);
    }
    ++kept;
  }
  entries_.resize(kept);
  boxes_.resize(kept);
  entries_.push_back(ArchiveEntry{id, std::move(objectives)});
  boxes_.push_back(box);
  return true;
}

std::vector<ArchiveEntry> ParetoArchive::entries() const {
  std::vector<ArchiveEntry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ArchiveEntry& a, const ArchiveEntry& b) {
              if (a.objectives != b.objectives) {
                return a.objectives < b.objectives;
              }
              return a.id < b.id;
            });
  return sorted;
}

namespace {

/// Recursive slicing over the last dimension: sort the points by their
/// last objective, sweep the slabs between consecutive values, and
/// multiply each slab's thickness by the (d-1)-dimensional hypervolume
/// of the points active in that slab.
double hv_recursive(std::vector<std::vector<double>> points,
                    const std::vector<double>& reference,
                    std::size_t dims) {
  if (points.empty()) return 0.0;
  if (dims == 1) {
    double best = reference[0];
    for (const auto& p : points) best = std::min(best, p[0]);
    return reference[0] - best;
  }
  const std::size_t axis = dims - 1;
  std::sort(points.begin(), points.end(),
            [axis](const std::vector<double>& a,
                   const std::vector<double>& b) { return a[axis] < b[axis]; });
  double volume = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double slab_lo = points[i][axis];
    if (i + 1 < points.size() && points[i + 1][axis] == slab_lo) {
      continue;  // equal coordinates share one slab boundary
    }
    const double slab_hi =
        i + 1 < points.size() ? points[i + 1][axis] : reference[axis];
    if (slab_hi <= slab_lo) continue;
    // Every point at or below the slab floor shades this slab.
    std::vector<std::vector<double>> active;
    for (std::size_t j = 0; j <= i; ++j) {
      active.push_back(points[j]);
    }
    volume += (slab_hi - slab_lo) * hv_recursive(std::move(active),
                                                 reference, dims - 1);
  }
  return volume;
}

}  // namespace

double hypervolume(const std::vector<std::vector<double>>& front,
                   const std::vector<double>& reference) {
  VPD_REQUIRE(!reference.empty(), "hypervolume needs a reference point");
  std::vector<std::vector<double>> clipped;
  for (const auto& point : front) {
    VPD_REQUIRE(point.size() == reference.size(),
                "front point has ", point.size(), " objectives, reference ",
                reference.size());
    bool inside = false;
    std::vector<double> p = point;
    for (std::size_t i = 0; i < p.size(); ++i) {
      VPD_REQUIRE(std::isfinite(p[i]), "front objectives must be finite");
      if (p[i] < reference[i]) inside = true;
      p[i] = std::min(p[i], reference[i]);
    }
    if (inside) clipped.push_back(std::move(p));
  }
  return hv_recursive(std::move(clipped), reference, reference.size());
}

}  // namespace opt
}  // namespace vpd
