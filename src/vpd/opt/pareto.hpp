// Multi-objective bookkeeping for the design-space optimizer: plain and
// ε-box Pareto dominance, a bounded-resolution archive, and the
// hypervolume indicator the bench uses to compare fronts.
//
// All objectives are MINIMIZED. The archive follows Laumanns-style
// ε-dominance: objective space is tiled into boxes of side epsilon[i]
// (epsilon 0 degrades to exact dominance on that axis), at most one
// entry survives per box, and an entry is accepted only if no member's
// box dominates its box. Within one box the member closest to the box's
// lower corner wins; exact ties break on the smaller entry id. Every
// rule is deterministic, entries() has a stable order (objectives
// lexicographically, id last), and inserting the same sequence always
// produces the same archive — the optimizer's bit-reproducibility rests
// on this.
#pragma once

#include <cstddef>
#include <vector>

namespace vpd {
namespace opt {

/// True when `a` Pareto-dominates `b`: a <= b on every objective and
/// a < b on at least one. Vectors must have equal, nonzero size.
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

struct ArchiveEntry {
  /// Caller-assigned identity (the optimizer's candidate id). Ties and
  /// orderings break on this, so ids must be unique per archive.
  std::size_t id{0};
  std::vector<double> objectives;
};

class ParetoArchive {
 public:
  /// `epsilon` holds one box side per objective; every entry inserted
  /// later must carry exactly epsilon.size() objectives. Sides must be
  /// >= 0; 0 means exact dominance on that axis.
  explicit ParetoArchive(std::vector<double> epsilon);

  std::size_t objective_count() const { return epsilon_.size(); }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Offers one point. Returns true when the archive accepted it (it was
  /// not ε-dominated and won any same-box duel); accepted points evict
  /// every member they ε-dominate. False leaves the archive unchanged.
  bool insert(std::size_t id, std::vector<double> objectives);

  /// Members in the stable order: objectives lexicographically
  /// ascending, id as the final tiebreak.
  std::vector<ArchiveEntry> entries() const;

 private:
  /// Lower corner of the ε-box holding `objectives` (the exact value on
  /// ε=0 axes, so all-zero epsilon degrades to plain dominance).
  std::vector<double> box_of(const std::vector<double>& objectives) const;
  /// Distance^2 to the box's lower corner (the same-box duel metric).
  double corner_distance(const std::vector<double>& objectives,
                         const std::vector<double>& box) const;

  std::vector<double> epsilon_;
  std::vector<ArchiveEntry> entries_;        // unordered internally
  std::vector<std::vector<double>> boxes_;   // parallel to entries_
};

/// Hypervolume (minimization) of `front` against `reference`: the
/// d-dimensional volume of the region dominated by the front and
/// bounded above by the reference point. Points outside the reference
/// box are clipped; a point at or beyond the reference on every axis
/// contributes nothing. Exact recursive slicing — intended for the
/// optimizer's front sizes (tens of points, <= ~6 objectives), not for
/// thousands.
double hypervolume(const std::vector<std::vector<double>>& front,
                   const std::vector<double>& reference);

}  // namespace opt
}  // namespace vpd
