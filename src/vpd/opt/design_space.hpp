// The searchable VPD architecture space: which categorical choices
// (architecture, final-stage topology, device technology) and which
// bounded numeric knobs (VR count, periphery rings, below-die area
// budget, attach/sheet interconnect allocation) the design-space
// optimizer may vary, plus the deterministic lowering of one concrete
// assignment onto the evaluator's EvaluationOptions.
//
// The space is strict by construction: validate() rejects empty or
// duplicated categorical axes, inverted or non-positive bounds, and A0
// (the PCB-conversion reference has no distributed VRs to count, place
// or fault). A DesignPoint is only meaningful relative to the space that
// produced it — contains() is the membership test the optimizer applies
// to warm-start points before trusting them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vpd/arch/architecture.hpp"
#include "vpd/arch/evaluator.hpp"
#include "vpd/common/rng.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/devices/technology.hpp"

namespace vpd {
namespace opt {

/// Inclusive bounds of one continuous knob. lo == hi pins the knob.
struct ParamRange {
  double lo{0.0};
  double hi{0.0};

  double clamp(double value) const;
  double span() const { return hi - lo; }
};

/// Inclusive bounds of one integer knob. lo == hi pins the knob.
struct CountRange {
  unsigned lo{0};
  unsigned hi{0};

  unsigned clamp(long long value) const;
  unsigned span() const { return hi - lo; }
};

/// The searchable space. Defaults cover the paper's VPD architectures
/// with every Table II topology, GaN devices, and knob ranges bracketing
/// the calibrated defaults (vr_attach_series 100 uOhm, sheet 2 mOhm/sq,
/// the paper-mode 1.6 below-die area budget).
struct DesignSpace {
  std::vector<ArchitectureKind> architectures{
      ArchitectureKind::kA1_InterposerPeriphery,
      ArchitectureKind::kA2_InterposerBelowDie,
      ArchitectureKind::kA3_TwoStage12V,
      ArchitectureKind::kA3_TwoStage6V,
  };
  std::vector<TopologyKind> topologies{
      TopologyKind::kDpmih,
      TopologyKind::kDsch,
      TopologyKind::kDickson,
  };
  std::vector<DeviceTechnology> technologies{
      DeviceTechnology::kGalliumNitride,
  };
  /// Final-stage VR count (EvaluationOptions::fixed_final_stage_vrs).
  CountRange vr_count{36, 64};
  /// Maximum periphery rows (EvaluationOptions::max_periphery_rings).
  CountRange periphery_rings{1, 3};
  /// Below-die VR area budget as a fraction of the die footprint.
  ParamRange below_die_area_fraction{0.6, 1.6};
  /// Per-VR vertical attach + local feed resistance [Ohm].
  ParamRange vr_attach_series_ohms{50e-6, 200e-6};
  /// Distribution-metal sheet resistance [Ohm/sq].
  ParamRange distribution_sheet_ohms{1e-3, 4e-3};

  /// Throws InvalidArgument on empty/duplicated axes, A0, inverted
  /// bounds, non-positive physical quantities, or a zero vr_count lower
  /// bound (the optimizer searches explicit counts, never "automatic").
  void validate() const;

  /// Number of categorical combinations (architectures x topologies x
  /// technologies).
  std::size_t categorical_combinations() const;
};

/// One concrete assignment of every axis.
struct DesignPoint {
  ArchitectureKind architecture{ArchitectureKind::kA1_InterposerPeriphery};
  TopologyKind topology{TopologyKind::kDsch};
  DeviceTechnology tech{DeviceTechnology::kGalliumNitride};
  unsigned vr_count{48};
  unsigned periphery_rings{2};
  double below_die_area_fraction{1.6};
  double vr_attach_series_ohms{100e-6};
  double distribution_sheet_ohms{2e-3};
};

/// Strict membership test: every categorical value on its axis, every
/// numeric knob inside its bounds.
bool contains(const DesignSpace& space, const DesignPoint& point);

/// Lowers a point onto the evaluator options: `base` supplies everything
/// the space does not model (mesh resolution, tolerances, ...), the
/// point overwrites the five searched knobs. The base must be fault-free
/// (the optimizer owns fault injection during survivability scoring).
EvaluationOptions lower(const DesignPoint& point,
                        const EvaluationOptions& base);

/// Canonical digest of a point — the optimizer's dedup key. Two points
/// with equal keys lower to bit-identical evaluations under a fixed
/// base. Format: "A2/DSCH/GaN/vrs=48/rings=2/area=1.6/attach=0.0001/
/// sheet=0.002" with doubles printed by the io number writer (shortest
/// round-trip form), so the key is exact, not rounded.
std::string design_point_key(const DesignPoint& point);

/// Uniform sample of the space; consumes a fixed number of draws per
/// call (one per axis), so counter-seeded callers stay reproducible.
DesignPoint sample(const DesignSpace& space, Rng& rng);

/// Clamps every numeric knob into its bounds and verifies the
/// categoricals; throws InvalidArgument when a categorical value is off
/// its axis (numerics are repairable, categories are not).
DesignPoint repair(const DesignSpace& space, DesignPoint point);

}  // namespace opt
}  // namespace vpd
