// Seeded multi-objective design-space optimizer: an NSGA-II-style
// generation loop over the DesignSpace that replaces exhaustive grid
// enumeration with adaptive sampling, emitting an ε-dominance Pareto
// front over {total loss, peak droop, VR area, N-1 vulnerability}.
//
// Search shape: a Latin-hypercube initial population (optionally
// warm-started from known-good design points, e.g. cached sweep
// winners), then per generation binary-tournament selection on
// (non-domination rank, crowding distance), uniform/blend crossover,
// per-gene mutation, and elitist environmental selection over parents
// plus children. Candidates are deduplicated by design_point_key, every
// distinct point is evaluated exactly once through the same
// evaluate_with_exclusion path the sweep engine uses (sharing one
// MeshSolveCache), and N-1 survivability is scored by a
// FaultCampaignRunner on cheap-front elites only — the one expensive
// objective rides on the designs that already earn it.
//
// Determinism contract (the repo convention): a parallel run is
// bit-identical to a serial run, and a re-run with the same seed
// reproduces the front bit for bit. Every random draw comes from a
// counter-seeded Rng stream addressed by (generation, child) or
// (axis) — never by thread or completion order — evaluation batches
// write to pre-assigned slots, and every sort in selection and in the
// archive is total (ties always break on candidate id). Only wall-time
// fields and the factorization/reuse split vary run to run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vpd/core/spec.hpp"
#include "vpd/fault/fault_model.hpp"
#include "vpd/fault/resilience.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/obs/trace.hpp"
#include "vpd/opt/design_space.hpp"
#include "vpd/opt/pareto.hpp"
#include "vpd/sweep/sweep.hpp"

namespace vpd {
namespace opt {

/// How N-1 survivability is scored on cheap-front elites. The campaign
/// is the fault subsystem's exhaustive N-1 set (no Monte Carlo): VR
/// dropouts and derates always, attach faults and mesh-damage regions
/// by choice. max_elites caps the campaigns per scoring pass (one pass
/// per generation plus a final pass); 0 disables survivability entirely
/// and the optimizer emits a three-objective front.
struct SurvivabilityScoring {
  std::size_t max_elites{4};
  FaultSeverity severity;
  ResilienceSpec resilience;
  bool include_attach_faults{true};
  bool include_mesh_regions{false};
  std::size_t mesh_region_grid{2};
};

struct OptimizerConfig {
  /// Population per generation (>= 4).
  std::size_t population{24};
  /// Generation-loop iterations beyond the initial population (>= 1).
  std::size_t generations{8};
  /// Hard cap on evaluator runs; 0 = population * (generations + 1).
  /// Children past the cap are dropped in deterministic (id) order.
  std::size_t max_evaluations{0};
  /// Seed of the counter-based search RNG: axis permutations, candidate
  /// init and each (generation, child) variation draw from their own
  /// Rng(seed, stream), independent of evaluation order. Kept within
  /// 2^53 so the wire form (a JSON number) round-trips exactly.
  std::uint64_t seed{0x5eedULL};
  /// Probability a child is bred from two parents (else cloned).
  double crossover_rate{0.9};
  /// Per-gene mutation probability.
  double mutation_rate{0.3};
  /// Mutation step, as a fraction of each knob's range.
  double mutation_scale{0.2};
  /// ε-archive box sides per objective in the canonical order
  /// {loss, droop, area, vulnerability}; empty picks the defaults
  /// (default_epsilon). Sized to the active objective count.
  std::vector<double> epsilon;
  /// Hypervolume reference point, same order; empty picks
  /// default_reference. Objectives at or beyond it contribute nothing.
  std::vector<double> reference;
  SurvivabilityScoring survivability;
  /// Extra generation-0 candidates evaluated ahead of the Latin
  /// hypercube (e.g. winners recalled from cached sweep evaluations).
  /// Every point must lie inside the space.
  std::vector<DesignPoint> warm_start;
  /// Everything the design space does not search (mesh resolution,
  /// tolerances, ...). Must be fault-free with no sink map.
  EvaluationOptions base_options;
  /// Worker pool + shared mesh cache for the evaluation batches and the
  /// survivability campaigns (SweepConfig semantics: threads == 1 is
  /// the serial reference path, bit-identical to any parallel run).
  SweepConfig sweep;
  /// Parent span for the run's "opt.run" trace span.
  obs::TraceContext trace{};

  void validate() const;
};

/// Canonical objective order. Vulnerability (1 - survivability) is
/// present only when SurvivabilityScoring::max_elites > 0.
enum ObjectiveIndex : std::size_t {
  kLossFraction = 0,
  kDroopFraction = 1,
  kAreaFraction = 2,
  kVulnerability = 3,
};

/// Default ε boxes / hypervolume reference for the first
/// `objective_count` canonical objectives (3 or 4).
std::vector<double> default_epsilon(std::size_t objective_count);
std::vector<double> default_reference(std::size_t objective_count);

/// The cheap objective vector {loss, droop, area} the optimizer assigns
/// one feasible evaluation — exposed so exhaustive-grid baselines
/// (bench_optimize) and tests score external candidates identically.
std::vector<double> cheap_objectives_of(const PowerDeliverySpec& spec,
                                        const DesignPoint& point,
                                        const ArchitectureEvaluation& eval);

/// One evaluated candidate (dedup'd: a design point appears once no
/// matter how many generations rediscover it).
struct Candidate {
  std::size_t id{0};          // insertion order; all tie-breaks use this
  std::size_t generation{0};  // generation that first proposed it
  DesignPoint point;
  /// False when the paper's exclusion rule applied (rating exceeded or
  /// infeasible); such candidates never enter fronts or archives.
  bool feasible{false};
  std::string exclusion_reason;
  double loss_fraction{0.0};
  double droop_fraction{0.0};
  double area_fraction{0.0};
  /// N-1 surviving fraction; present once a scoring pass elected this
  /// candidate as a cheap-front elite.
  std::optional<double> survivability;

  /// {loss, droop, area} — the cheap objectives that steer selection.
  std::vector<double> cheap_objectives() const;
};

struct FrontEntry {
  Candidate candidate;
  /// The archive-facing vector: cheap objectives plus vulnerability
  /// when survivability scoring is on.
  std::vector<double> objectives;
};

struct OptimizeReport {
  /// ε-archive front in the archive's stable order.
  std::vector<FrontEntry> front;
  /// Evaluator runs spent (dedup'd candidates actually evaluated).
  std::size_t evaluations{0};
  /// Distinct design points proposed (evaluated + budget-dropped).
  std::size_t candidates{0};
  std::size_t generations_run{0};
  /// N-1 campaigns spent on elite scoring.
  std::size_t fault_campaigns{0};
  /// The ε boxes and reference point the run used (config or defaults).
  std::vector<double> epsilon;
  std::vector<double> reference;
  /// Hypervolume of `front` against `reference` (minimization).
  double hypervolume{0.0};
  double wall_seconds{0.0};
  /// Aggregates over the run's cache and the process-wide solver
  /// counters (the factorization/reuse split is scheduling-dependent;
  /// everything else is deterministic).
  MeshSolveCache::Stats cache_stats;
  SolverCounters solver;
  /// Batch-engine accounting summed over every generation's sweep and
  /// every elite fault campaign (all zero with sweep.batch=false).
  BatchStats batch;

  std::size_t front_size() const { return front.size(); }

  /// The report's metrics in the unified telemetry shape (opt.*
  /// counters and gauges plus mesh_cache.* / solver.* counters);
  /// emitted via obs::Snapshot::to_json() by bench_optimize and the
  /// service.
  obs::Snapshot snapshot() const;
};

class DesignOptimizer {
 public:
  DesignOptimizer(PowerDeliverySpec spec, DesignSpace space,
                  OptimizerConfig config = {});

  const PowerDeliverySpec& spec() const { return spec_; }
  const DesignSpace& space() const { return space_; }
  const OptimizerConfig& config() const { return config_; }

  /// Number of objectives the run optimizes (3, or 4 with
  /// survivability scoring).
  std::size_t objective_count() const;

  /// Runs the full generation loop and returns the front.
  OptimizeReport run() const;

 private:
  PowerDeliverySpec spec_;
  DesignSpace space_;
  OptimizerConfig config_;
};

}  // namespace opt
}  // namespace vpd
