// Long-lived evaluation service: the process-resident answer to "query
// the same PDN model many times fast". Owns a worker pool and one shared
// MeshSolveCache so mesh operators are assembled once per geometry across
// the whole request stream, accepts requests through a bounded queue with
// explicit backpressure (a full queue rejects immediately with a status —
// it never blocks the submitter), coalesces duplicate in-flight design
// points onto a single evaluation, and keeps an LRU cache of completed
// results keyed by the canonical serialized request.
//
// Determinism contract (same spirit as the sweep and fault subsystems):
// the response for a request is bit-identical to a serial
// evaluate_with_exclusion() of the same request, regardless of
// concurrency, coalescing, or cache state — evaluations are pure
// functions of the request, cached mesh operators are numerically
// identical to per-call assembly, and cached/coalesced responses share
// the one result object that evaluation produced. Only latency and
// from_cache metadata vary run to run.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "vpd/common/statistics.hpp"
#include "vpd/core/explorer.hpp"
#include "vpd/io/schema.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/obs/trace.hpp"
#include "vpd/package/mesh_cache.hpp"
#include "vpd/sweep/thread_pool.hpp"

namespace vpd {
namespace serve {

enum class ResponseStatus {
  kOk,        // evaluation available in `entry`
  kExcluded,  // the paper's exclusion rule applied (entry holds details)
  kRejected,  // bounded queue full — resubmit later
  kError,     // invalid request or evaluation failure (see `error`)
};

const char* to_string(ResponseStatus status);

struct ServiceConfig {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  std::size_t threads{0};
  /// Maximum in-flight (queued + executing) evaluations. A submit that
  /// would exceed this resolves immediately to kRejected. Cache hits and
  /// coalesced submits do not consume queue slots.
  std::size_t queue_capacity{256};
  /// Completed-result LRU entries keyed by canonical request; 0 disables
  /// result caching (every distinct submit evaluates).
  std::size_t result_cache_capacity{1024};
  /// Evaluated requests whose submit-to-resolve latency exceeds this are
  /// counted in ServiceMetrics::slow_requests and reported through
  /// `slow_request_sink` with their stage breakdown. 0 (the default)
  /// disables the slow-request log.
  double slow_request_seconds{0.0};
  /// Destination for slow-request log lines; nullptr writes to stderr.
  /// Called outside the service lock, possibly from multiple workers.
  std::function<void(const std::string& line)> slow_request_sink;
};

struct ServiceResponse {
  ResponseStatus status{ResponseStatus::kError};
  /// Populated for kError / kRejected.
  std::string error;
  /// Populated for kOk / kExcluded; shared with the result cache and any
  /// coalesced waiters (immutable once published).
  std::shared_ptr<const ExplorationEntry> entry;
  /// True when served from the completed-result LRU without evaluating.
  bool from_cache{false};
  /// Where this request spent its wall time (queue wait, mesh get/build,
  /// CG solve, whole evaluator run). All zero for cache hits, rejections
  /// and request errors — nothing was queued or evaluated. serialize is
  /// filled by to_json(ServiceResponse), which times the body build.
  /// Timings are measurements only: they never affect the result.
  obs::StageTimings timings;
};

/// Point-in-time service counters. Latency covers every resolved request
/// (cache hits included, rejects excluded), measured submit-to-resolve.
struct ServiceMetrics {
  std::size_t requests{0};        // submits accepted into any path
  std::size_t completed{0};       // responses resolved (incl. errors)
  std::size_t rejected{0};        // backpressure rejections
  std::size_t errors{0};          // kError responses
  std::size_t evaluated{0};       // actual evaluator runs
  std::size_t coalesced{0};       // submits attached to an in-flight twin
  std::size_t result_cache_hits{0};
  std::size_t result_cache_misses{0};
  std::size_t result_cache_size{0};
  std::size_t queue_high_water{0};  // max in-flight depth observed
  std::size_t threads{0};
  std::size_t latency_samples{0};
  double latency_min_seconds{0.0};
  double latency_mean_seconds{0.0};
  double latency_max_seconds{0.0};
  double latency_p99_seconds{0.0};
  MeshSolveCache::Stats mesh_cache;
  /// CG iterations accumulated over completed evaluator runs (from each
  /// evaluation's own deterministic count; cache hits add nothing).
  std::size_t cg_iterations{0};
  /// Process-wide solver counter delta since the service was constructed
  /// (includes preconditioner factorization/reuse traffic of this
  /// service's workers; see solver_counters()).
  SolverCounters solver;
  /// Evaluated requests over config.slow_request_seconds (0 when the slow
  /// log is disabled).
  std::size_t slow_requests{0};
  /// The same metrics in the unified telemetry shape: serve.* counters,
  /// the serve.queue_depth gauge (+ high water), and the latency, stage
  /// and queue-depth histograms kept by the service registry, merged with
  /// mesh_cache.* and solver.* counters. to_json(ServiceMetrics) is
  /// exactly this snapshot's JSON — the pre-v2 flat aliases were removed
  /// after their one-release deprecation window (docs/observability.md).
  obs::Snapshot observability;

  double result_cache_hit_rate() const;
  double mesh_cache_hit_rate() const;
};

/// One resolved droop-campaign request (the {"cmd":"transient"} verb).
/// Campaigns run synchronously on the caller's thread — their inner
/// parallelism lives on the campaign's own pool — sharing the service's
/// mesh cache, and are not queued, coalesced or result-cached (a campaign
/// is thousands of solves, not a cacheable point lookup).
struct TransientServiceResponse {
  ResponseStatus status{ResponseStatus::kError};
  /// Populated for kError (bad request / integration failure) and
  /// kExcluded (the nominal design point is excluded outright).
  std::string error;
  /// Populated for kOk.
  std::shared_ptr<const DroopCampaignReport> report;
};

/// One resolved design-space optimization request (the
/// {"cmd":"optimize"} verb). Like transient campaigns, optimizer runs
/// execute synchronously on the caller's thread — their inner
/// parallelism lives on the optimizer's own pool — share the service's
/// mesh cache, and are not queued, coalesced or result-cached (a run is
/// hundreds of evaluations, not a cacheable point lookup).
struct OptimizeServiceResponse {
  ResponseStatus status{ResponseStatus::kError};
  /// Populated for kError (bad request / search failure).
  std::string error;
  /// Populated for kOk.
  std::shared_ptr<const opt::OptimizeReport> report;
};

/// Unified telemetry shape: exactly metrics.observability.to_json(). The
/// pre-v2 flat keys — requests/completed/.../latency/mesh_cache/solver —
/// were deprecated aliases for one release and are no longer emitted.
io::Value to_json(const ServiceMetrics& metrics);
/// Wire body for a transient response: status, schema_version, error, and
/// the report (with its own observability member) when kOk.
io::Value to_json(const TransientServiceResponse& response);
/// Wire body for an optimize response, same shape as the transient one.
io::Value to_json(const OptimizeServiceResponse& response);
/// Full wire response body (status, schema_version, error, result,
/// from_cache, timings). The daemon prepends the client's request id.
/// Fills the serialized "timings.serialize_seconds" with the time spent
/// building the body itself.
io::Value to_json(const ServiceResponse& response);

class EvaluationService {
 public:
  explicit EvaluationService(ServiceConfig config = {});
  /// Waits for in-flight evaluations, then joins the workers.
  ~EvaluationService();

  EvaluationService(const EvaluationService&) = delete;
  EvaluationService& operator=(const EvaluationService&) = delete;

  /// Never blocks: the future resolves immediately for cache hits,
  /// rejections and request errors, and on evaluation completion
  /// otherwise. Coalesced duplicates share one future.
  std::shared_future<ServiceResponse> submit(
      const io::EvaluationRequest& request);

  /// Convenience: submit + get.
  ServiceResponse evaluate(const io::EvaluationRequest& request);

  /// Batch-first evaluation (the {"cmd":"evaluate_batch"} verb): resolves
  /// every request and returns responses in input order. Result-cache
  /// hits and in-batch duplicates (equal canonical keys) share one entry;
  /// the rest route through the batch evaluation engine (core/batch.hpp)
  /// synchronously on the caller's thread — same-operator requests solve
  /// as one block panel — grouped per distinct spec, against the
  /// service's shared mesh cache. Each response is bit-identical to a
  /// lone evaluate() of its request except where block panels engage
  /// (certified backward error; see core/batch.hpp). Not queued or
  /// coalesced with submit() traffic; records serve.batch.* instruments.
  std::vector<ServiceResponse> evaluate_batch(
      const std::vector<io::EvaluationRequest>& requests);

  /// Runs a droop campaign synchronously against the service's shared
  /// mesh cache, recording serve.transient.* instruments (request /
  /// scenario / step counters and the campaign latency histogram) in the
  /// service registry. Deterministic like evaluate(): the report is
  /// bit-identical to running the campaign standalone.
  TransientServiceResponse run_transient(const io::TransientRequest& request);

  /// Runs a design-space optimization synchronously against the service's
  /// shared mesh cache, recording serve.optimize.* instruments (request /
  /// evaluation / campaign counters and the run latency histogram) in the
  /// service registry. Deterministic like evaluate(): the report is
  /// bit-identical to running the optimizer standalone with the same seed.
  OptimizeServiceResponse run_optimize(const io::OptimizeRequest& request);

  /// Blocks until every accepted request has resolved.
  void wait_idle();

  ServiceMetrics metrics() const;
  io::Value metrics_json() const { return to_json(metrics()); }

  /// The service's instrument registry (latency/stage/queue histograms and
  /// the queue-depth gauge). Exposed for tests and embedding processes
  /// that want to add their own instruments to the same snapshot.
  obs::Registry& registry() { return registry_; }

  std::size_t thread_count() const { return pool_.thread_count(); }
  const ServiceConfig& config() const { return config_; }

 private:
  struct InFlight {
    std::promise<ServiceResponse> promise;
    std::shared_future<ServiceResponse> future;
    /// Submit timestamps of the original and every coalesced waiter, for
    /// per-request latency accounting.
    std::vector<std::chrono::steady_clock::time_point> submitted;
  };

  void run_evaluation(std::string key, io::EvaluationRequest request);
  void cache_insert(const std::string& key,
                    std::shared_ptr<const ExplorationEntry> entry);
  std::shared_ptr<const ExplorationEntry> cache_lookup(const std::string& key);
  void record_latency(std::chrono::steady_clock::time_point submitted);

  void log_slow_request(const std::string& key, double seconds,
                        const obs::StageTimings& timings);

  ServiceConfig config_;
  /// Process-wide solver counters at construction; metrics() reports the
  /// delta since then.
  SolverCounters solver_baseline_;
  MeshSolveCache mesh_cache_;
  /// Service-scoped instruments. References resolved once in the
  /// constructor; instruments are lock-free to update afterwards.
  obs::Registry registry_;
  obs::Histogram& latency_hist_;
  obs::Histogram& queue_wait_hist_;
  obs::Histogram& mesh_stage_hist_;
  obs::Histogram& solve_stage_hist_;
  obs::Histogram& evaluate_stage_hist_;
  obs::Histogram& queue_depth_hist_;
  obs::Gauge& queue_depth_gauge_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  /// LRU: most recent at the front; index maps key -> list node.
  std::list<std::pair<std::string, std::shared_ptr<const ExplorationEntry>>>
      lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> lru_index_;
  std::size_t pending_{0};  // queued + executing evaluations
  ServiceMetrics counters_;  // latency fields filled lazily by metrics()
  /// Latency accounting is bounded-memory by design (a fleet shard serves
  /// an unbounded request stream): running min/mean/max plus the fixed
  /// bucket histogram, whose interpolated quantile provides p99.
  RunningStats latency_stats_;

  /// Last member: destroyed first, so worker tasks never outlive the
  /// state they reference.
  ThreadPool pool_;
};

}  // namespace serve
}  // namespace vpd
