#include "vpd/serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <utility>

#include "vpd/common/error.hpp"
#include "vpd/core/batch.hpp"

namespace vpd {
namespace serve {

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kExcluded: return "excluded";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kError: return "error";
  }
  return "unknown";
}

double ServiceMetrics::result_cache_hit_rate() const {
  const std::size_t total = result_cache_hits + result_cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(result_cache_hits) /
                          static_cast<double>(total);
}

double ServiceMetrics::mesh_cache_hit_rate() const {
  const std::size_t total = mesh_cache.hits + mesh_cache.misses;
  return total == 0 ? 0.0
                    : static_cast<double>(mesh_cache.hits) /
                          static_cast<double>(total);
}

io::Value to_json(const ServiceMetrics& metrics) {
  // The unified telemetry document is the whole wire shape. The pre-v2
  // flat keys (requests/completed/.../latency{}/mesh_cache{}/solver{})
  // rode along as deprecated aliases for one release after the v2
  // namespacing and are gone now; scrape the serve.* / mesh_cache.* /
  // solver.* counters instead (see docs/observability.md).
  return metrics.observability.to_json();
}

io::Value to_json(const ServiceResponse& response) {
  const auto serialize_start = std::chrono::steady_clock::now();
  io::Value v = io::Value::object();
  // "status" stays the first member (wire shape consumers grep on it);
  // schema_version follows immediately.
  v.set("status", to_string(response.status));
  v.set("schema_version", io::kSchemaVersion);
  if (!response.error.empty()) v.set("error", response.error);
  if (response.entry != nullptr) {
    v.set("result", io::to_json(*response.entry));
  }
  v.set("from_cache", response.from_cache);
  io::Value timings = io::Value::object();
  timings.set("queue_seconds", response.timings.queue_seconds);
  timings.set("mesh_seconds", response.timings.mesh_seconds);
  timings.set("solve_seconds", response.timings.solve_seconds);
  timings.set("evaluate_seconds", response.timings.evaluate_seconds);
  timings.set("serialize_seconds",
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - serialize_start)
                  .count());
  v.set("timings", std::move(timings));
  return v;
}

EvaluationService::EvaluationService(ServiceConfig config)
    : config_(std::move(config)), solver_baseline_(solver_counters()),
      latency_hist_(registry_.latency_histogram("serve.latency_seconds")),
      queue_wait_hist_(
          registry_.latency_histogram("serve.stage.queue_seconds")),
      mesh_stage_hist_(registry_.latency_histogram("serve.stage.mesh_seconds")),
      solve_stage_hist_(
          registry_.latency_histogram("serve.stage.solve_seconds")),
      evaluate_stage_hist_(
          registry_.latency_histogram("serve.stage.evaluate_seconds")),
      queue_depth_hist_(registry_.histogram("serve.queue_depth",
                                            obs::default_depth_bounds())),
      queue_depth_gauge_(registry_.gauge("serve.queue_depth")),
      pool_(config_.threads) {
  VPD_REQUIRE(config_.queue_capacity > 0, "queue capacity must be positive");
  VPD_REQUIRE(config_.slow_request_seconds >= 0.0,
              "slow_request_seconds must be non-negative");
}

EvaluationService::~EvaluationService() { pool_.wait_idle(); }

ServiceResponse EvaluationService::evaluate(
    const io::EvaluationRequest& request) {
  return submit(request).get();
}

std::vector<ServiceResponse> EvaluationService::evaluate_batch(
    const std::vector<io::EvaluationRequest>& requests) {
  const auto start = std::chrono::steady_clock::now();
  registry_.counter("serve.batch.requests").add(requests.size());
  std::vector<ServiceResponse> responses(requests.size());

  // Leaders evaluate; every later request with the same canonical key
  // shares the leader's published entry (equal keys describe
  // bit-identical evaluations). Invalid requests and result-cache hits
  // resolve here and never reach the batch engine.
  std::vector<std::string> keys(requests.size());
  std::vector<char> resolved(requests.size(), 0);
  std::unordered_map<std::string, std::size_t> leader_by_key;
  std::vector<std::size_t> leaders;
  std::size_t cache_hits = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    try {
      keys[i] = io::canonical_request_key(requests[i]);
    } catch (const Error& e) {
      responses[i].status = ResponseStatus::kError;
      responses[i].error = e.what();
      resolved[i] = 1;
      continue;
    }
    if (leader_by_key.count(keys[i]) != 0) continue;
    leader_by_key.emplace(keys[i], i);
    std::shared_ptr<const ExplorationEntry> hit;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      hit = cache_lookup(keys[i]);
    }
    if (hit != nullptr) {
      ++cache_hits;
      responses[i].status = hit->excluded() ? ResponseStatus::kExcluded
                                            : ResponseStatus::kOk;
      responses[i].entry = std::move(hit);
      responses[i].from_cache = true;
      resolved[i] = 1;
      continue;
    }
    leaders.push_back(i);
  }

  // The batch engine evaluates against one spec; partition the leaders by
  // canonical spec (in input order) and run one batch per distinct spec.
  std::vector<std::string> spec_keys;
  std::vector<std::vector<std::size_t>> partitions;
  for (std::size_t index : leaders) {
    const std::string spec_key =
        io::dump(io::to_json(requests[index].spec));
    std::size_t p = 0;
    for (; p < spec_keys.size(); ++p) {
      if (spec_keys[p] == spec_key) break;
    }
    if (p == spec_keys.size()) {
      spec_keys.push_back(spec_key);
      partitions.emplace_back();
    }
    partitions[p].push_back(index);
  }

  BatchStats stats;
  for (const std::vector<std::size_t>& partition : partitions) {
    std::vector<EvaluationPoint> points;
    points.reserve(partition.size());
    for (std::size_t index : partition) {
      EvaluationPoint p{requests[index].architecture,
                        requests[index].topology, requests[index].tech,
                        requests[index].options};
      p.options.mesh_cache = &mesh_cache_;
      points.push_back(std::move(p));
    }
    try {
      EvaluationBatch batch(requests[partition.front()].spec,
                            std::move(points), BatchConfig{});
      batch.run();
      stats += batch.stats();
      for (std::size_t k = 0; k < partition.size(); ++k) {
        const std::size_t index = partition[k];
        if (std::exception_ptr err = batch.error(k)) {
          try {
            std::rethrow_exception(err);
          } catch (const std::exception& e) {
            responses[index].status = ResponseStatus::kError;
            responses[index].error = e.what();
          } catch (...) {
            responses[index].status = ResponseStatus::kError;
            responses[index].error = "unknown evaluation failure";
          }
          continue;
        }
        auto entry = std::make_shared<ExplorationEntry>(
            std::move(batch.entry(k)));
        responses[index].status = entry->excluded()
                                      ? ResponseStatus::kExcluded
                                      : ResponseStatus::kOk;
        responses[index].entry = std::move(entry);
        std::lock_guard<std::mutex> lock(mutex_);
        cache_insert(keys[index], responses[index].entry);
      }
    } catch (const std::exception& e) {
      // Construction-time failure (e.g. an invalid spec) fails the whole
      // partition: no point evaluated.
      for (std::size_t index : partition) {
        responses[index].status = ResponseStatus::kError;
        responses[index].error = e.what();
      }
    }
    for (std::size_t index : partition) resolved[index] = 1;
  }

  // In-batch duplicates share their leader's outcome (entry pointers are
  // immutable once published, exactly like coalesced submits).
  std::size_t errors = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!resolved[i]) responses[i] = responses[leader_by_key.at(keys[i])];
    if (responses[i].status == ResponseStatus::kError) ++errors;
  }

  registry_.counter("serve.batch.cache_hits").add(cache_hits);
  registry_.counter("serve.batch.evaluated").add(stats.points);
  registry_.counter("serve.batch.errors").add(errors);
  registry_.counter("serve.batch.groups").add(stats.groups);
  registry_.counter("serve.batch.grouped_points").add(stats.grouped_points);
  registry_.counter("serve.batch.panel_columns").add(stats.panel_columns);
  registry_.counter("serve.batch.deduped_solves").add(stats.deduped_solves);
  registry_.latency_histogram("serve.batch.latency_seconds")
      .record(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count());
  return responses;
}

io::Value to_json(const TransientServiceResponse& response) {
  io::Value v = io::Value::object();
  v.set("status", to_string(response.status));
  v.set("schema_version", io::kSchemaVersion);
  if (!response.error.empty()) v.set("error", response.error);
  if (response.report != nullptr) {
    v.set("result", io::to_json(*response.report));
  }
  return v;
}

TransientServiceResponse EvaluationService::run_transient(
    const io::TransientRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  registry_.counter("serve.transient.requests").add(1);
  TransientServiceResponse response;
  try {
    DroopCampaignConfig config = request.config;
    // Campaign DC sweeps share the service's mesh cache, so repeated
    // campaigns over one geometry reuse assembled operators like the
    // point-evaluation path does.
    if (config.sweep.use_mesh_cache && config.sweep.cache == nullptr) {
      config.sweep.cache = &mesh_cache_;
    }
    const DroopCampaignRunner runner(request.spec, config);
    auto report = std::make_shared<DroopCampaignReport>(
        runner.run(request.architecture, request.topology, request.tech,
                   request.options));
    registry_.counter("serve.transient.scenarios")
        .add(report->scenario_count());
    registry_.counter("serve.transient.steps").add(report->transient_steps);
    response.status = ResponseStatus::kOk;
    response.report = std::move(report);
  } catch (const InfeasibleDesign& e) {
    response.status = ResponseStatus::kExcluded;
    response.error = e.what();
  } catch (const std::exception& e) {
    registry_.counter("serve.transient.errors").add(1);
    response.status = ResponseStatus::kError;
    response.error = e.what();
  }
  registry_.latency_histogram("serve.transient.latency_seconds")
      .record(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count());
  return response;
}

io::Value to_json(const OptimizeServiceResponse& response) {
  io::Value v = io::Value::object();
  v.set("status", to_string(response.status));
  v.set("schema_version", io::kSchemaVersion);
  if (!response.error.empty()) v.set("error", response.error);
  if (response.report != nullptr) {
    v.set("result", io::to_json(*response.report));
  }
  return v;
}

OptimizeServiceResponse EvaluationService::run_optimize(
    const io::OptimizeRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  registry_.counter("serve.optimize.requests").add(1);
  OptimizeServiceResponse response;
  try {
    opt::OptimizerConfig config = request.config;
    // Optimizer evaluation batches and survivability campaigns share the
    // service's mesh cache, so repeated runs over one geometry family
    // reuse assembled operators like the point-evaluation path does.
    if (config.sweep.use_mesh_cache && config.sweep.cache == nullptr) {
      config.sweep.cache = &mesh_cache_;
    }
    const opt::DesignOptimizer optimizer(request.spec, request.space,
                                         std::move(config));
    auto report = std::make_shared<opt::OptimizeReport>(optimizer.run());
    registry_.counter("serve.optimize.evaluations").add(report->evaluations);
    registry_.counter("serve.optimize.fault_campaigns")
        .add(report->fault_campaigns);
    response.status = ResponseStatus::kOk;
    response.report = std::move(report);
  } catch (const std::exception& e) {
    registry_.counter("serve.optimize.errors").add(1);
    response.status = ResponseStatus::kError;
    response.error = e.what();
  }
  registry_.latency_histogram("serve.optimize.latency_seconds")
      .record(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count());
  return response;
}

void EvaluationService::wait_idle() { pool_.wait_idle(); }

std::shared_future<ServiceResponse> EvaluationService::submit(
    const io::EvaluationRequest& request) {
  const auto now = std::chrono::steady_clock::now();
  const auto ready = [](ServiceResponse response) {
    std::promise<ServiceResponse> p;
    p.set_value(std::move(response));
    return std::shared_future<ServiceResponse>(p.get_future());
  };

  // Canonicalization exercises the same validation the schema applies to
  // wire requests (e.g. a sink_map callback is not representable).
  std::string key;
  try {
    key = io::canonical_request_key(request);
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests;
    ++counters_.completed;
    ++counters_.errors;
    record_latency(now);
    ServiceResponse response;
    response.status = ResponseStatus::kError;
    response.error = e.what();
    return ready(std::move(response));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests;

  if (std::shared_ptr<const ExplorationEntry> hit = cache_lookup(key)) {
    ++counters_.result_cache_hits;
    ++counters_.completed;
    record_latency(now);
    ServiceResponse response;
    response.status = hit->excluded() ? ResponseStatus::kExcluded
                                      : ResponseStatus::kOk;
    response.entry = std::move(hit);
    response.from_cache = true;
    return ready(std::move(response));
  }
  ++counters_.result_cache_misses;

  if (auto it = inflight_.find(key); it != inflight_.end()) {
    ++counters_.coalesced;
    it->second->submitted.push_back(now);
    return it->second->future;
  }

  if (pending_ >= config_.queue_capacity) {
    ++counters_.rejected;
    ServiceResponse response;
    response.status = ResponseStatus::kRejected;
    response.error = "queue full (capacity " +
                     std::to_string(config_.queue_capacity) + ")";
    return ready(std::move(response));
  }

  auto entry = std::make_shared<InFlight>();
  entry->future = entry->promise.get_future().share();
  entry->submitted.push_back(now);
  inflight_.emplace(key, entry);
  ++pending_;
  counters_.queue_high_water = std::max(counters_.queue_high_water, pending_);
  // Depth instruments: the gauge tracks the point-in-time level (its high
  // water preserves the peak) and the histogram the depth distribution at
  // admission, so backpressure onset stays visible after the fact.
  queue_depth_gauge_.set(static_cast<double>(pending_));
  queue_depth_hist_.record(static_cast<double>(pending_));

  pool_.submit([this, key, request] { run_evaluation(key, request); });
  return entry->future;
}

void EvaluationService::run_evaluation(std::string key,
                                       io::EvaluationRequest request) {
  const auto start = std::chrono::steady_clock::now();
  // Queue wait of the original submitter (coalesced waiters joined later;
  // their extra wait is covered by the latency metric).
  std::chrono::steady_clock::time_point submitted = start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = inflight_.find(key); it != inflight_.end() &&
                                       !it->second->submitted.empty()) {
      submitted = it->second->submitted.front();
    }
  }

  obs::Span span("serve.request");
  obs::record_span("serve.queue_wait", span.context(), submitted, start);

  ServiceResponse response;
  response.timings.queue_seconds =
      std::chrono::duration<double>(start - submitted).count();
  try {
    request.options.mesh_cache = &mesh_cache_;
    request.options.trace = span.context();
    // Stage capture: the evaluator's mesh and solve sections add their
    // elapsed time into this thread's response timings.
    const obs::ScopedStageCapture capture(&response.timings);
    auto result = std::make_shared<ExplorationEntry>(evaluate_with_exclusion(
        request.spec, request.architecture, request.topology, request.tech,
        request.options));
    response.status = result->excluded() ? ResponseStatus::kExcluded
                                         : ResponseStatus::kOk;
    response.entry = std::move(result);
  } catch (const std::exception& e) {
    response.status = ResponseStatus::kError;
    response.error = e.what();
  } catch (...) {
    response.status = ResponseStatus::kError;
    response.error = "unknown evaluation failure";
  }
  response.timings.evaluate_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  queue_wait_hist_.record(response.timings.queue_seconds);
  mesh_stage_hist_.record(response.timings.mesh_seconds);
  solve_stage_hist_.record(response.timings.solve_seconds);
  evaluate_stage_hist_.record(response.timings.evaluate_seconds);

  const double request_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    submitted)
          .count();
  const bool slow = config_.slow_request_seconds > 0.0 &&
                    request_seconds >= config_.slow_request_seconds;

  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(key);
    flight = it->second;
    inflight_.erase(it);
    --pending_;
    queue_depth_gauge_.set(static_cast<double>(pending_));
    ++counters_.evaluated;
    if (slow) ++counters_.slow_requests;
    if (response.entry != nullptr) {
      const ArchitectureEvaluation* eval =
          response.entry->evaluation
              ? &*response.entry->evaluation
              : (response.entry->extrapolated
                     ? &*response.entry->extrapolated
                     : nullptr);
      if (eval != nullptr) counters_.cg_iterations += eval->cg_iterations;
    }
    counters_.completed += flight->submitted.size();
    if (response.status == ResponseStatus::kError) {
      counters_.errors += flight->submitted.size();
    } else {
      cache_insert(key, response.entry);
    }
    for (const auto& waiter_submitted : flight->submitted) {
      record_latency(waiter_submitted);
    }
  }
  if (slow) log_slow_request(key, request_seconds, response.timings);
  // Publish outside the lock: promise consumers may run arbitrary code.
  flight->promise.set_value(std::move(response));
}

void EvaluationService::log_slow_request(const std::string& key,
                                         double seconds,
                                         const obs::StageTimings& timings) {
  // One parseable line with the stage breakdown, so "where did this slow
  // request spend its time" is answerable from the log alone.
  io::Value line = io::Value::object();
  line.set("slow_request", key);
  line.set("seconds", seconds);
  line.set("queue_seconds", timings.queue_seconds);
  line.set("mesh_seconds", timings.mesh_seconds);
  line.set("solve_seconds", timings.solve_seconds);
  line.set("evaluate_seconds", timings.evaluate_seconds);
  const std::string text = io::dump(line);
  if (config_.slow_request_sink) {
    config_.slow_request_sink(text);
  } else {
    std::fprintf(stderr, "%s\n", text.c_str());
  }
}

void EvaluationService::cache_insert(
    const std::string& key, std::shared_ptr<const ExplorationEntry> entry) {
  if (config_.result_cache_capacity == 0) return;
  lru_.emplace_front(key, std::move(entry));
  lru_index_[key] = lru_.begin();
  if (lru_.size() > config_.result_cache_capacity) {
    lru_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  counters_.result_cache_size = lru_.size();
}

std::shared_ptr<const ExplorationEntry> EvaluationService::cache_lookup(
    const std::string& key) {
  auto it = lru_index_.find(key);
  if (it == lru_index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return lru_.front().second;
}

void EvaluationService::record_latency(
    std::chrono::steady_clock::time_point submitted) {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    submitted)
          .count();
  latency_stats_.add(seconds);
  latency_hist_.record(seconds);
}

ServiceMetrics EvaluationService::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceMetrics m = counters_;
  m.threads = pool_.thread_count();
  m.result_cache_size = lru_.size();
  m.latency_samples = latency_stats_.count();
  if (latency_stats_.count() > 0) {
    m.latency_min_seconds = latency_stats_.min();
    m.latency_mean_seconds = latency_stats_.mean();
    m.latency_max_seconds = latency_stats_.max();
    // Bucket-interpolated from the latency histogram (exact at the
    // recorded min/max): memory stays O(buckets) for unbounded request
    // streams, where a per-request sample vector would grow forever.
    m.latency_p99_seconds = latency_hist_.data().quantile(0.99);
  }
  m.mesh_cache = mesh_cache_.stats();
  m.solver = solver_counters() - solver_baseline_;

  // Unified shape: registry instruments (histograms + queue gauge) plus
  // the mutex-guarded counters, mesh-cache stats and solver deltas, all
  // under one namespace-per-subsystem naming scheme.
  m.observability = registry_.snapshot();
  m.observability.set_counter("serve.requests", m.requests);
  m.observability.set_counter("serve.completed", m.completed);
  m.observability.set_counter("serve.rejected", m.rejected);
  m.observability.set_counter("serve.errors", m.errors);
  m.observability.set_counter("serve.evaluated", m.evaluated);
  m.observability.set_counter("serve.coalesced", m.coalesced);
  m.observability.set_counter("serve.result_cache_hits", m.result_cache_hits);
  m.observability.set_counter("serve.result_cache_misses",
                              m.result_cache_misses);
  m.observability.set_counter("serve.result_cache_size", m.result_cache_size);
  m.observability.set_counter("serve.slow_requests", m.slow_requests);
  m.observability.set_counter("serve.threads", m.threads);
  m.observability.set_counter("serve.cg_iterations", m.cg_iterations);
  m.observability.set_counter("mesh_cache.hits", m.mesh_cache.hits);
  m.observability.set_counter("mesh_cache.misses", m.mesh_cache.misses);
  m.observability.set_counter("solver.cg_solves", m.solver.cg_solves);
  m.observability.set_counter("solver.cg_iterations",
                              m.solver.cg_iterations);
  m.observability.set_counter("solver.precond_factorizations",
                              m.solver.precond_factorizations);
  m.observability.set_counter("solver.precond_reuses",
                              m.solver.precond_reuses);
  m.observability.set_counter("solver.cg_block_panels",
                              m.solver.cg_block_panels);
  m.observability.set_counter("solver.cg_block_columns",
                              m.solver.cg_block_columns);
  return m;
}

}  // namespace serve
}  // namespace vpd
