#include "vpd/serve/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "vpd/common/error.hpp"

namespace vpd {
namespace serve {

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kExcluded: return "excluded";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kError: return "error";
  }
  return "unknown";
}

double ServiceMetrics::result_cache_hit_rate() const {
  const std::size_t total = result_cache_hits + result_cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(result_cache_hits) /
                          static_cast<double>(total);
}

double ServiceMetrics::mesh_cache_hit_rate() const {
  const std::size_t total = mesh_cache.hits + mesh_cache.misses;
  return total == 0 ? 0.0
                    : static_cast<double>(mesh_cache.hits) /
                          static_cast<double>(total);
}

io::Value to_json(const ServiceMetrics& metrics) {
  io::Value v = io::Value::object();
  v.set("requests", metrics.requests);
  v.set("completed", metrics.completed);
  v.set("rejected", metrics.rejected);
  v.set("errors", metrics.errors);
  v.set("evaluated", metrics.evaluated);
  v.set("coalesced", metrics.coalesced);
  v.set("result_cache_hits", metrics.result_cache_hits);
  v.set("result_cache_misses", metrics.result_cache_misses);
  v.set("result_cache_size", metrics.result_cache_size);
  v.set("result_cache_hit_rate", metrics.result_cache_hit_rate());
  v.set("queue_high_water", metrics.queue_high_water);
  v.set("threads", metrics.threads);
  io::Value latency = io::Value::object();
  latency.set("samples", metrics.latency_samples);
  latency.set("min_seconds", metrics.latency_min_seconds);
  latency.set("mean_seconds", metrics.latency_mean_seconds);
  latency.set("max_seconds", metrics.latency_max_seconds);
  latency.set("p99_seconds", metrics.latency_p99_seconds);
  v.set("latency", std::move(latency));
  io::Value mesh = io::to_json(metrics.mesh_cache);
  mesh.set("hit_rate", metrics.mesh_cache_hit_rate());
  v.set("mesh_cache", std::move(mesh));
  v.set("cg_iterations", metrics.cg_iterations);
  io::Value solver = io::Value::object();
  solver.set("cg_solves", metrics.solver.cg_solves);
  solver.set("cg_iterations", metrics.solver.cg_iterations);
  solver.set("precond_factorizations",
             metrics.solver.precond_factorizations);
  solver.set("precond_reuses", metrics.solver.precond_reuses);
  v.set("solver", std::move(solver));
  return v;
}

io::Value to_json(const ServiceResponse& response) {
  io::Value v = io::Value::object();
  v.set("status", to_string(response.status));
  if (!response.error.empty()) v.set("error", response.error);
  if (response.entry != nullptr) {
    v.set("result", io::to_json(*response.entry));
  }
  v.set("from_cache", response.from_cache);
  return v;
}

EvaluationService::EvaluationService(ServiceConfig config)
    : config_(config), solver_baseline_(solver_counters()),
      pool_(config.threads) {
  VPD_REQUIRE(config_.queue_capacity > 0, "queue capacity must be positive");
}

EvaluationService::~EvaluationService() { pool_.wait_idle(); }

ServiceResponse EvaluationService::evaluate(
    const io::EvaluationRequest& request) {
  return submit(request).get();
}

void EvaluationService::wait_idle() { pool_.wait_idle(); }

std::shared_future<ServiceResponse> EvaluationService::submit(
    const io::EvaluationRequest& request) {
  const auto now = std::chrono::steady_clock::now();
  const auto ready = [](ServiceResponse response) {
    std::promise<ServiceResponse> p;
    p.set_value(std::move(response));
    return std::shared_future<ServiceResponse>(p.get_future());
  };

  // Canonicalization exercises the same validation the schema applies to
  // wire requests (e.g. a sink_map callback is not representable).
  std::string key;
  try {
    key = io::canonical_request_key(request);
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests;
    ++counters_.completed;
    ++counters_.errors;
    record_latency(now);
    ServiceResponse response;
    response.status = ResponseStatus::kError;
    response.error = e.what();
    return ready(std::move(response));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests;

  if (std::shared_ptr<const ExplorationEntry> hit = cache_lookup(key)) {
    ++counters_.result_cache_hits;
    ++counters_.completed;
    record_latency(now);
    ServiceResponse response;
    response.status = hit->excluded() ? ResponseStatus::kExcluded
                                      : ResponseStatus::kOk;
    response.entry = std::move(hit);
    response.from_cache = true;
    return ready(std::move(response));
  }
  ++counters_.result_cache_misses;

  if (auto it = inflight_.find(key); it != inflight_.end()) {
    ++counters_.coalesced;
    it->second->submitted.push_back(now);
    return it->second->future;
  }

  if (pending_ >= config_.queue_capacity) {
    ++counters_.rejected;
    ServiceResponse response;
    response.status = ResponseStatus::kRejected;
    response.error = "queue full (capacity " +
                     std::to_string(config_.queue_capacity) + ")";
    return ready(std::move(response));
  }

  auto entry = std::make_shared<InFlight>();
  entry->future = entry->promise.get_future().share();
  entry->submitted.push_back(now);
  inflight_.emplace(key, entry);
  ++pending_;
  counters_.queue_high_water = std::max(counters_.queue_high_water, pending_);

  pool_.submit([this, key, request] { run_evaluation(key, request); });
  return entry->future;
}

void EvaluationService::run_evaluation(std::string key,
                                       io::EvaluationRequest request) {
  ServiceResponse response;
  try {
    request.options.mesh_cache = &mesh_cache_;
    auto result = std::make_shared<ExplorationEntry>(evaluate_with_exclusion(
        request.spec, request.architecture, request.topology, request.tech,
        request.options));
    response.status = result->excluded() ? ResponseStatus::kExcluded
                                         : ResponseStatus::kOk;
    response.entry = std::move(result);
  } catch (const std::exception& e) {
    response.status = ResponseStatus::kError;
    response.error = e.what();
  } catch (...) {
    response.status = ResponseStatus::kError;
    response.error = "unknown evaluation failure";
  }

  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(key);
    flight = it->second;
    inflight_.erase(it);
    --pending_;
    ++counters_.evaluated;
    if (response.entry != nullptr) {
      const ArchitectureEvaluation* eval =
          response.entry->evaluation
              ? &*response.entry->evaluation
              : (response.entry->extrapolated
                     ? &*response.entry->extrapolated
                     : nullptr);
      if (eval != nullptr) counters_.cg_iterations += eval->cg_iterations;
    }
    counters_.completed += flight->submitted.size();
    if (response.status == ResponseStatus::kError) {
      counters_.errors += flight->submitted.size();
    } else {
      cache_insert(key, response.entry);
    }
    for (const auto& submitted : flight->submitted) {
      record_latency(submitted);
    }
  }
  // Publish outside the lock: promise consumers may run arbitrary code.
  flight->promise.set_value(std::move(response));
}

void EvaluationService::cache_insert(
    const std::string& key, std::shared_ptr<const ExplorationEntry> entry) {
  if (config_.result_cache_capacity == 0) return;
  lru_.emplace_front(key, std::move(entry));
  lru_index_[key] = lru_.begin();
  if (lru_.size() > config_.result_cache_capacity) {
    lru_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  counters_.result_cache_size = lru_.size();
}

std::shared_ptr<const ExplorationEntry> EvaluationService::cache_lookup(
    const std::string& key) {
  auto it = lru_index_.find(key);
  if (it == lru_index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return lru_.front().second;
}

void EvaluationService::record_latency(
    std::chrono::steady_clock::time_point submitted) {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    submitted)
          .count();
  latency_stats_.add(seconds);
  latencies_.push_back(seconds);
}

ServiceMetrics EvaluationService::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceMetrics m = counters_;
  m.threads = pool_.thread_count();
  m.result_cache_size = lru_.size();
  m.latency_samples = latency_stats_.count();
  if (latency_stats_.count() > 0) {
    m.latency_min_seconds = latency_stats_.min();
    m.latency_mean_seconds = latency_stats_.mean();
    m.latency_max_seconds = latency_stats_.max();
    m.latency_p99_seconds = percentile(latencies_, 0.99);
  }
  m.mesh_cache = mesh_cache_.stats();
  m.solver = solver_counters() - solver_baseline_;
  return m;
}

}  // namespace serve
}  // namespace vpd
