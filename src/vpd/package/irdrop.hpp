// IR-drop analysis on a GridMesh: voltage regulators are Thevenin sources
// (ideal voltage behind a series resistance — their output impedance plus
// the vertical interconnect under them), loads are per-node current sinks.
// Sources are folded in by Norton equivalence, keeping the system SPD for
// the conjugate-gradient solver.
//
// Outputs: the node-voltage map, per-VR delivered currents (the paper's
// A1 16-27 A vs A2 10-93 A load-sharing observation), the lateral-grid
// loss, and the worst-case droop.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "vpd/common/statistics.hpp"
#include "vpd/package/mesh.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace vpd {

struct VrAttachment {
  std::size_t node{0};       // mesh node the VR output lands on
  Voltage source_voltage{};  // regulated output voltage
  Resistance series{};       // VR output + vertical interconnect resistance
};

struct IrDropResult {
  Vector node_voltages;            // per mesh node
  std::vector<double> vr_currents; // per VR, amps (positive = sourcing)
  Power grid_loss{};               // lateral mesh I^2 R
  Power series_loss{};             // loss in the VR series resistances
  Voltage min_node_voltage{};
  Voltage max_node_voltage{};
  std::size_t cg_iterations{0};    // CG iterations the solve took
  /// Nodes severed from every VR by a zero-conductance perturbation (fully
  /// cut copper). They are grounded out of the solve and report 0 V — a
  /// dead rail with finite metrics — and any sink current at them goes
  /// unserved. 0 on an intact mesh.
  std::size_t floating_nodes{0};

  /// Summary of the per-VR current spread.
  Summary vr_current_summary() const;
};

struct IrDropOptions {
  /// Relative CG tolerance on the true residual ||b - A x|| / ||b||.
  double relative_tolerance{1e-12};
  /// Warm-start every node at this voltage (typically the rail voltage:
  /// the solution is the rail minus millivolt-scale drops, so the initial
  /// residual starts at the sink scale instead of the shunt scale and CG
  /// converges in far fewer iterations). Unset = cold start from zero.
  /// A constant warm start is deterministic per solve, which keeps sweep
  /// results independent of execution order.
  std::optional<double> warm_start_voltage;
  /// Preconditioner for the CG solve. IC(0) (the default) cuts mesh
  /// iteration counts several-fold over Jacobi; kMultigrid makes the
  /// count near-independent of mesh size (the hierarchy comes from the
  /// AssembledMesh, or is built on the fly for the GridMesh overload).
  /// The factorization/hierarchy setup is reused automatically when the
  /// same stamped operator is solved again through the same workspace.
  CgPreconditioner preconditioner{CgPreconditioner::kIncompleteCholesky};
  /// solve_irdrop_batch only: true (the default) solves the batch through
  /// the block-CG panel solver — shared SpMM and preconditioner sweeps
  /// across the right-hand sides, certified to the same backward-error
  /// accuracy but not bit-identical to a loop of single solves; false
  /// runs the sequential loop, bit-identical to repeated solve_irdrop.
  bool batch_block{true};
  /// Solver workspace override. nullptr (the default) uses a per-thread
  /// workspace, which keeps repeated solves allocation-free with no
  /// caller coordination; pass an explicit workspace to scope stats or
  /// factorization reuse. Never shared across threads by the solver.
  CgWorkspace* workspace{nullptr};
  /// Parent span for the solve's "irdrop.solve" trace span. Observability
  /// plumbing only; never read by the numerics.
  obs::TraceContext trace{};
};

/// Solves the mesh with the given sources and per-node sink currents
/// (sink_currents[i] = current drawn at node i; size = mesh.node_count()).
/// Throws InvalidArgument on shape errors and NumericalError if CG fails.
IrDropResult solve_irdrop(const GridMesh& mesh,
                          const std::vector<VrAttachment>& vrs,
                          const Vector& sink_currents,
                          const IrDropOptions& options = {});

/// Same solve against a pre-assembled (typically cached) mesh operator:
/// skips triplet generation and CSR compilation, copying the Laplacian
/// values and stamping the VR shunts in place. Numerically identical to
/// the GridMesh overload.
IrDropResult solve_irdrop(const AssembledMesh& assembled,
                          const std::vector<VrAttachment>& vrs,
                          const Vector& sink_currents,
                          const IrDropOptions& options = {});

/// Solves one stamped operator (mesh + VR shunts) against many sink maps
/// at once — the sweep/fault/optimizer inner loop where only the load
/// pattern varies. The operator is assembled and factored once; the
/// right-hand sides then solve as panels through block CG
/// (options.batch_block, the default) or as a sequential loop that is
/// bit-identical to repeated solve_irdrop calls. Every result is
/// certified to the same backward-error tolerance either way. Throws like
/// solve_irdrop; sink_maps must be non-empty.
std::vector<IrDropResult> solve_irdrop_batch(
    const AssembledMesh& assembled, const std::vector<VrAttachment>& vrs,
    const std::vector<Vector>& sink_maps, const IrDropOptions& options = {});

/// Uniform per-node sinks totalling `total` over the mesh.
Vector uniform_sinks(const GridMesh& mesh, Current total);

/// Attaches one VR over a physical footprint instead of a point node: all
/// mesh nodes within the square patch of side `patch_side` centered at
/// (cx, cy) become attachment points, with the VR's series resistance
/// distributed among them (n parallel legs of n * series each). A
/// footprint attachment keeps the solution mesh-independent — a point
/// source's spreading resistance diverges logarithmically with refinement.
std::vector<VrAttachment> patch_attachment(const GridMesh& mesh, Length cx,
                                           Length cy, Length patch_side,
                                           Voltage source_voltage,
                                           Resistance series);

}  // namespace vpd
