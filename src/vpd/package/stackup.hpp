// PCB-to-POL power path assembly: an ordered list of stages (vertical
// interconnect fields and lateral routed segments), each carrying a known
// current set by where in the stack voltage conversion happens. Summing
// stage I^2 R gives the PPDN loss split the paper's Fig. 7 reports
// (vertical vs horizontal).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "vpd/common/units.hpp"
#include "vpd/package/interconnect.hpp"
#include "vpd/package/layers.hpp"

namespace vpd {

struct PathStage {
  std::string name;
  Resistance resistance{};
  Current current{};
  bool vertical{false};
  std::size_t vias_per_net{0};  // 0 for lateral stages

  Power loss() const { return current * current * resistance; }
  Voltage drop() const { return current * resistance; }
};

class PowerPath {
 public:
  /// Appends a vertical interconnect stage carrying `current`. The number
  /// of vias per net defaults to the current-limit-driven count; pass
  /// `vias_override` to model a specific allocation.
  void add_vertical(const VerticalInterconnectSpec& spec, Current current,
                    std::optional<std::size_t> vias_override = std::nullopt);

  /// Appends a lateral routed segment carrying `current`.
  void add_lateral(const LateralSegment& segment, Current current);

  void add_stage(PathStage stage);

  const std::vector<PathStage>& stages() const { return stages_; }

  Power vertical_loss() const;
  Power lateral_loss() const;
  Power total_loss() const;
  Voltage total_drop() const;

 private:
  std::vector<PathStage> stages_;
};

}  // namespace vpd
