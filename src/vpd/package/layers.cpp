#include "vpd/package/layers.hpp"

#include "vpd/common/error.hpp"
#include "vpd/package/interconnect.hpp"

namespace vpd {

using namespace vpd::literals;

double MetalLayerSpec::sheet_resistance() const {
  VPD_REQUIRE(thickness.value > 0.0 && plane_count >= 1, "layer '", name,
              "': invalid geometry");
  return resistivity.value / thickness.value / plane_count;
}

MetalLayerSpec pcb_power_planes() {
  MetalLayerSpec m;
  m.name = "pcb-planes";
  m.thickness = 70.0_um;  // 2 oz copper
  m.plane_count = 4;
  m.resistivity = kCopperResistivity;
  return m;
}

MetalLayerSpec package_power_planes() {
  MetalLayerSpec m;
  m.name = "pkg-planes";
  m.thickness = 15.0_um;
  m.plane_count = 4;
  m.resistivity = kCopperResistivity;
  return m;
}

MetalLayerSpec interposer_rdl() {
  MetalLayerSpec m;
  m.name = "interposer-rdl";
  m.thickness = 3.0_um;
  m.plane_count = 2;
  m.resistivity = kCopperResistivity;
  return m;
}

MetalLayerSpec die_grid() {
  MetalLayerSpec m;
  m.name = "die-grid";
  m.thickness = 1.0_um;  // effective aggregate of the BEOL power grid
  m.plane_count = 2;
  m.resistivity = kCopperResistivity;
  return m;
}

Resistance LateralSegment::resistance() const {
  VPD_REQUIRE(squares >= 0.0, "segment '", name, "': negative squares");
  return Resistance{layer.sheet_resistance() * squares};
}

Power LateralSegment::loss(Current current) const {
  return Power{current.value * current.value * resistance().value};
}

LateralSegment pcb_lateral_segment() {
  // VRM-to-socket run: ~35 mm long over a ~30 mm wide corridor, round trip
  // (power + ground) doubles the squares. Together with the package and
  // interposer segments this yields ~0.3 mOhm PCB-to-die lateral
  // resistance — the "few milliohm / sub-milliohm PPDN" regime the paper
  // describes, calibrated so A0 lands at its reported >40% total loss.
  return LateralSegment{"pcb-lateral", pcb_power_planes(), 2.2};
}

LateralSegment package_lateral_segment() {
  // Socket footprint to die shadow: short but on thin build-up copper.
  return LateralSegment{"pkg-lateral", package_power_planes(), 0.45};
}

LateralSegment interposer_lateral_segment() {
  // Redistribution from the C4 field to the die footprint.
  return LateralSegment{"interposer-lateral", interposer_rdl(), 0.015};
}

}  // namespace vpd
