#include "vpd/package/mesh_cache.hpp"

#include <tuple>

namespace vpd {

std::shared_ptr<const AssembledMesh> assemble_mesh(Length width,
                                                   Length height,
                                                   std::size_t nx,
                                                   std::size_t ny,
                                                   double sheet_ohms) {
  GridMesh mesh(width, height, nx, ny, sheet_ohms);
  CsrMatrix laplacian(mesh.laplacian());
  return std::make_shared<const AssembledMesh>(
      AssembledMesh{mesh, std::move(laplacian)});
}

bool MeshSolveCache::Key::operator<(const Key& o) const {
  return std::tie(width, height, nx, ny, sheet) <
         std::tie(o.width, o.height, o.nx, o.ny, o.sheet);
}

std::shared_ptr<const AssembledMesh> MeshSolveCache::get(
    Length width, Length height, std::size_t nx, std::size_t ny,
    double sheet_ohms) {
  const Key key{width.value, height.value, nx, ny, sheet_ohms};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  // Assemble under the lock: concurrent requests for the same key wait and
  // then hit, so each mesh is built exactly once per cache lifetime.
  ++stats_.misses;
  auto assembled = assemble_mesh(width, height, nx, ny, sheet_ohms);
  entries_.emplace(key, assembled);
  return assembled;
}

MeshSolveCache::Stats MeshSolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MeshSolveCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MeshSolveCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace vpd
