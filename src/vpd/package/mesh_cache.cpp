#include "vpd/package/mesh_cache.hpp"

#include <cstring>
#include <tuple>

namespace vpd {

std::shared_ptr<const AssembledMesh> assemble_mesh(Length width,
                                                   Length height,
                                                   std::size_t nx,
                                                   std::size_t ny,
                                                   double sheet_ohms) {
  GridMesh mesh(width, height, nx, ny, sheet_ohms);
  CsrMatrix laplacian(mesh.laplacian());
  IcSymbolic symbolic(laplacian);
  MgSymbolic hierarchy(nx, ny);
  return std::make_shared<const AssembledMesh>(
      AssembledMesh{mesh, std::move(laplacian), std::move(symbolic),
                    std::move(hierarchy)});
}

std::shared_ptr<const AssembledMesh> assemble_mesh(
    Length width, Length height, std::size_t nx, std::size_t ny,
    double sheet_ohms, const MeshPerturbation& perturbation) {
  GridMesh mesh(width, height, nx, ny, sheet_ohms, perturbation);
  CsrMatrix laplacian(mesh.laplacian());
  IcSymbolic symbolic(laplacian);
  // The hierarchy depends only on (nx, ny): a perturbation rescales edge
  // conductances but never changes the grid, and the Galerkin values are
  // recomputed from the stamped operator at factor time.
  MgSymbolic hierarchy(nx, ny);
  return std::make_shared<const AssembledMesh>(
      AssembledMesh{mesh, std::move(laplacian), std::move(symbolic),
                    std::move(hierarchy)});
}

std::uint64_t mesh_perturbation_digest(const MeshPerturbation& perturbation) {
  if (perturbation.empty()) return 0;
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xffU;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  };
  for (const EdgeScaleRegion& r : perturbation) {
    mix(r.x0.value);
    mix(r.y0.value);
    mix(r.x1.value);
    mix(r.y1.value);
    mix(r.scale);
  }
  // 0 is reserved for the nominal mesh: a non-empty perturbation must
  // never key onto the unperturbed operator.
  return h != 0 ? h : 1;
}

bool MeshSolveCache::Key::operator<(const Key& o) const {
  return std::tie(width, height, nx, ny, sheet, perturbation_digest) <
         std::tie(o.width, o.height, o.nx, o.ny, o.sheet,
                  o.perturbation_digest);
}

std::shared_ptr<const AssembledMesh> MeshSolveCache::get(
    Length width, Length height, std::size_t nx, std::size_t ny,
    double sheet_ohms, obs::TraceContext trace) {
  return get(width, height, nx, ny, sheet_ohms, MeshPerturbation{}, trace);
}

std::shared_ptr<const AssembledMesh> MeshSolveCache::get(
    Length width, Length height, std::size_t nx, std::size_t ny,
    double sheet_ohms, const MeshPerturbation& perturbation,
    obs::TraceContext trace) {
  const Key key{width.value, height.value, nx, ny, sheet_ohms,
                mesh_perturbation_digest(perturbation)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  // Assemble under the lock: concurrent requests for the same key wait and
  // then hit, so each mesh is built exactly once per cache lifetime.
  ++stats_.misses;
  obs::Span span("mesh.assemble", trace);
  span.set_arg("nx", double(nx));
  span.set_arg("ny", double(ny));
  auto assembled =
      assemble_mesh(width, height, nx, ny, sheet_ohms, perturbation);
  entries_.emplace(key, assembled);
  return assembled;
}

MeshSolveCache::Stats MeshSolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MeshSolveCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MeshSolveCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace vpd
