// Lateral ("horizontal") interconnect: the laterally-routed portions of the
// board-to-die path whose I^2 R loss dominates traditional PCB-level power
// delivery (the paper's central observation). Each packaging level is
// modeled as copper sheets of a given thickness with some number of
// paralleled planes/layers; a routed segment is characterized by its
// square count (length / width).
#pragma once

#include <string>
#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

struct MetalLayerSpec {
  std::string name;
  Length thickness{};       // per plane
  unsigned plane_count{1};  // paralleled planes
  Resistivity resistivity{};

  /// Sheet resistance of the paralleled stack [Ohm/sq].
  double sheet_resistance() const;
};

/// Representative stacks per packaging level.
MetalLayerSpec pcb_power_planes();        // 2-oz copper, 4 planes
MetalLayerSpec package_power_planes();    // 15 um build-up, 4 layers
MetalLayerSpec interposer_rdl();          // 3 um RDL, 2 layers
MetalLayerSpec die_grid();                // BEOL power grid, effective

/// A lateral routed segment: `squares` = length / effective width.
struct LateralSegment {
  std::string name;
  MetalLayerSpec layer;
  double squares{0.0};

  Resistance resistance() const;
  Power loss(Current current) const;
};

/// The default lateral segments of the full PCB-to-die path, calibrated so
/// the reference architecture A0 reproduces the paper's >40% total loss
/// (see DESIGN.md section 5 and EXPERIMENTS.md).
///
/// Segment geometry: the PCB run is VRM-to-socket routing; the package
/// spread is socket-to-die-shadow; the interposer spread covers
/// redistribution under the die.
LateralSegment pcb_lateral_segment();
LateralSegment package_lateral_segment();
LateralSegment interposer_lateral_segment();

}  // namespace vpd
