// 2-D resistive grid model of an on-die / on-interposer power rail. Nodes
// sit on a regular nx x ny lattice over the die footprint; horizontal and
// vertical edges carry the sheet conductance. Used to compute the lateral
// distribution loss on the 1 V net and the per-VR load sharing that the
// paper reports for architectures A1 (16-27 A per VR) and A2 (10-93 A).
#pragma once

#include <cstddef>
#include <vector>

#include "vpd/common/sparse.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

class GridMesh {
 public:
  /// A `width` x `height` sheet discretized into nx x ny nodes with sheet
  /// resistance `sheet_ohms_per_square` [Ohm/sq]. nx, ny >= 2.
  GridMesh(Length width, Length height, std::size_t nx, std::size_t ny,
           double sheet_ohms_per_square);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t node_count() const { return nx_ * ny_; }
  Length width() const { return width_; }
  Length height() const { return height_; }
  double sheet_resistance() const { return sheet_; }

  /// Node index at grid coordinates (ix, iy).
  std::size_t node(std::size_t ix, std::size_t iy) const;

  /// Physical position of a node (cell centers, origin at the die corner).
  Length x_of(std::size_t node_index) const;
  Length y_of(std::size_t node_index) const;

  /// Nearest node to a physical position.
  std::size_t nearest_node(Length x, Length y) const;

  /// Conductance of one horizontal/vertical edge.
  double edge_conductance_x() const;
  double edge_conductance_y() const;

  /// Grid Laplacian (no shunts): SPD after at least one shunt is added.
  TripletList laplacian() const;

  /// I^2 R loss summed over all edges for a given node-voltage solution.
  Power edge_loss(const Vector& node_voltages) const;

 private:
  Length width_;
  Length height_;
  std::size_t nx_;
  std::size_t ny_;
  double sheet_;
  double gx_;  // per-edge conductance, x-direction
  double gy_;
};

}  // namespace vpd
