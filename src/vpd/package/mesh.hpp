// 2-D resistive grid model of an on-die / on-interposer power rail. Nodes
// sit on a regular nx x ny lattice over the die footprint; horizontal and
// vertical edges carry the sheet conductance. Used to compute the lateral
// distribution loss on the 1 V net and the per-VR load sharing that the
// paper reports for architectures A1 (16-27 A per VR) and A2 (10-93 A).
#pragma once

#include <cstddef>
#include <vector>

#include "vpd/common/sparse.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

/// Scales the conductance of every mesh edge whose midpoint falls inside
/// the axis-aligned rectangle [x0, x1] x [y0, y1]. Models localized
/// distribution-metal degradation: a cracked or delaminated region of the
/// power plane (scale < 1), a void (scale = 0: fully severed copper —
/// severed edges stay in the sparsity pattern as stored zeros, and nodes
/// cut off from every VR are grounded out of the solve and report 0 V, a
/// dead rail with finite metrics), or a repaired/thickened region
/// (scale > 1).
struct EdgeScaleRegion {
  Length x0{};
  Length y0{};
  Length x1{};
  Length y1{};
  double scale{1.0};
};

/// A conductance perturbation of the package mesh: the composition of the
/// listed regions, applied in order (overlapping regions multiply).
/// Empty = the nominal, uniform sheet.
using MeshPerturbation = std::vector<EdgeScaleRegion>;

class GridMesh {
 public:
  /// A `width` x `height` sheet discretized into nx x ny nodes with sheet
  /// resistance `sheet_ohms_per_square` [Ohm/sq]. nx, ny >= 2.
  GridMesh(Length width, Length height, std::size_t nx, std::size_t ny,
           double sheet_ohms_per_square);

  /// Same sheet with a conductance perturbation applied. An empty
  /// perturbation is bit-identical to the unperturbed constructor.
  GridMesh(Length width, Length height, std::size_t nx, std::size_t ny,
           double sheet_ohms_per_square,
           const MeshPerturbation& perturbation);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t node_count() const { return nx_ * ny_; }
  Length width() const { return width_; }
  Length height() const { return height_; }
  double sheet_resistance() const { return sheet_; }

  /// Node index at grid coordinates (ix, iy).
  std::size_t node(std::size_t ix, std::size_t iy) const;

  /// Physical position of a node (cell centers, origin at the die corner).
  Length x_of(std::size_t node_index) const;
  Length y_of(std::size_t node_index) const;

  /// Nearest node to a physical position.
  std::size_t nearest_node(Length x, Length y) const;

  /// Conductance of one horizontal/vertical edge (nominal, before any
  /// perturbation scaling).
  double edge_conductance_x() const;
  double edge_conductance_y() const;

  /// True if a non-trivial conductance perturbation is in effect.
  bool perturbed() const { return !scale_x_.empty(); }

  /// Conductance of the edge from (ix, iy) to (ix+1, iy) / (ix, iy+1),
  /// perturbation included.
  double edge_conductance_x_at(std::size_t ix, std::size_t iy) const;
  double edge_conductance_y_at(std::size_t ix, std::size_t iy) const;

  /// Grid Laplacian (no shunts): SPD after at least one shunt is added.
  TripletList laplacian() const;

  /// I^2 R loss summed over all edges for a given node-voltage solution.
  Power edge_loss(const Vector& node_voltages) const;

 private:
  Length width_;
  Length height_;
  std::size_t nx_;
  std::size_t ny_;
  double sheet_;
  double gx_;  // per-edge conductance, x-direction
  double gy_;
  // Per-edge scale factors; empty when the mesh is unperturbed (the
  // common case keeps the nominal uniform-conductance fast path).
  std::vector<double> scale_x_;  // (nx-1) * ny, row-major by iy
  std::vector<double> scale_y_;  // nx * (ny-1), row-major by iy
};

}  // namespace vpd
