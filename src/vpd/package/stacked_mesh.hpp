// Two-layer PDN mesh: the interposer power metal and the die grid as
// separate 2-D sheets coupled node-by-node through the interposer/die via
// field (micro-bumps or Cu-Cu pads). A step up in fidelity from the
// single effective sheet used in the Fig. 7 evaluation: VR outputs attach
// to the interposer layer, loads draw from the die layer, and the solver
// reports where the lateral loss actually occurs.
#pragma once

#include <cstddef>
#include <vector>

#include "vpd/common/sparse.hpp"
#include "vpd/common/statistics.hpp"
#include "vpd/common/units.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh.hpp"

namespace vpd {

class StackedMesh {
 public:
  /// Square die of side `die_side`, n x n nodes per layer. Layer 0 is the
  /// interposer sheet, layer 1 the die grid; `via_resistance_per_node` is
  /// the round-trip (power+ground) resistance of each node's share of the
  /// interposer/die via field.
  StackedMesh(Length die_side, std::size_t n, double interposer_sheet_ohms,
              double die_sheet_ohms, Resistance via_resistance_per_node);

  std::size_t nodes_per_layer() const { return grid(0).node_count(); }
  std::size_t node_count() const { return 2 * nodes_per_layer(); }
  /// Global node index of (layer, ix, iy).
  std::size_t node(unsigned layer, std::size_t ix, std::size_t iy) const;
  /// The layer's grid geometry (0 = interposer, 1 = die).
  const GridMesh& grid(unsigned layer) const;

  double via_conductance() const { return g_via_; }

  /// Laplacian over both layers plus the inter-layer via conductances.
  TripletList laplacian() const;

  /// Per-region I^2 R losses of a node-voltage solution.
  struct LayerLosses {
    Power interposer_lateral{};
    Power die_lateral{};
    Power via_field{};
    Power total() const {
      return interposer_lateral + die_lateral + via_field;
    }
  };
  LayerLosses losses(const Vector& node_voltages) const;

 private:
  GridMesh interposer_;
  GridMesh die_;
  double g_via_;
};

struct StackedIrDropResult {
  Vector node_voltages;            // size = mesh.node_count()
  std::vector<double> vr_currents; // per attachment leg
  StackedMesh::LayerLosses losses;
  Power attach_loss{};             // in the VR series resistances
  Voltage min_die_voltage{};       // worst POL node on the die layer
};

/// Solves the stacked mesh: VR attachments reference interposer-layer
/// node indices (global indices < nodes_per_layer), sinks are per-die-
/// layer-node currents (size = nodes_per_layer).
StackedIrDropResult solve_stacked_irdrop(
    const StackedMesh& mesh, const std::vector<VrAttachment>& vrs,
    const Vector& die_sinks);

}  // namespace vpd
