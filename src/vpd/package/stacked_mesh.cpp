#include "vpd/package/stacked_mesh.hpp"

#include <algorithm>

#include "vpd/common/error.hpp"
#include "vpd/package/irdrop.hpp"

namespace vpd {

StackedMesh::StackedMesh(Length die_side, std::size_t n,
                         double interposer_sheet_ohms,
                         double die_sheet_ohms,
                         Resistance via_resistance_per_node)
    : interposer_(die_side, die_side, n, n, interposer_sheet_ohms),
      die_(die_side, die_side, n, n, die_sheet_ohms),
      g_via_(0.0) {
  VPD_REQUIRE(via_resistance_per_node.value > 0.0,
              "via resistance must be positive");
  g_via_ = 1.0 / via_resistance_per_node.value;
}

std::size_t StackedMesh::node(unsigned layer, std::size_t ix,
                              std::size_t iy) const {
  VPD_REQUIRE(layer <= 1, "layer must be 0 or 1");
  return layer * nodes_per_layer() + interposer_.node(ix, iy);
}

const GridMesh& StackedMesh::grid(unsigned layer) const {
  VPD_REQUIRE(layer <= 1, "layer must be 0 or 1");
  return layer == 0 ? interposer_ : die_;
}

TripletList StackedMesh::laplacian() const {
  const std::size_t per_layer = nodes_per_layer();
  TripletList t(node_count(), node_count());
  for (unsigned layer = 0; layer <= 1; ++layer) {
    const TripletList sub = grid(layer).laplacian();
    const std::size_t offset = layer * per_layer;
    for (const auto& e : sub.entries())
      t.add(e.row + offset, e.col + offset, e.value);
  }
  for (std::size_t i = 0; i < per_layer; ++i) {
    t.add(i, i, g_via_);
    t.add(i + per_layer, i + per_layer, g_via_);
    t.add(i, i + per_layer, -g_via_);
    t.add(i + per_layer, i, -g_via_);
  }
  return t;
}

StackedMesh::LayerLosses StackedMesh::losses(
    const Vector& node_voltages) const {
  VPD_REQUIRE(node_voltages.size() == node_count(), "solution has ",
              node_voltages.size(), " entries, mesh has ", node_count());
  const std::size_t per_layer = nodes_per_layer();
  LayerLosses losses;
  const Vector interposer_v(node_voltages.begin(),
                            node_voltages.begin() +
                                static_cast<long>(per_layer));
  const Vector die_v(node_voltages.begin() + static_cast<long>(per_layer),
                     node_voltages.end());
  losses.interposer_lateral = interposer_.edge_loss(interposer_v);
  losses.die_lateral = die_.edge_loss(die_v);
  double via = 0.0;
  for (std::size_t i = 0; i < per_layer; ++i) {
    const double dv = interposer_v[i] - die_v[i];
    via += dv * dv * g_via_;
  }
  losses.via_field = Power{via};
  return losses;
}

StackedIrDropResult solve_stacked_irdrop(
    const StackedMesh& mesh, const std::vector<VrAttachment>& vrs,
    const Vector& die_sinks) {
  VPD_REQUIRE(!vrs.empty(), "need at least one VR attachment");
  VPD_REQUIRE(die_sinks.size() == mesh.nodes_per_layer(),
              "die sinks have ", die_sinks.size(), " entries, layer has ",
              mesh.nodes_per_layer(), " nodes");
  const std::size_t per_layer = mesh.nodes_per_layer();

  TripletList t = mesh.laplacian();
  Vector rhs(mesh.node_count(), 0.0);
  for (std::size_t i = 0; i < per_layer; ++i) {
    VPD_REQUIRE(die_sinks[i] >= 0.0, "negative sink at die node ", i);
    rhs[i + per_layer] -= die_sinks[i];
  }
  for (const VrAttachment& vr : vrs) {
    VPD_REQUIRE(vr.node < per_layer,
                "VR attachments must land on the interposer layer");
    VPD_REQUIRE(vr.series.value > 0.0, "VR series must be positive");
    const double g = 1.0 / vr.series.value;
    t.add(vr.node, vr.node, g);
    rhs[vr.node] += g * vr.source_voltage.value;
  }

  const CsrMatrix a(t);
  CgOptions opts;
  opts.relative_tolerance = 1e-12;
  const CgResult cg = solve_cg(a, rhs, opts);
  VPD_CHECK_NUMERIC(cg.converged,
                    "stacked IR-drop CG did not converge: residual ",
                    cg.residual_norm);

  StackedIrDropResult result;
  result.node_voltages = cg.x;
  result.losses = mesh.losses(cg.x);
  double attach = 0.0;
  for (const VrAttachment& vr : vrs) {
    const double i =
        (vr.source_voltage.value - cg.x[vr.node]) / vr.series.value;
    result.vr_currents.push_back(i);
    attach += i * i * vr.series.value;
  }
  result.attach_loss = Power{attach};
  result.min_die_voltage = Voltage{*std::min_element(
      cg.x.begin() + static_cast<long>(per_layer), cg.x.end())};
  return result;
}

}  // namespace vpd
