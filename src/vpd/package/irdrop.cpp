#include "vpd/package/irdrop.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "vpd/common/error.hpp"

namespace vpd {

Summary IrDropResult::vr_current_summary() const {
  return summarize(vr_currents);
}

namespace {

/// Marks every node reachable from a VR attachment over nonzero-conductance
/// edges, then grounds the rest out of the system: their rows become the
/// identity (the off-diagonals are already stored zeros — a node with a
/// live edge would be reachable) and their rhs becomes 0, so they solve to
/// 0 V. Keeps a fault-severed operator SPD with the nominal sparsity
/// pattern. Fills `grounded_mask` (resized to the node count) with 1 for
/// every grounded node — the caller pins those voltages to exactly 0 after
/// the solve, since CG itself only reaches 0 to within the tolerance —
/// and returns the number of grounded nodes.
std::size_t ground_floating_nodes(CsrMatrix& a, Vector& rhs,
                                  const std::vector<VrAttachment>& vrs,
                                  std::vector<char>& grounded_mask) {
  const std::size_t n = a.rows();
  std::vector<char> reachable(n, 0);
  std::vector<std::size_t> stack;
  stack.reserve(n);
  for (const VrAttachment& vr : vrs) {
    if (!reachable[vr.node]) {
      reachable[vr.node] = 1;
      stack.push_back(vr.node);
    }
  }
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      const std::size_t v = cols[k];
      if (v != u && values[k] != 0.0 && !reachable[v]) {
        reachable[v] = 1;
        stack.push_back(v);
      }
    }
  }
  std::size_t grounded = 0;
  auto& mut = a.values_mut();
  grounded_mask.assign(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    if (reachable[r]) continue;
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k)
      mut[k] = cols[k] == r ? 1.0 : 0.0;
    rhs[r] = 0.0;
    grounded_mask[r] = 1;
    ++grounded;
  }
  return grounded;
}

/// rhs = -sinks, with per-entry validation. The VR Norton injections are
/// added by stamp_vr_shunts.
void build_sink_rhs(const GridMesh& mesh, const Vector& sink_currents,
                    Vector& rhs) {
  VPD_REQUIRE(sink_currents.size() == mesh.node_count(),
              "sink vector has ", sink_currents.size(), " entries, mesh has ",
              mesh.node_count(), " nodes");
  rhs.assign(mesh.node_count(), 0.0);
  for (std::size_t i = 0; i < sink_currents.size(); ++i) {
    VPD_REQUIRE(sink_currents[i] >= 0.0, "negative sink at node ", i);
    rhs[i] -= sink_currents[i];
  }
}

/// Validates the attachments and folds them in by Norton equivalence:
/// shunt conductance onto the diagonal (when `a` is non-null — batch
/// solves stamp the shared operator once) and source injection into rhs.
void stamp_vr_shunts(const GridMesh& mesh,
                     const std::vector<VrAttachment>& vrs, CsrMatrix* a,
                     Vector& rhs) {
  for (const VrAttachment& vr : vrs) {
    VPD_REQUIRE(vr.node < mesh.node_count(), "VR node ", vr.node,
                " outside mesh");
    VPD_REQUIRE(vr.series.value > 0.0,
                "VR series resistance must be positive");
    const double g = 1.0 / vr.series.value;
    if (a != nullptr) a->add_to_entry(vr.node, vr.node, g);
    rhs[vr.node] += g * vr.source_voltage.value;
  }
}

/// Derives the output metrics from a converged solve. Shared by the
/// single and batch paths so their per-map results are computed
/// identically.
IrDropResult extract_result(const GridMesh& mesh,
                            const std::vector<VrAttachment>& vrs,
                            CgResult&& cg, std::size_t floating,
                            const std::vector<char>& grounded_mask) {
  IrDropResult result;
  result.node_voltages = std::move(cg.x);
  result.cg_iterations = cg.iterations;
  result.floating_nodes = floating;
  // Grounded nodes solve an identity row with rhs 0: the exact answer is
  // 0 V, but a warm-started CG only reaches it to within the tolerance.
  // Pin them so a dead rail reads exactly 0 V as documented. (Their edges
  // all have zero conductance, so edge_loss is unaffected either way.)
  if (floating > 0) {
    for (std::size_t i = 0; i < result.node_voltages.size(); ++i)
      if (grounded_mask[i]) result.node_voltages[i] = 0.0;
  }
  const Vector& x = result.node_voltages;
  result.vr_currents.reserve(vrs.size());
  double series_loss = 0.0;
  for (const VrAttachment& vr : vrs) {
    const double i =
        (vr.source_voltage.value - x[vr.node]) / vr.series.value;
    result.vr_currents.push_back(i);
    series_loss += i * i * vr.series.value;
  }
  result.grid_loss = mesh.edge_loss(x);
  result.series_loss = Power{series_loss};
  const auto [mn, mx] = std::minmax_element(x.begin(), x.end());
  result.min_node_voltage = Voltage{*mn};
  result.max_node_voltage = Voltage{*mx};
  return result;
}

/// Builds the CgOptions an IR-drop solve hands the solver.
CgOptions make_cg_options(const GridMesh& mesh, const IcSymbolic* ic,
                          const MgSymbolic* mg, const IrDropOptions& options,
                          obs::TraceContext trace) {
  CgOptions opts;
  opts.relative_tolerance = options.relative_tolerance;
  opts.preconditioner = options.preconditioner;
  opts.ic_symbolic = ic;
  opts.mg_symbolic = mg;
  opts.trace = trace;
  if (options.warm_start_voltage) {
    opts.x0.assign(mesh.node_count(), *options.warm_start_voltage);
  }
  return opts;
}

/// Shared solve core: copies the compiled Laplacian (a fresh assembly or a
/// cached one — identical either way) into per-thread storage, stamps the
/// VR shunts in place, and runs preconditioned CG through a reusable
/// workspace. Keeping one code path guarantees cached and uncached solves
/// are bit-identical.
IrDropResult solve_assembled(const GridMesh& mesh, const CsrMatrix& base,
                             const IcSymbolic* symbolic,
                             const MgSymbolic* hierarchy,
                             const std::vector<VrAttachment>& vrs,
                             const Vector& sink_currents,
                             const IrDropOptions& options) {
  VPD_REQUIRE(!vrs.empty(), "need at least one VR attachment");
  VPD_REQUIRE(options.relative_tolerance > 0.0,
              "relative tolerance must be positive, got ",
              options.relative_tolerance);

  const obs::StageTimer stage_timer(obs::Stage::kSolve);
  obs::Span span("irdrop.solve", options.trace);

  thread_local CsrMatrix a;
  thread_local Vector rhs;
  a = base;
  build_sink_rhs(mesh, sink_currents, rhs);
  stamp_vr_shunts(mesh, vrs, &a, rhs);

  // Only a perturbed mesh can sever nodes (nominal grids are connected and
  // every edge conductance is positive), so the nominal path skips the
  // reachability sweep entirely.
  thread_local std::vector<char> grounded_mask;
  const std::size_t floating =
      mesh.perturbed() ? ground_floating_nodes(a, rhs, vrs, grounded_mask) : 0;

  const CgOptions opts =
      make_cg_options(mesh, symbolic, hierarchy, options, span.context());
  thread_local CgWorkspace tls_workspace;
  CgWorkspace& workspace =
      options.workspace != nullptr ? *options.workspace : tls_workspace;
  CgResult cg = solve_cg(a, rhs, opts, workspace);
  VPD_CHECK_NUMERIC(cg.converged, "IR-drop CG did not converge: residual ",
                    cg.residual_norm, " after ", cg.iterations,
                    " iterations");

  if (span.active()) {
    span.set_arg("nodes", double(mesh.node_count()));
    span.set_arg("vrs", double(vrs.size()));
    span.set_arg("iterations", double(cg.iterations));
  }

  return extract_result(mesh, vrs, std::move(cg), floating, grounded_mask);
}

}  // namespace

IrDropResult solve_irdrop(const GridMesh& mesh,
                          const std::vector<VrAttachment>& vrs,
                          const Vector& sink_currents,
                          const IrDropOptions& options) {
  const CsrMatrix laplacian(mesh.laplacian());
  if (options.preconditioner == CgPreconditioner::kMultigrid) {
    // No cached hierarchy to borrow on this path; build one for the solve.
    const MgSymbolic hierarchy(mesh.nx(), mesh.ny());
    return solve_assembled(mesh, laplacian, nullptr, &hierarchy, vrs,
                           sink_currents, options);
  }
  return solve_assembled(mesh, laplacian, nullptr, nullptr, vrs,
                         sink_currents, options);
}

IrDropResult solve_irdrop(const AssembledMesh& assembled,
                          const std::vector<VrAttachment>& vrs,
                          const Vector& sink_currents,
                          const IrDropOptions& options) {
  return solve_assembled(assembled.mesh, assembled.laplacian,
                         &assembled.ic_symbolic, &assembled.mg_symbolic, vrs,
                         sink_currents, options);
}

std::vector<IrDropResult> solve_irdrop_batch(
    const AssembledMesh& assembled, const std::vector<VrAttachment>& vrs,
    const std::vector<Vector>& sink_maps, const IrDropOptions& options) {
  VPD_REQUIRE(!vrs.empty(), "need at least one VR attachment");
  VPD_REQUIRE(!sink_maps.empty(), "need at least one sink map");
  VPD_REQUIRE(options.relative_tolerance > 0.0,
              "relative tolerance must be positive, got ",
              options.relative_tolerance);
  const GridMesh& mesh = assembled.mesh;

  const obs::StageTimer stage_timer(obs::Stage::kSolve);
  obs::Span span("irdrop.solve_batch", options.trace);

  // One stamped operator for the whole batch; per-map right-hand sides.
  thread_local CsrMatrix a;
  thread_local std::vector<Vector> rhs_set;
  a = assembled.laplacian;
  rhs_set.resize(sink_maps.size());
  for (std::size_t j = 0; j < sink_maps.size(); ++j) {
    build_sink_rhs(mesh, sink_maps[j], rhs_set[j]);
    stamp_vr_shunts(mesh, vrs, j == 0 ? &a : nullptr, rhs_set[j]);
  }

  // Severed nodes depend on the operator and attachments only, so the
  // reachability sweep runs once and its mask applies to every map.
  thread_local std::vector<char> grounded_mask;
  std::size_t floating = 0;
  if (mesh.perturbed()) {
    floating = ground_floating_nodes(a, rhs_set[0], vrs, grounded_mask);
    if (floating > 0) {
      for (std::size_t j = 1; j < rhs_set.size(); ++j)
        for (std::size_t i = 0; i < grounded_mask.size(); ++i)
          if (grounded_mask[i]) rhs_set[j][i] = 0.0;
    }
  }

  const CgOptions opts =
      make_cg_options(mesh, &assembled.ic_symbolic, &assembled.mg_symbolic,
                      options, span.context());
  thread_local CgWorkspace tls_workspace;
  CgWorkspace& workspace =
      options.workspace != nullptr ? *options.workspace : tls_workspace;
  std::vector<CgResult> solved =
      options.batch_block ? solve_cg_block(a, rhs_set, opts, workspace)
                          : solve_cg_batch(a, rhs_set, opts, workspace);

  std::vector<IrDropResult> results;
  results.reserve(solved.size());
  std::size_t total_iterations = 0;
  for (CgResult& cg : solved) {
    VPD_CHECK_NUMERIC(cg.converged, "IR-drop CG did not converge: residual ",
                      cg.residual_norm, " after ", cg.iterations,
                      " iterations");
    total_iterations += cg.iterations;
    results.push_back(
        extract_result(mesh, vrs, std::move(cg), floating, grounded_mask));
  }

  if (span.active()) {
    span.set_arg("nodes", double(mesh.node_count()));
    span.set_arg("vrs", double(vrs.size()));
    span.set_arg("maps", double(sink_maps.size()));
    span.set_arg("iterations", double(total_iterations));
  }
  return results;
}

Vector uniform_sinks(const GridMesh& mesh, Current total) {
  VPD_REQUIRE(total.value >= 0.0, "negative total current");
  return Vector(mesh.node_count(),
                total.value / static_cast<double>(mesh.node_count()));
}

std::vector<VrAttachment> patch_attachment(const GridMesh& mesh, Length cx,
                                           Length cy, Length patch_side,
                                           Voltage source_voltage,
                                           Resistance series) {
  VPD_REQUIRE(patch_side.value > 0.0, "patch side must be positive");
  VPD_REQUIRE(series.value > 0.0, "series resistance must be positive");
  const double half = 0.5 * patch_side.value;
  // Candidate index window from the uniform grid geometry (conservatively
  // widened by one cell), then the exact per-node test used before — same
  // node set in the same row-major order as the full scan this replaces.
  const auto index_window = [half](double c, double extent,
                                   std::size_t count) {
    const double pitch = extent / static_cast<double>(count - 1);
    const double lo = (c - half - 1e-12) / pitch - 1.0;
    const double hi = (c + half + 1e-12) / pitch + 1.0;
    const std::size_t first =
        lo <= 0.0 ? 0
                  : std::min(count - 1,
                             static_cast<std::size_t>(std::floor(lo)));
    const std::size_t last =
        hi <= 0.0 ? 0
                  : std::min(count - 1,
                             static_cast<std::size_t>(std::ceil(hi)));
    return std::pair<std::size_t, std::size_t>{first, last};
  };
  const auto [ix_lo, ix_hi] =
      index_window(cx.value, mesh.width().value, mesh.nx());
  const auto [iy_lo, iy_hi] =
      index_window(cy.value, mesh.height().value, mesh.ny());
  std::vector<std::size_t> nodes;
  for (std::size_t iy = iy_lo; iy <= iy_hi; ++iy) {
    for (std::size_t ix = ix_lo; ix <= ix_hi; ++ix) {
      const std::size_t i = mesh.node(ix, iy);
      const double dx = mesh.x_of(i).value - cx.value;
      const double dy = mesh.y_of(i).value - cy.value;
      if (std::fabs(dx) <= half + 1e-12 && std::fabs(dy) <= half + 1e-12)
        nodes.push_back(i);
    }
  }
  if (nodes.empty()) nodes.push_back(mesh.nearest_node(cx, cy));
  std::vector<VrAttachment> legs;
  legs.reserve(nodes.size());
  const Resistance per_leg{series.value * static_cast<double>(nodes.size())};
  for (std::size_t n : nodes) legs.push_back({n, source_voltage, per_leg});
  return legs;
}

}  // namespace vpd
