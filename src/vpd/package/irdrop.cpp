#include "vpd/package/irdrop.hpp"

#include <algorithm>

#include "vpd/common/error.hpp"

namespace vpd {

Summary IrDropResult::vr_current_summary() const {
  return summarize(vr_currents);
}

IrDropResult solve_irdrop(const GridMesh& mesh,
                          const std::vector<VrAttachment>& vrs,
                          const Vector& sink_currents) {
  VPD_REQUIRE(!vrs.empty(), "need at least one VR attachment");
  VPD_REQUIRE(sink_currents.size() == mesh.node_count(),
              "sink vector has ", sink_currents.size(), " entries, mesh has ",
              mesh.node_count(), " nodes");

  TripletList t = mesh.laplacian();
  Vector rhs(mesh.node_count(), 0.0);
  for (std::size_t i = 0; i < sink_currents.size(); ++i) {
    VPD_REQUIRE(sink_currents[i] >= 0.0, "negative sink at node ", i);
    rhs[i] -= sink_currents[i];
  }
  for (const VrAttachment& vr : vrs) {
    VPD_REQUIRE(vr.node < mesh.node_count(), "VR node ", vr.node,
                " outside mesh");
    VPD_REQUIRE(vr.series.value > 0.0,
                "VR series resistance must be positive");
    const double g = 1.0 / vr.series.value;
    t.add(vr.node, vr.node, g);
    rhs[vr.node] += g * vr.source_voltage.value;
  }

  const CsrMatrix a(t);
  CgOptions opts;
  opts.relative_tolerance = 1e-12;
  const CgResult cg = solve_cg(a, rhs, opts);
  VPD_CHECK_NUMERIC(cg.converged, "IR-drop CG did not converge: residual ",
                    cg.residual_norm, " after ", cg.iterations,
                    " iterations");

  IrDropResult result;
  result.node_voltages = cg.x;
  result.vr_currents.reserve(vrs.size());
  double series_loss = 0.0;
  for (const VrAttachment& vr : vrs) {
    const double i =
        (vr.source_voltage.value - cg.x[vr.node]) / vr.series.value;
    result.vr_currents.push_back(i);
    series_loss += i * i * vr.series.value;
  }
  result.grid_loss = mesh.edge_loss(cg.x);
  result.series_loss = Power{series_loss};
  const auto [mn, mx] =
      std::minmax_element(cg.x.begin(), cg.x.end());
  result.min_node_voltage = Voltage{*mn};
  result.max_node_voltage = Voltage{*mx};
  return result;
}

Vector uniform_sinks(const GridMesh& mesh, Current total) {
  VPD_REQUIRE(total.value >= 0.0, "negative total current");
  return Vector(mesh.node_count(),
                total.value / static_cast<double>(mesh.node_count()));
}

std::vector<VrAttachment> patch_attachment(const GridMesh& mesh, Length cx,
                                           Length cy, Length patch_side,
                                           Voltage source_voltage,
                                           Resistance series) {
  VPD_REQUIRE(patch_side.value > 0.0, "patch side must be positive");
  VPD_REQUIRE(series.value > 0.0, "series resistance must be positive");
  const double half = 0.5 * patch_side.value;
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    const double dx = mesh.x_of(i).value - cx.value;
    const double dy = mesh.y_of(i).value - cy.value;
    if (std::fabs(dx) <= half + 1e-12 && std::fabs(dy) <= half + 1e-12)
      nodes.push_back(i);
  }
  if (nodes.empty()) nodes.push_back(mesh.nearest_node(cx, cy));
  std::vector<VrAttachment> legs;
  legs.reserve(nodes.size());
  const Resistance per_leg{series.value * static_cast<double>(nodes.size())};
  for (std::size_t n : nodes) legs.push_back({n, source_voltage, per_leg});
  return legs;
}

}  // namespace vpd
