#include "vpd/package/irdrop.hpp"

#include <algorithm>

#include "vpd/common/error.hpp"

namespace vpd {

Summary IrDropResult::vr_current_summary() const {
  return summarize(vr_currents);
}

namespace {

/// Shared solve core: takes the compiled Laplacian by value (a fresh
/// assembly or a copy of a cached one — identical either way), stamps the
/// VR shunts in place, and runs CG. Keeping one code path guarantees
/// cached and uncached solves are bit-identical.
IrDropResult solve_assembled(const GridMesh& mesh, CsrMatrix a,
                             const std::vector<VrAttachment>& vrs,
                             const Vector& sink_currents,
                             const IrDropOptions& options) {
  VPD_REQUIRE(!vrs.empty(), "need at least one VR attachment");
  VPD_REQUIRE(sink_currents.size() == mesh.node_count(),
              "sink vector has ", sink_currents.size(), " entries, mesh has ",
              mesh.node_count(), " nodes");
  VPD_REQUIRE(options.relative_tolerance > 0.0,
              "relative tolerance must be positive, got ",
              options.relative_tolerance);

  Vector rhs(mesh.node_count(), 0.0);
  for (std::size_t i = 0; i < sink_currents.size(); ++i) {
    VPD_REQUIRE(sink_currents[i] >= 0.0, "negative sink at node ", i);
    rhs[i] -= sink_currents[i];
  }
  for (const VrAttachment& vr : vrs) {
    VPD_REQUIRE(vr.node < mesh.node_count(), "VR node ", vr.node,
                " outside mesh");
    VPD_REQUIRE(vr.series.value > 0.0,
                "VR series resistance must be positive");
    const double g = 1.0 / vr.series.value;
    a.add_to_entry(vr.node, vr.node, g);
    rhs[vr.node] += g * vr.source_voltage.value;
  }

  CgOptions opts;
  opts.relative_tolerance = options.relative_tolerance;
  if (options.warm_start_voltage) {
    opts.x0.assign(mesh.node_count(), *options.warm_start_voltage);
  }
  const CgResult cg = solve_cg(a, rhs, opts);
  VPD_CHECK_NUMERIC(cg.converged, "IR-drop CG did not converge: residual ",
                    cg.residual_norm, " after ", cg.iterations,
                    " iterations");

  IrDropResult result;
  result.node_voltages = cg.x;
  result.cg_iterations = cg.iterations;
  result.vr_currents.reserve(vrs.size());
  double series_loss = 0.0;
  for (const VrAttachment& vr : vrs) {
    const double i =
        (vr.source_voltage.value - cg.x[vr.node]) / vr.series.value;
    result.vr_currents.push_back(i);
    series_loss += i * i * vr.series.value;
  }
  result.grid_loss = mesh.edge_loss(cg.x);
  result.series_loss = Power{series_loss};
  const auto [mn, mx] =
      std::minmax_element(cg.x.begin(), cg.x.end());
  result.min_node_voltage = Voltage{*mn};
  result.max_node_voltage = Voltage{*mx};
  return result;
}

}  // namespace

IrDropResult solve_irdrop(const GridMesh& mesh,
                          const std::vector<VrAttachment>& vrs,
                          const Vector& sink_currents,
                          const IrDropOptions& options) {
  return solve_assembled(mesh, CsrMatrix(mesh.laplacian()), vrs,
                         sink_currents, options);
}

IrDropResult solve_irdrop(const AssembledMesh& assembled,
                          const std::vector<VrAttachment>& vrs,
                          const Vector& sink_currents,
                          const IrDropOptions& options) {
  return solve_assembled(assembled.mesh, assembled.laplacian, vrs,
                         sink_currents, options);
}

Vector uniform_sinks(const GridMesh& mesh, Current total) {
  VPD_REQUIRE(total.value >= 0.0, "negative total current");
  return Vector(mesh.node_count(),
                total.value / static_cast<double>(mesh.node_count()));
}

std::vector<VrAttachment> patch_attachment(const GridMesh& mesh, Length cx,
                                           Length cy, Length patch_side,
                                           Voltage source_voltage,
                                           Resistance series) {
  VPD_REQUIRE(patch_side.value > 0.0, "patch side must be positive");
  VPD_REQUIRE(series.value > 0.0, "series resistance must be positive");
  const double half = 0.5 * patch_side.value;
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    const double dx = mesh.x_of(i).value - cx.value;
    const double dy = mesh.y_of(i).value - cy.value;
    if (std::fabs(dx) <= half + 1e-12 && std::fabs(dy) <= half + 1e-12)
      nodes.push_back(i);
  }
  if (nodes.empty()) nodes.push_back(mesh.nearest_node(cx, cy));
  std::vector<VrAttachment> legs;
  legs.reserve(nodes.size());
  const Resistance per_leg{series.value * static_cast<double>(nodes.size())};
  for (std::size_t n : nodes) legs.push_back({n, source_voltage, per_leg});
  return legs;
}

}  // namespace vpd
