#include "vpd/package/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

GridMesh::GridMesh(Length width, Length height, std::size_t nx,
                   std::size_t ny, double sheet_ohms_per_square)
    : width_(width), height_(height), nx_(nx), ny_(ny),
      sheet_(sheet_ohms_per_square) {
  VPD_REQUIRE(width.value > 0.0 && height.value > 0.0,
              "mesh extent must be positive");
  VPD_REQUIRE(nx >= 2 && ny >= 2, "mesh needs at least 2x2 nodes, got ", nx,
              "x", ny);
  VPD_REQUIRE(sheet_ohms_per_square > 0.0,
              "sheet resistance must be positive");
  // Edge resistances: a horizontal edge spans dx = width/(nx-1) and carries
  // a strip of height dy = height/(ny-1)... strip width is the node
  // spacing in the transverse direction.
  const double dx = width.value / static_cast<double>(nx - 1);
  const double dy = height.value / static_cast<double>(ny - 1);
  gx_ = dy / (sheet_ * dx);  // conductance = width / (Rs * length)
  gy_ = dx / (sheet_ * dy);
}

GridMesh::GridMesh(Length width, Length height, std::size_t nx,
                   std::size_t ny, double sheet_ohms_per_square,
                   const MeshPerturbation& perturbation)
    : GridMesh(width, height, nx, ny, sheet_ohms_per_square) {
  if (perturbation.empty()) return;
  for (const EdgeScaleRegion& r : perturbation) {
    VPD_REQUIRE(r.x1.value >= r.x0.value && r.y1.value >= r.y0.value,
                "perturbation region has negative extent");
    VPD_REQUIRE(r.scale >= 0.0, "edge conductance scale must be >= 0, got ",
                r.scale);
  }
  scale_x_.assign((nx_ - 1) * ny_, 1.0);
  scale_y_.assign(nx_ * (ny_ - 1), 1.0);
  const auto inside = [](const EdgeScaleRegion& r, double x, double y) {
    return x >= r.x0.value - 1e-12 && x <= r.x1.value + 1e-12 &&
           y >= r.y0.value - 1e-12 && y <= r.y1.value + 1e-12;
  };
  for (const EdgeScaleRegion& r : perturbation) {
    for (std::size_t iy = 0; iy < ny_; ++iy) {
      for (std::size_t ix = 0; ix + 1 < nx_; ++ix) {
        const double mx =
            0.5 * (x_of(node(ix, iy)).value + x_of(node(ix + 1, iy)).value);
        const double my = y_of(node(ix, iy)).value;
        if (inside(r, mx, my)) scale_x_[iy * (nx_ - 1) + ix] *= r.scale;
      }
    }
    for (std::size_t iy = 0; iy + 1 < ny_; ++iy) {
      for (std::size_t ix = 0; ix < nx_; ++ix) {
        const double mx = x_of(node(ix, iy)).value;
        const double my =
            0.5 * (y_of(node(ix, iy)).value + y_of(node(ix, iy + 1)).value);
        if (inside(r, mx, my)) scale_y_[iy * nx_ + ix] *= r.scale;
      }
    }
  }
}

std::size_t GridMesh::node(std::size_t ix, std::size_t iy) const {
  VPD_REQUIRE(ix < nx_ && iy < ny_, "grid index (", ix, ",", iy,
              ") outside ", nx_, "x", ny_);
  return iy * nx_ + ix;
}

Length GridMesh::x_of(std::size_t node_index) const {
  VPD_REQUIRE(node_index < node_count(), "node index out of range");
  const std::size_t ix = node_index % nx_;
  return Length{width_.value * static_cast<double>(ix) /
                static_cast<double>(nx_ - 1)};
}

Length GridMesh::y_of(std::size_t node_index) const {
  VPD_REQUIRE(node_index < node_count(), "node index out of range");
  const std::size_t iy = node_index / nx_;
  return Length{height_.value * static_cast<double>(iy) /
                static_cast<double>(ny_ - 1)};
}

std::size_t GridMesh::nearest_node(Length x, Length y) const {
  const double fx = std::clamp(x.value / width_.value, 0.0, 1.0);
  const double fy = std::clamp(y.value / height_.value, 0.0, 1.0);
  const auto ix = static_cast<std::size_t>(
      std::lround(fx * static_cast<double>(nx_ - 1)));
  const auto iy = static_cast<std::size_t>(
      std::lround(fy * static_cast<double>(ny_ - 1)));
  return node(ix, iy);
}

double GridMesh::edge_conductance_x() const { return gx_; }
double GridMesh::edge_conductance_y() const { return gy_; }

double GridMesh::edge_conductance_x_at(std::size_t ix, std::size_t iy) const {
  VPD_REQUIRE(ix + 1 < nx_ && iy < ny_, "x-edge index (", ix, ",", iy,
              ") outside ", nx_, "x", ny_);
  return scale_x_.empty() ? gx_ : gx_ * scale_x_[iy * (nx_ - 1) + ix];
}

double GridMesh::edge_conductance_y_at(std::size_t ix, std::size_t iy) const {
  VPD_REQUIRE(ix < nx_ && iy + 1 < ny_, "y-edge index (", ix, ",", iy,
              ") outside ", nx_, "x", ny_);
  return scale_y_.empty() ? gy_ : gy_ * scale_y_[iy * nx_ + ix];
}

TripletList GridMesh::laplacian() const {
  TripletList t(node_count(), node_count());
  t.reserve(8 * node_count());  // 4 stamps per edge, ~2 edges per node
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const std::size_t a = node(ix, iy);
      if (ix + 1 < nx_) {
        const std::size_t b = node(ix + 1, iy);
        const double g = edge_conductance_x_at(ix, iy);
        t.add(a, a, g);
        t.add(b, b, g);
        t.add(a, b, -g);
        t.add(b, a, -g);
      }
      if (iy + 1 < ny_) {
        const std::size_t b = node(ix, iy + 1);
        const double g = edge_conductance_y_at(ix, iy);
        t.add(a, a, g);
        t.add(b, b, g);
        t.add(a, b, -g);
        t.add(b, a, -g);
      }
    }
  }
  return t;
}

Power GridMesh::edge_loss(const Vector& node_voltages) const {
  VPD_REQUIRE(node_voltages.size() == node_count(),
              "solution has ", node_voltages.size(), " entries, mesh has ",
              node_count(), " nodes");
  double loss = 0.0;
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const std::size_t a = node(ix, iy);
      if (ix + 1 < nx_) {
        const double dv = node_voltages[a] - node_voltages[node(ix + 1, iy)];
        loss += dv * dv * edge_conductance_x_at(ix, iy);
      }
      if (iy + 1 < ny_) {
        const double dv = node_voltages[a] - node_voltages[node(ix, iy + 1)];
        loss += dv * dv * edge_conductance_y_at(ix, iy);
      }
    }
  }
  return Power{loss};
}

}  // namespace vpd
