#include "vpd/package/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

GridMesh::GridMesh(Length width, Length height, std::size_t nx,
                   std::size_t ny, double sheet_ohms_per_square)
    : width_(width), height_(height), nx_(nx), ny_(ny),
      sheet_(sheet_ohms_per_square) {
  VPD_REQUIRE(width.value > 0.0 && height.value > 0.0,
              "mesh extent must be positive");
  VPD_REQUIRE(nx >= 2 && ny >= 2, "mesh needs at least 2x2 nodes, got ", nx,
              "x", ny);
  VPD_REQUIRE(sheet_ohms_per_square > 0.0,
              "sheet resistance must be positive");
  // Edge resistances: a horizontal edge spans dx = width/(nx-1) and carries
  // a strip of height dy = height/(ny-1)... strip width is the node
  // spacing in the transverse direction.
  const double dx = width.value / static_cast<double>(nx - 1);
  const double dy = height.value / static_cast<double>(ny - 1);
  gx_ = dy / (sheet_ * dx);  // conductance = width / (Rs * length)
  gy_ = dx / (sheet_ * dy);
}

std::size_t GridMesh::node(std::size_t ix, std::size_t iy) const {
  VPD_REQUIRE(ix < nx_ && iy < ny_, "grid index (", ix, ",", iy,
              ") outside ", nx_, "x", ny_);
  return iy * nx_ + ix;
}

Length GridMesh::x_of(std::size_t node_index) const {
  VPD_REQUIRE(node_index < node_count(), "node index out of range");
  const std::size_t ix = node_index % nx_;
  return Length{width_.value * static_cast<double>(ix) /
                static_cast<double>(nx_ - 1)};
}

Length GridMesh::y_of(std::size_t node_index) const {
  VPD_REQUIRE(node_index < node_count(), "node index out of range");
  const std::size_t iy = node_index / nx_;
  return Length{height_.value * static_cast<double>(iy) /
                static_cast<double>(ny_ - 1)};
}

std::size_t GridMesh::nearest_node(Length x, Length y) const {
  const double fx = std::clamp(x.value / width_.value, 0.0, 1.0);
  const double fy = std::clamp(y.value / height_.value, 0.0, 1.0);
  const auto ix = static_cast<std::size_t>(
      std::lround(fx * static_cast<double>(nx_ - 1)));
  const auto iy = static_cast<std::size_t>(
      std::lround(fy * static_cast<double>(ny_ - 1)));
  return node(ix, iy);
}

double GridMesh::edge_conductance_x() const { return gx_; }
double GridMesh::edge_conductance_y() const { return gy_; }

TripletList GridMesh::laplacian() const {
  TripletList t(node_count(), node_count());
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const std::size_t a = node(ix, iy);
      if (ix + 1 < nx_) {
        const std::size_t b = node(ix + 1, iy);
        t.add(a, a, gx_);
        t.add(b, b, gx_);
        t.add(a, b, -gx_);
        t.add(b, a, -gx_);
      }
      if (iy + 1 < ny_) {
        const std::size_t b = node(ix, iy + 1);
        t.add(a, a, gy_);
        t.add(b, b, gy_);
        t.add(a, b, -gy_);
        t.add(b, a, -gy_);
      }
    }
  }
  return t;
}

Power GridMesh::edge_loss(const Vector& node_voltages) const {
  VPD_REQUIRE(node_voltages.size() == node_count(),
              "solution has ", node_voltages.size(), " entries, mesh has ",
              node_count(), " nodes");
  double loss = 0.0;
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const std::size_t a = node(ix, iy);
      if (ix + 1 < nx_) {
        const double dv = node_voltages[a] - node_voltages[node(ix + 1, iy)];
        loss += dv * dv * gx_;
      }
      if (iy + 1 < ny_) {
        const double dv = node_voltages[a] - node_voltages[node(ix, iy + 1)];
        loss += dv * dv * gy_;
      }
    }
  }
  return Power{loss};
}

}  // namespace vpd
