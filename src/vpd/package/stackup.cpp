#include "vpd/package/stackup.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

void PowerPath::add_vertical(const VerticalInterconnectSpec& spec,
                             Current current,
                             std::optional<std::size_t> vias_override) {
  VPD_REQUIRE(current.value > 0.0, "stage current must be positive");
  const std::size_t vias =
      vias_override.value_or(spec.vias_for_current(current));
  VPD_REQUIRE(vias > 0, "need at least one via for stage '", spec.type, "'");
  PathStage stage;
  stage.name = spec.type;
  stage.resistance = spec.net_pair_resistance(vias);
  stage.current = current;
  stage.vertical = true;
  stage.vias_per_net = vias;
  stages_.push_back(std::move(stage));
}

void PowerPath::add_lateral(const LateralSegment& segment, Current current) {
  VPD_REQUIRE(current.value > 0.0, "stage current must be positive");
  PathStage stage;
  stage.name = segment.name;
  stage.resistance = segment.resistance();
  stage.current = current;
  stage.vertical = false;
  stages_.push_back(std::move(stage));
}

void PowerPath::add_stage(PathStage stage) {
  VPD_REQUIRE(stage.resistance.value >= 0.0 && stage.current.value >= 0.0,
              "invalid stage '", stage.name, "'");
  stages_.push_back(std::move(stage));
}

Power PowerPath::vertical_loss() const {
  Power total{0.0};
  for (const PathStage& s : stages_)
    if (s.vertical) total += s.loss();
  return total;
}

Power PowerPath::lateral_loss() const {
  Power total{0.0};
  for (const PathStage& s : stages_)
    if (!s.vertical) total += s.loss();
  return total;
}

Power PowerPath::total_loss() const {
  return vertical_loss() + lateral_loss();
}

Voltage PowerPath::total_drop() const {
  Voltage total{0.0};
  for (const PathStage& s : stages_) total += s.drop();
  return total;
}

}  // namespace vpd
