// Vertical-interconnect utilization and feasibility analysis, reproducing
// the paper's Section IV statements: under 60% / 85% BGA / C4 power
// allocation caps the reference architecture needs a ~1200 mm^2 die to
// sink 1 kA (0.8 A/mm^2), while vertical power delivery serves a 500 mm^2
// die (2 A/mm^2) using ~1% of BGAs, ~2% of C4s, ~10% of TSVs and <20% of
// the advanced Cu-Cu pads.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "vpd/common/units.hpp"
#include "vpd/package/interconnect.hpp"

namespace vpd {

struct UtilizationRow {
  InterconnectLevel level{};
  std::string type;
  Current current{};              // current carried at this level
  std::size_t available{0};       // vias on the (sub-)platform
  std::size_t used_per_net{0};    // power-net vias required
  double fraction{0.0};           // used / available
  bool feasible{false};           // fraction <= max_power_fraction
};

/// Utilization of one interconnect level carrying `current`, counted over
/// the full Table I platform or a sub-area (e.g. the die shadow).
UtilizationRow utilization_for(const VerticalInterconnectSpec& spec,
                               Current current,
                               std::optional<Area> over = std::nullopt);

/// Smallest platform area over which `spec` can carry `current` within
/// both the per-via limit and the power-allocation cap.
Area min_area_for_current(const VerticalInterconnectSpec& spec,
                          Current current);

/// Utilization report for a full delivery scenario: per-level currents are
/// supplied by the architecture evaluator.
struct LevelCurrent {
  InterconnectLevel level{};
  Current current{};
  std::optional<Area> over;  // defaults to the Table I platform area
};

std::vector<UtilizationRow> utilization_report(
    const std::vector<LevelCurrent>& levels);

}  // namespace vpd
