// Vertical interconnect library reproducing the paper's Table I: BGAs,
// C4 bumps, TSVs, micro-bumps, and advanced Cu-Cu pads, with the exact
// published geometry (diameter, cross-section, height, pitch, platform
// area). Per-via resistance follows from rho * height / cross-section;
// available counts from platform area / pitch^2.
//
// Per-via current limits are model inputs calibrated so the library
// reproduces the paper's Section IV utilization statements (A0 needs a
// ~1200 mm^2 die under the 60%/85% BGA/C4 caps; the vertical architectures
// use ~1% of BGAs, ~2% of C4s, ~10% of TSVs, <20% of Cu pads). See
// EXPERIMENTS.md for the calibration note.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

enum class InterconnectLevel {
  kPcbToPackage,          // BGAs
  kPackageToInterposer,   // C4 bumps
  kThroughInterposer,     // TSVs
  kInterposerToDieBump,   // micro-bumps
  kInterposerToDiePad,    // advanced Cu-Cu pads
};

const char* to_string(InterconnectLevel level);

struct VerticalInterconnectSpec {
  InterconnectLevel level{};
  std::string type;       // "BGA", "C4", "TSV", "u-bump", "Cu pad"
  std::string material;   // "solder" or "Cu"
  Area platform_area{};   // Table I platform area
  Length diameter{};      // 0 for pads
  Area cross_section{};
  Length height{};
  Length pitch{};
  Resistivity resistivity{};
  Current max_current_per_via{};  // calibrated EM/thermal limit
  /// Fraction of the platform's vias that power delivery may occupy
  /// (per net; the paper's 60% / 85% caps for BGAs / C4s).
  double max_power_fraction{1.0};

  /// Single-via resistance: rho * height / cross-section.
  Resistance per_via() const;

  /// Vias available on the full platform (pitch-limited).
  std::size_t available_count() const;
  /// Vias available over a sub-area (e.g. the die shadow).
  std::size_t available_count(Area over) const;

  /// Vias needed on the power net to carry `current` within the per-via
  /// limit.
  std::size_t vias_for_current(Current current) const;

  /// Round-trip (power + ground) resistance when `vias_per_net` vias carry
  /// each net: 2 * per_via / vias_per_net.
  Resistance net_pair_resistance(std::size_t vias_per_net) const;
};

/// The paper's Table I, with calibrated per-via limits.
std::vector<VerticalInterconnectSpec> table_one();

/// Lookup by level. For the interposer/die interface, both the micro-bump
/// and Cu-pad variants exist; select with the specific enum value.
VerticalInterconnectSpec interconnect_spec(InterconnectLevel level);

/// Solder (SAC-class) and copper resistivities used across the library.
inline constexpr Resistivity kSolderResistivity{1.3e-7};  // Ohm*m
inline constexpr Resistivity kCopperResistivity{1.7e-8};  // Ohm*m

}  // namespace vpd
