// Keyed cache of assembled mesh solve operators. A distribution solve's
// matrix is the GridMesh Laplacian plus per-VR shunt stamps; the Laplacian
// depends only on (width, height, nx, ny, sheet resistance), so across a
// design-space sweep the expensive part of assembly — triplet generation,
// sort and CSR compilation — is identical for every point on the same
// mesh. The cache shares one immutable AssembledMesh per key; solves copy
// its value array and stamp their shunts via CsrMatrix::add_to_entry.
//
// Thread-safe: getters from concurrent sweep workers serialize on one
// mutex, and a miss assembles while holding it, so each key is built
// exactly once (misses == distinct keys regardless of scheduling).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "vpd/common/multigrid.hpp"
#include "vpd/obs/trace.hpp"
#include "vpd/package/mesh.hpp"

namespace vpd {

/// An immutable, shareable mesh with its compiled Laplacian (no shunts),
/// the symbolic lower-triangle pattern for IC(0)/SSOR factorizations, and
/// the geometric multigrid hierarchy for kMultigrid solves of the stamped
/// operator. VR shunt stamps only touch existing diagonal entries, so one
/// pattern and one hierarchy — keyed, like the Laplacian itself, by the
/// cache key including the perturbation digest — serve every solve on
/// this mesh.
struct AssembledMesh {
  GridMesh mesh;
  CsrMatrix laplacian;
  IcSymbolic ic_symbolic;
  MgSymbolic mg_symbolic;
};

/// Builds the AssembledMesh for the given geometry (also the cache-miss
/// path, so cached and uncached solves share one assembly routine). The
/// perturbation overload applies a conductance perturbation; an empty
/// perturbation is bit-identical to the plain overload.
std::shared_ptr<const AssembledMesh> assemble_mesh(Length width,
                                                   Length height,
                                                   std::size_t nx,
                                                   std::size_t ny,
                                                   double sheet_ohms);
std::shared_ptr<const AssembledMesh> assemble_mesh(
    Length width, Length height, std::size_t nx, std::size_t ny,
    double sheet_ohms, const MeshPerturbation& perturbation);

/// Order-sensitive 64-bit FNV-1a digest of a conductance perturbation,
/// part of the MeshSolveCache key: two meshes with identical macro
/// geometry but different perturbations must never alias to the same
/// cache entry. Exactly 0 for the empty (nominal) perturbation and
/// guaranteed non-zero otherwise, so a perturbed mesh can never collide
/// with the nominal operator.
std::uint64_t mesh_perturbation_digest(const MeshPerturbation& perturbation);

class MeshSolveCache {
 public:
  struct Stats {
    std::size_t hits{0};
    std::size_t misses{0};
  };

  /// Returns the cached operator for the key, assembling it on first use.
  /// `trace` parents the "mesh.assemble" span a miss records; it never
  /// affects what is returned.
  std::shared_ptr<const AssembledMesh> get(Length width, Length height,
                                           std::size_t nx, std::size_t ny,
                                           double sheet_ohms,
                                           obs::TraceContext trace = {});

  /// Same, keyed additionally by the perturbation digest. An empty
  /// perturbation shares the nominal entry.
  std::shared_ptr<const AssembledMesh> get(
      Length width, Length height, std::size_t nx, std::size_t ny,
      double sheet_ohms, const MeshPerturbation& perturbation,
      obs::TraceContext trace = {});

  Stats stats() const;
  std::size_t size() const;
  void clear();

 private:
  struct Key {
    double width;
    double height;
    std::size_t nx;
    std::size_t ny;
    double sheet;
    std::uint64_t perturbation_digest;
    bool operator<(const Key& o) const;
  };

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const AssembledMesh>> entries_;
  Stats stats_;
};

}  // namespace vpd
