#include "vpd/package/utilization.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

UtilizationRow utilization_for(const VerticalInterconnectSpec& spec,
                               Current current, std::optional<Area> over) {
  VPD_REQUIRE(current.value > 0.0, "current must be positive");
  UtilizationRow row;
  row.level = spec.level;
  row.type = spec.type;
  row.current = current;
  row.available = spec.available_count(over.value_or(spec.platform_area));
  row.used_per_net = spec.vias_for_current(current);
  VPD_REQUIRE(row.available > 0, "no vias available for '", spec.type, "'");
  row.fraction = static_cast<double>(row.used_per_net) /
                 static_cast<double>(row.available);
  row.feasible = row.fraction <= spec.max_power_fraction;
  return row;
}

Area min_area_for_current(const VerticalInterconnectSpec& spec,
                          Current current) {
  VPD_REQUIRE(current.value > 0.0, "current must be positive");
  const auto vias = static_cast<double>(spec.vias_for_current(current));
  const double pitch_cell = spec.pitch.value * spec.pitch.value;
  return Area{vias * pitch_cell / spec.max_power_fraction};
}

std::vector<UtilizationRow> utilization_report(
    const std::vector<LevelCurrent>& levels) {
  std::vector<UtilizationRow> rows;
  rows.reserve(levels.size());
  for (const LevelCurrent& lc : levels)
    rows.push_back(
        utilization_for(interconnect_spec(lc.level), lc.current, lc.over));
  return rows;
}

}  // namespace vpd
