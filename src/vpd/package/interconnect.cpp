#include "vpd/package/interconnect.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

using namespace vpd::literals;

const char* to_string(InterconnectLevel level) {
  switch (level) {
    case InterconnectLevel::kPcbToPackage: return "PCB/PKG";
    case InterconnectLevel::kPackageToInterposer: return "PKG/Interposer";
    case InterconnectLevel::kThroughInterposer: return "Through-Interposer";
    case InterconnectLevel::kInterposerToDieBump: return "Interposer/Die (u-bump)";
    case InterconnectLevel::kInterposerToDiePad: return "Interposer/Die (Cu pad)";
  }
  return "unknown";
}

Resistance VerticalInterconnectSpec::per_via() const {
  VPD_REQUIRE(cross_section.value > 0.0 && height.value > 0.0,
              "interconnect '", type, "': non-positive geometry");
  return Resistance{resistivity.value * height.value / cross_section.value};
}

std::size_t VerticalInterconnectSpec::available_count() const {
  return available_count(platform_area);
}

std::size_t VerticalInterconnectSpec::available_count(Area over) const {
  VPD_REQUIRE(pitch.value > 0.0, "interconnect '", type,
              "': non-positive pitch");
  VPD_REQUIRE(over.value >= 0.0, "negative area");
  return static_cast<std::size_t>(over.value /
                                  (pitch.value * pitch.value));
}

std::size_t VerticalInterconnectSpec::vias_for_current(
    Current current) const {
  VPD_REQUIRE(current.value >= 0.0, "negative current");
  VPD_REQUIRE(max_current_per_via.value > 0.0, "interconnect '", type,
              "': no current limit set");
  return static_cast<std::size_t>(
      std::ceil(current.value / max_current_per_via.value));
}

Resistance VerticalInterconnectSpec::net_pair_resistance(
    std::size_t vias_per_net) const {
  VPD_REQUIRE(vias_per_net > 0, "need at least one via per net");
  return Resistance{2.0 * per_via().value /
                    static_cast<double>(vias_per_net)};
}

std::vector<VerticalInterconnectSpec> table_one() {
  std::vector<VerticalInterconnectSpec> specs;
  {
    VerticalInterconnectSpec s;  // PCB/PKG: solder BGAs
    s.level = InterconnectLevel::kPcbToPackage;
    s.type = "BGA";
    s.material = "solder";
    s.platform_area = 1800.0_mm2;
    s.diameter = 400.0_um;
    s.cross_section = Area{125664e-12};  // 125,664 um^2
    s.height = 300.0_um;
    s.pitch = 800.0_um;
    s.resistivity = kSolderResistivity;
    s.max_current_per_via = 1.0_A;
    s.max_power_fraction = 0.60;  // paper Section IV
    specs.push_back(s);
  }
  {
    VerticalInterconnectSpec s;  // PKG/Interposer: solder C4 bumps
    s.level = InterconnectLevel::kPackageToInterposer;
    s.type = "C4";
    s.material = "solder";
    s.platform_area = 1200.0_mm2;
    s.diameter = 100.0_um;
    s.cross_section = Area{7854e-12};
    s.height = 70.0_um;
    s.pitch = 200.0_um;
    s.resistivity = kSolderResistivity;
    s.max_current_per_via = Current{0.040};
    s.max_power_fraction = 0.85;  // paper Section IV
    specs.push_back(s);
  }
  {
    VerticalInterconnectSpec s;  // Through-interposer: Cu TSVs
    s.level = InterconnectLevel::kThroughInterposer;
    s.type = "TSV";
    s.material = "Cu";
    s.platform_area = 1200.0_mm2;
    s.diameter = 5.0_um;
    s.cross_section = Area{20e-12};
    s.height = 50.0_um;
    s.pitch = 10.0_um;
    s.resistivity = kCopperResistivity;
    s.max_current_per_via = Current{0.85e-3};
    s.max_power_fraction = 1.0;
    specs.push_back(s);
  }
  {
    VerticalInterconnectSpec s;  // Interposer/Die: solder micro-bumps
    s.level = InterconnectLevel::kInterposerToDieBump;
    s.type = "u-bump";
    s.material = "solder";
    s.platform_area = 500.0_mm2;
    s.diameter = 30.0_um;
    s.cross_section = Area{707e-12};
    s.height = 25.0_um;
    s.pitch = 60.0_um;
    s.resistivity = kSolderResistivity;
    s.max_current_per_via = Current{0.050};
    s.max_power_fraction = 1.0;
    specs.push_back(s);
  }
  {
    VerticalInterconnectSpec s;  // Interposer/Die: advanced Cu-Cu pads
    s.level = InterconnectLevel::kInterposerToDiePad;
    s.type = "Cu pad";
    s.material = "Cu";
    s.platform_area = 500.0_mm2;
    s.diameter = Length{0.0};  // pads, no drawn diameter in Table I
    s.cross_section = Area{100e-12};
    s.height = 10.0_um;
    s.pitch = 20.0_um;
    s.resistivity = kCopperResistivity;
    s.max_current_per_via = Current{0.010};
    s.max_power_fraction = 1.0;
    specs.push_back(s);
  }
  return specs;
}

VerticalInterconnectSpec interconnect_spec(InterconnectLevel level) {
  for (const VerticalInterconnectSpec& s : table_one())
    if (s.level == level) return s;
  throw InvalidArgument("unknown interconnect level");
}

}  // namespace vpd
