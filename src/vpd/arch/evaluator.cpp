#include "vpd/arch/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/arch/placement.hpp"
#include "vpd/arch/vr_allocation.hpp"
#include "vpd/common/error.hpp"
#include "vpd/converters/dpmih.hpp"
#include "vpd/converters/transformer_stage.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/layers.hpp"
#include "vpd/package/mesh.hpp"

namespace vpd {

namespace {

/// Per-site fault lookups against placement-order site indices. Linear
/// scans: injections list at most a handful of faulted sites.
const double* attach_scale_for(const FaultInjection& faults,
                               std::size_t site) {
  for (const auto& [s, scale] : faults.attach_scale) {
    if (s == site) return &scale;
  }
  return nullptr;
}

const VrDerate* derate_for(const FaultInjection& faults, std::size_t site) {
  for (const auto& [s, derate] : faults.derates) {
    if (s == site) return &derate;
  }
  return nullptr;
}

/// Sum of per-VR conversion losses; flags rating violations.
/// `loss_scales` (empty, or one multiplier per entry of `currents`)
/// applies per-VR derating of the conversion loss; an empty vector takes
/// the nominal arithmetic path exactly.
Power vr_conversion_loss(const Converter& converter,
                         const std::vector<double>& currents,
                         const std::vector<double>& loss_scales,
                         const EvaluationOptions& options,
                         ArchitectureEvaluation& eval) {
  VPD_REQUIRE(loss_scales.empty() || loss_scales.size() == currents.size(),
              "loss_scales must be empty or match the current vector");
  double total = 0.0;
  for (std::size_t k = 0; k < currents.size(); ++k) {
    const Current load{std::max(currents[k], 1e-6)};
    double loss = 0.0;
    if (converter.supports(load)) {
      loss = converter.loss(load).value;
    } else {
      eval.within_rating = false;
      if (!options.allow_extrapolation) {
        throw InfeasibleDesign(detail::concat(
            converter.name(), " cannot deliver ", load.value,
            " A per VR and extrapolation is disabled"));
      }
      eval.used_extrapolation = true;
      loss = converter.loss_extrapolated(load).value;
    }
    if (!loss_scales.empty()) loss *= loss_scales[k];
    total += loss;
  }
  return Power{total};
}

struct DistributionResult {
  Power grid_loss{};
  Power attach_loss{};
  std::vector<double> vr_currents;    // per surviving site
  std::vector<std::size_t> site_map;  // surviving -> nominal placement index
  Voltage min_voltage{};
  std::size_t cg_iterations{0};

  /// Conversion-loss multipliers for the surviving sites, aligned with
  /// vr_currents; empty when no derate applies (nominal path).
  std::vector<double> loss_scales(const FaultInjection& faults) const {
    if (faults.derates.empty()) return {};
    std::vector<double> scales(vr_currents.size(), 1.0);
    for (std::size_t k = 0; k < site_map.size(); ++k) {
      if (const VrDerate* derate = derate_for(faults, site_map[k])) {
        scales[k] = derate->loss_scale;
      }
    }
    return scales;
  }
};

/// Mesh solve of one distribution rail: VR outputs at `sites`, uniform
/// sinks totalling `total_current`. Fault injection drops sites, scales
/// attach resistances and perturbs the mesh operator; the survivors pick
/// up the redistributed load through the solve itself.
DistributionResult solve_distribution(const PowerDeliverySpec& spec,
                                      const std::vector<VrSite>& sites,
                                      Voltage rail, Current total_current,
                                      Resistance attach_series,
                                      const EvaluationOptions& options) {
  const FaultInjection& faults = options.faults;
  // Surviving sites of the nominal deployment (dropped_sites is sorted).
  std::vector<VrSite> active;
  std::vector<std::size_t> site_map;
  active.reserve(sites.size());
  site_map.reserve(sites.size());
  {
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (cursor < faults.dropped_sites.size() &&
          faults.dropped_sites[cursor] == s) {
        ++cursor;
        continue;
      }
      active.push_back(sites[s]);
      site_map.push_back(s);
    }
  }
  if (active.empty()) {
    throw InfeasibleDesign(
        "every distribution-stage VR is dropped: no source left to solve "
        "the rail");
  }
  // The mesh operator depends only on (die side, resolution, sheet,
  // conductance perturbation): reuse a shared assembly across sweep points
  // when the caller provides a cache. Cached and per-call assemblies are
  // numerically identical, and a perturbed operator can never alias the
  // nominal cache entry (the key carries the perturbation digest).
  std::shared_ptr<const AssembledMesh> assembled;
  if (options.solve_hook != nullptr) {
    // Replay path: reuse the probe-time assembly so a replayed evaluation
    // touches the mesh cache exactly once per point.
    assembled = options.solve_hook->assembled_mesh();
  }
  if (assembled == nullptr) {
    const obs::StageTimer mesh_timer(obs::Stage::kMesh);
    assembled =
        options.mesh_cache
            ? options.mesh_cache->get(spec.die_side(), spec.die_side(),
                                      options.mesh_nodes, options.mesh_nodes,
                                      options.distribution_sheet_ohms,
                                      faults.mesh_perturbation, options.trace)
            : assemble_mesh(spec.die_side(), spec.die_side(),
                            options.mesh_nodes, options.mesh_nodes,
                            options.distribution_sheet_ohms,
                            faults.mesh_perturbation);
  }
  const GridMesh& mesh = assembled->mesh;
  // Patch footprints: capped per site by the placement geometry so
  // neighbouring patches can never overlap and share attachment nodes.
  // Computed over the survivors: a dropped neighbour frees no extra
  // footprint at fault time (the cap only ever shrinks patches, and the
  // survivors' positions are unchanged), but it must not re-introduce the
  // dropped site's nodes either.
  const std::vector<Length> patch_sides =
      disjoint_patch_sides(active, options.vr_patch);
  std::vector<VrAttachment> legs;
  std::vector<std::size_t> legs_per_site;
  legs_per_site.reserve(active.size());
  for (std::size_t s = 0; s < active.size(); ++s) {
    const VrSite& site = active[s];
    const double ring_extra = site.ring * options.ring_series_squares *
                              options.distribution_sheet_ohms;
    double attach_value = attach_series.value;
    if (const double* scale = attach_scale_for(faults, site_map[s])) {
      attach_value *= *scale;
    }
    const auto patch = patch_attachment(
        mesh, site.x, site.y, patch_sides[s], rail,
        Resistance{attach_value + ring_extra});
    legs_per_site.push_back(patch.size());
    legs.insert(legs.end(), patch.begin(), patch.end());
  }
  Vector sinks = options.sink_map ? options.sink_map(mesh, total_current)
                                  : uniform_sinks(mesh, total_current);
  VPD_REQUIRE(sinks.size() == mesh.node_count(),
              "sink map returned wrong node count");
  double sink_total = 0.0;
  for (double s : sinks) sink_total += s;
  VPD_REQUIRE(std::fabs(sink_total - total_current.value) <=
                  1e-3 * total_current.value,
              "sink map totals ", sink_total, " A, expected ",
              total_current.value);
  IrDropOptions solve_options;
  solve_options.relative_tolerance = options.irdrop_relative_tolerance;
  solve_options.preconditioner = resolved_irdrop_preconditioner(options);
  solve_options.trace = options.trace;
  if (options.cg_warm_start) solve_options.warm_start_voltage = rail.value;
  IrDropResult ir;
  if (options.solve_hook == nullptr ||
      !options.solve_hook->solve(assembled, legs, sinks, solve_options,
                                 ir)) {
    ir = solve_irdrop(*assembled, legs, sinks, solve_options);
  }

  DistributionResult result;
  result.grid_loss = ir.grid_loss;
  result.attach_loss = ir.series_loss;
  result.min_voltage = ir.min_node_voltage;
  result.cg_iterations = ir.cg_iterations;
  result.site_map = std::move(site_map);
  result.vr_currents.reserve(active.size());
  std::size_t cursor = 0;
  for (std::size_t count : legs_per_site) {
    double sum = 0.0;
    for (std::size_t k = 0; k < count; ++k) sum += ir.vr_currents[cursor++];
    result.vr_currents.push_back(sum);
  }
  return result;
}

/// Adds the 48 V feed stages (PCB lateral, BGAs, package lateral, C4s;
/// optionally TSVs), sized self-consistently: the feed must carry the
/// power already accounted in `eval` *plus its own conduction loss*, so
/// the input power is iterated to a fixed point (the upstream loss is
/// ~1% of throughput, so the iteration contracts geometrically and 2-3
/// passes converge to machine precision). Sizing the feed from the
/// downstream power alone — the pre-fix behaviour — systematically
/// underestimated i48 and the upstream loss.
void add_upstream(ArchitectureEvaluation& eval,
                  const PowerDeliverySpec& spec, bool tsv_at_input) {
  const double p_downstream =
      spec.total_power.value + eval.total_loss().value;
  const auto build_path = [&](Current i48) {
    PowerPath path;
    path.add_lateral(pcb_lateral_segment(), i48);
    path.add_vertical(interconnect_spec(InterconnectLevel::kPcbToPackage),
                      i48);
    path.add_lateral(package_lateral_segment(), i48);
    path.add_vertical(
        interconnect_spec(InterconnectLevel::kPackageToInterposer), i48);
    if (tsv_at_input) {
      path.add_vertical(
          interconnect_spec(InterconnectLevel::kThroughInterposer), i48);
    }
    return path;
  };

  double upstream_loss = 0.0;
  for (int iteration = 0; iteration < 8; ++iteration) {
    const Current i48 =
        spec.input_current(Power{p_downstream + upstream_loss});
    const double next = build_path(i48).total_loss().value;
    const bool converged =
        std::fabs(next - upstream_loss) <= 1e-12 * p_downstream;
    upstream_loss = next;
    if (converged) break;
  }

  const PowerPath path = build_path(
      spec.input_current(Power{p_downstream + upstream_loss}));
  eval.horizontal_loss += path.lateral_loss();
  eval.vertical_loss += path.vertical_loss();
  for (const PathStage& s : path.stages()) eval.stages.push_back(s);
  eval.input_power =
      Power{spec.total_power.value + eval.total_loss().value};
}

/// Lumped vertical field crossing at `current` (e.g. the u-bump field
/// between interposer and die).
void add_vertical_field(ArchitectureEvaluation& eval, InterconnectLevel level,
                        Current current) {
  PowerPath path;
  path.add_vertical(interconnect_spec(level), current);
  eval.vertical_loss += path.vertical_loss();
  for (const PathStage& s : path.stages()) eval.stages.push_back(s);
}

/// Per-VR share of a vertical field carrying `total` through the die area.
Resistance per_vr_field_resistance(InterconnectLevel level, Current total,
                                   unsigned vr_count) {
  const auto spec = interconnect_spec(level);
  const std::size_t vias = std::max<std::size_t>(
      spec.vias_for_current(total) / std::max(1u, vr_count), 1);
  return spec.net_pair_resistance(vias);
}

unsigned area_capped_count(unsigned wanted, Area die_area, Area vr_area,
                           double fraction,
                           ArchitectureEvaluation& eval,
                           const std::string& label) {
  const auto cap = static_cast<unsigned>(
      std::floor(fraction * die_area.value / vr_area.value));
  if (cap == 0) {
    throw InfeasibleDesign(detail::concat(
        label, ": a single VR (", vr_area.value * 1e6,
        " mm^2) exceeds the available below-die area"));
  }
  if (wanted > cap) {
    eval.notes.push_back(detail::concat(
        label, ": area caps the below-die VR count at ", cap,
        " (current allocation wanted ", wanted, ")"));
    return cap;
  }
  return wanted;
}

ArchitectureEvaluation evaluate_a0(const PowerDeliverySpec& spec,
                                   const EvaluationOptions& options) {
  VPD_REQUIRE(options.faults.empty(),
              "fault injection is not supported for A0: a single PCB "
              "regulator has no distributed VRs to drop or derate");
  ArchitectureEvaluation eval;
  eval.architecture = ArchitectureKind::kA0_PcbConversion;
  const Current i_die = spec.die_current();

  const auto converter =
      pcb_reference_converter(Current{1.5 * i_die.value});
  eval.converter_label = converter->name();
  eval.conversion_stage1 = converter->loss(i_die);
  eval.vr_count_stage1 = 1;

  // Full die current crosses every lateral segment and vertical field.
  PowerPath path;
  path.add_lateral(pcb_lateral_segment(), i_die);
  path.add_vertical(interconnect_spec(InterconnectLevel::kPcbToPackage),
                    i_die);
  path.add_lateral(package_lateral_segment(), i_die);
  path.add_vertical(
      interconnect_spec(InterconnectLevel::kPackageToInterposer), i_die);
  path.add_lateral(interposer_lateral_segment(), i_die);
  path.add_vertical(
      interconnect_spec(InterconnectLevel::kThroughInterposer), i_die);
  path.add_vertical(
      interconnect_spec(InterconnectLevel::kInterposerToDieBump), i_die);
  eval.horizontal_loss += path.lateral_loss();
  eval.vertical_loss += path.vertical_loss();
  eval.stages = path.stages();

  // Feasibility commentary (the paper's Section IV die-size argument).
  const auto c4 = interconnect_spec(InterconnectLevel::kPackageToInterposer);
  const Area min_die{
      static_cast<double>(c4.vias_for_current(i_die)) * c4.pitch.value *
      c4.pitch.value / c4.max_power_fraction};
  if (min_die.value > spec.die_area.value) {
    eval.notes.push_back(detail::concat(
        "A0 needs a ", min_die.value * 1e6,
        " mm^2 die to satisfy the C4 allocation cap (spec die is ",
        spec.die_area.value * 1e6, " mm^2)"));
  }
  eval.input_power =
      Power{spec.total_power.value + eval.total_loss().value};
  return eval;
}

ArchitectureEvaluation evaluate_single_stage(ArchitectureKind kind,
                                             const PowerDeliverySpec& spec,
                                             TopologyKind topology,
                                             DeviceTechnology tech,
                                             const EvaluationOptions& options) {
  ArchitectureEvaluation eval;
  eval.architecture = kind;
  const Current i_die = spec.die_current();
  const bool periphery = (kind == ArchitectureKind::kA1_InterposerPeriphery);

  const auto converter = make_topology(topology, tech);
  eval.converter_label = converter->name();

  VrAllocation alloc =
      options.fixed_final_stage_vrs > 0
          ? allocate_vrs_fixed(i_die, *converter,
                               options.fixed_final_stage_vrs)
          : allocate_vrs(i_die, *converter, options.derating);
  for (const auto& note : alloc.notes) eval.notes.push_back(note);

  unsigned count = alloc.count;
  PlacementResult placement;
  if (periphery) {
    const unsigned max_rings = std::max(1u, options.max_periphery_rings);
    const unsigned capacity =
        max_rings *
        periphery_ring_capacity(spec.die_side(), converter->spec().area);
    if (count > capacity) {
      eval.notes.push_back(detail::concat(
          converter->name(), ": periphery capacity caps the VR count at ",
          capacity, " (current allocation wanted ", count, ")"));
      count = capacity;
    }
    placement = periphery_placement(spec.die_side(),
                                    converter->spec().area, count,
                                    max_rings);
    eval.periphery_rings = placement.rings_used;
  } else {
    count = area_capped_count(count, spec.die_area, converter->spec().area,
                              options.below_die_area_fraction, eval,
                              converter->name());
    placement = below_die_placement(spec.die_side(), converter->spec().area,
                                    count, options.below_die_area_fraction);
  }
  eval.vr_count_stage2 = count;

  // Attachment series resistance: A1 VRs drive the mesh through their
  // local interposer via stack; A2 VRs reach the die through their share
  // of the TSV and Cu-pad fields.
  Resistance attach = options.vr_attach_series;
  if (!periphery) {
    attach = Resistance{
        per_vr_field_resistance(InterconnectLevel::kThroughInterposer,
                                i_die, count)
            .value +
        per_vr_field_resistance(InterconnectLevel::kInterposerToDiePad,
                                i_die, count)
            .value +
        options.vr_attach_series.value};
  }

  options.faults.validate(placement.sites.size(), 0);

  const DistributionResult dist = solve_distribution(
      spec, placement.sites, spec.die_voltage, i_die, attach, options);
  eval.horizontal_loss += dist.grid_loss;
  eval.vertical_loss += dist.attach_loss;
  eval.vr_current_spread = summarize(dist.vr_currents);
  eval.min_pol_voltage = dist.min_voltage;
  eval.distribution_rail = spec.die_voltage;
  eval.min_distribution_voltage = dist.min_voltage;
  eval.cg_iterations += dist.cg_iterations;
  if (!options.faults.empty()) {
    eval.fault_site_currents.assign(placement.sites.size(), 0.0);
    for (std::size_t k = 0; k < dist.site_map.size(); ++k) {
      eval.fault_site_currents[dist.site_map[k]] = dist.vr_currents[k];
    }
  }

  eval.conversion_stage2 =
      vr_conversion_loss(*converter, dist.vr_currents,
                         dist.loss_scales(options.faults), options, eval);

  // Die interface field: A1's 1 V current climbs the u-bump field after
  // its lateral journey; A2's climb is already inside the attach series.
  if (periphery) {
    add_vertical_field(eval, InterconnectLevel::kInterposerToDieBump,
                       i_die);
  }

  // 48 V feed sized self-consistently from the actual input power.
  add_upstream(eval, spec, /*tsv_at_input=*/periphery);
  return eval;
}

ArchitectureEvaluation evaluate_two_stage(ArchitectureKind kind,
                                          const PowerDeliverySpec& spec,
                                          TopologyKind topology,
                                          DeviceTechnology tech,
                                          const EvaluationOptions& options) {
  ArchitectureEvaluation eval;
  eval.architecture = kind;
  const Voltage v_mid = intermediate_voltage(kind);
  const Current i_die = spec.die_current();

  // --- Stage 2: V_mid -> 1 V on the power die under the functional die.
  const auto stage2_base = make_topology(topology, tech);
  const auto stage2 =
      stage2_base->with_conversion(v_mid, spec.die_voltage);
  eval.converter_label =
      std::string("DPMIH+") + to_string(topology);

  VrAllocation alloc2 =
      options.fixed_final_stage_vrs > 0
          ? allocate_vrs_fixed(i_die, *stage2,
                               options.fixed_final_stage_vrs)
          : allocate_vrs(i_die, *stage2, options.derating);
  for (const auto& note : alloc2.notes) eval.notes.push_back(note);
  unsigned count2 = area_capped_count(
      alloc2.count, spec.die_area, stage2->spec().area,
      options.below_die_area_fraction, eval, stage2->name());
  eval.vr_count_stage2 = count2;
  options.faults.validate_stage2(count2);

  // Stage-2 VRs sit directly below their loads: uniform current split,
  // re-split among the survivors when final-stage VRs drop out.
  const std::size_t live2 = count2 - options.faults.dropped_stage2.size();
  std::vector<double> stage2_currents(live2, i_die.value / live2);
  eval.conversion_stage2 =
      vr_conversion_loss(*stage2, stage2_currents, {}, options, eval);

  // 1 V crossing from power die to functional die: the Cu-pad field.
  add_vertical_field(eval, InterconnectLevel::kInterposerToDiePad, i_die);

  // --- Intermediate rail: V_mid from periphery stage-1 VRs to the
  // below-die stage-2 inputs. The stage-1 deployment is sized at design
  // time from the fault-free stage-2 loss (faults cannot add VRs), while
  // the rail itself carries the actual, possibly fault-elevated current.
  double stage2_design_loss = eval.conversion_stage2.value;
  if (!options.faults.dropped_stage2.empty()) {
    ArchitectureEvaluation sizing_scratch;
    std::vector<double> nominal2(count2, i_die.value / count2);
    stage2_design_loss =
        vr_conversion_loss(*stage2, nominal2, {}, options, sizing_scratch)
            .value;
  }
  const double p_mid_design =
      spec.total_power.value + stage2_design_loss;
  const Current i_mid_design{p_mid_design / v_mid.value};
  const double p_mid =
      spec.total_power.value + eval.conversion_stage2.value;
  const Current i_mid{p_mid / v_mid.value};

  const auto stage1 =
      dpmih_converter(tech)->with_conversion(Voltage{48.0}, v_mid);
  VrAllocation alloc1 =
      allocate_vrs(i_mid_design, *stage1, options.derating);
  for (const auto& note : alloc1.notes) eval.notes.push_back(note);
  eval.vr_count_stage1 = alloc1.count;

  const PlacementResult placement1 = periphery_placement(
      spec.die_side(), stage1->spec().area, alloc1.count);
  eval.periphery_rings = placement1.rings_used;
  options.faults.validate_sites(placement1.sites.size());

  const DistributionResult dist =
      solve_distribution(spec, placement1.sites, v_mid, i_mid,
                         options.vr_attach_series, options);
  eval.horizontal_loss += dist.grid_loss;
  eval.vertical_loss += dist.attach_loss;
  eval.vr_current_spread = summarize(dist.vr_currents);
  eval.distribution_rail = v_mid;
  eval.min_distribution_voltage = dist.min_voltage;
  eval.cg_iterations += dist.cg_iterations;
  if (!options.faults.empty()) {
    eval.fault_site_currents.assign(placement1.sites.size(), 0.0);
    for (std::size_t k = 0; k < dist.site_map.size(); ++k) {
      eval.fault_site_currents[dist.site_map[k]] = dist.vr_currents[k];
    }
  }

  eval.conversion_stage1 =
      vr_conversion_loss(*stage1, dist.vr_currents,
                         dist.loss_scales(options.faults), options, eval);

  // V_mid climbs into the power die through the u-bump field.
  add_vertical_field(eval, InterconnectLevel::kInterposerToDieBump, i_mid);

  add_upstream(eval, spec, /*tsv_at_input=*/true);
  return eval;
}

}  // namespace

CgPreconditioner resolved_irdrop_preconditioner(
    const EvaluationOptions& options) {
  if (options.irdrop_preconditioner.has_value()) {
    return *options.irdrop_preconditioner;
  }
  return options.mesh_nodes >= kAutoMultigridMeshNodes
             ? CgPreconditioner::kMultigrid
             : CgPreconditioner::kIncompleteCholesky;
}

ArchitectureEvaluation evaluate_architecture(ArchitectureKind architecture,
                                             const PowerDeliverySpec& spec,
                                             TopologyKind topology,
                                             DeviceTechnology tech,
                                             const EvaluationOptions& options) {
  spec.validate();
  VPD_REQUIRE(options.mesh_nodes >= 5, "mesh_nodes must be >= 5, got ",
              options.mesh_nodes);
  VPD_REQUIRE(options.distribution_sheet_ohms > 0.0,
              "distribution sheet resistance must be positive");
  VPD_REQUIRE(options.irdrop_relative_tolerance > 0.0,
              "IR-drop relative tolerance must be positive");

  obs::Span span("vpd.evaluate", options.trace);
  // Child spans (mesh assembly, IR-drop, CG) parent onto this one. The
  // copy only happens when tracing is live, so the disabled path stays a
  // single relaxed load with zero extra work.
  const EvaluationOptions* opts = &options;
  EvaluationOptions traced;
  if (span.active()) {
    span.set_arg("architecture", double(static_cast<int>(architecture)));
    span.set_arg("mesh_nodes", double(options.mesh_nodes));
    traced = options;
    traced.trace = span.context();
    opts = &traced;
  }

  switch (architecture) {
    case ArchitectureKind::kA0_PcbConversion:
      return evaluate_a0(spec, *opts);
    case ArchitectureKind::kA1_InterposerPeriphery:
    case ArchitectureKind::kA2_InterposerBelowDie:
      return evaluate_single_stage(architecture, spec, topology, tech,
                                   *opts);
    case ArchitectureKind::kA3_TwoStage12V:
    case ArchitectureKind::kA3_TwoStage6V:
      return evaluate_two_stage(architecture, spec, topology, tech,
                                *opts);
  }
  throw InvalidArgument("unknown architecture kind");
}

}  // namespace vpd
