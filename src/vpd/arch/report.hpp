// Evaluation result of one (architecture, converter) pair: the loss
// breakdown Fig. 7 plots, plus the placement/allocation details and the
// per-VR current spread discussed in Section IV.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "vpd/arch/architecture.hpp"
#include "vpd/common/statistics.hpp"
#include "vpd/common/units.hpp"
#include "vpd/package/stackup.hpp"

namespace vpd {

struct ArchitectureEvaluation {
  ArchitectureKind architecture{};
  std::string converter_label;

  // --- Loss breakdown (Fig. 7 bars) ---------------------------------------
  Power vertical_loss{};      // all solder/Cu vertical interconnect
  Power horizontal_loss{};    // all laterally routed interconnect
  Power conversion_stage1{};  // first stage (two-stage archs; A0's PCB VR)
  Power conversion_stage2{};  // final regulation stage

  Power conversion_loss() const {
    return conversion_stage1 + conversion_stage2;
  }
  Power ppdn_loss() const { return vertical_loss + horizontal_loss; }
  Power total_loss() const { return ppdn_loss() + conversion_loss(); }

  /// Loss as a fraction of the nominal delivered power (the paper
  /// normalizes to the 1 kW available at the PCB).
  double loss_fraction(Power budget) const;
  /// End-to-end efficiency: P_load / (P_load + losses).
  double efficiency(Power delivered) const;

  // --- Deployment details ---------------------------------------------------
  unsigned vr_count_stage1{0};
  unsigned vr_count_stage2{0};
  unsigned periphery_rings{0};
  /// Per-VR current statistics of the final regulation stage (mesh solve).
  std::optional<Summary> vr_current_spread;
  /// Worst node voltage on the POL rail.
  std::optional<Voltage> min_pol_voltage;
  /// Regulated voltage and worst node voltage of the distribution mesh
  /// solve — the POL rail for A1/A2, the intermediate rail for the
  /// two-stage architectures. Absent for A0 (no mesh solve). The pair
  /// gives resilience analysis a rail-relative droop for every
  /// architecture.
  std::optional<Voltage> distribution_rail;
  std::optional<Voltage> min_distribution_voltage;
  /// Per-site currents of the distribution-stage VRs under fault
  /// injection, indexed by nominal placement order with dropped sites at
  /// 0 A. Populated only when the evaluation ran with a non-empty
  /// FaultInjection (nominal evaluations report the spread only).
  std::vector<double> fault_site_currents;

  /// Power drawn from the PCB feed: delivered power plus every modeled
  /// loss. The 48 V feed is sized to a self-consistent fixed point — the
  /// feed current covers the feed's own conduction loss — so
  /// input_power == total_power + total_loss() holds by construction.
  Power input_power{};
  /// CG iterations spent in the distribution mesh solve (0 when the
  /// architecture has no mesh solve, i.e. A0). Deterministic for a given
  /// spec and options, cached or not.
  std::size_t cg_iterations{0};

  bool within_rating{true};
  bool used_extrapolation{false};
  std::vector<std::string> notes;

  /// Every modeled PPDN stage with its current and loss.
  std::vector<PathStage> stages;
};

}  // namespace vpd
