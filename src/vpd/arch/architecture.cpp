#include "vpd/arch/architecture.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

const char* to_string(ArchitectureKind kind) {
  switch (kind) {
    case ArchitectureKind::kA0_PcbConversion: return "A0";
    case ArchitectureKind::kA1_InterposerPeriphery: return "A1";
    case ArchitectureKind::kA2_InterposerBelowDie: return "A2";
    case ArchitectureKind::kA3_TwoStage12V: return "A3@12V";
    case ArchitectureKind::kA3_TwoStage6V: return "A3@6V";
  }
  return "unknown";
}

std::vector<ArchitectureKind> all_architectures() {
  return {ArchitectureKind::kA0_PcbConversion,
          ArchitectureKind::kA1_InterposerPeriphery,
          ArchitectureKind::kA2_InterposerBelowDie,
          ArchitectureKind::kA3_TwoStage12V,
          ArchitectureKind::kA3_TwoStage6V};
}

bool is_two_stage(ArchitectureKind kind) {
  return kind == ArchitectureKind::kA3_TwoStage12V ||
         kind == ArchitectureKind::kA3_TwoStage6V;
}

Voltage intermediate_voltage(ArchitectureKind kind) {
  switch (kind) {
    case ArchitectureKind::kA3_TwoStage12V: return Voltage{12.0};
    case ArchitectureKind::kA3_TwoStage6V: return Voltage{6.0};
    default:
      throw InvalidArgument("architecture has no intermediate rail");
  }
}

bool periphery_final_stage(ArchitectureKind kind) {
  return kind == ArchitectureKind::kA1_InterposerPeriphery;
}

}  // namespace vpd
