// End-to-end evaluation of a power-delivery architecture: assembles the
// PCB-to-POL path (vertical interconnect fields, lateral segments, mesh
// IR-drop distribution), allocates and places VRs, computes per-VR load
// currents, and rolls everything into the loss breakdown of Fig. 7.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "vpd/arch/architecture.hpp"
#include "vpd/arch/fault_injection.hpp"
#include "vpd/arch/report.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/package/irdrop.hpp"
#include "vpd/package/mesh.hpp"
#include "vpd/package/mesh_cache.hpp"

namespace vpd {

/// Interception point for the distribution IR-drop solve, consulted once
/// per solve with the fully assembled request (operator, VR legs, sink
/// vector, resolved solve options). The batch evaluation engine
/// (core/batch.hpp) uses it twice: a probe hook records the request and
/// aborts the evaluation, and a replay hook injects a result that was
/// solved as part of a multi-RHS panel. Process-local plumbing like
/// mesh_cache and trace: never on the wire, ignored by the io schema.
class DistributionSolveHook {
 public:
  virtual ~DistributionSolveHook() = default;

  /// Pre-assembled operator to use for this evaluation, or nullptr to
  /// assemble (or fetch from the mesh cache) as usual. Replay injects the
  /// probe-time assembly so a replayed evaluation does not touch the mesh
  /// cache a second time.
  virtual std::shared_ptr<const AssembledMesh> assembled_mesh() {
    return nullptr;
  }

  /// Substitute the solve: return true with `result` filled to skip the
  /// scalar solve, false to run it as usual. May throw to abort the
  /// evaluation (the probe hook throws after recording the request).
  virtual bool solve(const std::shared_ptr<const AssembledMesh>& assembled,
                     const std::vector<VrAttachment>& legs,
                     const Vector& sinks, const IrDropOptions& options,
                     IrDropResult& result) = 0;
};

/// Builds the per-node sink currents for a distribution solve; the total
/// must equal `total` (checked to 0.1%). Defaults to a uniform draw.
using SinkMapBuilder =
    std::function<Vector(const GridMesh& mesh, Current total)>;

struct EvaluationOptions {
  /// Mesh nodes per die edge for the distribution solve.
  std::size_t mesh_nodes{41};
  /// Effective sheet resistance of the POL-rail distribution metal
  /// (interposer power planes in parallel with the die grid) [Ohm/sq].
  /// Calibrated so A1's horizontal loss lands in the paper's <10% band.
  double distribution_sheet_ohms{2.0e-3};
  /// Vertical interconnect and local feed under each VR output (its share
  /// of the TSV/u-bump/pad field plus output routing).
  Resistance vr_attach_series{Resistance{100e-6}};
  /// Physical footprint of each VR's output attachment patch (capped per
  /// site so neighbouring patches never share a mesh node; see
  /// disjoint_patch_sides). 1.5 mm is the footprint the paper-mode
  /// calibration was pinned against: the paper's headline 48-VR
  /// deployments sit on a ~1.9 mm periphery pitch / 3.2 mm below-die
  /// pitch, and the per-VR current spreads of Section IV reproduce at
  /// this patch size.
  Length vr_patch{Length{1.5e-3}};
  /// Extra series resistance per periphery ring beyond the first (longer
  /// feed to the die edge), in units of the distribution sheet
  /// resistance. Zero by default: staggered rows feed their own edge
  /// sections through essentially the same metal; a positive value models
  /// congested feed routing (see the placement ablation bench).
  double ring_series_squares{0.0};
  /// Per-VR current derating against the published max rating.
  double derating{0.70};
  /// Fraction of the die footprint below-die VRs may occupy.
  double below_die_area_fraction{0.75};
  /// Compute extrapolated losses when the per-VR load exceeds the rating
  /// (flagged in the result); if false, such cases throw InfeasibleDesign.
  bool allow_extrapolation{true};
  /// Override the automatic VR count of the final regulation stage (e.g.
  /// the paper's published 48); 0 = automatic.
  unsigned fixed_final_stage_vrs{0};
  /// Maximum periphery VR rows ("additional rows of VRs are utilized
  /// farther away from the perimeter of the die" — the paper uses a
  /// small number).
  unsigned max_periphery_rings{2};
  /// Spatial load profile on the POL rail; empty = uniform.
  SinkMapBuilder sink_map;
  /// Relative CG tolerance for the distribution IR-drop solve (true
  /// residual; see solve_cg).
  double irdrop_relative_tolerance{1e-12};
  /// Warm-start the mesh solve at the rail voltage. Deterministic per
  /// point (no cross-point state), so sweep results are independent of
  /// execution order; disable to reproduce the cold-start iteration
  /// counts.
  bool cg_warm_start{true};
  /// Preconditioner for the distribution IR-drop solve. Unset (the
  /// default) selects automatically by mesh size: IC(0) below
  /// kAutoMultigridMeshNodes nodes per edge — it cuts CG iteration counts
  /// several-fold over Jacobi on mesh operators — and kMultigrid at or
  /// above, where its mesh-size-independent iteration count wins and the
  /// V-cycle amortizes best across batched panels. Set explicitly to
  /// override the automatic choice; every choice converges to the same
  /// certified criterion. See resolved_irdrop_preconditioner().
  std::optional<CgPreconditioner> irdrop_preconditioner;
  /// Shared cache of assembled mesh operators; nullptr = assemble per
  /// call. The cache is thread-safe and must outlive the evaluation; a
  /// SweepRunner wires its own cache in here for every point.
  MeshSolveCache* mesh_cache{nullptr};
  /// Fault state to evaluate the deployment under (see
  /// arch/fault_injection.hpp). Allocation and placement stay nominal;
  /// the injection drops/degrades placed VRs and perturbs the mesh, and
  /// the distribution solve redistributes load across the survivors. An
  /// empty injection (the default) is the nominal evaluation bit for bit.
  /// Not supported for A0, which has no distributed VRs.
  FaultInjection faults;
  /// Parent span for this evaluation's "vpd.evaluate" trace span.
  /// Process-local observability plumbing (like mesh_cache): never on the
  /// wire, never read by the numerics.
  obs::TraceContext trace{};
  /// Distribution-solve interception for batched evaluation (see
  /// core/batch.hpp). Process-local plumbing like mesh_cache and trace:
  /// never on the wire, ignored by the io schema. nullptr = scalar solve.
  DistributionSolveHook* solve_hook{nullptr};
};

/// Mesh size (nodes per die edge) at which the automatic preconditioner
/// choice switches from IC(0) to multigrid: a 256^2 operator is where the
/// multigrid V-cycle's mesh-size-independent iteration count clearly beats
/// IC(0)'s growing one (13->15 vs 42->164 across 64^2 -> 512^2).
inline constexpr std::size_t kAutoMultigridMeshNodes = 256;

/// The preconditioner the distribution solve actually runs with: the
/// explicit override when set, otherwise IC(0) below
/// kAutoMultigridMeshNodes nodes per edge and kMultigrid at or above.
CgPreconditioner resolved_irdrop_preconditioner(
    const EvaluationOptions& options);

/// Evaluates one (architecture, topology, device technology) combination.
/// For A0 the topology argument is ignored (the paper models A0 with a 90%
/// PCB regulator). For the two-stage architectures the first stage is a
/// DPMIH (the paper's choice) retargeted to 48V -> V_mid, and `topology`
/// provides the second stage retargeted to V_mid -> 1V.
ArchitectureEvaluation evaluate_architecture(
    ArchitectureKind architecture, const PowerDeliverySpec& spec,
    TopologyKind topology,
    DeviceTechnology tech = DeviceTechnology::kGalliumNitride,
    const EvaluationOptions& options = {});

}  // namespace vpd
