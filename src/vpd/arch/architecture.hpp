// The paper's five power-delivery architectures (Fig. 4):
//
//  A0        — reference: 48V-to-1V conversion on the PCB; the full die
//              current crosses every packaging level laterally+vertically.
//  A1        — single-stage 48V-to-1V VRs on the interposer, distributed
//              along the die periphery; passives embedded in-interposer
//              under the transistors.
//  A2        — single-stage 48V-to-1V VRs embedded in-interposer directly
//              below the die, with their passives (~50% of die area).
//  A3@12V    — two-stage: 48V-to-12V on-interposer periphery VRs, then
//              12V-to-1V VRs on a dedicated power die under the functional
//              die.
//  A3@6V     — the same with a 6 V intermediate rail.
#pragma once

#include <string>
#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

enum class ArchitectureKind {
  kA0_PcbConversion,
  kA1_InterposerPeriphery,
  kA2_InterposerBelowDie,
  kA3_TwoStage12V,
  kA3_TwoStage6V,
};

const char* to_string(ArchitectureKind kind);
std::vector<ArchitectureKind> all_architectures();

/// True for the two-stage variants.
bool is_two_stage(ArchitectureKind kind);
/// Intermediate rail voltage for the two-stage variants; throws otherwise.
Voltage intermediate_voltage(ArchitectureKind kind);
/// True if the final-stage VRs sit along the die periphery (A1 and the
/// first stage of A3); false if they sit below the die (A2, A3 stage 2).
bool periphery_final_stage(ArchitectureKind kind);

}  // namespace vpd
