#include "vpd/arch/transient_model.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/workload/load_transient.hpp"

namespace vpd {

namespace {

/// Architecture-class loop inductance: how far the regulation point sits
/// from the POLs.
Inductance loop_inductance_for(ArchitectureKind kind) {
  switch (kind) {
    case ArchitectureKind::kA0_PcbConversion:
      return Inductance{10e-9};  // board + socket loop
    case ArchitectureKind::kA1_InterposerPeriphery:
      return Inductance{0.2e-9};  // periphery-to-center interposer hop
    case ArchitectureKind::kA2_InterposerBelowDie:
      return Inductance{0.05e-9};  // vertical hop only
    case ArchitectureKind::kA3_TwoStage12V:
    case ArchitectureKind::kA3_TwoStage6V:
      return Inductance{0.08e-9};  // power-die hop
  }
  throw InvalidArgument("unknown architecture kind");
}

}  // namespace

ReducedPdnModel build_reduced_pdn(const PowerDeliverySpec& spec,
                                  const ArchitectureEvaluation& evaluation,
                                  const ReducedModelOptions& options) {
  spec.validate();
  const double i_die = spec.die_current().value;
  VPD_REQUIRE(i_die > 0.0, "no die current");

  ReducedPdnModel model;
  // Effective supply resistance: the PPDN loss referred to the full die
  // current (R_eff = P_ppdn / I^2), which reproduces both the dc drop and
  // the dissipation of the detailed model.
  model.effective_resistance =
      Resistance{std::max(evaluation.ppdn_loss().value / (i_die * i_die),
                          1e-6)};
  model.loop_inductance = loop_inductance_for(evaluation.architecture);
  // Default decap: the local deep-trench bank under the die (~0.5 uF/mm^2)
  // for the IVR architectures; A0 regulates from the board and relies on
  // bulk capacitance there instead.
  const Capacitance local_bank{0.5 * 1e-6 / 1e-6 * spec.die_area.value};
  const Capacitance default_decap =
      evaluation.architecture == ArchitectureKind::kA0_PcbConversion
          ? Capacitance{2000e-6}
          : local_bank;
  model.decap = options.decap.value_or(default_decap);

  Netlist& nl = model.netlist;
  const NodeId vr = nl.add_node("vr");
  const NodeId mid = nl.add_node("mid");
  const NodeId pol = nl.add_node("pol");
  const NodeId esr = nl.add_node("esr");
  nl.add_vsource("Vvr", vr, kGround, spec.die_voltage);
  nl.add_resistor("Rppdn", vr, mid, model.effective_resistance);
  nl.add_inductor("Lloop", mid, pol, model.loop_inductance);
  nl.add_resistor("Resr", pol, esr, options.decap_esr);
  nl.add_capacitor("Cdecap", esr, kGround, model.decap,
                   spec.die_voltage);
  return model;
}

DroopResult simulate_load_step(const ReducedPdnModel& model,
                               const PowerDeliverySpec& spec, Current base,
                               Current step, Seconds rise,
                               Seconds t_stop) {
  VPD_REQUIRE(base.value >= 0.0 && step.value > 0.0,
              "need base >= 0 and a positive step");
  Netlist nl;
  // Copy the reduced model's elements into a fresh netlist with the load.
  for (NodeId n = 1; n < model.netlist.node_count(); ++n)
    nl.add_node(model.netlist.node_name(n));
  for (const Element& e : model.netlist.elements()) {
    switch (e.kind) {
      case ElementKind::kResistor:
        nl.add_resistor(e.name, e.node_a, e.node_b, Resistance{e.value});
        break;
      case ElementKind::kCapacitor:
        nl.add_capacitor(e.name, e.node_a, e.node_b, Capacitance{e.value},
                         Voltage{e.initial});
        break;
      case ElementKind::kInductor:
        nl.add_inductor(e.name, e.node_a, e.node_b, Inductance{e.value},
                        Current{e.initial});
        break;
      case ElementKind::kVoltageSource:
        nl.add_vsource(e.name, e.node_a, e.node_b, e.source);
        break;
      case ElementKind::kCurrentSource:
        nl.add_isource(e.name, e.node_a, e.node_b, e.source);
        break;
      case ElementKind::kSwitch:
        nl.add_switch(e.name, e.node_a, e.node_b, Resistance{e.r_on},
                      Resistance{e.r_off}, e.initially_closed);
        break;
    }
  }
  const double t_step = 0.1 * t_stop.value;
  nl.add_isource("load", nl.node(model.pol_node), kGround,
                 step_load(base, step, Seconds{t_step}, rise));

  TransientOptions opts;
  opts.t_stop = t_stop;
  opts.dt = Seconds{t_stop.value / 20000.0};
  opts.initialize_from_dc = true;
  const TransientResult r = simulate(nl, opts);
  const Trace v = r.voltage(model.pol_node);

  DroopResult result;
  result.worst_voltage = Voltage{v.min(t_step, t_stop.value)};
  // Nominal operating voltage just before the step.
  const double nominal = v.at(0.9 * t_step);
  result.droop = Voltage{nominal - result.worst_voltage.value};

  // Recovery: last time the voltage is outside a 1% band around its final
  // settled value.
  const double settled = v.back();
  const double band = 0.01 * spec.die_voltage.value;
  double recovery = t_step;
  for (std::size_t i = 0; i < v.sample_count(); ++i) {
    const double t = v.times()[i];
    if (t < t_step) continue;
    if (std::fabs(v.values()[i] - settled) > band) recovery = t;
  }
  result.recovery_time = Seconds{std::max(0.0, recovery - t_step)};
  return result;
}

}  // namespace vpd
