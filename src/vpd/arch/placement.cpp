#include "vpd/arch/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vpd/common/error.hpp"

namespace vpd {

unsigned periphery_ring_capacity(Length die_side, Area vr_area) {
  VPD_REQUIRE(die_side.value > 0.0 && vr_area.value > 0.0,
              "invalid geometry");
  const double vr_side = std::sqrt(vr_area.value);
  const auto per_edge =
      static_cast<unsigned>(std::floor(die_side.value / vr_side));
  VPD_REQUIRE(per_edge >= 1, "VR of ", vr_area.value * 1e6,
              " mm^2 wider than the die edge");
  return 4 * per_edge;
}

PlacementResult periphery_placement(Length die_side, Area vr_area,
                                    unsigned count, unsigned max_rings) {
  VPD_REQUIRE(count >= 1, "need at least one VR");
  const unsigned per_ring = periphery_ring_capacity(die_side, vr_area);
  const unsigned rings =
      (count + per_ring - 1) / per_ring;
  if (rings > max_rings) {
    throw InfeasibleDesign(detail::concat(
        "periphery placement needs ", rings, " rings for ", count,
        " VRs (capacity ", per_ring, "/ring), max allowed ", max_rings));
  }

  PlacementResult result;
  result.rings_used = rings;
  result.sites.reserve(count);
  const double side = die_side.value;

  // All VRs get distinct, evenly spaced positions along the perimeter —
  // overflow rows are staggered between the inner row's positions rather
  // than stacked behind them, so every VR feeds its own section of the
  // die edge. The ring index (round-robin) still accrues the longer-feed
  // series penalty for the share of VRs that sit farther out.
  const double perimeter = 4.0 * side;
  for (unsigned k = 0; k < count; ++k) {
    const double s = perimeter * (static_cast<double>(k) + 0.5) /
                     static_cast<double>(count);
    VrSite site;
    site.ring = (rings > 1) ? k % rings : 0;
    if (s < side) {
      site.x = Length{s};
      site.y = Length{0.0};
    } else if (s < 2.0 * side) {
      site.x = Length{side};
      site.y = Length{s - side};
    } else if (s < 3.0 * side) {
      site.x = Length{3.0 * side - s};
      site.y = Length{side};
    } else {
      site.x = Length{0.0};
      site.y = Length{4.0 * side - s};
    }
    result.sites.push_back(site);
  }
  // Ring area: rings of VRs occupy a band around the die.
  const double vr_side = std::sqrt(vr_area.value);
  const double band_area =
      4.0 * side * vr_side * rings + 4.0 * vr_side * vr_side * rings * rings;
  result.area_utilization = count * vr_area.value / band_area;
  return result;
}

PlacementResult below_die_placement(Length die_side, Area vr_area,
                                    unsigned count, double area_fraction) {
  VPD_REQUIRE(count >= 1, "need at least one VR");
  // Fractions above 1 deliberately allowed: the paper's own deployments
  // oversubscribe the die shadow (see EXPERIMENTS.md on Table II's DPMIH
  // row); callers get a note instead of a hard failure.
  VPD_REQUIRE(area_fraction > 0.0 && area_fraction <= 4.0,
              "area fraction ", area_fraction, " outside (0,4]");
  const double die_area = die_side.value * die_side.value;
  const double needed = count * vr_area.value;
  if (needed > area_fraction * die_area) {
    throw InfeasibleDesign(detail::concat(
        "below-die placement needs ", needed * 1e6, " mm^2 for ", count,
        " VRs, but only ", area_fraction * die_area * 1e6,
        " mm^2 available (", area_fraction * 100.0, "% of the die)"));
  }

  PlacementResult result;
  result.rings_used = 1;
  result.area_utilization = needed / die_area;
  result.sites.reserve(count);
  // Near-square grid: gx x gy >= count.
  const auto gx = static_cast<unsigned>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  const unsigned gy = (count + gx - 1) / gx;
  unsigned placed = 0;
  for (unsigned iy = 0; iy < gy && placed < count; ++iy) {
    for (unsigned ix = 0; ix < gx && placed < count; ++ix) {
      VrSite site;
      site.x = Length{die_side.value * (ix + 0.5) / gx};
      site.y = Length{die_side.value * (iy + 0.5) / gy};
      site.ring = 0;
      result.sites.push_back(site);
      ++placed;
    }
  }
  return result;
}

std::vector<Length> disjoint_patch_sides(const std::vector<VrSite>& sites,
                                         Length desired) {
  VPD_REQUIRE(!sites.empty(), "need at least one site");
  VPD_REQUIRE(desired.value > 0.0, "desired patch side must be positive");
  if (sites.size() == 1) return {desired};
  // d_i = nearest-neighbour Chebyshev distance of site i. A node is
  // inside a patch of side s iff both coordinate offsets are within s/2,
  // so patches i and j share a node only if their centers are within
  // (s_i + s_j) / 2 on both axes. With s_i <= 0.9 d_i and
  // d_i, d_j <= Cheb(i, j) the offset on the axis achieving Cheb(i, j)
  // always exceeds (s_i + s_j) / 2, so the patches stay disjoint. The
  // 0.9 leaves margin over the selection tolerance in patch_attachment.
  std::vector<double> nearest(sites.size(),
                              std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      const double dx = sites[i].x.value - sites[j].x.value;
      const double dy = sites[i].y.value - sites[j].y.value;
      const double cheb = std::max(std::fabs(dx), std::fabs(dy));
      nearest[i] = std::min(nearest[i], cheb);
      nearest[j] = std::min(nearest[j], cheb);
    }
  }
  std::vector<Length> sides;
  sides.reserve(sites.size());
  for (const double d : nearest) {
    VPD_REQUIRE(d > 0.0,
                "two sites coincide; patches cannot be made disjoint");
    sides.push_back(Length{std::min(desired.value, 0.9 * d)});
  }
  return sides;
}

}  // namespace vpd
