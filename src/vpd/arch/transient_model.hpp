// Reduced transient model of an evaluated architecture: collapses the
// mesh/stackup solution into a Thevenin supply (regulated source behind
// the effective PPDN resistance), an architecture-class loop inductance,
// and the local decap bank — a netlist the circuit engine can drive with
// load steps. This bridges the dc characterization of Fig. 7 to the
// dynamic behaviour the paper leaves as future work.
#pragma once

#include "vpd/arch/report.hpp"
#include "vpd/circuit/netlist.hpp"
#include "vpd/circuit/transient.hpp"
#include "vpd/core/spec.hpp"

namespace vpd {

struct ReducedPdnModel {
  Netlist netlist;
  std::string pol_node{"pol"};
  Resistance effective_resistance{};
  Inductance loop_inductance{};
  Capacitance decap{};
};

struct ReducedModelOptions {
  /// Local deccapacitance at the POL rail. Defaults scale with die area
  /// (deep-trench class ~1 uF/mm^2 over the die shadow, derated).
  std::optional<Capacitance> decap;
  Resistance decap_esr{Resistance{0.05e-3}};
};

/// Builds the reduced netlist for an evaluation of `architecture`.
/// The effective supply resistance comes from the evaluation's worst-case
/// droop (ppdn drop at full current); the loop inductance from the
/// architecture class (board loop for A0, interposer hop for A1/A2,
/// power-die hop for A3).
ReducedPdnModel build_reduced_pdn(const PowerDeliverySpec& spec,
                                  const ArchitectureEvaluation& evaluation,
                                  const ReducedModelOptions& options = {});

struct DroopResult {
  Voltage worst_voltage{};
  Voltage droop{};            // nominal - worst
  Seconds recovery_time{};    // time to re-enter a 1% band, from the step
};

/// Applies a load step (base -> base+step over `rise`) to the reduced
/// model and measures the worst droop and recovery.
DroopResult simulate_load_step(const ReducedPdnModel& model,
                               const PowerDeliverySpec& spec, Current base,
                               Current step, Seconds rise,
                               Seconds t_stop = Seconds{20e-6});

}  // namespace vpd
