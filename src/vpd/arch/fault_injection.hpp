// Low-level fault-injection description consumed by the architecture
// evaluator: which VRs of the distribution stage have dropped out or
// degraded, which attach paths have gone high-resistance, and how the
// distribution mesh's conductance is perturbed. The evaluator applies an
// injection against the *nominal* deployment — allocation and placement
// stay as designed; faults remove or degrade placed VRs at run time and
// the mesh solve redistributes the load across the survivors.
//
// The higher-level fault models (dropout / derating / interconnect
// scenarios, campaign generation, spec checks) live in vpd/fault; this
// header sits in vpd/arch so the evaluator itself stays fault-aware
// without depending on the campaign machinery. An empty injection is the
// nominal evaluation, bit for bit.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "vpd/package/mesh.hpp"

namespace vpd {

/// A degraded-but-alive VR: its usable current limit shrinks and its
/// conversion loss grows. The limit scale feeds the resilience layer's
/// overcurrent check; the evaluator itself applies only the loss scale.
struct VrDerate {
  double current_limit_scale{1.0};  // usable fraction of the rating, > 0
  double loss_scale{1.0};           // conversion-loss multiplier, > 0
};

/// One fault state of a deployment. Site indices address the VR stage
/// that drives the distribution mesh (the final stage for A1/A2, the
/// periphery first stage for A3) in placement order; `dropped_stage2`
/// addresses the below-die final stage of the two-stage architectures,
/// whose survivors re-split the die current uniformly.
struct FaultInjection {
  /// Distribution-stage sites whose VR has dropped out (sorted, unique).
  std::vector<std::size_t> dropped_sites;
  /// Per-site multiplier on the VR attach series resistance — a
  /// high-resistance vertical-interconnect cluster under the VR output
  /// (sorted by site, unique, scale > 0).
  std::vector<std::pair<std::size_t, double>> attach_scale;
  /// Per-site derating of the distribution-stage VRs (sorted, unique).
  std::vector<std::pair<std::size_t, VrDerate>> derates;
  /// Dropped below-die final-stage VRs, two-stage architectures only
  /// (sorted, unique).
  std::vector<std::size_t> dropped_stage2;
  /// Conductance perturbation of the distribution mesh (open or
  /// high-resistance lateral-metal regions).
  MeshPerturbation mesh_perturbation;

  bool empty() const;

  /// Validates ranges, ordering and uniqueness against a deployment of
  /// `site_count` distribution-stage VRs and `stage2_count` below-die
  /// final-stage VRs (0 for single-stage architectures). Throws
  /// InvalidArgument on any violation, and InfeasibleDesign if every VR
  /// of a stage is dropped. The two halves are exposed separately because
  /// the two-stage evaluator learns the two deployment sizes at different
  /// points of the evaluation.
  void validate(std::size_t site_count, std::size_t stage2_count) const;
  void validate_sites(std::size_t site_count) const;
  void validate_stage2(std::size_t stage2_count) const;
};

}  // namespace vpd
