// VR placement engines. The paper distributes VRs either uniformly along
// the die periphery (architectures A1 / A3 stage 1), spilling into
// additional rows farther from the perimeter when one ring is full, or
// uniformly below the die (A2 / A3 stage 2), occupying up to ~50% of the
// die footprint in the interposer.
#pragma once

#include <cstddef>
#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

struct VrSite {
  Length x{};      // die coordinate frame: origin at a corner
  Length y{};
  unsigned ring{0};  // 0 = adjacent to the die edge (periphery only)
};

struct PlacementResult {
  std::vector<VrSite> sites;
  unsigned rings_used{1};
  /// Total placed area / available area in the chosen region.
  double area_utilization{0.0};
};

/// VRs that fit in one periphery ring around a square die of side
/// `die_side`, for a square VR of footprint `vr_area`.
unsigned periphery_ring_capacity(Length die_side, Area vr_area);

/// Places `count` square VRs of `vr_area` around the die periphery,
/// filling outer rings as inner ones fill up. Attachment coordinates are
/// clamped to the die boundary (current enters the die edge nearest the
/// VR). Throws InfeasibleDesign if more than `max_rings` rings would be
/// needed.
PlacementResult periphery_placement(Length die_side, Area vr_area,
                                    unsigned count, unsigned max_rings = 4);

/// Places `count` VRs on a uniform grid under the die. `area_fraction`
/// is the fraction of the die footprint the VRs (with their passives) may
/// occupy; exceeding it throws InfeasibleDesign.
PlacementResult below_die_placement(Length die_side, Area vr_area,
                                    unsigned count,
                                    double area_fraction = 0.75);

}  // namespace vpd
