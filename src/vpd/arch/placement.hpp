// VR placement engines. The paper distributes VRs either uniformly along
// the die periphery (architectures A1 / A3 stage 1), spilling into
// additional rows farther from the perimeter when one ring is full, or
// uniformly below the die (A2 / A3 stage 2), occupying up to ~50% of the
// die footprint in the interposer.
#pragma once

#include <cstddef>
#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

struct VrSite {
  Length x{};      // die coordinate frame: origin at a corner
  Length y{};
  unsigned ring{0};  // 0 = adjacent to the die edge (periphery only)
};

struct PlacementResult {
  std::vector<VrSite> sites;
  unsigned rings_used{1};
  /// Total placed area / available area in the chosen region.
  double area_utilization{0.0};
};

/// VRs that fit in one periphery ring around a square die of side
/// `die_side`, for a square VR of footprint `vr_area`.
unsigned periphery_ring_capacity(Length die_side, Area vr_area);

/// Places `count` square VRs of `vr_area` around the die periphery,
/// filling outer rings as inner ones fill up. Attachment coordinates are
/// clamped to the die boundary (current enters the die edge nearest the
/// VR). Throws InfeasibleDesign if more than `max_rings` rings would be
/// needed.
PlacementResult periphery_placement(Length die_side, Area vr_area,
                                    unsigned count, unsigned max_rings = 4);

/// Places `count` VRs on a uniform grid under the die. `area_fraction`
/// is the fraction of the die footprint the VRs (with their passives) may
/// occupy; exceeding it throws InfeasibleDesign.
PlacementResult below_die_placement(Length die_side, Area vr_area,
                                    unsigned count,
                                    double area_fraction = 0.75);

/// Per-site attachment-patch sides, each capped at `desired`, that
/// guarantee two square patches centered on the sites never share a mesh
/// node. Site i's side is bounded by its nearest-neighbour Chebyshev
/// (L-infinity) distance d_i — the exact no-overlap metric for
/// axis-aligned squares: patches i and j overlap on an axis only if the
/// center offset there is at most (s_i + s_j) / 2, and with
/// s_i <= 0.9 d_i, s_j <= 0.9 d_j, d_i, d_j <= Cheb(i, j) that offset
/// stays strictly below the Chebyshev distance on its achieving axis.
/// Sizing per site (not by the global minimum) keeps isolated sites at
/// full footprint when only one tight pair exists, e.g. periphery rings
/// whose corner-adjacent VRs sit closer than the edge pitch. Derived from
/// the actual placement geometry rather than a per-count heuristic, so
/// dense periphery rings cannot alias onto shared nodes and sparse
/// below-die grids keep their full footprint. A single site has no
/// neighbour constraint and gets `desired`. Throws InvalidArgument on
/// coincident sites.
std::vector<Length> disjoint_patch_sides(const std::vector<VrSite>& sites,
                                         Length desired);

}  // namespace vpd
