#include "vpd/arch/vr_allocation.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

VrAllocation allocate_vrs(Current total, const Converter& converter,
                          double derating) {
  VPD_REQUIRE(total.value > 0.0, "total current must be positive");
  VPD_REQUIRE(derating > 0.0 && derating <= 1.0, "derating ", derating,
              " outside (0,1]");
  const double target_per_vr =
      derating * converter.spec().max_current.value;
  const auto count = static_cast<unsigned>(
      std::ceil(total.value / target_per_vr));
  return allocate_vrs_fixed(total, converter, count);
}

VrAllocation allocate_vrs_fixed(Current total, const Converter& converter,
                                unsigned count) {
  VPD_REQUIRE(total.value > 0.0, "total current must be positive");
  VPD_REQUIRE(count >= 1, "need at least one VR");
  VrAllocation alloc;
  alloc.count = count;
  alloc.nominal_per_vr = Current{total.value / count};
  alloc.rating_utilization =
      alloc.nominal_per_vr.value / converter.spec().max_current.value;
  alloc.within_rating = alloc.rating_utilization <= 1.0;
  if (!alloc.within_rating) {
    alloc.notes.push_back(detail::concat(
        converter.name(), ": nominal ", alloc.nominal_per_vr.value,
        " A per VR exceeds the ", converter.spec().max_current.value,
        " A rating; efficiency would be extrapolated"));
  }
  return alloc;
}

}  // namespace vpd
