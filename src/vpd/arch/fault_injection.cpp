#include "vpd/arch/fault_injection.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

namespace {

void require_sorted_unique(const std::vector<std::size_t>& indices,
                           std::size_t bound, const char* field) {
  for (std::size_t i = 0; i < indices.size(); ++i) {
    VPD_REQUIRE(indices[i] < bound, field, " index ", indices[i],
                " outside the deployment of ", bound, " VRs");
    VPD_REQUIRE(i == 0 || indices[i - 1] < indices[i], field,
                " indices must be sorted and unique");
  }
}

template <typename T>
void require_sorted_unique_pairs(
    const std::vector<std::pair<std::size_t, T>>& entries, std::size_t bound,
    const char* field) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    VPD_REQUIRE(entries[i].first < bound, field, " site ", entries[i].first,
                " outside the deployment of ", bound, " VRs");
    VPD_REQUIRE(i == 0 || entries[i - 1].first < entries[i].first, field,
                " sites must be sorted and unique");
  }
}

}  // namespace

bool FaultInjection::empty() const {
  return dropped_sites.empty() && attach_scale.empty() && derates.empty() &&
         dropped_stage2.empty() && mesh_perturbation.empty();
}

void FaultInjection::validate(std::size_t site_count,
                              std::size_t stage2_count) const {
  validate_sites(site_count);
  validate_stage2(stage2_count);
}

void FaultInjection::validate_sites(std::size_t site_count) const {
  require_sorted_unique(dropped_sites, site_count, "dropped_sites");
  if (site_count > 0 && dropped_sites.size() == site_count) {
    throw InfeasibleDesign(
        "every distribution-stage VR is dropped: no source left to solve "
        "the rail");
  }
  require_sorted_unique_pairs(attach_scale, site_count, "attach_scale");
  for (const auto& [site, scale] : attach_scale) {
    (void)site;
    VPD_REQUIRE(scale > 0.0, "attach resistance scale must be > 0, got ",
                scale);
  }
  require_sorted_unique_pairs(derates, site_count, "derates");
  for (const auto& [site, derate] : derates) {
    (void)site;
    VPD_REQUIRE(derate.current_limit_scale > 0.0,
                "derate current_limit_scale must be > 0, got ",
                derate.current_limit_scale);
    VPD_REQUIRE(derate.loss_scale > 0.0, "derate loss_scale must be > 0, got ",
                derate.loss_scale);
  }
  for (const EdgeScaleRegion& r : mesh_perturbation) {
    VPD_REQUIRE(r.x1.value >= r.x0.value && r.y1.value >= r.y0.value,
                "mesh perturbation region has negative extent");
    VPD_REQUIRE(r.scale >= 0.0,
                "mesh perturbation scale must be >= 0, got ", r.scale);
  }
}

void FaultInjection::validate_stage2(std::size_t stage2_count) const {
  if (stage2_count == 0) {
    VPD_REQUIRE(dropped_stage2.empty(),
                "dropped_stage2 set on an architecture without a separate "
                "below-die final stage");
    return;
  }
  require_sorted_unique(dropped_stage2, stage2_count, "dropped_stage2");
  if (dropped_stage2.size() == stage2_count) {
    throw InfeasibleDesign(
        "every below-die final-stage VR is dropped: the die has no "
        "regulated supply");
  }
}

}  // namespace vpd
