#include "vpd/arch/report.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

double ArchitectureEvaluation::loss_fraction(Power budget) const {
  VPD_REQUIRE(budget.value > 0.0, "budget must be positive");
  return total_loss().value / budget.value;
}

double ArchitectureEvaluation::efficiency(Power delivered) const {
  VPD_REQUIRE(delivered.value > 0.0, "delivered power must be positive");
  return delivered.value / (delivered.value + total_loss().value);
}

}  // namespace vpd
