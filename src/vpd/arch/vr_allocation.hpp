// VR count allocation: how many converters of a given topology are needed
// to deliver the system current, and whether they fit the placement
// region. The paper sizes DSCH/3LHD deployments at 48 VRs (about 21 A per
// VR against 30 A / 12 A ratings — the 3LHD case is exactly the
// ">rating" situation that excludes it from Fig. 7).
#pragma once

#include <string>
#include <vector>

#include "vpd/common/units.hpp"
#include "vpd/converters/converter.hpp"

namespace vpd {

struct VrAllocation {
  unsigned count{0};
  Current nominal_per_vr{};     // total current / count
  double rating_utilization{0.0};  // nominal / max rating
  bool within_rating{false};
  std::vector<std::string> notes;
};

/// Allocates VRs so that the nominal per-VR current is at most
/// `derating` x the converter's max rating. A converter whose rating
/// cannot reach the target even at count limits is flagged, not rejected —
/// callers decide (the paper reports 3LHD as N/A rather than dropping it).
VrAllocation allocate_vrs(Current total, const Converter& converter,
                          double derating = 0.70);

/// Allocation with an explicit count (e.g. the paper's published 48).
VrAllocation allocate_vrs_fixed(Current total, const Converter& converter,
                                unsigned count);

}  // namespace vpd
