#include "vpd/core/trends.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

using namespace vpd::literals;

CurrentDensity HpcSystemPoint::current_density(Voltage core_voltage) const {
  VPD_REQUIRE(core_voltage.value > 0.0, "core voltage must be positive");
  VPD_REQUIRE(silicon_area.value > 0.0, "point '", name, "' has no area");
  return CurrentDensity{power.value / core_voltage.value /
                        silicon_area.value};
}

std::vector<HpcSystemPoint> hpc_chip_dataset() {
  // Public TDP / die-size data for the accelerator generations the paper's
  // Fig. 1 covers; PDS efficiencies are the estimates the figure encodes
  // in marker size ([1]: >30% loss reported for state-of-the-art).
  return {
      {"NVIDIA V100", 2017, 300.0_W, 815.0_mm2, 0.87, false},
      {"NVIDIA A100", 2020, 400.0_W, 826.0_mm2, 0.85, false},
      {"NVIDIA H100", 2022, 700.0_W, 814.0_mm2, 0.80, false},
      {"Google TPUv3", 2018, 220.0_W, 700.0_mm2, 0.88, false},
      {"Google TPUv4", 2021, 275.0_W, 600.0_mm2, 0.86, false},
      {"Tesla Dojo D1", 2021, 400.0_W, 645.0_mm2, 0.70, false},
      {"AMD MI250X", 2021, 560.0_W, 1540.0_mm2, 0.84, false},
      {"Intel PVC", 2022, 600.0_W, 1280.0_mm2, 0.82, false},
      {"Graphcore GC200", 2020, 300.0_W, 823.0_mm2, 0.86, false},
  };
}

std::vector<HpcSystemPoint> hpc_server_dataset() {
  return {
      {"NVIDIA DGX-1", 2017, 3.5_kW, Area{8 * 815e-6}, 0.85, true},
      {"NVIDIA DGX A100", 2020, 6.5_kW, Area{8 * 826e-6}, 0.83, true},
      {"NVIDIA DGX H100", 2022, 10.2_kW, Area{8 * 814e-6}, 0.80, true},
      {"Google TPUv4 board", 2021, 1.7_kW, Area{4 * 600e-6}, 0.85, true},
      {"Tesla Dojo tile", 2021, 15.0_kW, Area{25 * 645e-6}, 0.70, true},
      {"Cerebras CS-2", 2021, 20.0_kW, Area{46225e-6}, 0.78, true},
  };
}

std::vector<TrendPoint> current_demand_trend() {
  // Intel-reported power density on a typical 200 mm^2 die at ~1 V core:
  // current = density [W/mm^2] * 200 mm^2 / 1 V.
  return {
      {1990, 4.0},    {1995, 12.0},  {2000, 40.0},  {2005, 130.0},
      {2010, 260.0},  {2015, 400.0}, {2020, 700.0}, {2023, 1000.0},
  };
}

std::vector<TrendPoint> packaging_feature_trend() {
  // Vertical-interconnect pitch after Iyer [12]: from wire-bond /
  // early-BGA era (~800 um) to C4-class (~200 um) — only ~4x over the
  // decades the current demand grew by ~250x.
  return {
      {1990, 800.0}, {1995, 650.0}, {2000, 500.0}, {2005, 400.0},
      {2010, 300.0}, {2015, 250.0}, {2020, 225.0}, {2023, 200.0},
  };
}

double trend_growth(const std::vector<TrendPoint>& trend) {
  VPD_REQUIRE(trend.size() >= 2, "trend needs at least two points");
  VPD_REQUIRE(trend.front().value != 0.0, "zero-valued first point");
  return trend.back().value / trend.front().value;
}

}  // namespace vpd
