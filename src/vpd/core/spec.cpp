#include "vpd/core/spec.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

Current PowerDeliverySpec::die_current() const {
  return Current{total_power.value / die_voltage.value};
}

CurrentDensity PowerDeliverySpec::current_density() const {
  return CurrentDensity{die_current().value / die_area.value};
}

Length PowerDeliverySpec::die_side() const {
  return Length{std::sqrt(die_area.value)};
}

Current PowerDeliverySpec::input_current(Power input_power) const {
  return Current{input_power.value / pcb_voltage.value};
}

void PowerDeliverySpec::validate() const {
  VPD_REQUIRE(total_power.value > 0.0, "total power must be positive");
  VPD_REQUIRE(die_voltage.value > 0.0, "die voltage must be positive");
  VPD_REQUIRE(pcb_voltage.value > die_voltage.value,
              "PCB voltage must exceed die voltage");
  VPD_REQUIRE(die_area.value > 0.0, "die area must be positive");
}

PowerDeliverySpec paper_system() {
  PowerDeliverySpec spec;
  spec.total_power = Power{1000.0};
  spec.pcb_voltage = Voltage{48.0};
  spec.die_voltage = Voltage{1.0};
  spec.die_area = Area{500e-6};
  return spec;
}

}  // namespace vpd
