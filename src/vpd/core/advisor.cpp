#include "vpd/core/advisor.hpp"

#include <algorithm>

#include "vpd/common/error.hpp"

namespace vpd {

std::vector<Recommendation> rank_architectures(
    const ExplorationResult& result) {
  std::vector<Recommendation> ranked;
  for (const ExplorationEntry& entry : result.entries) {
    if (entry.excluded()) continue;
    Recommendation r;
    r.architecture = entry.architecture;
    r.topology = entry.topology;
    r.loss_fraction =
        entry.evaluation->loss_fraction(result.spec.total_power);
    r.efficiency = entry.evaluation->efficiency(result.spec.total_power);
    r.rationale = detail::concat(
        to_string(entry.architecture),
        entry.topology ? std::string(" with ") + to_string(*entry.topology)
                       : std::string(" (PCB regulation)"),
        ": ", entry.evaluation->vr_count_stage2 == 0
                  ? 1u
                  : entry.evaluation->vr_count_stage2,
        " final-stage VRs, loss ",
        static_cast<int>(r.loss_fraction * 1000.0) / 10.0, "%");
    ranked.push_back(std::move(r));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.loss_fraction < b.loss_fraction;
            });
  return ranked;
}

Recommendation recommend(const ExplorationResult& result) {
  const auto ranked = rank_architectures(result);
  if (ranked.empty()) {
    throw InfeasibleDesign(
        "no feasible (architecture, topology) combination in the "
        "exploration result");
  }
  return ranked.front();
}

std::vector<ParameterSweepPoint> sweep_power(const PowerDeliverySpec& base,
                                    ArchitectureKind architecture,
                                    TopologyKind topology,
                                    const std::vector<double>& watts,
                                    const EvaluationOptions& options) {
  VPD_REQUIRE(!watts.empty(), "empty sweep");
  std::vector<ParameterSweepPoint> points;
  points.reserve(watts.size());
  for (double w : watts) {
    PowerDeliverySpec spec = base;
    spec.total_power = Power{w};
    ParameterSweepPoint p;
    p.parameter = w;
    try {
      const ArchitectureEvaluation eval = evaluate_architecture(
          architecture, spec, topology,
          DeviceTechnology::kGalliumNitride, options);
      p.loss_fraction = eval.loss_fraction(spec.total_power);
      p.feasible = eval.within_rating;
    } catch (const Error&) {
      p.feasible = false;
      p.loss_fraction = 0.0;
    }
    points.push_back(p);
  }
  return points;
}

VrCountChoice optimize_vr_count(const PowerDeliverySpec& spec,
                                ArchitectureKind architecture,
                                TopologyKind topology, unsigned min_count,
                                unsigned max_count,
                                const EvaluationOptions& options) {
  VPD_REQUIRE(min_count >= 1 && max_count >= min_count,
              "need 1 <= min_count <= max_count, got [", min_count, ", ",
              max_count, "]");
  VPD_REQUIRE(architecture != ArchitectureKind::kA0_PcbConversion,
              "A0 has no final-stage VR deployment to optimize");
  VrCountChoice choice;
  bool found = false;
  for (unsigned count = min_count; count <= max_count; ++count) {
    EvaluationOptions opts = options;
    opts.fixed_final_stage_vrs = count;
    ParameterSweepPoint point;
    point.parameter = count;
    try {
      const ArchitectureEvaluation eval = evaluate_architecture(
          architecture, spec, topology,
          DeviceTechnology::kGalliumNitride, opts);
      point.loss_fraction = eval.loss_fraction(spec.total_power);
      point.feasible = eval.within_rating;
    } catch (const Error&) {
      point.feasible = false;
    }
    choice.curve.push_back(point);
    if (point.feasible &&
        (!found || point.loss_fraction < choice.loss_fraction)) {
      found = true;
      choice.count = count;
      choice.loss_fraction = point.loss_fraction;
      choice.within_rating = true;
    }
  }
  if (!found) {
    throw InfeasibleDesign(detail::concat(
        "no feasible VR count in [", min_count, ", ", max_count, "] for ",
        to_string(architecture), " with ", to_string(topology)));
  }
  return choice;
}

std::vector<ParameterSweepPoint> sweep_sheet_resistance(
    const PowerDeliverySpec& spec, ArchitectureKind architecture,
    TopologyKind topology, const std::vector<double>& ohms_per_square,
    const EvaluationOptions& options) {
  VPD_REQUIRE(!ohms_per_square.empty(), "empty sweep");
  std::vector<ParameterSweepPoint> points;
  points.reserve(ohms_per_square.size());
  for (double rs : ohms_per_square) {
    EvaluationOptions opts = options;
    opts.distribution_sheet_ohms = rs;
    ParameterSweepPoint p;
    p.parameter = rs;
    try {
      const ArchitectureEvaluation eval = evaluate_architecture(
          architecture, spec, topology,
          DeviceTechnology::kGalliumNitride, opts);
      p.loss_fraction = eval.loss_fraction(spec.total_power);
      p.feasible = eval.within_rating;
    } catch (const Error&) {
      p.feasible = false;
      p.loss_fraction = 0.0;
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace vpd
