// Industry trend datasets behind the paper's motivation figures.
//
// Fig. 1 plots power and current-density demand of state-of-the-art HPC
// chips and server systems, sized by power-delivery-system efficiency.
// Fig. 2 plots decades of current-demand growth against the comparatively
// flat packaging-feature scaling. Both are built from public data on the
// systems the paper cites ([1][2][3] and the Intel/Iyer trends); the
// curated datasets here are the reproduction's substitute for the
// authors' spreadsheets.
#pragma once

#include <string>
#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

struct HpcSystemPoint {
  std::string name;
  int year{0};
  Power power{};
  Area silicon_area{};          // die (chips) or aggregate silicon (systems)
  double pds_efficiency{0.0};   // estimated power-delivery efficiency
  bool is_server{false};

  CurrentDensity current_density(Voltage core_voltage = Voltage{1.0}) const;
};

/// Individual accelerator chips (Fig. 1, left).
std::vector<HpcSystemPoint> hpc_chip_dataset();
/// Server/system-scale points (Fig. 1, right).
std::vector<HpcSystemPoint> hpc_server_dataset();

struct TrendPoint {
  int year{0};
  double value{0.0};
};

/// Fig. 2: die current demand [A] over time — Intel-reported power density
/// on a typical 200 mm^2 die at ~1 V.
std::vector<TrendPoint> current_demand_trend();

/// Fig. 2: packaging feature size [um] over time (after Iyer [12]): the
/// vertical-interconnect pitch that effectively sets PPDN resistance.
std::vector<TrendPoint> packaging_feature_trend();

/// Ratio of the last to first value of a trend (e.g. the paper's "current
/// grew by orders of magnitude, packaging feature only ~4x").
double trend_growth(const std::vector<TrendPoint>& trend);

}  // namespace vpd
