#include "vpd/core/batch.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "vpd/common/error.hpp"

namespace vpd {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Internal control flow of the probe phase: thrown by the probe hook
/// after it records the solve request, unwinding the evaluation before
/// any solve work happens. Deliberately not derived from std::exception —
/// nothing between the solve site and EvaluationBatch::probe may catch it.
struct ProbeCaptured {};

/// Records the distribution-solve request and aborts the evaluation.
class ProbeHook final : public DistributionSolveHook {
 public:
  ProbeHook(std::shared_ptr<const AssembledMesh>* assembled,
            std::vector<VrAttachment>* legs, Vector* sinks,
            IrDropOptions* solve_options, bool* has_request)
      : assembled_(assembled), legs_(legs), sinks_(sinks),
        solve_options_(solve_options), has_request_(has_request) {}

  bool solve(const std::shared_ptr<const AssembledMesh>& assembled,
             const std::vector<VrAttachment>& legs, const Vector& sinks,
             const IrDropOptions& options, IrDropResult&) override {
    *assembled_ = assembled;
    *legs_ = legs;
    *sinks_ = sinks;
    *solve_options_ = options;
    *has_request_ = true;
    throw ProbeCaptured{};
  }

 private:
  std::shared_ptr<const AssembledMesh>* assembled_;
  std::vector<VrAttachment>* legs_;
  Vector* sinks_;
  IrDropOptions* solve_options_;
  bool* has_request_;
};

/// Injects a result solved outside the evaluation (group panel or shared
/// scalar solve), along with the probe-time operator assembly so the
/// replayed evaluation touches the mesh cache exactly once per point. A
/// second solve in one evaluation is unexpected; it falls through to the
/// scalar path, which is always correct.
class ReplayHook final : public DistributionSolveHook {
 public:
  ReplayHook(std::shared_ptr<const AssembledMesh> assembled,
             IrDropResult result)
      : assembled_(std::move(assembled)), result_(std::move(result)) {}

  std::shared_ptr<const AssembledMesh> assembled_mesh() override {
    return used_ ? nullptr : assembled_;
  }

  bool solve(const std::shared_ptr<const AssembledMesh>&,
             const std::vector<VrAttachment>&, const Vector&,
             const IrDropOptions&, IrDropResult& out) override {
    if (used_) return false;
    used_ = true;
    out = std::move(result_);
    return true;
  }

 private:
  std::shared_ptr<const AssembledMesh> assembled_;
  IrDropResult result_;
  bool used_{false};
};

}  // namespace

BatchStats& BatchStats::operator+=(const BatchStats& other) {
  points += other.points;
  groups += other.groups;
  grouped_points += other.grouped_points;
  scalar_points += other.scalar_points;
  panel_columns += other.panel_columns;
  deduped_solves += other.deduped_solves;
  return *this;
}

EvaluationBatch::EvaluationBatch(PowerDeliverySpec spec,
                                 std::vector<EvaluationPoint> points,
                                 BatchConfig config)
    : spec_(spec), points_(std::move(points)), config_(config) {
  spec_.validate();
  VPD_REQUIRE(config_.min_group_size >= 2,
              "min_group_size must be >= 2 (a one-column panel is just a "
              "scalar solve)");
  records_.resize(points_.size());
  entries_.resize(points_.size());
  errors_.resize(points_.size());
  wall_seconds_.assign(points_.size(), 0.0);
}

void EvaluationBatch::probe(std::size_t index) {
  const auto start = std::chrono::steady_clock::now();
  const EvaluationPoint& point = points_[index];
  ProbeRecord& record = records_[index];
  ProbeHook hook(&record.assembled, &record.legs, &record.sinks,
                 &record.solve_options, &record.has_request);
  EvaluationOptions options = point.options;
  options.solve_hook = &hook;
  try {
    entries_[index] = evaluate_with_exclusion(
        spec_, point.architecture, point.topology, point.tech, options);
    record.completed = true;  // no distribution solve on this path
  } catch (const ProbeCaptured&) {
    // Request recorded; the point finishes in execute().
  } catch (...) {
    errors_[index] = std::current_exception();
    record.completed = true;  // failed before any solve; nothing to run
  }
  wall_seconds_[index] += seconds_since(start);
}

std::size_t EvaluationBatch::plan() {
  stats_ = BatchStats{};
  stats_.points = points_.size();
  groups_.clear();
  units_.clear();

  // Same stamped operator: identical solve options, identical VR legs,
  // identical mesh operator. Mesh identity is the shared-cache pointer
  // when available, falling back to a value comparison of the Laplacian so
  // grouping does not depend on cache wiring (cached and per-call
  // assemblies are bit-identical by construction).
  const auto same_operator = [this](std::size_t a, std::size_t b) {
    const ProbeRecord& ra = records_[a];
    const ProbeRecord& rb = records_[b];
    if (ra.solve_options.relative_tolerance !=
            rb.solve_options.relative_tolerance ||
        ra.solve_options.warm_start_voltage !=
            rb.solve_options.warm_start_voltage ||
        ra.solve_options.preconditioner != rb.solve_options.preconditioner) {
      return false;
    }
    if (ra.legs.size() != rb.legs.size()) return false;
    for (std::size_t k = 0; k < ra.legs.size(); ++k) {
      if (ra.legs[k].node != rb.legs[k].node ||
          ra.legs[k].source_voltage.value !=
              rb.legs[k].source_voltage.value ||
          ra.legs[k].series.value != rb.legs[k].series.value) {
        return false;
      }
    }
    if (ra.assembled.get() == rb.assembled.get()) return true;
    const CsrMatrix& la = ra.assembled->laplacian;
    const CsrMatrix& lb = rb.assembled->laplacian;
    return la.rows() == lb.rows() &&
           la.row_offsets() == lb.row_offsets() &&
           la.col_indices() == lb.col_indices() &&
           la.values() == lb.values();
  };

  // Group discovery in input order: a point joins the first group whose
  // lead member shares its operator. Deterministic in the input alone —
  // independent of thread count, execution order and cache state.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (records_[i].completed || !records_[i].has_request) continue;
    bool placed = false;
    for (Group& g : groups_) {
      if (same_operator(g.members.front(), i)) {
        g.members.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      Group g;
      g.members.push_back(i);
      groups_.push_back(std::move(g));
    }
  }

  // Keep multi-member groups as panel units; everything else (singleton
  // operators) takes the scalar path. Within a kept group, value-identical
  // sink vectors collapse onto one shared solve — the solver is
  // deterministic in its inputs, so sharing is bit-identical to solving
  // each copy separately.
  std::vector<Group> kept;
  std::vector<char> scalar(points_.size(), 0);
  for (Group& g : groups_) {
    if (g.members.size() < config_.min_group_size) {
      for (std::size_t m : g.members) scalar[m] = 1;
      continue;
    }
    for (std::size_t m : g.members) {
      const Vector& sinks = records_[m].sinks;
      std::size_t d = 0;
      for (; d < g.distinct.size(); ++d) {
        if (records_[g.distinct[d]].sinks == sinks) break;
      }
      if (d == g.distinct.size()) {
        g.distinct.push_back(m);
      } else {
        ++stats_.deduped_solves;
      }
      g.rhs_of_member.push_back(d);
    }
    ++stats_.groups;
    stats_.grouped_points += g.members.size();
    if (g.distinct.size() >= 2) stats_.panel_columns += g.distinct.size();
    kept.push_back(std::move(g));
  }
  groups_ = std::move(kept);

  units_.reserve(groups_.size() + points_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    units_.push_back(Unit{true, g});
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (scalar[i]) units_.push_back(Unit{false, i});
  }
  stats_.scalar_points = stats_.points - stats_.grouped_points;
  return units_.size();
}

void EvaluationBatch::execute(std::size_t unit) {
  const Unit& u = units_[unit];
  if (u.is_group) {
    execute_group(groups_[u.index]);
  } else {
    execute_scalar(u.index);
  }
}

void EvaluationBatch::run() {
  for (std::size_t i = 0; i < size(); ++i) probe(i);
  plan();
  for (std::size_t u = 0; u < unit_count(); ++u) execute(u);
}

void EvaluationBatch::replay(std::size_t index, IrDropResult result) {
  const EvaluationPoint& point = points_[index];
  ReplayHook hook(records_[index].assembled, std::move(result));
  EvaluationOptions options = point.options;
  options.solve_hook = &hook;
  try {
    entries_[index] = evaluate_with_exclusion(
        spec_, point.architecture, point.topology, point.tech, options);
  } catch (...) {
    errors_[index] = std::current_exception();
  }
}

void EvaluationBatch::execute_scalar(std::size_t index) {
  const ProbeRecord& record = records_[index];
  if (!record.has_request) return;  // finished (or failed) during probe
  const auto start = std::chrono::steady_clock::now();
  try {
    // The recorded request solves exactly as the un-hooked evaluation
    // would (same operator object, legs, sinks and options), so injecting
    // its result into the replay is bit-identical to the legacy scalar
    // path — and the mesh cache sees one get per point, from the probe.
    IrDropResult result = solve_irdrop(*record.assembled, record.legs,
                                       record.sinks, record.solve_options);
    replay(index, std::move(result));
  } catch (...) {
    errors_[index] = std::current_exception();
  }
  wall_seconds_[index] += seconds_since(start);
}

void EvaluationBatch::execute_group(const Group& group) {
  const auto solve_start = std::chrono::steady_clock::now();
  const ProbeRecord& lead = records_[group.members.front()];
  std::vector<IrDropResult> solved;
  try {
    if (group.distinct.size() == 1) {
      // Every member drew the same right-hand side: one scalar solve,
      // shared bit-exactly (a one-column panel would be the same solve
      // with extra bookkeeping).
      solved.push_back(solve_irdrop(*lead.assembled, lead.legs,
                                    records_[group.distinct[0]].sinks,
                                    lead.solve_options));
    } else {
      std::vector<Vector> sink_maps;
      sink_maps.reserve(group.distinct.size());
      for (std::size_t m : group.distinct) {
        sink_maps.push_back(records_[m].sinks);
      }
      IrDropOptions options = lead.solve_options;
      options.batch_block = config_.block;
      solved = solve_irdrop_batch(*lead.assembled, lead.legs, sink_maps,
                                  options);
    }
  } catch (...) {
    // Group solve failed: take the scalar path per member, which
    // reproduces the legacy behaviour — and its per-point errors —
    // exactly.
    for (std::size_t m : group.members) execute_scalar(m);
    return;
  }
  const double shared_seconds =
      seconds_since(solve_start) /
      static_cast<double>(group.members.size());
  for (std::size_t k = 0; k < group.members.size(); ++k) {
    const std::size_t m = group.members[k];
    const auto start = std::chrono::steady_clock::now();
    replay(m, solved[group.rhs_of_member[k]]);
    wall_seconds_[m] += shared_seconds + seconds_since(start);
  }
}

ExplorationEntry& EvaluationBatch::entry(std::size_t index) {
  return entries_[index];
}

std::exception_ptr EvaluationBatch::error(std::size_t index) const {
  return errors_[index];
}

double EvaluationBatch::wall_seconds(std::size_t index) const {
  return wall_seconds_[index];
}

void EvaluationBatch::rethrow_first_error() const {
  for (const std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<ExplorationEntry> evaluate_batch_with_exclusion(
    const PowerDeliverySpec& spec, std::vector<EvaluationPoint> points,
    const BatchConfig& config, BatchStats* stats) {
  // A shared assembly cache makes same-operator detection cheap (pointer
  // identity) and mesh assembly once-per-geometry; wiring it here changes
  // no bits (cached assembly is identical to per-call assembly).
  MeshSolveCache cache;
  for (EvaluationPoint& point : points) {
    if (point.options.mesh_cache == nullptr) {
      point.options.mesh_cache = &cache;
    }
  }
  EvaluationBatch batch(spec, std::move(points), config);
  batch.run();
  batch.rethrow_first_error();
  if (stats != nullptr) *stats = batch.stats();
  std::vector<ExplorationEntry> entries;
  entries.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    entries.push_back(std::move(batch.entry(i)));
  }
  return entries;
}

}  // namespace vpd
