// Design advisor: ranks explored (architecture, topology) combinations and
// runs sensitivity sweeps over the system parameters — the "tradeoff-aware
// exploration of the power delivery architecture space" the paper calls
// for in Section II.
#pragma once

#include <string>
#include <vector>

#include "vpd/core/explorer.hpp"

namespace vpd {

struct Recommendation {
  ArchitectureKind architecture{};
  std::optional<TopologyKind> topology;
  double loss_fraction{0.0};
  double efficiency{0.0};
  std::string rationale;
};

/// Feasible combinations ranked by ascending total loss.
std::vector<Recommendation> rank_architectures(
    const ExplorationResult& result);

/// The single best feasible combination. Throws InfeasibleDesign when
/// nothing is feasible.
Recommendation recommend(const ExplorationResult& result);

struct ParameterSweepPoint {
  double parameter{0.0};
  double loss_fraction{0.0};
  bool feasible{true};
};

/// Loss fraction vs total system power for one combination.
std::vector<ParameterSweepPoint> sweep_power(const PowerDeliverySpec& base,
                                    ArchitectureKind architecture,
                                    TopologyKind topology,
                                    const std::vector<double>& watts,
                                    const EvaluationOptions& options = {});

/// Loss fraction vs POL-rail distribution sheet resistance (the model's
/// main calibration knob) for one combination.
std::vector<ParameterSweepPoint> sweep_sheet_resistance(
    const PowerDeliverySpec& spec, ArchitectureKind architecture,
    TopologyKind topology, const std::vector<double>& ohms_per_square,
    const EvaluationOptions& options = {});

/// Outcome of a VR-count optimization.
struct VrCountChoice {
  unsigned count{0};
  double loss_fraction{0.0};
  bool within_rating{false};
  /// Losses at every candidate count, for reporting.
  std::vector<ParameterSweepPoint> curve;
};

/// Finds the final-stage VR count minimizing total loss for one
/// combination, scanning [min_count, max_count]. More VRs cut the
/// per-VR conduction loss (I^2/N) but add fixed switching loss (N x k0)
/// and placement pressure — the optimum is interior. Counts that violate
/// the rating or cannot be placed are kept in the curve but never win.
/// Throws InfeasibleDesign if no candidate is feasible.
VrCountChoice optimize_vr_count(const PowerDeliverySpec& spec,
                                ArchitectureKind architecture,
                                TopologyKind topology, unsigned min_count,
                                unsigned max_count,
                                const EvaluationOptions& options = {});

}  // namespace vpd
