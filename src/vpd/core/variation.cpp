#include "vpd/core/variation.hpp"

#include <cmath>
#include <vector>

#include "vpd/common/error.hpp"
#include "vpd/common/rng.hpp"

namespace vpd {

namespace {

/// Lognormal multiplier with median 1 and shape sigma.
double lognormal(Rng& rng, double sigma) {
  return std::exp(sigma * rng.normal());
}

}  // namespace

EfficiencyDistribution sample_converter_efficiency(
    const QuadraticLossModel& model, Voltage v_out, Current load,
    double target, const ConverterTolerance& tolerance,
    std::size_t samples, std::uint64_t seed) {
  VPD_REQUIRE(samples >= 2, "need at least 2 samples");
  VPD_REQUIRE(target > 0.0 && target < 1.0, "target outside (0,1)");
  VPD_REQUIRE(tolerance.fixed_loss_sigma >= 0.0 &&
                  tolerance.conduction_loss_sigma >= 0.0,
              "negative tolerance");
  Rng rng(seed);
  std::vector<double> peaks, at_load;
  peaks.reserve(samples);
  at_load.reserve(samples);
  std::size_t pass = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const QuadraticLossModel perturbed = model.scaled(
        lognormal(rng, tolerance.fixed_loss_sigma),
        lognormal(rng, tolerance.conduction_loss_sigma));
    peaks.push_back(perturbed.peak_efficiency(v_out));
    const double eta = perturbed.efficiency(load, v_out);
    at_load.push_back(eta);
    if (eta >= target) ++pass;
  }
  EfficiencyDistribution d;
  d.peak_efficiency = summarize(std::move(peaks));
  d.efficiency_at_load = summarize(std::move(at_load));
  d.yield = static_cast<double>(pass) / static_cast<double>(samples);
  d.samples = samples;
  return d;
}

LossDistribution sample_architecture_loss(
    const PowerDeliverySpec& spec, ArchitectureKind architecture,
    TopologyKind topology, DeviceTechnology tech,
    const EvaluationOptions& base_options, double target_loss_fraction,
    const SystemTolerance& tolerance, std::size_t samples,
    std::uint64_t seed) {
  VPD_REQUIRE(samples >= 2, "need at least 2 samples");
  VPD_REQUIRE(target_loss_fraction > 0.0, "target must be positive");
  Rng rng(seed);
  std::vector<double> fractions;
  fractions.reserve(samples);
  std::size_t pass = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    EvaluationOptions opts = base_options;
    opts.distribution_sheet_ohms *= lognormal(rng, tolerance.sheet_sigma);
    opts.vr_attach_series = Resistance{
        opts.vr_attach_series.value * lognormal(rng, tolerance.attach_sigma)};
    const ArchitectureEvaluation eval =
        evaluate_architecture(architecture, spec, topology, tech, opts);
    const double f = eval.loss_fraction(spec.total_power);
    fractions.push_back(f);
    if (eval.within_rating && f <= target_loss_fraction) ++pass;
  }
  LossDistribution d;
  d.loss_fraction = summarize(std::move(fractions));
  d.yield = static_cast<double>(pass) / static_cast<double>(samples);
  d.samples = samples;
  return d;
}

}  // namespace vpd
