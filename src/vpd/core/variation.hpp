// Monte Carlo variation analysis: how manufacturing tolerance on the
// converters and the PPDN propagates into the system loss budget. The
// paper characterizes nominal designs; a deployable methodology also has
// to bound the spread — this module samples lognormal perturbations of
// the dominant loss parameters and reports distributions and yield.
#pragma once

#include <cstdint>

#include "vpd/arch/evaluator.hpp"
#include "vpd/common/statistics.hpp"
#include "vpd/converters/loss_model.hpp"
#include "vpd/core/spec.hpp"

namespace vpd {

/// Relative (lognormal sigma) tolerances on a converter's loss terms.
struct ConverterTolerance {
  double fixed_loss_sigma{0.10};       // gate/Coss/magnetics spread
  double conduction_loss_sigma{0.08};  // Rds_on / DCR spread
};

struct EfficiencyDistribution {
  Summary peak_efficiency;
  Summary efficiency_at_load;
  /// Fraction of samples meeting `target` at the load point.
  double yield{0.0};
  std::size_t samples{0};
};

/// Samples perturbed copies of `model` and evaluates the efficiency at
/// the peak and at `load`; yield counts eta(load) >= target.
EfficiencyDistribution sample_converter_efficiency(
    const QuadraticLossModel& model, Voltage v_out, Current load,
    double target, const ConverterTolerance& tolerance,
    std::size_t samples = 1000, std::uint64_t seed = 1);

/// Relative tolerances on the PPDN model's calibrated parameters.
struct SystemTolerance {
  double sheet_sigma{0.15};
  double attach_sigma{0.20};
};

struct LossDistribution {
  Summary loss_fraction;
  /// Fraction of samples with loss fraction <= target.
  double yield{0.0};
  std::size_t samples{0};
};

/// Samples perturbed PPDN parameters around `base_options` and evaluates
/// the architecture each time. Samples where the per-VR rating is
/// violated are counted as yield failures.
LossDistribution sample_architecture_loss(
    const PowerDeliverySpec& spec, ArchitectureKind architecture,
    TopologyKind topology, DeviceTechnology tech,
    const EvaluationOptions& base_options, double target_loss_fraction,
    const SystemTolerance& tolerance, std::size_t samples = 100,
    std::uint64_t seed = 1);

}  // namespace vpd
