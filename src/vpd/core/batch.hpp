// Batch-first evaluation: the group-detecting front end that routes many
// evaluation points through the multi-RHS block solver (solve_irdrop_batch)
// instead of one scalar solve per point.
//
// An EvaluationBatch runs in three phases:
//
//   1. probe   — each point's evaluation runs up to its distribution solve;
//                a DistributionSolveHook records the fully assembled solve
//                request (operator, VR legs, sink vector, solve options)
//                and aborts the evaluation. Points that never reach a
//                distribution solve (A0, pre-solve exclusions) finish
//                outright here.
//   2. plan    — probed requests are grouped by stamped operator: identical
//                assembled mesh and VR legs with identical solve options,
//                differing only in the sink vector (sink-map variants,
//                fault load scalings, two-stage intermediate currents).
//                Grouping is deterministic in input order and independent
//                of thread count or mesh-cache wiring. Within a group,
//                value-identical sink vectors deduplicate onto one shared
//                scalar solve (bit-identical to solving each separately).
//   3. execute — each multi-point group solves its distinct right-hand
//                sides through solve_irdrop_batch (block-CG panels by
//                default; a sequential loop bit-identical to the scalar
//                path when BatchConfig::block is false) and replays every
//                member's evaluation with the injected result. Singleton
//                groups fall back to the plain scalar evaluation.
//
// Correctness contract: with block=false every entry is bit-identical to a
// scalar evaluate_with_exclusion of the same point. With block=true (the
// default) grouped solves run as certified block-CG panels — the same
// backward-error tolerance, not the same bits; deduplicated and singleton
// points stay bit-identical in both modes. Errors surface per point, the
// first one in input order rethrown by rethrow_first_error().
#pragma once

#include <cstddef>
#include <exception>
#include <optional>
#include <vector>

#include "vpd/core/explorer.hpp"

namespace vpd {

/// One point of a batch: the same coordinates evaluate_with_exclusion
/// takes. `options.mesh_cache` is honoured (a shared cache makes probe
/// grouping cheap via pointer identity, but grouping works without one);
/// `options.solve_hook` is overwritten by the batch engine.
struct EvaluationPoint {
  ArchitectureKind architecture{};
  std::optional<TopologyKind> topology;  // nullopt only for A0
  DeviceTechnology tech{DeviceTechnology::kGalliumNitride};
  EvaluationOptions options;
};

struct BatchConfig {
  /// Solve grouped points as block-CG panels (counts cg_block_panels /
  /// cg_block_columns; certified backward error, not bit-identical to the
  /// loop). false runs each group as a sequential loop over its distinct
  /// right-hand sides, bit-identical to the scalar path.
  bool block{true};
  /// Minimum members for a group to solve together; smaller groups fall
  /// back to the scalar path. >= 2 (a 1-panel is just a scalar solve).
  std::size_t min_group_size{2};
};

/// Deterministic accounting of one batch run (plan() fills every field;
/// execute() never changes them).
struct BatchStats {
  std::size_t points{0};          // batch size
  std::size_t groups{0};          // multi-point same-operator groups
  std::size_t grouped_points{0};  // points solved through a group
  std::size_t scalar_points{0};   // singletons + pre-solve completions
  /// Distinct right-hand sides solved through solve_irdrop_batch.
  std::size_t panel_columns{0};
  /// Group members whose sink vector matched another member's exactly and
  /// shared its solve (bit-identical to solving twice).
  std::size_t deduped_solves{0};

  BatchStats& operator+=(const BatchStats& other);
};

class EvaluationBatch {
 public:
  /// Validates the spec and takes ownership of the points.
  EvaluationBatch(PowerDeliverySpec spec, std::vector<EvaluationPoint> points,
                  BatchConfig config = {});

  EvaluationBatch(const EvaluationBatch&) = delete;
  EvaluationBatch& operator=(const EvaluationBatch&) = delete;

  std::size_t size() const { return points_.size(); }

  /// Phase 1: probe point `index`. Thread-safe for distinct indices; call
  /// exactly once per point before plan(). Never throws — failures land in
  /// error(index).
  void probe(std::size_t index);

  /// Phase 2: group the probed requests. Single-threaded; call after every
  /// probe() has returned. Returns the number of execution units.
  std::size_t plan();

  std::size_t unit_count() const { return units_.size(); }

  /// Phase 3: execute unit `unit` (a whole group or one scalar point).
  /// Thread-safe for distinct units. Never throws — failures land in the
  /// error slots of the points the unit covers.
  void execute(std::size_t unit);

  /// Serial convenience: probe everything, plan, execute every unit.
  void run();

  /// The finished entry for point `index`; valid once the point's unit has
  /// executed and error(index) is null. Mutable so callers can move it out.
  ExplorationEntry& entry(std::size_t index);
  std::exception_ptr error(std::size_t index) const;
  /// Wall time attributed to the point: its probe plus its share of the
  /// group solve plus its replay. Scheduling-dependent, like SweepStats.
  double wall_seconds(std::size_t index) const;

  /// Valid after plan().
  const BatchStats& stats() const { return stats_; }

  /// Rethrows the first recorded per-point error in input order (the
  /// deterministic choice, unlike completion order). No-op when clean.
  void rethrow_first_error() const;

 private:
  /// What the probe hook captured at the point's distribution-solve site.
  struct ProbeRecord {
    /// The evaluation finished (or failed) during probe without reaching a
    /// distribution solve: A0, pre-solve exclusions, pre-solve errors.
    bool completed{false};
    bool has_request{false};
    std::shared_ptr<const AssembledMesh> assembled;
    std::vector<VrAttachment> legs;
    Vector sinks;
    IrDropOptions solve_options;
  };
  /// A same-operator group: members in input order, each mapped onto the
  /// deduplicated distinct right-hand sides (owned by their first member).
  struct Group {
    std::vector<std::size_t> members;
    std::vector<std::size_t> rhs_of_member;  // member slot -> distinct slot
    std::vector<std::size_t> distinct;       // distinct slot -> owning member
  };
  struct Unit {
    bool is_group{false};
    std::size_t index{0};  // group index when is_group, else point index
  };

  void execute_scalar(std::size_t index);
  void execute_group(const Group& group);
  void replay(std::size_t index, IrDropResult result);

  PowerDeliverySpec spec_;
  std::vector<EvaluationPoint> points_;
  BatchConfig config_;
  std::vector<ProbeRecord> records_;
  std::vector<ExplorationEntry> entries_;
  std::vector<std::exception_ptr> errors_;
  std::vector<double> wall_seconds_;
  std::vector<Group> groups_;
  std::vector<Unit> units_;
  BatchStats stats_;
};

/// One-call batch evaluation with the explorer's exclusion rule: probes,
/// groups and executes serially on the calling thread, wiring a private
/// MeshSolveCache into points that have none (cached assembly is
/// numerically identical to per-call assembly). Returns entries in input
/// order; rethrows the first per-point error in input order. `stats`, when
/// non-null, receives the batch accounting.
std::vector<ExplorationEntry> evaluate_batch_with_exclusion(
    const PowerDeliverySpec& spec, std::vector<EvaluationPoint> points,
    const BatchConfig& config = {}, BatchStats* stats = nullptr);

}  // namespace vpd
