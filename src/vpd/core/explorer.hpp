// Architecture-space exploration: evaluates every (architecture, topology)
// combination the paper's Fig. 7 covers, applying the paper's exclusion
// rule (a topology whose required per-VR current exceeds its published
// rating is reported N/A rather than silently extrapolated — the 3LHD
// case at ~20 A per VR).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "vpd/arch/evaluator.hpp"
#include "vpd/arch/report.hpp"
#include "vpd/core/spec.hpp"

namespace vpd {

struct ExplorationEntry {
  ArchitectureKind architecture{};
  std::optional<TopologyKind> topology;  // nullopt for A0
  /// Absent when the paper's exclusion rule applies (rating exceeded).
  std::optional<ArchitectureEvaluation> evaluation;
  /// The flagged, extrapolated evaluation for excluded combinations.
  std::optional<ArchitectureEvaluation> extrapolated;
  std::string exclusion_reason;

  bool excluded() const { return !evaluation.has_value(); }
};

struct ExplorationResult {
  PowerDeliverySpec spec;
  std::vector<ExplorationEntry> entries;

  /// Entry lookup; throws InvalidArgument when absent.
  const ExplorationEntry& find(
      ArchitectureKind arch,
      std::optional<TopologyKind> topo = std::nullopt) const;
};

/// Evaluates one (architecture, topology, tech) combination with the
/// paper's exclusion rule applied: InfeasibleDesign and over-rating
/// results become excluded entries (with the flagged extrapolation kept
/// for inspection) instead of throwing. This is the single evaluation
/// path shared by ArchitectureExplorer and SweepRunner, so a parallel
/// sweep is bit-identical to a serial exploration of the same points.
ExplorationEntry evaluate_with_exclusion(
    const PowerDeliverySpec& spec, ArchitectureKind architecture,
    std::optional<TopologyKind> topology, DeviceTechnology tech,
    const EvaluationOptions& options);

class ArchitectureExplorer {
 public:
  explicit ArchitectureExplorer(PowerDeliverySpec spec,
                                EvaluationOptions options = {});

  const PowerDeliverySpec& spec() const { return spec_; }
  const EvaluationOptions& options() const { return options_; }

  /// Full sweep: A0 once, then every VPD architecture x topology.
  ExplorationResult explore(
      DeviceTechnology tech = DeviceTechnology::kGalliumNitride) const;

  /// Single combination with the exclusion rule applied.
  ExplorationEntry evaluate(
      ArchitectureKind architecture, std::optional<TopologyKind> topology,
      DeviceTechnology tech = DeviceTechnology::kGalliumNitride) const;

 private:
  PowerDeliverySpec spec_;
  EvaluationOptions options_;
};

}  // namespace vpd
