// The system under study: a high-power, high-current-density integrated
// system fed at 48 V from the PCB. The paper's headline configuration is
// 1 kW delivered to a 500 mm^2 die at 1 V (1 kA, 2 A/mm^2).
#pragma once

#include "vpd/common/units.hpp"

namespace vpd {

struct PowerDeliverySpec {
  /// Power consumed at the points of load (the paper normalizes loss
  /// percentages to this 1 kW budget).
  Power total_power{Power{1000.0}};
  Voltage pcb_voltage{Voltage{48.0}};
  Voltage die_voltage{Voltage{1.0}};
  Area die_area{Area{500e-6}};

  Current die_current() const;
  CurrentDensity current_density() const;
  /// Side of the (square) die.
  Length die_side() const;
  /// Input current drawn from the 48 V feed for a given delivered power.
  Current input_current(Power input_power) const;

  /// Throws InvalidArgument unless all quantities are positive and
  /// pcb_voltage > die_voltage.
  void validate() const;
};

/// The paper's headline system: 1 kW, 48 V in, 1 V / 1 kA die, 500 mm^2.
PowerDeliverySpec paper_system();

}  // namespace vpd
