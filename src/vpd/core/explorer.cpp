#include "vpd/core/explorer.hpp"

#include "vpd/common/error.hpp"
#include "vpd/core/batch.hpp"

namespace vpd {

const ExplorationEntry& ExplorationResult::find(
    ArchitectureKind arch, std::optional<TopologyKind> topo) const {
  for (const ExplorationEntry& e : entries) {
    if (e.architecture == arch && e.topology == topo) return e;
  }
  throw InvalidArgument(detail::concat(
      "no exploration entry for ", to_string(arch),
      topo ? std::string(" / ") + to_string(*topo) : std::string()));
}

ArchitectureExplorer::ArchitectureExplorer(PowerDeliverySpec spec,
                                           EvaluationOptions options)
    : spec_(spec), options_(options) {
  spec_.validate();
}

ExplorationEntry evaluate_with_exclusion(
    const PowerDeliverySpec& spec, ArchitectureKind architecture,
    std::optional<TopologyKind> topology, DeviceTechnology tech,
    const EvaluationOptions& options) {
  ExplorationEntry entry;
  entry.architecture = architecture;
  entry.topology = topology;

  if (architecture == ArchitectureKind::kA0_PcbConversion) {
    entry.evaluation = evaluate_architecture(
        architecture, spec, TopologyKind::kDpmih, tech, options);
    return entry;
  }
  VPD_REQUIRE(topology.has_value(),
              "VPD architectures need a topology selection");

  ArchitectureEvaluation eval;
  try {
    eval = evaluate_architecture(architecture, spec, *topology, tech,
                                 options);
  } catch (const InfeasibleDesign& err) {
    entry.exclusion_reason = err.what();
    return entry;
  }
  if (eval.within_rating) {
    entry.evaluation = std::move(eval);
  } else {
    // The paper's Fig. 7 rule: no published efficiency at the required
    // per-VR current -> the combination is not plotted.
    entry.extrapolated = std::move(eval);
    entry.exclusion_reason = detail::concat(
        to_string(*topology),
        ": required per-VR current exceeds the published rating; "
        "efficiency at that load is not reported (paper excludes this "
        "combination from Fig. 7)");
  }
  return entry;
}

ExplorationEntry ArchitectureExplorer::evaluate(
    ArchitectureKind architecture, std::optional<TopologyKind> topology,
    DeviceTechnology tech) const {
  return evaluate_with_exclusion(spec_, architecture, topology, tech,
                                 options_);
}

ExplorationResult ArchitectureExplorer::explore(DeviceTechnology tech) const {
  // Serial exploration rides the same batch engine as the parallel sweep
  // (core/batch.hpp), so both share one code path end to end: same
  // grouping, same panel routing, same results for the same point list.
  std::vector<EvaluationPoint> points;
  points.push_back(EvaluationPoint{ArchitectureKind::kA0_PcbConversion,
                                   std::nullopt, tech, options_});
  for (ArchitectureKind arch : all_architectures()) {
    if (arch == ArchitectureKind::kA0_PcbConversion) continue;
    for (TopologyKind topo : all_topologies()) {
      points.push_back(EvaluationPoint{arch, topo, tech, options_});
    }
  }
  ExplorationResult result;
  result.spec = spec_;
  result.entries =
      evaluate_batch_with_exclusion(spec_, std::move(points), BatchConfig{});
  return result;
}

}  // namespace vpd
