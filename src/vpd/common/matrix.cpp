#include "vpd/common/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vpd/common/error.hpp"

namespace vpd {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    VPD_REQUIRE(r.size() == cols_, "ragged initializer: row has ", r.size(),
                " columns, expected ", cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  VPD_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch: ",
              rows_, "x", cols_, " vs ", rhs.rows_, "x", rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  VPD_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch: ",
              rows_, "x", cols_, " vs ", rhs.rows_, "x", rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  VPD_REQUIRE(a.cols() == b.rows(), "inner dimension mismatch: ", a.cols(),
              " vs ", b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  VPD_REQUIRE(a.cols() == x.size(), "dimension mismatch: matrix has ",
              a.cols(), " columns, vector has ", x.size());
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  VPD_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix, got ",
              lu_.rows(), "x", lu_.cols());
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    VPD_CHECK_NUMERIC(best > std::numeric_limits<double>::min() * 16,
                      "matrix is singular at column ", k);
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double pivot_value = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / pivot_value;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = size();
  VPD_REQUIRE(b.size() == n, "rhs has ", b.size(), " entries, expected ", n);
  Vector x(n);
  // Apply permutation, forward-substitute L (unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back-substitute U.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

double LuFactorization::determinant() const {
  double d = perm_sign_;
  for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
  return d;
}

double LuFactorization::rcond_estimate() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    const double v = std::fabs(lu_(i, i));
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi == 0.0 ? 0.0 : lo / hi;
}

Vector solve_dense(Matrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

double dot(const Vector& a, const Vector& b) {
  VPD_REQUIRE(a.size() == b.size(), "dot: size mismatch ", a.size(), " vs ",
              b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  VPD_REQUIRE(x.size() == y.size(), "axpy: size mismatch ", x.size(), " vs ",
              y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector operator+(const Vector& a, const Vector& b) {
  VPD_REQUIRE(a.size() == b.size(), "vector +: size mismatch");
  Vector c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

Vector operator-(const Vector& a, const Vector& b) {
  VPD_REQUIRE(a.size() == b.size(), "vector -: size mismatch");
  Vector c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

Vector operator*(double s, const Vector& v) {
  Vector c(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) c[i] = s * v[i];
  return c;
}

}  // namespace vpd
