// Dense linear algebra: row-major Matrix over double, LU factorization with
// partial pivoting, and solve routines. Circuit MNA systems are small and
// dense-ish (tens to a few hundred unknowns); dense LU is the right tool.
// Large sparse SPD systems (PDN meshes) use vpd/common/sparse.hpp instead.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace vpd {

using Vector = std::vector<double>;

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw storage (row-major), useful for tests.
  const std::vector<double>& data() const { return data_; }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  Matrix transposed() const;

  /// Matrix-matrix product. Throws InvalidArgument on shape mismatch.
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  /// Matrix-vector product.
  friend Vector operator*(const Matrix& a, const Vector& x);

  /// Max-abs element; 0 for empty.
  double max_abs() const;

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
/// Factor once, solve many right-hand sides.
class LuFactorization {
 public:
  /// Factors `a`. Throws NumericalError if the matrix is singular to
  /// working precision.
  explicit LuFactorization(Matrix a);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Determinant of the factored matrix (sign-adjusted for pivoting).
  double determinant() const;

  /// Reciprocal condition estimate from pivot magnitudes (cheap heuristic:
  /// min|U_ii| / max|U_ii|). Good enough for detecting near-singularity.
  double rcond_estimate() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_{1};
};

/// One-shot solve of A x = b via LU with partial pivoting.
Vector solve_dense(Matrix a, const Vector& b);

// ---- Vector helpers --------------------------------------------------------

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& v);
double norm_inf(const Vector& v);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(double s, const Vector& v);

}  // namespace vpd
