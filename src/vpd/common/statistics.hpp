// Descriptive statistics over double samples: running accumulator and a
// one-shot summary (min/max/mean/stddev/percentiles). Used by IR-drop
// reports (per-VR current spread) and waveform measurements.
#pragma once

#include <cstddef>
#include <vector>

namespace vpd {

/// Streaming accumulator (Welford's algorithm for variance).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Sample (Bessel-corrected, n-1 divisor) variance; 0 for fewer than 2
  /// samples. The samples here are always a finite draw from a larger
  /// population — VR currents from one design point, Monte-Carlo
  /// variation runs — so the unbiased estimator is the right default,
  /// and it matches how Summary.stddev is consumed downstream.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

struct Summary {
  std::size_t count{0};
  double min{0.0};
  double max{0.0};
  double mean{0.0};
  double stddev{0.0};
  double median{0.0};
  double p05{0.0};
  double p95{0.0};
};

/// One-shot summary. Throws InvalidArgument on an empty sample set.
Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile (q in [0, 1]) of an unsorted sample set.
double percentile(std::vector<double> samples, double q);

}  // namespace vpd
