#include "vpd/common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::min() const {
  VPD_REQUIRE(count_ > 0, "no samples");
  return min_;
}

double RunningStats::max() const {
  VPD_REQUIRE(count_ > 0, "no samples");
  return max_;
}

double RunningStats::mean() const {
  VPD_REQUIRE(count_ > 0, "no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

/// Linear-interpolated percentile over an already-sorted sample set.
double sorted_percentile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double percentile(std::vector<double> samples, double q) {
  VPD_REQUIRE(!samples.empty(), "no samples");
  VPD_REQUIRE(q >= 0.0 && q <= 1.0, "q=", q, " outside [0,1]");
  std::sort(samples.begin(), samples.end());
  return sorted_percentile(samples, q);
}

Summary summarize(std::vector<double> samples) {
  VPD_REQUIRE(!samples.empty(), "no samples");
  RunningStats rs;
  for (double x : samples) rs.add(x);
  Summary s;
  s.count = rs.count();
  s.min = rs.min();
  s.max = rs.max();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  // One sort serves all three percentile reads.
  std::sort(samples.begin(), samples.end());
  s.median = sorted_percentile(samples, 0.5);
  s.p05 = sorted_percentile(samples, 0.05);
  s.p95 = sorted_percentile(samples, 0.95);
  return s;
}

}  // namespace vpd
