// Geometric multigrid preconditioner for regular 2-D mesh Laplacians.
//
// The PDN distribution operators are grid Laplacians (plus diagonal VR
// shunt stamps) on a regular nx x ny lattice, so geometric multigrid is
// nearly free to build: standard coarsening halves each grid dimension,
// prolongation is bilinear interpolation with dyadic weights, restriction
// is its transpose, and coarse operators are Galerkin triple products
// P^T A P. One V(1,1)-cycle with damped-Jacobi smoothing and a dense
// Cholesky coarsest solve is an SPD preconditioner (the damped-Jacobi
// smoother is A-self-adjoint and its damped spectrum stays inside (0, 2)
// on diagonally dominant Laplacians), so CG iteration counts become
// near-independent of mesh size where IC(0) counts grow with refinement.
//
// Mirrors the IC(0) split in sparse.hpp: MgSymbolic is the geometry-only
// analysis (level dimensions, transfer operators, coarse sparsity
// patterns) cached alongside a mesh like IcSymbolic; MgPreconditioner is
// the numeric setup (Galerkin values, smoother diagonals, coarsest
// factor) that lives in a CgWorkspace and is reused across value-identical
// solves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vpd/common/sparse.hpp"

namespace vpd {

/// Geometry-only multigrid hierarchy for an nx x ny grid operator:
/// per-level grid dimensions, bilinear prolongation stencils, restriction
/// adjacency (the transpose view), and the symbolic Galerkin coarse
/// patterns. Depends only on (nx, ny) — never on matrix values — so one
/// MgSymbolic serves every operator stamped on that mesh and is cached
/// alongside the Laplacian exactly like IcSymbolic.
class MgSymbolic {
 public:
  /// Coarsening stops once a level has at most this many nodes (the
  /// remaining system is solved by a direct dense factorization).
  static constexpr std::size_t kCoarsestNodes = 64;

  MgSymbolic() = default;
  /// Builds the hierarchy for an nx x ny grid (nx, ny >= 2, row-major
  /// node numbering ix + iy * nx — the GridMesh convention).
  MgSymbolic(std::size_t nx, std::size_t ny);

  bool empty() const { return levels_.empty(); }
  /// Fine-grid unknowns (nx * ny); 0 when empty.
  std::size_t rows() const {
    return levels_.empty() ? 0 : levels_.front().nx * levels_.front().ny;
  }
  /// Number of grid levels, the fine grid included. At least 1.
  std::size_t level_count() const { return levels_.size(); }

 private:
  friend class MgPreconditioner;

  /// One level of the hierarchy. Level 0 is the fine grid; the coarse
  /// members describe the transfer to level l+1 and are empty on the
  /// coarsest level.
  struct Level {
    std::size_t nx{0};
    std::size_t ny{0};
    // Prolongation P (rows = this level's nodes, cols = coarse nodes),
    // CSR with dyadic weights {1, 1/2, 1/4}: each row interpolates a fine
    // node from its <= 4 surrounding coarse nodes (clamped at the
    // boundary so rows always sum to 1).
    std::vector<std::uint32_t> p_offsets;  // nodes+1
    std::vector<std::uint32_t> p_cols;
    std::vector<double> p_vals;
    // Transpose view (restriction): coarse node I gathers the fine nodes
    // listed in [r_offsets[I], r_offsets[I+1]), fine rows ascending.
    std::vector<std::uint32_t> r_offsets;  // coarse nodes+1
    std::vector<std::uint32_t> r_rows;
    std::vector<double> r_vals;
    // Symbolic Galerkin pattern of the coarse operator P^T A P, CSR with
    // ascending columns and every diagonal structurally present.
    std::vector<std::uint32_t> c_offsets;  // coarse nodes+1
    std::vector<std::uint32_t> c_cols;
  };

  std::vector<Level> levels_;
};

/// Numeric multigrid setup over an MgSymbolic hierarchy. factor()
/// computes the Galerkin coarse values, the damped-Jacobi smoother
/// diagonals and the dense Cholesky factor of the coarsest operator;
/// apply() runs one V(1,1)-cycle, z = M^{-1} r, allocation-free after the
/// first call. Self-contained after factor() like IcPreconditioner: apply
/// reads only state owned by this object, so a setup cached in a
/// CgWorkspace survives the shared MgSymbolic's owner.
class MgPreconditioner {
 public:
  /// Damped-Jacobi relaxation weight (the classic 4/5 for 2-D 5-point
  /// stencils; keeps omega * lambda(D^{-1} A) < 2 on any diagonally
  /// dominant SPD operator, which is what makes the V-cycle SPD).
  static constexpr double kJacobiDamping = 0.8;

  /// Factors `a` over the hierarchy `shared` (must describe a's grid:
  /// shared->rows() == a.rows()). The pattern is copied in, so `shared`
  /// may be destroyed afterwards.
  void factor(const CsrMatrix& a, const MgSymbolic& shared);

  /// z = M^{-1} r: one V(1,1)-cycle. Requires a prior factor(); z is
  /// resized to fit.
  void apply(const Vector& r, Vector& z);

  /// Panel form: r and z hold `width` interleaved right-hand sides
  /// (node-major, r[i * width + j]); each column gets the same V-cycle
  /// arithmetic as a standalone apply(). z must not alias r.
  void apply_panel(const double* r, double* z, std::size_t width);

  bool empty() const { return levels_.empty(); }
  std::size_t level_count() const { return levels_.size(); }

 private:
  struct Level {
    std::size_t n{0};  // unknowns at this level
    // Operator at this level: level 0 aliases nothing (values copied from
    // A); deeper levels are Galerkin products. CSR with u32 indices.
    std::vector<std::uint32_t> a_offsets;
    std::vector<std::uint32_t> a_cols;
    std::vector<double> a_vals;
    std::vector<double> inv_diag;  // 1 / diag(A_l), smoother scaling
    // Transfer operators copied from the symbolic hierarchy (empty on the
    // coarsest level).
    std::vector<std::uint32_t> p_offsets;
    std::vector<std::uint32_t> p_cols;
    std::vector<double> p_vals;
    std::vector<std::uint32_t> r_offsets;
    std::vector<std::uint32_t> r_rows;
    std::vector<double> r_vals;
    // V-cycle scratch (lazily sized): iterate, residual, restricted rhs.
    Vector x, r, rhs;
    std::vector<double> panel_x, panel_r, panel_rhs;
  };

  void cycle(std::size_t level);
  template <std::size_t W>
  void cycle_panel(std::size_t level);

  std::vector<Level> levels_;
  // Dense lower-triangular Cholesky factor of the coarsest operator,
  // row-major n x n (strict upper ignored).
  std::vector<double> coarse_chol_;
  std::size_t coarse_n_{0};
};

}  // namespace vpd
