// Error handling for the vpd library.
//
// Invalid arguments and violated preconditions throw vpd::InvalidArgument;
// numerical failures (singular matrix, non-converged iteration) throw
// vpd::NumericalError; infeasible designs (a constraint the caller asked us
// to satisfy cannot be met) throw vpd::InfeasibleDesign. All derive from
// vpd::Error so callers can catch the library's failures as one family.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vpd {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

class InfeasibleDesign : public Error {
 public:
  explicit InfeasibleDesign(const std::string& what) : Error(what) {}
};

namespace detail {

template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace detail

}  // namespace vpd

/// Precondition check: throws vpd::InvalidArgument with location context.
#define VPD_REQUIRE(cond, ...)                                         \
  do {                                                                 \
    if (!(cond)) {                                                     \
      throw ::vpd::InvalidArgument(::vpd::detail::concat(              \
          __func__, ": requirement `", #cond, "` failed: ",            \
          __VA_ARGS__));                                               \
    }                                                                  \
  } while (false)

/// Numerical-state check: throws vpd::NumericalError.
#define VPD_CHECK_NUMERIC(cond, ...)                                   \
  do {                                                                 \
    if (!(cond)) {                                                     \
      throw ::vpd::NumericalError(                                     \
          ::vpd::detail::concat(__func__, ": ", __VA_ARGS__));         \
    }                                                                  \
  } while (false)
