// 1-D curve utilities: piecewise-linear interpolation with selectable
// out-of-range policy, sample-grid generators, and a tiny root bracketing
// helper. Converter efficiency curves, trend lines, and calibration sweeps
// are all built on these.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace vpd {

/// What a curve does when evaluated outside its knot range.
enum class Extrapolation {
  kClamp,   // hold the boundary value
  kLinear,  // extend the boundary segment's slope
  kThrow,   // InvalidArgument
};

/// Piecewise-linear curve over strictly increasing x knots.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  /// Throws InvalidArgument unless xs is strictly increasing and
  /// xs.size() == ys.size() >= 2.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys,
                  Extrapolation policy = Extrapolation::kClamp);

  double operator()(double x) const;

  double x_min() const { return xs_.front(); }
  double x_max() const { return xs_.back(); }
  std::size_t knot_count() const { return xs_.size(); }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  /// x of the maximum y over the knots (ties: smallest x).
  double argmax() const;
  double max_value() const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  Extrapolation policy_{Extrapolation::kClamp};
};

/// n evenly spaced samples on [lo, hi] inclusive; n >= 2.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// n log-spaced samples on [lo, hi] inclusive; lo, hi > 0; n >= 2.
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Bisection root of f on [lo, hi]; requires a sign change. Throws
/// InvalidArgument if f(lo) and f(hi) have the same sign.
double find_root_bisect(const std::function<double(double)>& f, double lo,
                        double hi, double tol = 1e-12,
                        std::size_t max_iterations = 200);

/// Golden-section minimizer of a unimodal f on [lo, hi].
double minimize_golden(const std::function<double(double)>& f, double lo,
                       double hi, double tol = 1e-10);

}  // namespace vpd
