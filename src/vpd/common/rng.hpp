// Deterministic random-number generation for workload synthesis and
// property-test sweeps. A thin wrapper over a fixed-algorithm PCG32 core so
// results are reproducible across platforms and standard-library versions
// (std::mt19937's distributions are not portable across implementations).
#pragma once

#include <cstdint>

namespace vpd {

/// PCG32 (O'Neill, pcg-random.org), XSH-RR output transform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n > 0.
  std::uint32_t next_below(std::uint32_t n);

  /// Standard normal via Box-Muller.
  double normal();
  double normal(double mean, double stddev);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool have_spare_{false};
  double spare_{0.0};
};

}  // namespace vpd
