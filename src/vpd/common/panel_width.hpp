// Compile-time width dispatch for the multi-RHS panel kernels. The panel
// layout is node-major interleaved with the width as the innermost
// dimension; with the width a runtime value the compiler keeps the
// per-column accumulators in memory and the inner loops un-unrolled,
// which costs the panel sweeps their entire advantage over repeated
// single-vector sweeps. Dispatching once per kernel call onto a
// constexpr width turns every inner loop into straight-line register
// code. Internal header: included by the kernel translation units only.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "vpd/common/error.hpp"

namespace vpd {
namespace detail {

/// Calls f(std::integral_constant<std::size_t, width>{}) for widths
/// 1..kMaxPanelWidth. The callee reads the width as a constexpr value.
inline constexpr std::size_t kMaxPanelWidth = 16;

template <typename F, std::size_t... Ws>
void dispatch_panel_width_impl(std::size_t width, F&& f,
                               std::index_sequence<Ws...>) {
  const bool hit =
      ((width == Ws + 1
            ? (f(std::integral_constant<std::size_t, Ws + 1>{}), true)
            : false) ||
       ...);
  VPD_REQUIRE(hit, "panel width ", width, " outside [1, ", kMaxPanelWidth,
              "]");
}

template <typename F>
void dispatch_panel_width(std::size_t width, F&& f) {
  dispatch_panel_width_impl(width, std::forward<F>(f),
                            std::make_index_sequence<kMaxPanelWidth>{});
}

}  // namespace detail
}  // namespace vpd
