// Compile-time dimensional analysis for the small set of SI quantities the
// power-delivery models traffic in. A Quantity carries its dimension as
// template parameters (mass, length, time, current); arithmetic between
// quantities produces the correctly-dimensioned result at compile time, so
// `Voltage v = current * resistance;` type-checks and
// `Voltage v = current * capacitance;` does not.
//
// Quantities are thin wrappers over double: trivially copyable, no runtime
// cost. Numeric kernels (matrix solvers, meshes) use raw double internally;
// module boundaries use these types.
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace vpd {

/// SI dimension exponents: kg^M · m^L · s^T · A^I.
template <int M, int L, int T, int I>
struct Quantity {
  double value{0.0};

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity operator-() const { return Quantity{-value}; }
  constexpr Quantity& operator+=(Quantity rhs) {
    value += rhs.value;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs) {
    value -= rhs.value;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value /= s;
    return *this;
  }
};

template <int M, int L, int T, int I>
constexpr Quantity<M, L, T, I> operator+(Quantity<M, L, T, I> a,
                                         Quantity<M, L, T, I> b) {
  return Quantity<M, L, T, I>{a.value + b.value};
}

template <int M, int L, int T, int I>
constexpr Quantity<M, L, T, I> operator-(Quantity<M, L, T, I> a,
                                         Quantity<M, L, T, I> b) {
  return Quantity<M, L, T, I>{a.value - b.value};
}

template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
constexpr auto operator*(Quantity<M1, L1, T1, I1> a,
                         Quantity<M2, L2, T2, I2> b) {
  if constexpr (M1 + M2 == 0 && L1 + L2 == 0 && T1 + T2 == 0 && I1 + I2 == 0) {
    return a.value * b.value;  // dimensionless result decays to double
  } else {
    return Quantity<M1 + M2, L1 + L2, T1 + T2, I1 + I2>{a.value * b.value};
  }
}

template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
constexpr auto operator/(Quantity<M1, L1, T1, I1> a,
                         Quantity<M2, L2, T2, I2> b) {
  if constexpr (M1 - M2 == 0 && L1 - L2 == 0 && T1 - T2 == 0 && I1 - I2 == 0) {
    return a.value / b.value;
  } else {
    return Quantity<M1 - M2, L1 - L2, T1 - T2, I1 - I2>{a.value / b.value};
  }
}

template <int M, int L, int T, int I>
constexpr Quantity<M, L, T, I> operator*(double s, Quantity<M, L, T, I> q) {
  return Quantity<M, L, T, I>{s * q.value};
}

template <int M, int L, int T, int I>
constexpr Quantity<M, L, T, I> operator*(Quantity<M, L, T, I> q, double s) {
  return Quantity<M, L, T, I>{q.value * s};
}

template <int M, int L, int T, int I>
constexpr Quantity<M, L, T, I> operator/(Quantity<M, L, T, I> q, double s) {
  return Quantity<M, L, T, I>{q.value / s};
}

template <int M, int L, int T, int I>
constexpr auto operator/(double s, Quantity<M, L, T, I> q) {
  return Quantity<-M, -L, -T, -I>{s / q.value};
}

template <int M, int L, int T, int I>
std::ostream& operator<<(std::ostream& os, Quantity<M, L, T, I> q) {
  return os << q.value;
}

// ---- Named quantities -----------------------------------------------------

using Dimensionless = double;
using Mass = Quantity<1, 0, 0, 0>;          // kg
using Length = Quantity<0, 1, 0, 0>;        // m
using Area = Quantity<0, 2, 0, 0>;          // m^2
using Volume = Quantity<0, 3, 0, 0>;        // m^3
using Seconds = Quantity<0, 0, 1, 0>;       // s
using Frequency = Quantity<0, 0, -1, 0>;    // Hz
using Current = Quantity<0, 0, 0, 1>;       // A
using Charge = Quantity<0, 0, 1, 1>;        // C = A*s
using Voltage = Quantity<1, 2, -3, -1>;     // V = kg*m^2/(s^3*A)
using Power = Quantity<1, 2, -3, 0>;        // W
using Energy = Quantity<1, 2, -2, 0>;       // J
using Resistance = Quantity<1, 2, -3, -2>;  // Ohm = V/A
using Conductance = Quantity<-1, -2, 3, 2>; // S
using Capacitance = Quantity<-1, -2, 4, 2>; // F
using Inductance = Quantity<1, 2, -2, -2>;  // H
using Resistivity = Quantity<1, 3, -3, -2>; // Ohm*m
using CurrentDensity = Quantity<0, -2, 0, 1>; // A/m^2
using PowerDensity = Quantity<1, 0, -3, 0>;   // W/m^2

// ---- Literals -------------------------------------------------------------
//
// Base-unit literals plus the scaled units the packaging domain uses
// (millimetres, micrometres, milliohms, microhenries, ...).

namespace literals {

constexpr Voltage operator""_V(long double v) {
  return Voltage{static_cast<double>(v)};
}
constexpr Voltage operator""_V(unsigned long long v) {
  return Voltage{static_cast<double>(v)};
}
constexpr Voltage operator""_mV(long double v) {
  return Voltage{static_cast<double>(v) * 1e-3};
}
constexpr Current operator""_A(long double v) {
  return Current{static_cast<double>(v)};
}
constexpr Current operator""_A(unsigned long long v) {
  return Current{static_cast<double>(v)};
}
constexpr Current operator""_mA(long double v) {
  return Current{static_cast<double>(v) * 1e-3};
}
constexpr Power operator""_W(long double v) {
  return Power{static_cast<double>(v)};
}
constexpr Power operator""_W(unsigned long long v) {
  return Power{static_cast<double>(v)};
}
constexpr Power operator""_kW(long double v) {
  return Power{static_cast<double>(v) * 1e3};
}
constexpr Resistance operator""_Ohm(long double v) {
  return Resistance{static_cast<double>(v)};
}
constexpr Resistance operator""_mOhm(long double v) {
  return Resistance{static_cast<double>(v) * 1e-3};
}
constexpr Resistance operator""_uOhm(long double v) {
  return Resistance{static_cast<double>(v) * 1e-6};
}
constexpr Length operator""_m(long double v) {
  return Length{static_cast<double>(v)};
}
constexpr Length operator""_mm(long double v) {
  return Length{static_cast<double>(v) * 1e-3};
}
constexpr Length operator""_um(long double v) {
  return Length{static_cast<double>(v) * 1e-6};
}
constexpr Area operator""_mm2(long double v) {
  return Area{static_cast<double>(v) * 1e-6};
}
constexpr Area operator""_mm2(unsigned long long v) {
  return Area{static_cast<double>(v) * 1e-6};
}
constexpr Area operator""_um2(long double v) {
  return Area{static_cast<double>(v) * 1e-12};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_us(long double v) {
  return Seconds{static_cast<double>(v) * 1e-6};
}
constexpr Seconds operator""_ns(long double v) {
  return Seconds{static_cast<double>(v) * 1e-9};
}
constexpr Frequency operator""_Hz(long double v) {
  return Frequency{static_cast<double>(v)};
}
constexpr Frequency operator""_kHz(long double v) {
  return Frequency{static_cast<double>(v) * 1e3};
}
constexpr Frequency operator""_MHz(long double v) {
  return Frequency{static_cast<double>(v) * 1e6};
}
constexpr Capacitance operator""_F(long double v) {
  return Capacitance{static_cast<double>(v)};
}
constexpr Capacitance operator""_uF(long double v) {
  return Capacitance{static_cast<double>(v) * 1e-6};
}
constexpr Capacitance operator""_nF(long double v) {
  return Capacitance{static_cast<double>(v) * 1e-9};
}
constexpr Inductance operator""_H(long double v) {
  return Inductance{static_cast<double>(v)};
}
constexpr Inductance operator""_uH(long double v) {
  return Inductance{static_cast<double>(v) * 1e-6};
}
constexpr Inductance operator""_nH(long double v) {
  return Inductance{static_cast<double>(v) * 1e-9};
}
constexpr Charge operator""_nC(long double v) {
  return Charge{static_cast<double>(v) * 1e-9};
}

}  // namespace literals

// ---- Convenience accessors in engineering units ---------------------------

constexpr double as_mm2(Area a) { return a.value * 1e6; }
constexpr double as_um2(Area a) { return a.value * 1e12; }
constexpr double as_mm(Length l) { return l.value * 1e3; }
constexpr double as_um(Length l) { return l.value * 1e6; }
constexpr double as_mOhm(Resistance r) { return r.value * 1e3; }
constexpr double as_uOhm(Resistance r) { return r.value * 1e6; }
constexpr double as_MHz(Frequency f) { return f.value * 1e-6; }
constexpr double as_uH(Inductance l) { return l.value * 1e6; }
constexpr double as_uF(Capacitance c) { return c.value * 1e6; }
constexpr double as_A_per_mm2(CurrentDensity j) { return j.value * 1e-6; }

}  // namespace vpd
