// Sparse linear algebra for PDN mesh solves: triplet assembly, CSR storage,
// matrix-vector product, and a Jacobi-preconditioned conjugate-gradient
// solver for symmetric positive-definite systems. Power-grid IR-drop
// matrices (Laplacian + source shunts) are SPD, so CG is the natural solver
// and scales to meshes with 10^5+ nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "vpd/common/matrix.hpp"  // for Vector

namespace vpd {

/// Coordinate-format accumulator. Duplicate (row, col) entries are summed
/// when compiled to CSR — exactly the stamping pattern MNA/mesh assembly
/// wants.
class TripletList {
 public:
  TripletList(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t row, std::size_t col, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entry_count() const { return entries_.size(); }

  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Entry> entries_;
};

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  /// Compiles a triplet list, summing duplicates and dropping exact zeros.
  explicit CsrMatrix(const TripletList& triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzero_count() const { return values_.size(); }

  /// y = A x
  Vector multiply(const Vector& x) const;

  /// Element lookup (O(log nnz_row)); returns 0 for structural zeros.
  double at(std::size_t row, std::size_t col) const;

  /// Diagonal entries (0 where structurally absent).
  Vector diagonal() const;

  /// True if A and A^T agree to within `tol` on every stored entry.
  bool is_symmetric(double tol = 1e-12) const;

  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

/// Outcome of an iterative solve.
struct CgResult {
  Vector x;
  std::size_t iterations{0};
  double residual_norm{0.0};  // ||b - A x||_2 at exit
  bool converged{false};
};

struct CgOptions {
  std::size_t max_iterations{0};  // 0 => 10 * n
  double relative_tolerance{1e-10};
};

/// Jacobi-preconditioned conjugate gradient for SPD systems.
/// Throws InvalidArgument on shape mismatch and NumericalError if the
/// iteration breaks down (non-SPD matrix).
CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options = {});

}  // namespace vpd
