// Sparse linear algebra for PDN mesh solves: triplet assembly, CSR storage,
// matrix-vector product, and a Jacobi-preconditioned conjugate-gradient
// solver for symmetric positive-definite systems. Power-grid IR-drop
// matrices (Laplacian + source shunts) are SPD, so CG is the natural solver
// and scales to meshes with 10^5+ nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "vpd/common/matrix.hpp"  // for Vector

namespace vpd {

/// Coordinate-format accumulator. Duplicate (row, col) entries are summed
/// when compiled to CSR — exactly the stamping pattern MNA/mesh assembly
/// wants.
class TripletList {
 public:
  TripletList(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t row, std::size_t col, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entry_count() const { return entries_.size(); }

  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Entry> entries_;
};

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  /// Compiles a triplet list, summing duplicates and dropping exact zeros.
  explicit CsrMatrix(const TripletList& triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzero_count() const { return values_.size(); }

  /// y = A x
  Vector multiply(const Vector& x) const;

  /// Element lookup (O(log nnz_row)); returns 0 for structural zeros.
  double at(std::size_t row, std::size_t col) const;

  /// In-place update of an existing entry: values[(row, col)] += delta.
  /// Throws InvalidArgument if (row, col) is a structural zero — the
  /// sparsity pattern is fixed at construction. Lets callers reuse one
  /// assembled matrix (e.g. a cached mesh Laplacian) across solves that
  /// differ only in shunt stamps.
  void add_to_entry(std::size_t row, std::size_t col, double delta);

  /// Diagonal entries (0 where structurally absent).
  Vector diagonal() const;

  /// ||A||_inf: maximum absolute row sum. Used by solve_cg to convert
  /// tolerances into attainable normwise-backward-error targets.
  double infinity_norm() const;

  /// True if A and A^T agree to within `tol` on every stored entry.
  bool is_symmetric(double tol = 1e-12) const;

  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

/// Outcome of an iterative solve.
struct CgResult {
  Vector x;
  std::size_t iterations{0};
  double residual_norm{0.0};  // true ||b - A x||_2 at exit
  bool converged{false};
};

struct CgOptions {
  std::size_t max_iterations{0};  // 0 => 10 * n
  double relative_tolerance{1e-10};
  /// Warm-start iterate; empty = start from zero. A good x0 (the previous
  /// solution on the same mesh, or the rail voltage for an IR-drop solve)
  /// cuts the iteration count dramatically because the residual starts at
  /// the perturbation scale instead of ||b||.
  Vector x0;
};

/// Jacobi-preconditioned conjugate gradient for SPD systems.
/// Convergence is declared against the *true* residual b - A x: when the
/// recurrence residual reaches the target the solver recomputes the exact
/// residual (the two drift apart over many iterations) and keeps iterating
/// from the corrected value if the target is not genuinely met.
/// The certified criterion is
///   ||b - A x||_2 <= rtol * (||A||_inf ||x||_2 + ||b||_2),
/// the normwise backward error: x then solves a system perturbed by a
/// relative rtol. For well-scaled systems ||A|| ||x|| ~ ||b|| and this
/// matches the familiar rtol * ||b|| test; for stiff systems (mixing
/// conductances many orders apart) rtol * ||b|| can sit below the
/// floating-point rounding floor eps * ||A|| ||x|| of the residual
/// itself, where no iterate could ever pass a b-relative test.
/// Throws InvalidArgument on shape mismatch and NumericalError if the
/// iteration breaks down (non-SPD matrix).
CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options = {});

}  // namespace vpd
