// Sparse linear algebra for PDN mesh solves: triplet assembly, CSR storage,
// in-place matrix-vector products, and a preconditioned conjugate-gradient
// solver for symmetric positive-definite systems. Power-grid IR-drop
// matrices (Laplacian + source shunts) are SPD, so CG is the natural solver
// and scales to meshes with 10^5+ nodes. Three preconditioners are offered:
// Jacobi (diagonal scaling), IC(0) (incomplete Cholesky with no fill,
// falling back to SSOR when the factorization breaks down), and geometric
// multigrid (multigrid.hpp; near-mesh-size-independent iteration counts),
// selectable via CgOptions. A CgWorkspace makes repeated solves
// allocation-free and reuses the factorization when the matrix values have
// not changed; solve_cg_block solves panels of right-hand sides together
// through a true block-CG recurrence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "vpd/common/matrix.hpp"  // for Vector
#include "vpd/obs/trace.hpp"

namespace vpd {

class MgSymbolic;        // multigrid.hpp (which includes this header)
class MgPreconditioner;  // multigrid.hpp

/// Widest panel the multi-RHS block solver processes at once. Batches with
/// more right-hand sides are chunked; 16 doubles is two cache lines per
/// node, small enough for stack accumulators in the blocked sweeps and
/// wide enough to saturate SpMM memory bandwidth.
inline constexpr std::size_t kMaxCgBlockWidth = 16;

/// Coordinate-format accumulator. Duplicate (row, col) entries are summed
/// when compiled to CSR — exactly the stamping pattern MNA/mesh assembly
/// wants. Exact zeros are kept: a severed mesh edge (conductance scale 0)
/// must keep its slot in the compiled sparsity pattern so later shunt
/// stamps via CsrMatrix::add_to_entry still land on an existing entry.
class TripletList {
 public:
  TripletList(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t row, std::size_t col, double value);
  /// Pre-size the entry storage (pure capacity hint).
  void reserve(std::size_t entries) { entries_.reserve(entries); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entry_count() const { return entries_.size(); }

  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Entry> entries_;
};

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  /// Compiles a triplet list, summing duplicates. Entries that sum to
  /// exactly zero are retained as structural (stored) zeros — the pattern
  /// of a damaged mesh must match the nominal one so in-place stamping and
  /// cached symbolic factorizations stay valid.
  explicit CsrMatrix(const TripletList& triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Number of stored entries (stored zeros included).
  std::size_t nonzero_count() const { return values_.size(); }

  /// y = A x
  Vector multiply(const Vector& x) const;

  /// y = A x into caller storage (resized to rows()); x and y must be
  /// distinct objects. The allocation-free SpMV the CG iteration uses.
  void multiply_into(const Vector& x, Vector& y) const;

  /// Panel SpMM, Y = A X, where X and Y hold `width` interleaved vectors
  /// (node-major: x[i * width + j] is column j's entry at node i, the
  /// layout the block-CG path uses so the inner width-loop vectorizes).
  /// X must have cols() * width entries; Y must have rows() * width and
  /// must not alias X. Column j's arithmetic is exactly multiply_into's.
  void multiply_panel(const double* x, double* y, std::size_t width) const;

  /// Element lookup (O(log nnz_row)); returns 0 for structural zeros.
  double at(std::size_t row, std::size_t col) const;

  /// In-place update of an existing entry: values[(row, col)] += delta.
  /// Throws InvalidArgument if (row, col) is a structural zero — the
  /// sparsity pattern is fixed at construction. Lets callers reuse one
  /// assembled matrix (e.g. a cached mesh Laplacian) across solves that
  /// differ only in shunt stamps.
  void add_to_entry(std::size_t row, std::size_t col, double delta);

  /// Diagonal entries (0 where structurally absent).
  Vector diagonal() const;
  /// Same, into caller storage (resized to min(rows, cols)).
  void diagonal_into(Vector& d) const;

  /// ||A||_inf: maximum absolute row sum. Used by solve_cg to convert
  /// tolerances into attainable normwise-backward-error targets.
  double infinity_norm() const;

  /// True if A and A^T agree to within `tol` on every stored entry.
  bool is_symmetric(double tol = 1e-12) const;

  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

  /// Mutable value array for in-place operator surgery with the pattern
  /// fixed (e.g. grounding disconnected nodes out of a fault-severed
  /// solve). Same order as values().
  std::vector<double>& values_mut() { return values_; }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

/// Preconditioner for solve_cg.
enum class CgPreconditioner {
  /// M = diag(A). Cheapest setup; the right choice for one-off solves on
  /// small or well-conditioned systems.
  kJacobi,
  /// M = L L^T from a modified IC(0) factorization (no fill beyond A's
  /// lower triangle; dropped fill compensated into the diagonal, which
  /// improves the conditioning *order* on mesh Laplacians, not just the
  /// constant). Cuts mesh-solve iteration counts by ~3-5x over Jacobi for
  /// ~1 extra SpMV-equivalent per application. Falls back to SSOR
  /// (M = (D+L) D^{-1} (D+L)^T, always SPD for SPD A) if a pivot loses
  /// positivity, so the preconditioned system stays SPD unconditionally.
  kIncompleteCholesky,
  /// One geometric-multigrid V(1,1)-cycle (multigrid.hpp): damped-Jacobi
  /// smoothing, Galerkin coarse grids, dense coarsest solve. Iteration
  /// counts become near-independent of mesh size, where IC(0) counts grow
  /// with refinement — the right choice for large meshes and for batch
  /// workloads that amortize the hierarchy setup. Requires
  /// CgOptions::mg_symbolic (the grid-derived hierarchy; only the package
  /// layer knows the mesh dimensions, so it cannot be built from the
  /// matrix alone).
  kMultigrid,
};

const char* to_string(CgPreconditioner preconditioner);

/// Lower-triangle sparsity pattern of a square CSR matrix, precomputed for
/// IC(0)/SSOR factorizations: per-row column lists (diagonal last) plus the
/// mapping from each lower-triangle slot back to the source value index.
/// The pattern depends only on the matrix structure, so one IcSymbolic can
/// be shared by every matrix with that pattern — e.g. cached alongside a
/// mesh Laplacian whose VR shunt stamps only touch existing diagonal
/// entries.
class IcSymbolic {
 public:
  /// Default fill level: level-1 fill (entries reachable through one
  /// eliminated neighbor join the pattern). On 5-point mesh stencils this
  /// costs ~2 extra entries per lower row and cuts CG iterations by
  /// another ~30-40% over the no-fill pattern.
  static constexpr unsigned kDefaultFillLevel = 1;

  IcSymbolic() = default;
  /// Builds the pattern from `a` (must be square with every diagonal entry
  /// structurally present): A's lower triangle plus fill entries up to
  /// `fill_level` (0 = A's pattern only, the classic IC(0) pattern).
  explicit IcSymbolic(const CsrMatrix& a,
                      unsigned fill_level = kDefaultFillLevel);

  bool empty() const { return offsets_.empty(); }
  std::size_t rows() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t entry_count() const { return cols_.size(); }

 private:
  friend class IcPreconditioner;
  std::vector<std::size_t> offsets_;  // rows+1; row r = [offsets_[r], offsets_[r+1])
  std::vector<std::size_t> cols_;     // ascending per row; last entry is the diagonal
  std::vector<std::size_t> source_;   // index into CsrMatrix::values() per slot
  // Strict-lower entries regrouped by column for the right-looking
  // factorization: column k = [col_offsets_[k], col_offsets_[k+1]), each
  // entry naming its storage slot and row (rows ascending per column).
  std::vector<std::size_t> col_offsets_;  // rows+1
  std::vector<std::size_t> col_slots_;
  std::vector<std::size_t> col_rows_;
};

/// Numeric IC(0) factorization (with SSOR fallback) over an IcSymbolic
/// pattern. factor() computes L (or captures D+L for the fallback);
/// apply() evaluates z = M^{-1} r allocation-free.
class IcPreconditioner {
 public:
  /// Factors `a`. `shared` supplies a precomputed pattern of `a` (must
  /// describe exactly a's structure); nullptr builds one on demand.
  void factor(const CsrMatrix& a, const IcSymbolic* shared = nullptr);

  /// z = M^{-1} r. Requires a prior factor(); z is resized to fit.
  /// Self-contained: reads only state owned by this object, never the
  /// shared IcSymbolic, so a factorization cached in a CgWorkspace stays
  /// valid after the shared pattern's owner (e.g. a mesh cache entry) is
  /// gone.
  void apply(const Vector& r, Vector& z) const;

  /// Panel form of apply(): r and z hold `width` interleaved vectors
  /// (node-major, r[i * width + j]; width <= kMaxCgBlockWidth). The
  /// blocked wavefront sweeps run each column through exactly the
  /// arithmetic of a standalone apply(). z must not alias r.
  void apply_panel(const double* r, double* z, std::size_t width) const;

  bool empty() const { return fwd_off_.empty(); }
  /// True when the last factor() hit a non-positive (or relatively
  /// negligible) pivot and produced the SSOR preconditioner instead.
  bool ssor_fallback() const { return ssor_; }

 private:
  void setup_ssor(const CsrMatrix& a);
  void finalize_apply_arrays();

  IcSymbolic owned_;  // used when no shared pattern given
  // &owned_ or the caller's shared pattern. Dereferenced only inside
  // factor(); may dangle afterwards (see apply()).
  const IcSymbolic* symbolic_{nullptr};
  std::size_t n_{0};  // rows of the factored matrix
  std::vector<double> values_;  // L values (IC) or lower-triangle A (SSOR)
  Vector diag_;                 // L_rr (IC) or A_rr (SSOR)
  Vector inv_diag_;             // 1 / diag_
  bool ssor_{false};
  // Compact gather form of the strict-lower triangle for apply(): the
  // forward sweep walks L by rows, the backward sweep walks L^T by rows
  // (i.e. L by columns, via the symbolic column view), so both sweeps are
  // branch-free gathers. Rows are stored in wavefront (dependency-level)
  // order — fwd_row_/bwd_row_ name the original row per slot — so the
  // out-of-order core overlaps independent rows instead of serializing on
  // the sweep's dependency chain; the arithmetic per row is unchanged, so
  // results are bit-identical to a natural-order sweep. 32-bit indices
  // keep the hot arrays in L1.
  std::vector<std::uint32_t> fwd_off_, fwd_cols_, fwd_row_;
  std::vector<std::uint32_t> bwd_off_, bwd_cols_, bwd_row_;
  std::vector<double> fwd_vals_, bwd_vals_;
};

/// Outcome of an iterative solve.
struct CgResult {
  Vector x;
  std::size_t iterations{0};
  double residual_norm{0.0};  // true ||b - A x||_2 at exit
  bool converged{false};
};

struct CgOptions {
  std::size_t max_iterations{0};  // 0 => 10 * n + 100
  double relative_tolerance{1e-10};
  /// Warm-start iterate; empty = start from zero. A good x0 (the previous
  /// solution on the same mesh, or the rail voltage for an IR-drop solve)
  /// cuts the iteration count dramatically because the residual starts at
  /// the perturbation scale instead of ||b||.
  Vector x0;
  CgPreconditioner preconditioner{CgPreconditioner::kJacobi};
  /// Optional precomputed lower-triangle pattern of the matrix for
  /// kIncompleteCholesky (e.g. cached next to a mesh Laplacian whose
  /// stamps never change the pattern). nullptr builds it at factor time.
  const IcSymbolic* ic_symbolic{nullptr};
  /// Grid-derived multigrid hierarchy for kMultigrid (cached next to a
  /// mesh Laplacian like ic_symbolic; see AssembledMesh::mg_symbolic).
  /// Required when preconditioner == kMultigrid — must be non-null with
  /// rows() matching the matrix, or the solve throws InvalidArgument.
  const MgSymbolic* mg_symbolic{nullptr};
  /// Parent span for the solve's trace span. Process-local observability
  /// plumbing only — never serialized, never read by the numerics.
  obs::TraceContext trace{};
};

/// Reusable solver state: the iteration vectors (scalar and panel), the
/// operator-derived scalars (||A||_inf, the SPD diagonal check, the Jacobi
/// inverse diagonal), and the most recent IC(0)/SSOR or multigrid setup,
/// all keyed to the matrix they were computed from. The key is a
/// structural digest of the pattern (FNV-1a over shape + row offsets +
/// column indices) plus an exact copy of the values — pattern storage is
/// one hash instead of a second copy of the index arrays, while the exact
/// value comparison still guarantees reuse can never change a result bit.
/// A repeat solve on a value-identical matrix — the common case in fault
/// campaigns re-solving the same stamped operator and in warm-started
/// sweeps — skips the diagonal scan and norm recompute and reuses the
/// factorization when the preconditioner kind also matches. Not
/// thread-safe: use one workspace per thread.
class CgWorkspace {
 public:
  struct Stats {
    std::size_t solves{0};
    std::size_t iterations{0};
    std::size_t factorizations{0};
    std::size_t factorization_reuses{0};
  };

  CgWorkspace();
  ~CgWorkspace();
  CgWorkspace(const CgWorkspace&) = delete;
  CgWorkspace& operator=(const CgWorkspace&) = delete;

  const Stats& stats() const { return stats_; }
  /// Forgets everything keyed to the cached operator (factorization,
  /// norm, diagonal); the next solve recomputes and refactors.
  void invalidate() {
    key_valid_ = false;
    factored_ = FactorKind::kNone;
  }

 private:
  friend CgResult solve_cg(const CsrMatrix&, const Vector&, const CgOptions&,
                           CgWorkspace&);
  friend std::vector<CgResult> solve_cg_block(const CsrMatrix&,
                                              const std::vector<Vector>&,
                                              const CgOptions&, CgWorkspace&);

  enum class FactorKind { kNone, kIncompleteCholesky, kMultigrid };

  bool key_matches(const CsrMatrix& a) const;
  void capture_key(const CsrMatrix& a);
  /// Shared solve prologue: validates the options, runs the SPD diagonal
  /// pre-check, caches ||A||_inf and the Jacobi inverse diagonal (all
  /// skipped on an operator-key hit), and (re)factors or reuses the
  /// IC/multigrid setup as the requested preconditioner demands.
  void prepare(const CsrMatrix& a, const CgOptions& options);

  Vector diag_;      // SPD pre-check scratch
  Vector inv_diag_;  // Jacobi inverse diagonal (valid while key_valid_)
  double a_inf_{0.0};  // ||A||_inf (valid while key_valid_)
  Vector r_, z_, p_, ap_;  // CG iteration vectors
  // Block-CG panels (node-major interleaved, lazily sized).
  std::vector<double> panel_b_, panel_x_, panel_r_, panel_z_, panel_p_,
      panel_q_;
  IcPreconditioner ic_;
  std::unique_ptr<MgPreconditioner> mg_;  // lazily constructed
  FactorKind factored_{FactorKind::kNone};  // kind the cached setup is for
  // Operator key: structural digest + exact value copy (see class doc).
  std::uint64_t key_digest_{0};
  std::vector<double> key_values_;
  bool key_valid_{false};
  Stats stats_;
};

/// Process-wide solver activity counters (monotonic since process start).
/// Snapshot with solver_counters() and subtract two snapshots to meter a
/// region; sweep/fault/serve reports expose such deltas. cg_solves and
/// cg_iterations are deterministic for a deterministic workload; the
/// factorizations/reuses split depends on how work lands on per-thread
/// workspaces.
struct SolverCounters {
  std::uint64_t cg_solves{0};
  std::uint64_t cg_iterations{0};
  std::uint64_t precond_factorizations{0};
  std::uint64_t precond_reuses{0};
  /// Block-CG activity: panels launched by solve_cg_block and columns
  /// solved through the block recurrence (columns that fall back to
  /// scalar CG — rank-deficient panels — count under cg_solves only).
  /// Block solves also count into cg_solves/cg_iterations per column, so
  /// those two stay "right-hand sides solved" across every path.
  std::uint64_t cg_block_panels{0};
  std::uint64_t cg_block_columns{0};
};

SolverCounters solver_counters();
SolverCounters operator-(const SolverCounters& a, const SolverCounters& b);
SolverCounters operator+(const SolverCounters& a, const SolverCounters& b);

/// Preconditioned conjugate gradient for SPD systems.
/// Convergence is declared against the *true* residual b - A x: when the
/// recurrence residual reaches the target the solver recomputes the exact
/// residual (the two drift apart over many iterations) and keeps iterating
/// from the corrected value if the target is not genuinely met.
/// The certified criterion is
///   ||b - A x||_2 <= rtol * (||A||_inf ||x||_2 + ||b||_2),
/// the normwise backward error: x then solves a system perturbed by a
/// relative rtol. For well-scaled systems ||A|| ||x|| ~ ||b|| and this
/// matches the familiar rtol * ||b|| test; for stiff systems (mixing
/// conductances many orders apart) rtol * ||b|| can sit below the
/// floating-point rounding floor eps * ||A|| ||x|| of the residual
/// itself, where no iterate could ever pass a b-relative test.
/// The workspace overload performs no per-iteration allocations and reuses
/// a cached factorization when the matrix is value-identical to the
/// previous IC solve; the convenience overload uses a transient workspace.
/// Results are identical either way (the workspace only provides storage).
/// Throws InvalidArgument on shape mismatch and NumericalError if the
/// iteration breaks down (non-SPD matrix).
CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options, CgWorkspace& workspace);
CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options = {});

/// Solves A x = b for every right-hand side in `rhs` against one
/// factorization: the first solve factors (IC kinds), the rest reuse it
/// through the workspace. Each result is bit-identical to a standalone
/// solve_cg call with the same options.
std::vector<CgResult> solve_cg_batch(const CsrMatrix& a,
                                     const std::vector<Vector>& rhs,
                                     const CgOptions& options,
                                     CgWorkspace& workspace);

/// True multi-RHS block conjugate gradient: solves A X = B for panels of
/// up to kMaxCgBlockWidth right-hand sides at once, sharing every SpMV and
/// preconditioner application across the panel (blocked SpMM + blocked
/// triangular/smoother sweeps over a node-major interleaved layout), with
/// one search-direction block per iteration (the O'Leary block-CG
/// recurrence). Convergence is certified per column against the same
/// normwise-backward-error criterion as solve_cg; converged columns are
/// deflated out of the panel so the rest keep iterating at reduced width.
/// Results are NOT bit-identical to a loop of solve_cg calls — the block
/// Krylov space is genuinely different (that is where the speedup comes
/// from) — but every returned column satisfies the same certified
/// accuracy. Rank-deficient panels (duplicate or converged-together
/// columns) fall back to scalar solve_cg warm-started from the current
/// block iterate, so the call succeeds wherever the loop would.
/// options.x0, when set, warm-starts every column. Batches wider than
/// kMaxCgBlockWidth are chunked into consecutive panels.
std::vector<CgResult> solve_cg_block(const CsrMatrix& a,
                                     const std::vector<Vector>& rhs,
                                     const CgOptions& options,
                                     CgWorkspace& workspace);

}  // namespace vpd
