// ASCII table and CSV emitters for the benchmark harnesses. Every bench
// prints the rows/series the paper's tables and figures report; this module
// keeps that formatting consistent.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vpd {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Raw cells, for structured re-emission (the benches' --json mode
  /// serializes tables as arrays of header-keyed objects).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with a header underline and 2-space column gaps.
  std::string to_string() const;
  /// Renders as CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style %.*f with trailing formatting conveniences.
std::string format_double(double value, int precision = 3);
/// value formatted as a percentage with `precision` decimals, e.g. "41.8%".
std::string format_percent(double fraction, int precision = 1);
/// Engineering notation with SI prefix, e.g. 3.3e-3 -> "3.30m".
std::string format_si(double value, int significant = 3);

}  // namespace vpd
