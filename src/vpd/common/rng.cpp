#include "vpd/common/rng.hpp"

#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::next_double() {
  // 53 random bits -> [0, 1).
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  const std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) {
  VPD_REQUIRE(lo <= hi, "invalid range [", lo, ", ", hi, ")");
  return lo + (hi - lo) * next_double();
}

std::uint32_t Rng::next_below(std::uint32_t n) {
  VPD_REQUIRE(n > 0, "next_below needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint32_t threshold = (0u - n) % n;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  VPD_REQUIRE(stddev >= 0.0, "negative stddev ", stddev);
  return mean + stddev * normal();
}

}  // namespace vpd
