#include "vpd/common/interpolation.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys,
                                 Extrapolation policy)
    : xs_(std::move(xs)), ys_(std::move(ys)), policy_(policy) {
  VPD_REQUIRE(xs_.size() == ys_.size(), "xs has ", xs_.size(), ", ys has ",
              ys_.size());
  VPD_REQUIRE(xs_.size() >= 2, "need at least 2 knots, got ", xs_.size());
  for (std::size_t i = 1; i < xs_.size(); ++i)
    VPD_REQUIRE(xs_[i] > xs_[i - 1], "x knots must be strictly increasing; x[",
                i - 1, "]=", xs_[i - 1], " x[", i, "]=", xs_[i]);
}

double PiecewiseLinear::operator()(double x) const {
  VPD_REQUIRE(!xs_.empty(), "curve is empty");
  if (x < xs_.front() || x > xs_.back()) {
    switch (policy_) {
      case Extrapolation::kClamp:
        return x < xs_.front() ? ys_.front() : ys_.back();
      case Extrapolation::kThrow:
        throw InvalidArgument(detail::concat(
            "PiecewiseLinear: x=", x, " outside [", xs_.front(), ", ",
            xs_.back(), "]"));
      case Extrapolation::kLinear:
        break;  // falls through to segment evaluation below
    }
  }
  // Find segment: largest i with xs_[i] <= x (clamped to valid segments).
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  hi = std::clamp<std::size_t>(hi, 1, xs_.size() - 1);
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

double PiecewiseLinear::argmax() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < ys_.size(); ++i)
    if (ys_[i] > ys_[best]) best = i;
  return xs_[best];
}

double PiecewiseLinear::max_value() const {
  return *std::max_element(ys_.begin(), ys_.end());
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  VPD_REQUIRE(n >= 2, "linspace needs n >= 2, got ", n);
  std::vector<double> v(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = lo + step * static_cast<double>(i);
  v.back() = hi;
  return v;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  VPD_REQUIRE(lo > 0.0 && hi > 0.0, "logspace needs positive bounds, got [",
              lo, ", ", hi, "]");
  std::vector<double> v = linspace(std::log(lo), std::log(hi), n);
  for (double& x : v) x = std::exp(x);
  v.back() = hi;
  return v;
}

double find_root_bisect(const std::function<double(double)>& f, double lo,
                        double hi, double tol, std::size_t max_iterations) {
  VPD_REQUIRE(lo < hi, "invalid bracket [", lo, ", ", hi, "]");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  VPD_REQUIRE(std::signbit(flo) != std::signbit(fhi),
              "no sign change on bracket: f(", lo, ")=", flo, ", f(", hi,
              ")=", fhi);
  for (std::size_t i = 0; i < max_iterations && (hi - lo) > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double minimize_golden(const std::function<double(double)>& f, double lo,
                       double hi, double tol) {
  VPD_REQUIRE(lo < hi, "invalid bracket [", lo, ", ", hi, "]");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace vpd
