#include "vpd/common/sparse.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "vpd/common/error.hpp"

namespace vpd {

void TripletList::add(std::size_t row, std::size_t col, double value) {
  VPD_REQUIRE(row < rows_ && col < cols_, "entry (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  entries_.push_back({row, col, value});
}

CsrMatrix::CsrMatrix(const TripletList& triplets)
    : rows_(triplets.rows()), cols_(triplets.cols()) {
  // Counting sort by row (O(nnz), stable), small per-row sorts by column,
  // then a duplicate-summing merge. Mesh/MNA stamping produces a handful
  // of entries per row, so the per-row sort is effectively linear — the
  // comparison sort over all entries this replaces dominated assembly
  // time. Merged sums of exactly zero stay in the pattern: a severed edge
  // must occupy the same slot as its nominal counterpart (see header).
  const auto& entries = triplets.entries();
  std::vector<std::size_t> bucket_start(rows_ + 1, 0);
  for (const auto& e : entries) ++bucket_start[e.row + 1];
  std::partial_sum(bucket_start.begin(), bucket_start.end(),
                   bucket_start.begin());

  // Scatter into row buckets, preserving insertion order within a row so
  // duplicate summation is deterministic.
  std::vector<std::size_t> bucket_cols(entries.size());
  std::vector<double> bucket_values(entries.size());
  {
    std::vector<std::size_t> cursor(bucket_start.begin(),
                                    bucket_start.end() - 1);
    for (const auto& e : entries) {
      const std::size_t at = cursor[e.row]++;
      bucket_cols[at] = e.col;
      bucket_values[at] = e.value;
    }
  }

  row_offsets_.assign(rows_ + 1, 0);
  col_indices_.reserve(entries.size());
  values_.reserve(entries.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t begin = bucket_start[r];
    const std::size_t end = bucket_start[r + 1];
    // Stable insertion sort by column (rows are short; stability keeps
    // duplicate summation in insertion order).
    for (std::size_t i = begin + 1; i < end; ++i) {
      const std::size_t c = bucket_cols[i];
      const double v = bucket_values[i];
      std::size_t j = i;
      while (j > begin && bucket_cols[j - 1] > c) {
        bucket_cols[j] = bucket_cols[j - 1];
        bucket_values[j] = bucket_values[j - 1];
        --j;
      }
      bucket_cols[j] = c;
      bucket_values[j] = v;
    }
    std::size_t i = begin;
    while (i < end) {
      const std::size_t col = bucket_cols[i];
      double sum = 0.0;
      while (i < end && bucket_cols[i] == col) {
        sum += bucket_values[i];
        ++i;
      }
      col_indices_.push_back(col);
      values_.push_back(sum);
      ++row_offsets_[r + 1];
    }
  }
  std::partial_sum(row_offsets_.begin(), row_offsets_.end(),
                   row_offsets_.begin());
}

Vector CsrMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply_into(x, y);
  return y;
}

void CsrMatrix::multiply_into(const Vector& x, Vector& y) const {
  VPD_REQUIRE(x.size() == cols_, "SpMV: vector has ", x.size(),
              " entries, matrix has ", cols_, " columns");
  VPD_REQUIRE(&x != &y, "SpMV: input and output must be distinct vectors");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      s += values_[k] * x[col_indices_[k]];
    y[r] = s;
  }
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  VPD_REQUIRE(row < rows_ && col < cols_, "index (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  const auto begin = col_indices_.begin() + static_cast<long>(row_offsets_[row]);
  const auto end = col_indices_.begin() + static_cast<long>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

void CsrMatrix::add_to_entry(std::size_t row, std::size_t col, double delta) {
  VPD_REQUIRE(row < rows_ && col < cols_, "index (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  const auto begin =
      col_indices_.begin() + static_cast<long>(row_offsets_[row]);
  const auto end =
      col_indices_.begin() + static_cast<long>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  VPD_REQUIRE(it != end && *it == col, "entry (", row, ",", col,
              ") is a structural zero; the sparsity pattern is fixed");
  values_[static_cast<std::size_t>(it - col_indices_.begin())] += delta;
}

Vector CsrMatrix::diagonal() const {
  Vector d;
  diagonal_into(d);
  return d;
}

void CsrMatrix::diagonal_into(Vector& d) const {
  d.assign(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      if (col_indices_[k] == r) {
        d[r] = values_[k];
        break;
      }
      if (col_indices_[k] > r) break;  // columns ascend within a row
    }
  }
}

double CsrMatrix::infinity_norm() const {
  double result = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row_sum = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      row_sum += std::fabs(values_[k]);
    }
    result = std::max(result, row_sum);
  }
  return result;
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const std::size_t c = col_indices_[k];
      if (std::fabs(values_[k] - at(c, r)) > tol) return false;
    }
  }
  return true;
}

const char* to_string(CgPreconditioner preconditioner) {
  switch (preconditioner) {
    case CgPreconditioner::kJacobi:
      return "jacobi";
    case CgPreconditioner::kIncompleteCholesky:
      return "ic0";
  }
  return "unknown";
}

namespace {
// source_ marker for fill entries, which have no counterpart in A.
constexpr std::size_t kNoSource = static_cast<std::size_t>(-1);
}  // namespace

IcSymbolic::IcSymbolic(const CsrMatrix& a, unsigned fill_level) {
  VPD_REQUIRE(a.rows() == a.cols(),
              "IC pattern requires a square matrix, got ", a.rows(), "x",
              a.cols());
  const std::size_t n = a.rows();
  const auto& aoff = a.row_offsets();
  const auto& acols = a.col_indices();

  // Level-based symbolic factorization (the symmetric IKJ form): row i
  // starts from A's lower pattern at level 0, then each eliminated column
  // k < i contributes candidate fill (i, j) for every known entry (j, k)
  // with k < j < i, at level lev(i,k) + lev(j,k) + 1; candidates within
  // fill_level join the pattern. Columns are processed in ascending order,
  // so a level is final by the time its column is eliminated.
  constexpr unsigned kInf = ~0u;
  std::vector<unsigned> level(n, kInf);
  // Strict-lower entries seen so far, grouped by column: (row, level),
  // rows ascending — exactly the "upper row" of each eliminated column.
  std::vector<std::vector<std::pair<std::size_t, unsigned>>> colup(n);
  std::vector<std::size_t> row;  // working column list, kept sorted

  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row.clear();
    bool diag_present = false;
    for (std::size_t k = aoff[i]; k < aoff[i + 1]; ++k) {
      if (acols[k] > i) break;  // columns are ascending within a row
      level[acols[k]] = 0;
      row.push_back(acols[k]);
      diag_present = (acols[k] == i);
    }
    VPD_REQUIRE(diag_present,
                "IC requires a structurally present diagonal; row ", i,
                " has none");
    if (fill_level > 0) {
      for (std::size_t idx = 0; idx < row.size(); ++idx) {
        const std::size_t k = row[idx];
        if (k >= i) break;
        const unsigned lev_ik = level[k];
        for (const auto& [j, lev_jk] : colup[k]) {
          if (j >= i) break;
          const unsigned candidate = lev_ik + lev_jk + 1;
          if (candidate > fill_level || level[j] <= candidate) continue;
          if (level[j] == kInf)  // new fill; j > k so it lands after idx
            row.insert(std::lower_bound(row.begin(), row.end(), j), j);
          level[j] = candidate;
        }
      }
    }
    for (std::size_t c : row) {
      cols_.push_back(c);
      // Map the slot back to A's value array; fill entries start at 0.
      const auto begin = acols.begin() + static_cast<long>(aoff[i]);
      const auto end = acols.begin() + static_cast<long>(aoff[i + 1]);
      const auto it = std::lower_bound(begin, end, c);
      source_.push_back(it != end && *it == c
                            ? static_cast<std::size_t>(it - acols.begin())
                            : kNoSource);
      if (c < i) colup[c].push_back({i, level[c]});
      level[c] = kInf;
    }
    offsets_[i + 1] = cols_.size();
  }

  // Column view of the strict-lower entries for the right-looking factor.
  col_offsets_.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = offsets_[r]; k + 1 < offsets_[r + 1]; ++k)
      ++col_offsets_[cols_[k] + 1];
  }
  std::partial_sum(col_offsets_.begin(), col_offsets_.end(),
                   col_offsets_.begin());
  col_slots_.resize(col_offsets_[n]);
  col_rows_.resize(col_offsets_[n]);
  std::vector<std::size_t> cursor(col_offsets_.begin(),
                                  col_offsets_.end() - 1);
  // Row-major traversal with ascending rows fills each column in
  // ascending-row order.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = offsets_[r]; k + 1 < offsets_[r + 1]; ++k) {
      const std::size_t c = cols_[k];
      col_slots_[cursor[c]] = k;
      col_rows_[cursor[c]] = r;
      ++cursor[c];
    }
  }
}

void IcPreconditioner::factor(const CsrMatrix& a, const IcSymbolic* shared) {
  if (shared != nullptr) {
    VPD_REQUIRE(shared->rows() == a.rows(),
                "shared IC pattern is for a ", shared->rows(),
                "-row matrix, got ", a.rows());
    symbolic_ = shared;
  } else {
    owned_ = IcSymbolic(a);
    symbolic_ = &owned_;
  }
  const IcSymbolic& sym = *symbolic_;
  const std::size_t n = sym.rows();
  const auto& off = sym.offsets_;
  const auto& cols = sym.cols_;

  values_.resize(sym.entry_count());
  for (std::size_t k = 0; k < values_.size(); ++k)
    values_[k] =
        sym.source_[k] == kNoSource ? 0.0 : a.values()[sym.source_[k]];
  diag_.assign(n, 0.0);
  inv_diag_.assign(n, 0.0);
  ssor_ = false;

  // Right-looking modified IC(0): column k is scaled by 1/L_kk, then its
  // outer product updates the trailing submatrix. Updates landing outside
  // the pattern (dropped fill) are compensated into both touched
  // diagonals (Gustafsson), which preserves row sums of the remainder and
  // improves the conditioning *order* on mesh Laplacians. A relative
  // pivot floor guards near-singular operators (e.g. a Laplacian with no
  // ground shunt), where the exact last pivot is a rounding-level residue.
  constexpr double kPivotFloor = 1e-12;
  const auto diag_slot = [&off](std::size_t r) { return off[r + 1] - 1; };
  // Binary search row i's strict-lower columns for j; npos when (i, j) is
  // outside the pattern.
  const auto find_slot = [&](std::size_t i, std::size_t j) {
    const auto begin = cols.begin() + static_cast<long>(off[i]);
    const auto end = cols.begin() + static_cast<long>(diag_slot(i));
    const auto it = std::lower_bound(begin, end, j);
    if (it == end || *it != j) return std::size_t(-1);
    return static_cast<std::size_t>(it - cols.begin());
  };
  for (std::size_t k = 0; k < n; ++k) {
    const double d = values_[diag_slot(k)];
    const double a_kk = a.values()[sym.source_[diag_slot(k)]];
    if (!(d > kPivotFloor * std::fabs(a_kk))) {
      setup_ssor(a);
      return;
    }
    const double l_kk = std::sqrt(d);
    values_[diag_slot(k)] = l_kk;
    diag_[k] = l_kk;
    inv_diag_[k] = 1.0 / l_kk;
    const std::size_t col_begin = sym.col_offsets_[k];
    const std::size_t col_end = sym.col_offsets_[k + 1];
    for (std::size_t p = col_begin; p < col_end; ++p)
      values_[sym.col_slots_[p]] *= inv_diag_[k];
    for (std::size_t p = col_begin; p < col_end; ++p) {
      const std::size_t i = sym.col_rows_[p];
      const double l_ik = values_[sym.col_slots_[p]];
      values_[diag_slot(i)] -= l_ik * l_ik;
      for (std::size_t q = col_begin; q < p; ++q) {
        const std::size_t j = sym.col_rows_[q];  // j < i: rows ascend
        const double update = l_ik * values_[sym.col_slots_[q]];
        const std::size_t slot = find_slot(i, j);
        if (slot != std::size_t(-1)) {
          values_[slot] -= update;
        } else {
          values_[diag_slot(i)] -= update;
          values_[diag_slot(j)] -= update;
        }
      }
    }
  }
  finalize_apply_arrays();
}

void IcPreconditioner::finalize_apply_arrays() {
  const IcSymbolic& sym = *symbolic_;
  const std::size_t n = sym.rows();
  n_ = n;
  const std::size_t lower = sym.col_offsets_[n];
  VPD_REQUIRE(sym.entry_count() < std::size_t{1} << 32,
              "IC pattern too large for 32-bit apply indexing");

  // Rows are emitted in wavefront (topological level) order: a row's level
  // is one past the deepest row it reads, so consecutive loop iterations in
  // apply() are independent and the out-of-order core overlaps them
  // instead of serializing on the row-to-row dependency chain. Rows within
  // a level never read each other's output, so the schedule changes only
  // execution order, not a single arithmetic operation — results are
  // bit-identical to the natural-order sweep.
  std::vector<std::uint32_t> level(n, 0);
  std::vector<std::size_t> order(n);
  const auto order_by_level = [&] {
    std::vector<std::size_t> count;
    for (std::size_t r = 0; r < n; ++r) {
      if (level[r] >= count.size()) count.resize(level[r] + 1, 0);
      ++count[level[r]];
    }
    std::vector<std::size_t> start(count.size() + 1, 0);
    std::partial_sum(count.begin(), count.end(), start.begin() + 1);
    for (std::size_t r = 0; r < n; ++r) order[start[level[r]]++] = r;
  };

  // Forward sweep (L, by rows): row r reads columns < r.
  for (std::size_t r = 0; r < n; ++r) {
    std::uint32_t lv = 0;
    for (std::size_t k = sym.offsets_[r]; k + 1 < sym.offsets_[r + 1]; ++k)
      lv = std::max(lv, level[sym.cols_[k]] + 1);
    level[r] = lv;
  }
  order_by_level();
  fwd_off_.resize(n + 1);
  fwd_row_.resize(n);
  fwd_cols_.resize(lower);
  fwd_vals_.resize(lower);
  std::size_t at = 0;
  fwd_off_[0] = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t r = order[idx];
    fwd_row_[idx] = static_cast<std::uint32_t>(r);
    for (std::size_t k = sym.offsets_[r]; k + 1 < sym.offsets_[r + 1]; ++k) {
      fwd_cols_[at] = static_cast<std::uint32_t>(sym.cols_[k]);
      fwd_vals_[at] = values_[k];
      ++at;
    }
    fwd_off_[idx + 1] = static_cast<std::uint32_t>(at);
  }

  // Backward sweep (L^T, by rows = L by columns): row r reads rows > r.
  level.assign(n, 0);
  for (std::size_t r = n; r-- > 0;) {
    std::uint32_t lv = 0;
    for (std::size_t p = sym.col_offsets_[r]; p < sym.col_offsets_[r + 1];
         ++p)
      lv = std::max(lv, level[sym.col_rows_[p]] + 1);
    level[r] = lv;
  }
  order_by_level();
  bwd_off_.resize(n + 1);
  bwd_row_.resize(n);
  bwd_cols_.resize(lower);
  bwd_vals_.resize(lower);
  at = 0;
  bwd_off_[0] = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t r = order[idx];
    bwd_row_[idx] = static_cast<std::uint32_t>(r);
    for (std::size_t p = sym.col_offsets_[r]; p < sym.col_offsets_[r + 1];
         ++p) {
      bwd_cols_[at] = static_cast<std::uint32_t>(sym.col_rows_[p]);
      bwd_vals_[at] = values_[sym.col_slots_[p]];
      ++at;
    }
    bwd_off_[idx + 1] = static_cast<std::uint32_t>(at);
  }
}

void IcPreconditioner::setup_ssor(const CsrMatrix& a) {
  const IcSymbolic& sym = *symbolic_;
  const std::size_t n = sym.rows();
  for (std::size_t k = 0; k < values_.size(); ++k)
    values_[k] =
        sym.source_[k] == kNoSource ? 0.0 : a.values()[sym.source_[k]];
  for (std::size_t r = 0; r < n; ++r) {
    const double a_rr = values_[sym.offsets_[r + 1] - 1];
    VPD_CHECK_NUMERIC(a_rr > 0.0, "SSOR fallback: diagonal not positive at row ",
                      r, " (value ", a_rr, "); system is not SPD");
    diag_[r] = a_rr;
    inv_diag_[r] = 1.0 / a_rr;
  }
  ssor_ = true;
  finalize_apply_arrays();
}

void IcPreconditioner::apply(const Vector& r, Vector& z) const {
  VPD_REQUIRE(!empty(), "IcPreconditioner::apply before factor()");
  const std::size_t n = n_;
  VPD_REQUIRE(r.size() == n, "preconditioner apply: vector has ", r.size(),
              " entries, expected ", n);

  z = r;
  // Forward solve L y = r (IC) or (D + L) y = r (SSOR): gather over the
  // strict-lower rows, visited in wavefront order (see
  // finalize_apply_arrays — bit-identical to the natural-order sweep).
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint32_t i = fwd_row_[idx];
    double s = z[i];
    for (std::uint32_t k = fwd_off_[idx]; k < fwd_off_[idx + 1]; ++k)
      s -= fwd_vals_[k] * z[fwd_cols_[k]];
    z[i] = s * inv_diag_[i];
  }
  // SSOR: M = (D+L) D^{-1} (D+L)^T, so scale by D between the sweeps.
  if (ssor_) {
    for (std::size_t i = 0; i < n; ++i) z[i] *= diag_[i];
  }
  // Backward solve L^T z = y: row i of L^T is column i of L (rows j > i),
  // so this gathers over the transposed view — no scatter, no
  // store-to-load hazards on z.
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint32_t i = bwd_row_[idx];
    double s = z[i];
    for (std::uint32_t k = bwd_off_[idx]; k < bwd_off_[idx + 1]; ++k)
      s -= bwd_vals_[k] * z[bwd_cols_[k]];
    z[i] = s * inv_diag_[i];
  }
}

bool CgWorkspace::key_matches(const CsrMatrix& a) const {
  return key_valid_ && key_offsets_ == a.row_offsets() &&
         key_cols_ == a.col_indices() && key_values_ == a.values();
}

void CgWorkspace::capture_key(const CsrMatrix& a) {
  key_offsets_ = a.row_offsets();
  key_cols_ = a.col_indices();
  key_values_ = a.values();
  key_valid_ = true;
}

namespace {

struct AtomicSolverCounters {
  std::atomic<std::uint64_t> cg_solves{0};
  std::atomic<std::uint64_t> cg_iterations{0};
  std::atomic<std::uint64_t> precond_factorizations{0};
  std::atomic<std::uint64_t> precond_reuses{0};
};

AtomicSolverCounters& global_counters() {
  static AtomicSolverCounters counters;
  return counters;
}

}  // namespace

SolverCounters solver_counters() {
  const AtomicSolverCounters& g = global_counters();
  SolverCounters c;
  c.cg_solves = g.cg_solves.load(std::memory_order_relaxed);
  c.cg_iterations = g.cg_iterations.load(std::memory_order_relaxed);
  c.precond_factorizations =
      g.precond_factorizations.load(std::memory_order_relaxed);
  c.precond_reuses = g.precond_reuses.load(std::memory_order_relaxed);
  return c;
}

SolverCounters operator-(const SolverCounters& a, const SolverCounters& b) {
  return {a.cg_solves - b.cg_solves, a.cg_iterations - b.cg_iterations,
          a.precond_factorizations - b.precond_factorizations,
          a.precond_reuses - b.precond_reuses};
}

SolverCounters operator+(const SolverCounters& a, const SolverCounters& b) {
  return {a.cg_solves + b.cg_solves, a.cg_iterations + b.cg_iterations,
          a.precond_factorizations + b.precond_factorizations,
          a.precond_reuses + b.precond_reuses};
}

CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options, CgWorkspace& ws) {
  VPD_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix, got ",
              a.rows(), "x", a.cols());
  VPD_REQUIRE(b.size() == a.rows(), "rhs has ", b.size(),
              " entries, expected ", a.rows());

  obs::Span span("solve.cg", options.trace);

  const std::size_t n = a.rows();
  const std::size_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;
  const bool jacobi = options.preconditioner == CgPreconditioner::kJacobi;

  // Positive-diagonal pre-check for every preconditioner (an SPD matrix
  // has a strictly positive diagonal); doubles as the Jacobi setup.
  a.diagonal_into(ws.diag_);
  for (std::size_t i = 0; i < n; ++i) {
    VPD_CHECK_NUMERIC(ws.diag_[i] > 0.0,
                      "matrix diagonal not positive at row ", i,
                      " (value ", ws.diag_[i], "); system is not SPD");
    if (jacobi) ws.diag_[i] = 1.0 / ws.diag_[i];
  }
  if (!jacobi) {
    // Reuse the factorization when the matrix is value-identical to the
    // previous IC solve through this workspace; exact comparison, so reuse
    // can never change a result bit.
    if (ws.key_matches(a)) {
      ++ws.stats_.factorization_reuses;
      global_counters().precond_reuses.fetch_add(1, std::memory_order_relaxed);
    } else {
      ws.ic_.factor(a, options.ic_symbolic);
      ws.capture_key(a);
      ++ws.stats_.factorizations;
      global_counters().precond_factorizations.fetch_add(
          1, std::memory_order_relaxed);
    }
  }

  const auto apply_precond = [&](const Vector& r, Vector& z) {
    if (jacobi) {
      z.resize(n);
      for (std::size_t i = 0; i < n; ++i) z[i] = ws.diag_[i] * r[i];
    } else {
      ws.ic_.apply(r, z);
    }
  };
  const auto finish = [&](CgResult result) {
    ++ws.stats_.solves;
    ws.stats_.iterations += result.iterations;
    AtomicSolverCounters& g = global_counters();
    g.cg_solves.fetch_add(1, std::memory_order_relaxed);
    g.cg_iterations.fetch_add(result.iterations, std::memory_order_relaxed);
    if (span.active()) {
      span.set_arg("nodes", double(n));
      span.set_arg("iterations", double(result.iterations));
      span.set_arg("converged", result.converged ? 1.0 : 0.0);
    }
    return result;
  };

  CgResult result;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.x.assign(n, 0.0);  // the unique SPD solution
    result.converged = true;
    return finish(std::move(result));
  }
  const double target = options.relative_tolerance * b_norm;
  // Certified criterion: normwise backward error (see header). Always at
  // least `target`, and attainable even when rtol * ||b|| is below the
  // rounding floor eps * ||A|| ||x|| of the residual computation.
  const double a_inf = a.infinity_norm();
  const auto certified_target = [&](const Vector& x) {
    return options.relative_tolerance * (a_inf * norm2(x) + b_norm);
  };

  Vector& r = ws.r_;
  Vector& z = ws.z_;
  Vector& p = ws.p_;
  Vector& ap = ws.ap_;
  if (options.x0.empty()) {
    result.x.assign(n, 0.0);
    r = b;
  } else {
    VPD_REQUIRE(options.x0.size() == n, "warm start has ", options.x0.size(),
                " entries, expected ", n);
    result.x = options.x0;
    a.multiply_into(result.x, ap);
    r.resize(n);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
    const double r_norm = norm2(r);
    if (r_norm <= certified_target(result.x)) {
      result.converged = true;
      result.residual_norm = r_norm;
      return finish(std::move(result));
    }
  }

  apply_precond(r, z);
  p = z;
  double rz = dot(r, z);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    a.multiply_into(p, ap);
    const double p_ap = dot(p, ap);
    VPD_CHECK_NUMERIC(p_ap > 0.0,
                      "CG breakdown: p^T A p = ", p_ap,
                      " <= 0; matrix is not positive definite");
    const double alpha = rz / p_ap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    result.iterations = iter + 1;

    const double r_norm = norm2(r);
    if (r_norm <= target) {
      // The recurrence residual can drift from the true residual over many
      // iterations; only the true residual certifies convergence.
      a.multiply_into(result.x, ap);
      for (std::size_t i = 0; i < n; ++i) ap[i] = b[i] - ap[i];
      const double true_norm = norm2(ap);
      if (true_norm <= certified_target(result.x)) {
        result.converged = true;
        result.residual_norm = true_norm;
        return finish(std::move(result));
      }
      // Restart from the corrected residual and keep iterating.
      r = ap;
      apply_precond(r, z);
      p = z;
      rz = dot(r, z);
      continue;
    }
    apply_precond(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }

  // Out of iterations before the recurrence reached the b-relative
  // trigger; the iterate may still satisfy the certified criterion.
  a.multiply_into(result.x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  result.residual_norm = norm2(r);
  result.converged = result.residual_norm <= certified_target(result.x);
  return finish(std::move(result));
}

CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options) {
  CgWorkspace workspace;
  return solve_cg(a, b, options, workspace);
}

std::vector<CgResult> solve_cg_batch(const CsrMatrix& a,
                                     const std::vector<Vector>& rhs,
                                     const CgOptions& options,
                                     CgWorkspace& workspace) {
  std::vector<CgResult> results;
  results.reserve(rhs.size());
  for (const Vector& b : rhs)
    results.push_back(solve_cg(a, b, options, workspace));
  return results;
}

}  // namespace vpd
