#include "vpd/common/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "vpd/common/error.hpp"

namespace vpd {

void TripletList::add(std::size_t row, std::size_t col, double value) {
  VPD_REQUIRE(row < rows_ && col < cols_, "entry (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  if (value == 0.0) return;
  entries_.push_back({row, col, value});
}

CsrMatrix::CsrMatrix(const TripletList& triplets)
    : rows_(triplets.rows()), cols_(triplets.cols()) {
  // Sort a copy of the entries by (row, col) and merge duplicates.
  std::vector<TripletList::Entry> sorted = triplets.entries();
  std::sort(sorted.begin(), sorted.end(),
            [](const TripletList::Entry& a, const TripletList::Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  row_offsets_.assign(rows_ + 1, 0);
  col_indices_.reserve(sorted.size());
  values_.reserve(sorted.size());

  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::size_t row = sorted[i].row;
    const std::size_t col = sorted[i].col;
    double sum = 0.0;
    while (i < sorted.size() && sorted[i].row == row && sorted[i].col == col) {
      sum += sorted[i].value;
      ++i;
    }
    if (sum != 0.0) {
      col_indices_.push_back(col);
      values_.push_back(sum);
      ++row_offsets_[row + 1];
    }
  }
  std::partial_sum(row_offsets_.begin(), row_offsets_.end(),
                   row_offsets_.begin());
}

Vector CsrMatrix::multiply(const Vector& x) const {
  VPD_REQUIRE(x.size() == cols_, "SpMV: vector has ", x.size(),
              " entries, matrix has ", cols_, " columns");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      s += values_[k] * x[col_indices_[k]];
    y[r] = s;
  }
  return y;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  VPD_REQUIRE(row < rows_ && col < cols_, "index (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  const auto begin = col_indices_.begin() + static_cast<long>(row_offsets_[row]);
  const auto end = col_indices_.begin() + static_cast<long>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

void CsrMatrix::add_to_entry(std::size_t row, std::size_t col, double delta) {
  VPD_REQUIRE(row < rows_ && col < cols_, "index (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  const auto begin =
      col_indices_.begin() + static_cast<long>(row_offsets_[row]);
  const auto end =
      col_indices_.begin() + static_cast<long>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  VPD_REQUIRE(it != end && *it == col, "entry (", row, ",", col,
              ") is a structural zero; the sparsity pattern is fixed");
  values_[static_cast<std::size_t>(it - col_indices_.begin())] += delta;
}

Vector CsrMatrix::diagonal() const {
  Vector d(std::min(rows_, cols_), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = at(i, i);
  return d;
}

double CsrMatrix::infinity_norm() const {
  double result = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row_sum = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      row_sum += std::fabs(values_[k]);
    }
    result = std::max(result, row_sum);
  }
  return result;
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const std::size_t c = col_indices_[k];
      if (std::fabs(values_[k] - at(c, r)) > tol) return false;
    }
  }
  return true;
}

CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options) {
  VPD_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix, got ",
              a.rows(), "x", a.cols());
  VPD_REQUIRE(b.size() == a.rows(), "rhs has ", b.size(),
              " entries, expected ", a.rows());

  const std::size_t n = a.rows();
  const std::size_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;

  // Jacobi preconditioner: M^{-1} = diag(A)^{-1}.
  Vector inv_diag = a.diagonal();
  for (std::size_t i = 0; i < n; ++i) {
    VPD_CHECK_NUMERIC(inv_diag[i] > 0.0,
                      "matrix diagonal not positive at row ", i,
                      " (value ", inv_diag[i], "); system is not SPD");
    inv_diag[i] = 1.0 / inv_diag[i];
  }

  CgResult result;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.x.assign(n, 0.0);  // the unique SPD solution
    result.converged = true;
    return result;
  }
  const double target = options.relative_tolerance * b_norm;
  // Certified criterion: normwise backward error (see header). Always at
  // least `target`, and attainable even when rtol * ||b|| is below the
  // rounding floor eps * ||A|| ||x|| of the residual computation.
  const double a_inf = a.infinity_norm();
  const auto certified_target = [&](const Vector& x) {
    return options.relative_tolerance * (a_inf * norm2(x) + b_norm);
  };

  Vector r;
  if (options.x0.empty()) {
    result.x.assign(n, 0.0);
    r = b;
  } else {
    VPD_REQUIRE(options.x0.size() == n, "warm start has ", options.x0.size(),
                " entries, expected ", n);
    result.x = options.x0;
    const Vector ax = a.multiply(result.x);
    r.resize(n);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
    const double r_norm = norm2(r);
    if (r_norm <= certified_target(result.x)) {
      result.converged = true;
      result.residual_norm = r_norm;
      return result;
    }
  }

  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  Vector p = z;
  double rz = dot(r, z);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const Vector ap = a.multiply(p);
    const double p_ap = dot(p, ap);
    VPD_CHECK_NUMERIC(p_ap > 0.0,
                      "CG breakdown: p^T A p = ", p_ap,
                      " <= 0; matrix is not positive definite");
    const double alpha = rz / p_ap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    result.iterations = iter + 1;

    const double r_norm = norm2(r);
    if (r_norm <= target) {
      // The recurrence residual can drift from the true residual over many
      // iterations; only the true residual certifies convergence.
      const Vector ax = a.multiply(result.x);
      Vector r_true(n);
      for (std::size_t i = 0; i < n; ++i) r_true[i] = b[i] - ax[i];
      const double true_norm = norm2(r_true);
      if (true_norm <= certified_target(result.x)) {
        result.converged = true;
        result.residual_norm = true_norm;
        return result;
      }
      // Restart from the corrected residual and keep iterating.
      r = std::move(r_true);
      for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
      p = z;
      rz = dot(r, z);
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }

  // Out of iterations before the recurrence reached the b-relative
  // trigger; the iterate may still satisfy the certified criterion.
  const Vector ax = a.multiply(result.x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
  result.residual_norm = norm2(r);
  result.converged = result.residual_norm <= certified_target(result.x);
  return result;
}

}  // namespace vpd
