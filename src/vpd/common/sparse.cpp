#include "vpd/common/sparse.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "vpd/common/error.hpp"
#include "vpd/common/multigrid.hpp"
#include "vpd/common/panel_width.hpp"

namespace vpd {

void TripletList::add(std::size_t row, std::size_t col, double value) {
  VPD_REQUIRE(row < rows_ && col < cols_, "entry (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  entries_.push_back({row, col, value});
}

CsrMatrix::CsrMatrix(const TripletList& triplets)
    : rows_(triplets.rows()), cols_(triplets.cols()) {
  // Counting sort by row (O(nnz), stable), small per-row sorts by column,
  // then a duplicate-summing merge. Mesh/MNA stamping produces a handful
  // of entries per row, so the per-row sort is effectively linear — the
  // comparison sort over all entries this replaces dominated assembly
  // time. Merged sums of exactly zero stay in the pattern: a severed edge
  // must occupy the same slot as its nominal counterpart (see header).
  const auto& entries = triplets.entries();
  std::vector<std::size_t> bucket_start(rows_ + 1, 0);
  for (const auto& e : entries) ++bucket_start[e.row + 1];
  std::partial_sum(bucket_start.begin(), bucket_start.end(),
                   bucket_start.begin());

  // Scatter into row buckets, preserving insertion order within a row so
  // duplicate summation is deterministic.
  std::vector<std::size_t> bucket_cols(entries.size());
  std::vector<double> bucket_values(entries.size());
  {
    std::vector<std::size_t> cursor(bucket_start.begin(),
                                    bucket_start.end() - 1);
    for (const auto& e : entries) {
      const std::size_t at = cursor[e.row]++;
      bucket_cols[at] = e.col;
      bucket_values[at] = e.value;
    }
  }

  row_offsets_.assign(rows_ + 1, 0);
  col_indices_.reserve(entries.size());
  values_.reserve(entries.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t begin = bucket_start[r];
    const std::size_t end = bucket_start[r + 1];
    // Stable insertion sort by column (rows are short; stability keeps
    // duplicate summation in insertion order).
    for (std::size_t i = begin + 1; i < end; ++i) {
      const std::size_t c = bucket_cols[i];
      const double v = bucket_values[i];
      std::size_t j = i;
      while (j > begin && bucket_cols[j - 1] > c) {
        bucket_cols[j] = bucket_cols[j - 1];
        bucket_values[j] = bucket_values[j - 1];
        --j;
      }
      bucket_cols[j] = c;
      bucket_values[j] = v;
    }
    std::size_t i = begin;
    while (i < end) {
      const std::size_t col = bucket_cols[i];
      double sum = 0.0;
      while (i < end && bucket_cols[i] == col) {
        sum += bucket_values[i];
        ++i;
      }
      col_indices_.push_back(col);
      values_.push_back(sum);
      ++row_offsets_[r + 1];
    }
  }
  std::partial_sum(row_offsets_.begin(), row_offsets_.end(),
                   row_offsets_.begin());
}

Vector CsrMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply_into(x, y);
  return y;
}

void CsrMatrix::multiply_into(const Vector& x, Vector& y) const {
  VPD_REQUIRE(x.size() == cols_, "SpMV: vector has ", x.size(),
              " entries, matrix has ", cols_, " columns");
  VPD_REQUIRE(&x != &y, "SpMV: input and output must be distinct vectors");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      s += values_[k] * x[col_indices_[k]];
    y[r] = s;
  }
}

void CsrMatrix::multiply_panel(const double* x, double* y,
                               std::size_t width) const {
  VPD_REQUIRE(width > 0, "SpMM: panel width must be positive");
  VPD_REQUIRE(x != y, "SpMM: input and output panels must be distinct");
  detail::dispatch_panel_width(width, [&](auto wc) {
    constexpr std::size_t W = wc();
    for (std::size_t r = 0; r < rows_; ++r) {
      double acc[W] = {};
      for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
        const double v = values_[k];
        const double* in = x + col_indices_[k] * W;
        for (std::size_t j = 0; j < W; ++j) acc[j] += v * in[j];
      }
      double* out = y + r * W;
      for (std::size_t j = 0; j < W; ++j) out[j] = acc[j];
    }
  });
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  VPD_REQUIRE(row < rows_ && col < cols_, "index (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  const auto begin = col_indices_.begin() + static_cast<long>(row_offsets_[row]);
  const auto end = col_indices_.begin() + static_cast<long>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

void CsrMatrix::add_to_entry(std::size_t row, std::size_t col, double delta) {
  VPD_REQUIRE(row < rows_ && col < cols_, "index (", row, ",", col,
              ") outside ", rows_, "x", cols_);
  const auto begin =
      col_indices_.begin() + static_cast<long>(row_offsets_[row]);
  const auto end =
      col_indices_.begin() + static_cast<long>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  VPD_REQUIRE(it != end && *it == col, "entry (", row, ",", col,
              ") is a structural zero; the sparsity pattern is fixed");
  values_[static_cast<std::size_t>(it - col_indices_.begin())] += delta;
}

Vector CsrMatrix::diagonal() const {
  Vector d;
  diagonal_into(d);
  return d;
}

void CsrMatrix::diagonal_into(Vector& d) const {
  d.assign(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      if (col_indices_[k] == r) {
        d[r] = values_[k];
        break;
      }
      if (col_indices_[k] > r) break;  // columns ascend within a row
    }
  }
}

double CsrMatrix::infinity_norm() const {
  double result = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row_sum = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      row_sum += std::fabs(values_[k]);
    }
    result = std::max(result, row_sum);
  }
  return result;
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const std::size_t c = col_indices_[k];
      if (std::fabs(values_[k] - at(c, r)) > tol) return false;
    }
  }
  return true;
}

const char* to_string(CgPreconditioner preconditioner) {
  switch (preconditioner) {
    case CgPreconditioner::kJacobi:
      return "jacobi";
    case CgPreconditioner::kIncompleteCholesky:
      return "ic0";
    case CgPreconditioner::kMultigrid:
      return "multigrid";
  }
  return "unknown";
}

namespace {
// source_ marker for fill entries, which have no counterpart in A.
constexpr std::size_t kNoSource = static_cast<std::size_t>(-1);
}  // namespace

IcSymbolic::IcSymbolic(const CsrMatrix& a, unsigned fill_level) {
  VPD_REQUIRE(a.rows() == a.cols(),
              "IC pattern requires a square matrix, got ", a.rows(), "x",
              a.cols());
  const std::size_t n = a.rows();
  const auto& aoff = a.row_offsets();
  const auto& acols = a.col_indices();

  // Level-based symbolic factorization (the symmetric IKJ form): row i
  // starts from A's lower pattern at level 0, then each eliminated column
  // k < i contributes candidate fill (i, j) for every known entry (j, k)
  // with k < j < i, at level lev(i,k) + lev(j,k) + 1; candidates within
  // fill_level join the pattern. Columns are processed in ascending order,
  // so a level is final by the time its column is eliminated.
  constexpr unsigned kInf = ~0u;
  std::vector<unsigned> level(n, kInf);
  // Strict-lower entries seen so far, grouped by column: (row, level),
  // rows ascending — exactly the "upper row" of each eliminated column.
  std::vector<std::vector<std::pair<std::size_t, unsigned>>> colup(n);
  std::vector<std::size_t> row;  // working column list, kept sorted

  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row.clear();
    bool diag_present = false;
    for (std::size_t k = aoff[i]; k < aoff[i + 1]; ++k) {
      if (acols[k] > i) break;  // columns are ascending within a row
      level[acols[k]] = 0;
      row.push_back(acols[k]);
      diag_present = (acols[k] == i);
    }
    VPD_REQUIRE(diag_present,
                "IC requires a structurally present diagonal; row ", i,
                " has none");
    if (fill_level > 0) {
      for (std::size_t idx = 0; idx < row.size(); ++idx) {
        const std::size_t k = row[idx];
        if (k >= i) break;
        const unsigned lev_ik = level[k];
        for (const auto& [j, lev_jk] : colup[k]) {
          if (j >= i) break;
          const unsigned candidate = lev_ik + lev_jk + 1;
          if (candidate > fill_level || level[j] <= candidate) continue;
          if (level[j] == kInf)  // new fill; j > k so it lands after idx
            row.insert(std::lower_bound(row.begin(), row.end(), j), j);
          level[j] = candidate;
        }
      }
    }
    for (std::size_t c : row) {
      cols_.push_back(c);
      // Map the slot back to A's value array; fill entries start at 0.
      const auto begin = acols.begin() + static_cast<long>(aoff[i]);
      const auto end = acols.begin() + static_cast<long>(aoff[i + 1]);
      const auto it = std::lower_bound(begin, end, c);
      source_.push_back(it != end && *it == c
                            ? static_cast<std::size_t>(it - acols.begin())
                            : kNoSource);
      if (c < i) colup[c].push_back({i, level[c]});
      level[c] = kInf;
    }
    offsets_[i + 1] = cols_.size();
  }

  // Column view of the strict-lower entries for the right-looking factor.
  col_offsets_.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = offsets_[r]; k + 1 < offsets_[r + 1]; ++k)
      ++col_offsets_[cols_[k] + 1];
  }
  std::partial_sum(col_offsets_.begin(), col_offsets_.end(),
                   col_offsets_.begin());
  col_slots_.resize(col_offsets_[n]);
  col_rows_.resize(col_offsets_[n]);
  std::vector<std::size_t> cursor(col_offsets_.begin(),
                                  col_offsets_.end() - 1);
  // Row-major traversal with ascending rows fills each column in
  // ascending-row order.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = offsets_[r]; k + 1 < offsets_[r + 1]; ++k) {
      const std::size_t c = cols_[k];
      col_slots_[cursor[c]] = k;
      col_rows_[cursor[c]] = r;
      ++cursor[c];
    }
  }
}

void IcPreconditioner::factor(const CsrMatrix& a, const IcSymbolic* shared) {
  if (shared != nullptr) {
    VPD_REQUIRE(shared->rows() == a.rows(),
                "shared IC pattern is for a ", shared->rows(),
                "-row matrix, got ", a.rows());
    symbolic_ = shared;
  } else {
    owned_ = IcSymbolic(a);
    symbolic_ = &owned_;
  }
  const IcSymbolic& sym = *symbolic_;
  const std::size_t n = sym.rows();
  const auto& off = sym.offsets_;
  const auto& cols = sym.cols_;

  values_.resize(sym.entry_count());
  for (std::size_t k = 0; k < values_.size(); ++k)
    values_[k] =
        sym.source_[k] == kNoSource ? 0.0 : a.values()[sym.source_[k]];
  diag_.assign(n, 0.0);
  inv_diag_.assign(n, 0.0);
  ssor_ = false;

  // Right-looking modified IC(0): column k is scaled by 1/L_kk, then its
  // outer product updates the trailing submatrix. Updates landing outside
  // the pattern (dropped fill) are compensated into both touched
  // diagonals (Gustafsson), which preserves row sums of the remainder and
  // improves the conditioning *order* on mesh Laplacians. A relative
  // pivot floor guards near-singular operators (e.g. a Laplacian with no
  // ground shunt), where the exact last pivot is a rounding-level residue.
  constexpr double kPivotFloor = 1e-12;
  const auto diag_slot = [&off](std::size_t r) { return off[r + 1] - 1; };
  // Binary search row i's strict-lower columns for j; npos when (i, j) is
  // outside the pattern.
  const auto find_slot = [&](std::size_t i, std::size_t j) {
    const auto begin = cols.begin() + static_cast<long>(off[i]);
    const auto end = cols.begin() + static_cast<long>(diag_slot(i));
    const auto it = std::lower_bound(begin, end, j);
    if (it == end || *it != j) return std::size_t(-1);
    return static_cast<std::size_t>(it - cols.begin());
  };
  for (std::size_t k = 0; k < n; ++k) {
    const double d = values_[diag_slot(k)];
    const double a_kk = a.values()[sym.source_[diag_slot(k)]];
    if (!(d > kPivotFloor * std::fabs(a_kk))) {
      setup_ssor(a);
      return;
    }
    const double l_kk = std::sqrt(d);
    values_[diag_slot(k)] = l_kk;
    diag_[k] = l_kk;
    inv_diag_[k] = 1.0 / l_kk;
    const std::size_t col_begin = sym.col_offsets_[k];
    const std::size_t col_end = sym.col_offsets_[k + 1];
    for (std::size_t p = col_begin; p < col_end; ++p)
      values_[sym.col_slots_[p]] *= inv_diag_[k];
    for (std::size_t p = col_begin; p < col_end; ++p) {
      const std::size_t i = sym.col_rows_[p];
      const double l_ik = values_[sym.col_slots_[p]];
      values_[diag_slot(i)] -= l_ik * l_ik;
      for (std::size_t q = col_begin; q < p; ++q) {
        const std::size_t j = sym.col_rows_[q];  // j < i: rows ascend
        const double update = l_ik * values_[sym.col_slots_[q]];
        const std::size_t slot = find_slot(i, j);
        if (slot != std::size_t(-1)) {
          values_[slot] -= update;
        } else {
          values_[diag_slot(i)] -= update;
          values_[diag_slot(j)] -= update;
        }
      }
    }
  }
  finalize_apply_arrays();
}

void IcPreconditioner::finalize_apply_arrays() {
  const IcSymbolic& sym = *symbolic_;
  const std::size_t n = sym.rows();
  n_ = n;
  const std::size_t lower = sym.col_offsets_[n];
  VPD_REQUIRE(sym.entry_count() < std::size_t{1} << 32,
              "IC pattern too large for 32-bit apply indexing");

  // Rows are emitted in wavefront (topological level) order: a row's level
  // is one past the deepest row it reads, so consecutive loop iterations in
  // apply() are independent and the out-of-order core overlaps them
  // instead of serializing on the row-to-row dependency chain. Rows within
  // a level never read each other's output, so the schedule changes only
  // execution order, not a single arithmetic operation — results are
  // bit-identical to the natural-order sweep.
  std::vector<std::uint32_t> level(n, 0);
  std::vector<std::size_t> order(n);
  const auto order_by_level = [&] {
    std::vector<std::size_t> count;
    for (std::size_t r = 0; r < n; ++r) {
      if (level[r] >= count.size()) count.resize(level[r] + 1, 0);
      ++count[level[r]];
    }
    std::vector<std::size_t> start(count.size() + 1, 0);
    std::partial_sum(count.begin(), count.end(), start.begin() + 1);
    for (std::size_t r = 0; r < n; ++r) order[start[level[r]]++] = r;
  };

  // Forward sweep (L, by rows): row r reads columns < r.
  for (std::size_t r = 0; r < n; ++r) {
    std::uint32_t lv = 0;
    for (std::size_t k = sym.offsets_[r]; k + 1 < sym.offsets_[r + 1]; ++k)
      lv = std::max(lv, level[sym.cols_[k]] + 1);
    level[r] = lv;
  }
  order_by_level();
  fwd_off_.resize(n + 1);
  fwd_row_.resize(n);
  fwd_cols_.resize(lower);
  fwd_vals_.resize(lower);
  std::size_t at = 0;
  fwd_off_[0] = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t r = order[idx];
    fwd_row_[idx] = static_cast<std::uint32_t>(r);
    for (std::size_t k = sym.offsets_[r]; k + 1 < sym.offsets_[r + 1]; ++k) {
      fwd_cols_[at] = static_cast<std::uint32_t>(sym.cols_[k]);
      fwd_vals_[at] = values_[k];
      ++at;
    }
    fwd_off_[idx + 1] = static_cast<std::uint32_t>(at);
  }

  // Backward sweep (L^T, by rows = L by columns): row r reads rows > r.
  level.assign(n, 0);
  for (std::size_t r = n; r-- > 0;) {
    std::uint32_t lv = 0;
    for (std::size_t p = sym.col_offsets_[r]; p < sym.col_offsets_[r + 1];
         ++p)
      lv = std::max(lv, level[sym.col_rows_[p]] + 1);
    level[r] = lv;
  }
  order_by_level();
  bwd_off_.resize(n + 1);
  bwd_row_.resize(n);
  bwd_cols_.resize(lower);
  bwd_vals_.resize(lower);
  at = 0;
  bwd_off_[0] = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t r = order[idx];
    bwd_row_[idx] = static_cast<std::uint32_t>(r);
    for (std::size_t p = sym.col_offsets_[r]; p < sym.col_offsets_[r + 1];
         ++p) {
      bwd_cols_[at] = static_cast<std::uint32_t>(sym.col_rows_[p]);
      bwd_vals_[at] = values_[sym.col_slots_[p]];
      ++at;
    }
    bwd_off_[idx + 1] = static_cast<std::uint32_t>(at);
  }
}

void IcPreconditioner::setup_ssor(const CsrMatrix& a) {
  const IcSymbolic& sym = *symbolic_;
  const std::size_t n = sym.rows();
  for (std::size_t k = 0; k < values_.size(); ++k)
    values_[k] =
        sym.source_[k] == kNoSource ? 0.0 : a.values()[sym.source_[k]];
  for (std::size_t r = 0; r < n; ++r) {
    const double a_rr = values_[sym.offsets_[r + 1] - 1];
    VPD_CHECK_NUMERIC(a_rr > 0.0, "SSOR fallback: diagonal not positive at row ",
                      r, " (value ", a_rr, "); system is not SPD");
    diag_[r] = a_rr;
    inv_diag_[r] = 1.0 / a_rr;
  }
  ssor_ = true;
  finalize_apply_arrays();
}

void IcPreconditioner::apply(const Vector& r, Vector& z) const {
  VPD_REQUIRE(!empty(), "IcPreconditioner::apply before factor()");
  const std::size_t n = n_;
  VPD_REQUIRE(r.size() == n, "preconditioner apply: vector has ", r.size(),
              " entries, expected ", n);

  z = r;
  // Forward solve L y = r (IC) or (D + L) y = r (SSOR): gather over the
  // strict-lower rows, visited in wavefront order (see
  // finalize_apply_arrays — bit-identical to the natural-order sweep).
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint32_t i = fwd_row_[idx];
    double s = z[i];
    for (std::uint32_t k = fwd_off_[idx]; k < fwd_off_[idx + 1]; ++k)
      s -= fwd_vals_[k] * z[fwd_cols_[k]];
    z[i] = s * inv_diag_[i];
  }
  // SSOR: M = (D+L) D^{-1} (D+L)^T, so scale by D between the sweeps.
  if (ssor_) {
    for (std::size_t i = 0; i < n; ++i) z[i] *= diag_[i];
  }
  // Backward solve L^T z = y: row i of L^T is column i of L (rows j > i),
  // so this gathers over the transposed view — no scatter, no
  // store-to-load hazards on z.
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::uint32_t i = bwd_row_[idx];
    double s = z[i];
    for (std::uint32_t k = bwd_off_[idx]; k < bwd_off_[idx + 1]; ++k)
      s -= bwd_vals_[k] * z[bwd_cols_[k]];
    z[i] = s * inv_diag_[i];
  }
}

void IcPreconditioner::apply_panel(const double* r, double* z,
                                   std::size_t width) const {
  VPD_REQUIRE(!empty(), "IcPreconditioner::apply_panel before factor()");
  VPD_REQUIRE(width > 0 && width <= kMaxCgBlockWidth, "panel width ", width,
              " outside [1, ", kMaxCgBlockWidth, "]");
  const std::size_t n = n_;
  VPD_REQUIRE(r != z, "apply_panel: input and output panels must be "
              "distinct");
  // The same wavefront-ordered gather sweeps as apply(), with the panel
  // width as the innermost loop at a dispatched compile-time value so the
  // per-column accumulators live in registers; each column sees exactly a
  // standalone apply()'s arithmetic. The forward sweep reads its source
  // values straight from r (every row is visited exactly once, and the
  // gathers only touch already-written rows of z), skipping apply()'s
  // whole-vector copy — a full panel pass at large n.
  detail::dispatch_panel_width(width, [&](auto wc) {
    constexpr std::size_t W = wc();
    double s[W];
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::uint32_t i = fwd_row_[idx];
      double* zi = z + std::size_t{i} * W;
      const double* ri = r + std::size_t{i} * W;
      for (std::size_t j = 0; j < W; ++j) s[j] = ri[j];
      for (std::uint32_t k = fwd_off_[idx]; k < fwd_off_[idx + 1]; ++k) {
        const double v = fwd_vals_[k];
        const double* zc = z + std::size_t{fwd_cols_[k]} * W;
        for (std::size_t j = 0; j < W; ++j) s[j] -= v * zc[j];
      }
      const double inv = inv_diag_[i];
      for (std::size_t j = 0; j < W; ++j) zi[j] = s[j] * inv;
    }
    if (ssor_) {
      for (std::size_t i = 0; i < n; ++i) {
        const double d = diag_[i];
        double* zi = z + i * W;
        for (std::size_t j = 0; j < W; ++j) zi[j] *= d;
      }
    }
    for (std::size_t idx = 0; idx < n; ++idx) {
      const std::uint32_t i = bwd_row_[idx];
      double* zi = z + std::size_t{i} * W;
      for (std::size_t j = 0; j < W; ++j) s[j] = zi[j];
      for (std::uint32_t k = bwd_off_[idx]; k < bwd_off_[idx + 1]; ++k) {
        const double v = bwd_vals_[k];
        const double* zc = z + std::size_t{bwd_cols_[k]} * W;
        for (std::size_t j = 0; j < W; ++j) s[j] -= v * zc[j];
      }
      const double inv = inv_diag_[i];
      for (std::size_t j = 0; j < W; ++j) zi[j] = s[j] * inv;
    }
  });
}

CgWorkspace::CgWorkspace() = default;
CgWorkspace::~CgWorkspace() = default;

namespace {

/// FNV-1a over the matrix shape and index arrays: the structural half of
/// the workspace's operator key. One 64-bit word instead of a second copy
/// of the pattern (~half the old key's footprint on large meshes); the
/// values half stays an exact copy so reuse never changes a result bit.
std::uint64_t structural_digest(const CsrMatrix& a) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(a.rows());
  mix(a.cols());
  for (std::size_t v : a.row_offsets()) mix(v);
  for (std::size_t v : a.col_indices()) mix(v);
  return h;
}

}  // namespace

bool CgWorkspace::key_matches(const CsrMatrix& a) const {
  return key_valid_ && key_digest_ == structural_digest(a) &&
         key_values_ == a.values();
}

void CgWorkspace::capture_key(const CsrMatrix& a) {
  key_digest_ = structural_digest(a);
  key_values_ = a.values();
  key_valid_ = true;
}

namespace {

struct AtomicSolverCounters {
  std::atomic<std::uint64_t> cg_solves{0};
  std::atomic<std::uint64_t> cg_iterations{0};
  std::atomic<std::uint64_t> precond_factorizations{0};
  std::atomic<std::uint64_t> precond_reuses{0};
  std::atomic<std::uint64_t> cg_block_panels{0};
  std::atomic<std::uint64_t> cg_block_columns{0};
};

AtomicSolverCounters& global_counters() {
  static AtomicSolverCounters counters;
  return counters;
}

}  // namespace

SolverCounters solver_counters() {
  const AtomicSolverCounters& g = global_counters();
  SolverCounters c;
  c.cg_solves = g.cg_solves.load(std::memory_order_relaxed);
  c.cg_iterations = g.cg_iterations.load(std::memory_order_relaxed);
  c.precond_factorizations =
      g.precond_factorizations.load(std::memory_order_relaxed);
  c.precond_reuses = g.precond_reuses.load(std::memory_order_relaxed);
  c.cg_block_panels = g.cg_block_panels.load(std::memory_order_relaxed);
  c.cg_block_columns = g.cg_block_columns.load(std::memory_order_relaxed);
  return c;
}

SolverCounters operator-(const SolverCounters& a, const SolverCounters& b) {
  return {a.cg_solves - b.cg_solves, a.cg_iterations - b.cg_iterations,
          a.precond_factorizations - b.precond_factorizations,
          a.precond_reuses - b.precond_reuses,
          a.cg_block_panels - b.cg_block_panels,
          a.cg_block_columns - b.cg_block_columns};
}

SolverCounters operator+(const SolverCounters& a, const SolverCounters& b) {
  return {a.cg_solves + b.cg_solves, a.cg_iterations + b.cg_iterations,
          a.precond_factorizations + b.precond_factorizations,
          a.precond_reuses + b.precond_reuses,
          a.cg_block_panels + b.cg_block_panels,
          a.cg_block_columns + b.cg_block_columns};
}

void CgWorkspace::prepare(const CsrMatrix& a, const CgOptions& options) {
  const std::size_t n = a.rows();
  if (options.preconditioner == CgPreconditioner::kMultigrid) {
    VPD_REQUIRE(options.mg_symbolic != nullptr,
                "kMultigrid requires CgOptions::mg_symbolic (the "
                "grid-derived hierarchy; see AssembledMesh::mg_symbolic)");
    VPD_REQUIRE(options.mg_symbolic->rows() == n,
                "multigrid hierarchy is for a ", options.mg_symbolic->rows(),
                "-row grid, got a ", n, "-row matrix");
  }
  if (!key_matches(a)) {
    invalidate();
    // Positive-diagonal pre-check for every preconditioner (an SPD matrix
    // has a strictly positive diagonal); its inverse doubles as the Jacobi
    // preconditioner. Hoisted here so repeat solves on a value-identical
    // operator (the batch case) skip the O(nnz) scan and norm recompute.
    a.diagonal_into(diag_);
    inv_diag_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      VPD_CHECK_NUMERIC(diag_[i] > 0.0,
                        "matrix diagonal not positive at row ", i,
                        " (value ", diag_[i], "); system is not SPD");
      inv_diag_[i] = 1.0 / diag_[i];
    }
    a_inf_ = a.infinity_norm();
    // Key captured only after the checks pass, so a rejected operator can
    // never register as reusable.
    capture_key(a);
  }
  FactorKind want = FactorKind::kNone;
  if (options.preconditioner == CgPreconditioner::kIncompleteCholesky)
    want = FactorKind::kIncompleteCholesky;
  else if (options.preconditioner == CgPreconditioner::kMultigrid)
    want = FactorKind::kMultigrid;
  if (want == FactorKind::kNone) return;
  if (factored_ == want) {
    // Value-identical operator and matching kind: reuse. Exact comparison
    // above, so reuse can never change a result bit.
    ++stats_.factorization_reuses;
    global_counters().precond_reuses.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (want == FactorKind::kIncompleteCholesky) {
    ic_.factor(a, options.ic_symbolic);
  } else {
    if (!mg_) mg_ = std::make_unique<MgPreconditioner>();
    mg_->factor(a, *options.mg_symbolic);
  }
  factored_ = want;
  ++stats_.factorizations;
  global_counters().precond_factorizations.fetch_add(1,
                                                     std::memory_order_relaxed);
}

CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options, CgWorkspace& ws) {
  VPD_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix, got ",
              a.rows(), "x", a.cols());
  VPD_REQUIRE(b.size() == a.rows(), "rhs has ", b.size(),
              " entries, expected ", a.rows());

  obs::Span span("solve.cg", options.trace);

  const std::size_t n = a.rows();
  const std::size_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;
  const bool jacobi = options.preconditioner == CgPreconditioner::kJacobi;
  const bool mg = options.preconditioner == CgPreconditioner::kMultigrid;

  ws.prepare(a, options);

  const auto apply_precond = [&](const Vector& r, Vector& z) {
    if (jacobi) {
      z.resize(n);
      for (std::size_t i = 0; i < n; ++i) z[i] = ws.inv_diag_[i] * r[i];
    } else if (mg) {
      ws.mg_->apply(r, z);
    } else {
      ws.ic_.apply(r, z);
    }
  };
  const auto finish = [&](CgResult result) {
    ++ws.stats_.solves;
    ws.stats_.iterations += result.iterations;
    AtomicSolverCounters& g = global_counters();
    g.cg_solves.fetch_add(1, std::memory_order_relaxed);
    g.cg_iterations.fetch_add(result.iterations, std::memory_order_relaxed);
    if (span.active()) {
      span.set_arg("nodes", double(n));
      span.set_arg("iterations", double(result.iterations));
      span.set_arg("converged", result.converged ? 1.0 : 0.0);
    }
    return result;
  };

  CgResult result;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.x.assign(n, 0.0);  // the unique SPD solution
    result.converged = true;
    return finish(std::move(result));
  }
  const double target = options.relative_tolerance * b_norm;
  // Certified criterion: normwise backward error (see header). Always at
  // least `target`, and attainable even when rtol * ||b|| is below the
  // rounding floor eps * ||A|| ||x|| of the residual computation.
  // ||A||_inf comes from the workspace's operator cache (ws.prepare).
  const double a_inf = ws.a_inf_;
  const auto certified_target = [&](const Vector& x) {
    return options.relative_tolerance * (a_inf * norm2(x) + b_norm);
  };

  Vector& r = ws.r_;
  Vector& z = ws.z_;
  Vector& p = ws.p_;
  Vector& ap = ws.ap_;
  if (options.x0.empty()) {
    result.x.assign(n, 0.0);
    r = b;
  } else {
    VPD_REQUIRE(options.x0.size() == n, "warm start has ", options.x0.size(),
                " entries, expected ", n);
    result.x = options.x0;
    a.multiply_into(result.x, ap);
    r.resize(n);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
    const double r_norm = norm2(r);
    if (r_norm <= certified_target(result.x)) {
      result.converged = true;
      result.residual_norm = r_norm;
      return finish(std::move(result));
    }
  }

  apply_precond(r, z);
  p = z;
  double rz = dot(r, z);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    a.multiply_into(p, ap);
    const double p_ap = dot(p, ap);
    VPD_CHECK_NUMERIC(p_ap > 0.0,
                      "CG breakdown: p^T A p = ", p_ap,
                      " <= 0; matrix is not positive definite");
    const double alpha = rz / p_ap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    result.iterations = iter + 1;

    const double r_norm = norm2(r);
    if (r_norm <= target) {
      // The recurrence residual can drift from the true residual over many
      // iterations; only the true residual certifies convergence.
      a.multiply_into(result.x, ap);
      for (std::size_t i = 0; i < n; ++i) ap[i] = b[i] - ap[i];
      const double true_norm = norm2(ap);
      if (true_norm <= certified_target(result.x)) {
        result.converged = true;
        result.residual_norm = true_norm;
        return finish(std::move(result));
      }
      // Restart from the corrected residual and keep iterating.
      r = ap;
      apply_precond(r, z);
      p = z;
      rz = dot(r, z);
      continue;
    }
    apply_precond(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }

  // Out of iterations before the recurrence reached the b-relative
  // trigger; the iterate may still satisfy the certified criterion.
  a.multiply_into(result.x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  result.residual_norm = norm2(r);
  result.converged = result.residual_norm <= certified_target(result.x);
  return finish(std::move(result));
}

CgResult solve_cg(const CsrMatrix& a, const Vector& b,
                  const CgOptions& options) {
  CgWorkspace workspace;
  return solve_cg(a, b, options, workspace);
}

std::vector<CgResult> solve_cg_batch(const CsrMatrix& a,
                                     const std::vector<Vector>& rhs,
                                     const CgOptions& options,
                                     CgWorkspace& workspace) {
  std::vector<CgResult> results;
  results.reserve(rhs.size());
  for (const Vector& b : rhs)
    results.push_back(solve_cg(a, b, options, workspace));
  return results;
}

namespace {

/// Dense symmetric w x w Cholesky (row-major, lower triangle; strict
/// upper ignored). Returns false on a non-positive pivot — a
/// rank-deficient Gram matrix, which in block CG means the panel's
/// columns have become linearly dependent.
bool chol_factor_small(double* s, std::size_t w) {
  for (std::size_t j = 0; j < w; ++j) {
    double d = s[j * w + j];
    for (std::size_t k = 0; k < j; ++k) d -= s[j * w + k] * s[j * w + k];
    if (!(d > 0.0)) return false;
    const double l = std::sqrt(d);
    s[j * w + j] = l;
    for (std::size_t i = j + 1; i < w; ++i) {
      double v = s[i * w + j];
      for (std::size_t k = 0; k < j; ++k) v -= s[i * w + k] * s[j * w + k];
      s[i * w + j] = v / l;
    }
  }
  return true;
}

/// Solves (L L^T) X = B in place for a w x m row-major block.
void chol_solve_small(const double* l, std::size_t w, double* b,
                      std::size_t m) {
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      const double l_ik = l[i * w + k];
      for (std::size_t j = 0; j < m; ++j) b[i * m + j] -= l_ik * b[k * m + j];
    }
    const double inv = 1.0 / l[i * w + i];
    for (std::size_t j = 0; j < m; ++j) b[i * m + j] *= inv;
  }
  for (std::size_t i = w; i-- > 0;) {
    for (std::size_t k = i + 1; k < w; ++k) {
      const double l_ki = l[k * w + i];
      for (std::size_t j = 0; j < m; ++j) b[i * m + j] -= l_ki * b[k * m + j];
    }
    const double inv = 1.0 / l[i * w + i];
    for (std::size_t j = 0; j < m; ++j) b[i * m + j] *= inv;
  }
}

}  // namespace

std::vector<CgResult> solve_cg_block(const CsrMatrix& a,
                                     const std::vector<Vector>& rhs,
                                     const CgOptions& options,
                                     CgWorkspace& ws) {
  VPD_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix, got ",
              a.rows(), "x", a.cols());
  const std::size_t n = a.rows();
  for (const Vector& b : rhs)
    VPD_REQUIRE(b.size() == n, "rhs has ", b.size(), " entries, expected ",
                n);
  if (!options.x0.empty())
    VPD_REQUIRE(options.x0.size() == n, "warm start has ", options.x0.size(),
                " entries, expected ", n);

  obs::Span span("solve.cg_block", options.trace);

  ws.prepare(a, options);

  const bool jacobi = options.preconditioner == CgPreconditioner::kJacobi;
  const bool mgp = options.preconditioner == CgPreconditioner::kMultigrid;
  const std::size_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;
  const double rtol = options.relative_tolerance;

  AtomicSolverCounters& g = global_counters();
  std::vector<CgResult> results(rhs.size());

  // Panel position metadata, parallel arrays over the active columns.
  std::vector<std::size_t> active;  // index into rhs/results
  std::vector<double> b_norms, targets;
  std::vector<std::size_t> col_iters;
  std::size_t w = 0;

  auto& B = ws.panel_b_;
  auto& X = ws.panel_x_;
  auto& R = ws.panel_r_;
  auto& Z = ws.panel_z_;
  auto& P = ws.panel_p_;
  auto& Q = ws.panel_q_;

  const auto apply_precond_panel = [&](const double* r, double* z) {
    if (jacobi) {
      for (std::size_t i = 0; i < n; ++i) {
        const double d = ws.inv_diag_[i];
        for (std::size_t j = 0; j < w; ++j) z[i * w + j] = d * r[i * w + j];
      }
    } else if (mgp) {
      ws.mg_->apply_panel(r, z, w);
    } else {
      ws.ic_.apply_panel(r, z, w);
    }
  };
  // All w column norms in one pass over the panel (a per-column loop
  // would re-read the whole panel w times; at large n the panels live in
  // DRAM and the traffic dominates the iteration). Per column the
  // accumulation order matches a standalone norm2 exactly.
  const auto col_norms = [&](const std::vector<double>& panel, double* out) {
    detail::dispatch_panel_width(w, [&](auto wc) {
      constexpr std::size_t W = wc();
      double s[W] = {};
      for (std::size_t i = 0; i < n; ++i) {
        const double* row = &panel[i * W];
        for (std::size_t j = 0; j < W; ++j) s[j] += row[j] * row[j];
      }
      for (std::size_t j = 0; j < W; ++j) out[j] = std::sqrt(s[j]);
    });
  };
  // out = A_^T B_ over the panel columns (w x w, row-major). Width
  // dispatched to a compile-time value (like every O(n w^2) kernel
  // below): with w constexpr the inner loops unroll and the accumulators
  // stay in registers, which is where the block path's wall-clock
  // advantage over the sequential loop comes from. The node loop is
  // tiled and the output rows processed in pairs: a full w x w
  // accumulator block spills to the stack (a store-forwarding round
  // trip per multiply-add), while two rows of it fit in registers and
  // the tile keeps the re-read panel chunks in L1.
  const auto gram = [&](const std::vector<double>& a_,
                        const std::vector<double>& b_, double* out) {
    detail::dispatch_panel_width(w, [&](auto wc) {
      constexpr std::size_t W = wc();
      constexpr std::size_t kTile = 256;
      double acc[W * W] = {};
      for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
        const std::size_t t1 = std::min(n, t0 + kTile);
        std::size_t c = 0;
        for (; c + 1 < W; c += 2) {
          double r0[W] = {}, r1[W] = {};
          for (std::size_t i = t0; i < t1; ++i) {
            const double* ra = &a_[i * W];
            const double* rb = &b_[i * W];
            const double v0 = ra[c];
            const double v1 = ra[c + 1];
            for (std::size_t j = 0; j < W; ++j) {
              r0[j] += v0 * rb[j];
              r1[j] += v1 * rb[j];
            }
          }
          for (std::size_t j = 0; j < W; ++j) {
            acc[c * W + j] += r0[j];
            acc[(c + 1) * W + j] += r1[j];
          }
        }
        if (c < W) {
          double r0[W] = {};
          for (std::size_t i = t0; i < t1; ++i) {
            const double v0 = a_[i * W + c];
            const double* rb = &b_[i * W];
            for (std::size_t j = 0; j < W; ++j) r0[j] += v0 * rb[j];
          }
          for (std::size_t j = 0; j < W; ++j) acc[c * W + j] += r0[j];
        }
      }
      std::copy(acc, acc + W * W, out);
    });
  };
  // R -= Q m (m is w x w row-major), accumulating the updated residual
  // panel's column norms in the same pass: the recurrence trigger needs
  // them every iteration, and a separate re-read of R is a full DRAM
  // pass at large n. Per column the arithmetic (update then ascending
  // sum of squares) matches the unfused update + col_norms exactly.
  const auto residual_madd = [&](const double* m, double* norms_out) {
    detail::dispatch_panel_width(w, [&](auto wc) {
      constexpr std::size_t W = wc();
      double t[W];
      double s[W] = {};
      for (std::size_t i = 0; i < n; ++i) {
        const double* rq = &Q[i * W];
        for (std::size_t j = 0; j < W; ++j) t[j] = 0.0;
        for (std::size_t k = 0; k < W; ++k) {
          const double v = rq[k];
          const double* mk = m + k * W;
          for (std::size_t j = 0; j < W; ++j) t[j] += v * mk[j];
        }
        double* rr = &R[i * W];
        for (std::size_t j = 0; j < W; ++j) {
          rr[j] -= t[j];
          s[j] += rr[j] * rr[j];
        }
      }
      for (std::size_t j = 0; j < W; ++j) norms_out[j] = std::sqrt(s[j]);
    });
  };
  // y += sign * (p_ m) over the panel (m is w x w row-major).
  const auto panel_madd = [&](std::vector<double>& y_,
                              const std::vector<double>& p_, const double* m,
                              double sign) {
    detail::dispatch_panel_width(w, [&](auto wc) {
      constexpr std::size_t W = wc();
      double t[W];
      for (std::size_t i = 0; i < n; ++i) {
        const double* rp = &p_[i * W];
        for (std::size_t j = 0; j < W; ++j) t[j] = 0.0;
        for (std::size_t k = 0; k < W; ++k) {
          const double v = rp[k];
          const double* mk = m + k * W;
          for (std::size_t j = 0; j < W; ++j) t[j] += v * mk[j];
        }
        double* ry = &y_[i * W];
        for (std::size_t j = 0; j < W; ++j) ry[j] += sign * t[j];
      }
    });
  };
  // P = Z + P beta (beta is w x w row-major).
  const auto dir_update = [&](const double* beta) {
    detail::dispatch_panel_width(w, [&](auto wc) {
      constexpr std::size_t W = wc();
      double t[W];
      for (std::size_t i = 0; i < n; ++i) {
        const double* rp = &P[i * W];
        const double* rz = &Z[i * W];
        for (std::size_t j = 0; j < W; ++j) t[j] = rz[j];
        for (std::size_t k = 0; k < W; ++k) {
          const double v = rp[k];
          const double* bk = beta + k * W;
          for (std::size_t j = 0; j < W; ++j) t[j] += v * bk[j];
        }
        double* out = &P[i * W];
        for (std::size_t j = 0; j < W; ++j) out[j] = t[j];
      }
    });
  };
  // Record panel position c's result (X still at the current width).
  const auto retire = [&](std::size_t c, bool converged, double residual) {
    CgResult& out = results[active[c]];
    out.x.resize(n);
    for (std::size_t i = 0; i < n; ++i) out.x[i] = X[i * w + c];
    out.iterations = col_iters[c];
    out.converged = converged;
    out.residual_norm = residual;
    ++ws.stats_.solves;
    ws.stats_.iterations += col_iters[c];
    g.cg_solves.fetch_add(1, std::memory_order_relaxed);
    g.cg_iterations.fetch_add(col_iters[c], std::memory_order_relaxed);
    g.cg_block_columns.fetch_add(1, std::memory_order_relaxed);
  };
  // Drop retired positions: in-place forward repack (every destination
  // index precedes its source, so ascending traversal never clobbers an
  // unread element) of the named panels plus the column metadata.
  const auto repack = [&](const std::vector<bool>& keep,
                          std::initializer_list<std::vector<double>*> panels) {
    std::size_t new_w = 0;
    for (bool k : keep)
      if (k) ++new_w;
    for (std::vector<double>* panel : panels) {
      auto& v = *panel;
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t out = 0;
        for (std::size_t c = 0; c < w; ++c)
          if (keep[c]) v[i * new_w + out++] = v[i * w + c];
      }
    }
    std::size_t out = 0;
    for (std::size_t c = 0; c < w; ++c) {
      if (!keep[c]) continue;
      active[out] = active[c];
      b_norms[out] = b_norms[c];
      targets[out] = targets[c];
      col_iters[out] = col_iters[c];
      ++out;
    }
    active.resize(out);
    b_norms.resize(out);
    targets.resize(out);
    col_iters.resize(out);
    w = out;
  };

  for (std::size_t chunk = 0; chunk < rhs.size();
       chunk += kMaxCgBlockWidth) {
    const std::size_t chunk_end =
        std::min(rhs.size(), chunk + kMaxCgBlockWidth);

    active.clear();
    b_norms.clear();
    targets.clear();
    col_iters.clear();
    for (std::size_t c = chunk; c < chunk_end; ++c) {
      const double b_norm = norm2(rhs[c]);
      if (b_norm == 0.0) {
        // The scalar path's shortcut: x = 0 is the unique SPD solution.
        results[c].x.assign(n, 0.0);
        results[c].converged = true;
        ++ws.stats_.solves;
        g.cg_solves.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      active.push_back(c);
      b_norms.push_back(b_norm);
      targets.push_back(rtol * b_norm);
      col_iters.push_back(0);
    }
    if (active.empty()) continue;
    g.cg_block_panels.fetch_add(1, std::memory_order_relaxed);

    w = active.size();
    B.resize(n * w);
    X.resize(n * w);
    R.resize(n * w);
    Z.resize(n * w);
    P.resize(n * w);
    Q.resize(n * w);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < w; ++j) B[i * w + j] = rhs[active[j]][i];

    if (options.x0.empty()) {
      std::fill(X.begin(), X.end(), 0.0);
      std::copy(B.begin(), B.end(), R.begin());
    } else {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < w; ++j) X[i * w + j] = options.x0[i];
      a.multiply_panel(X.data(), Q.data(), w);
      for (std::size_t k = 0; k < n * w; ++k) R[k] = B[k] - Q[k];
      // The scalar path's warm-start early exit, per column.
      const double x0_norm = norm2(options.x0);
      double r_norms[kMaxCgBlockWidth];
      col_norms(R, r_norms);
      std::vector<bool> keep(w, true);
      bool any = false;
      for (std::size_t c = 0; c < w; ++c) {
        if (r_norms[c] <= rtol * (ws.a_inf_ * x0_norm + b_norms[c])) {
          retire(c, true, r_norms[c]);
          keep[c] = false;
          any = true;
        }
      }
      if (any) repack(keep, {&B, &X, &R});
      if (w == 0) continue;
    }

    double rho[kMaxCgBlockWidth * kMaxCgBlockWidth];
    double scratch[kMaxCgBlockWidth * kMaxCgBlockWidth];
    double alpha[kMaxCgBlockWidth * kMaxCgBlockWidth];

    bool need_setup = true;
    bool fell_back = false;
    std::size_t iter = 0;
    while (w > 0 && iter < max_iterations) {
      if (need_setup) {
        apply_precond_panel(R.data(), Z.data());
        std::copy(Z.begin(), Z.begin() + n * w, P.begin());
        gram(R, Z, rho);
        need_setup = false;
      }
      a.multiply_panel(P.data(), Q.data(), w);
      gram(P, Q, scratch);  // P^T A P
      if (!chol_factor_small(scratch, w)) {
        fell_back = true;
        break;
      }
      std::copy(rho, rho + w * w, alpha);
      chol_solve_small(scratch, w, alpha, w);  // alpha = (P^T A P)^{-1} rho
      panel_madd(X, P, alpha, +1.0);
      double r_norms[kMaxCgBlockWidth];
      residual_madd(alpha, r_norms);
      ++iter;
      for (std::size_t c = 0; c < w; ++c) ++col_iters[c];

      // Same b-relative trigger as the scalar path; certification is
      // against the true residual (the recurrence drifts over many
      // iterations), and surviving columns restart from it.
      bool trigger = false;
      for (std::size_t c = 0; c < w && !trigger; ++c)
        trigger = r_norms[c] <= targets[c];
      if (trigger) {
        a.multiply_panel(X.data(), Q.data(), w);
        for (std::size_t k = 0; k < n * w; ++k) Q[k] = B[k] - Q[k];
        double t_norms[kMaxCgBlockWidth];
        double x_norms[kMaxCgBlockWidth];
        col_norms(Q, t_norms);
        col_norms(X, x_norms);
        std::vector<bool> keep(w, true);
        bool any = false;
        for (std::size_t c = 0; c < w; ++c) {
          if (t_norms[c] <= rtol * (ws.a_inf_ * x_norms[c] + b_norms[c])) {
            retire(c, true, t_norms[c]);
            keep[c] = false;
            any = true;
          }
        }
        std::copy(Q.begin(), Q.begin() + n * w, R.begin());
        if (any) repack(keep, {&B, &X, &R});
        need_setup = true;
        continue;
      }

      apply_precond_panel(R.data(), Z.data());
      gram(R, Z, scratch);  // rho_next
      double rho_chol[kMaxCgBlockWidth * kMaxCgBlockWidth];
      std::copy(rho, rho + w * w, rho_chol);
      if (!chol_factor_small(rho_chol, w)) {
        fell_back = true;
        break;
      }
      std::copy(scratch, scratch + w * w, alpha);
      chol_solve_small(rho_chol, w, alpha, w);  // beta = rho^{-1} rho_next
      dir_update(alpha);
      std::copy(scratch, scratch + w * w, rho);
    }

    if (fell_back) {
      // Rank-deficient panel (duplicate right-hand sides, or columns that
      // converged together): finish each remaining column with scalar CG
      // warm-started from its block iterate. The workspace key makes the
      // factorization reuse free, so only iterations are spent.
      std::vector<std::size_t> cols(active);
      std::vector<std::size_t> spent(col_iters);
      std::vector<Vector> warm(w);
      for (std::size_t c = 0; c < w; ++c) {
        warm[c].resize(n);
        for (std::size_t i = 0; i < n; ++i) warm[c][i] = X[i * w + c];
      }
      CgOptions fallback = options;
      for (std::size_t c = 0; c < w; ++c) {
        fallback.x0 = std::move(warm[c]);
        CgResult res = solve_cg(a, rhs[cols[c]], fallback, ws);
        res.iterations += spent[c];
        ws.stats_.iterations += spent[c];
        g.cg_iterations.fetch_add(spent[c], std::memory_order_relaxed);
        results[cols[c]] = std::move(res);
      }
      w = 0;
    } else if (w > 0) {
      // Out of iterations; the iterates may still satisfy the certified
      // criterion (the scalar path's exit semantics).
      a.multiply_panel(X.data(), Q.data(), w);
      for (std::size_t k = 0; k < n * w; ++k) Q[k] = B[k] - Q[k];
      double t_norms[kMaxCgBlockWidth];
      double x_norms[kMaxCgBlockWidth];
      col_norms(Q, t_norms);
      col_norms(X, x_norms);
      for (std::size_t c = 0; c < w; ++c) {
        retire(c,
               t_norms[c] <= rtol * (ws.a_inf_ * x_norms[c] + b_norms[c]),
               t_norms[c]);
      }
      w = 0;
    }
  }

  if (span.active()) {
    std::uint64_t total = 0;
    for (const CgResult& res : results) total += res.iterations;
    span.set_arg("nodes", double(n));
    span.set_arg("columns", double(rhs.size()));
    span.set_arg("iterations", double(total));
  }
  return results;
}

}  // namespace vpd
