#include "vpd/common/complex_linear.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vpd/common/error.hpp"

namespace vpd {

ComplexMatrix::ComplexMatrix(std::size_t rows, std::size_t cols,
                             Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

ComplexVector solve_dense_complex(ComplexMatrix a, const ComplexVector& b) {
  VPD_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix, got ",
              a.rows(), "x", a.cols());
  const std::size_t n = a.rows();
  VPD_REQUIRE(b.size() == n, "rhs has ", b.size(), " entries, expected ", n);

  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    VPD_CHECK_NUMERIC(best > std::numeric_limits<double>::min() * 16,
                      "complex matrix is singular at column ", k);
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(perm[k], perm[pivot]);
    }
    const Complex pv = a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const Complex m = a(i, k) / pv;
      a(i, k) = m;
      if (m == Complex{0.0, 0.0}) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= m * a(k, j);
    }
  }

  ComplexVector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex s = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) s -= a(i, j) * x[j];
    x[i] = s;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    Complex s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

double norm2(const ComplexVector& v) {
  double s = 0.0;
  for (const Complex& z : v) s += std::norm(z);
  return std::sqrt(s);
}

}  // namespace vpd
