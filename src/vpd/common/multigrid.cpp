#include "vpd/common/multigrid.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/common/panel_width.hpp"

namespace vpd {

namespace {

/// Coarsening keeps every node at even grid coordinates; a dimension of
/// size d shrinks to ceil(d / 2).
std::size_t coarse_dim(std::size_t d) { return (d + 1) / 2; }

/// Per-dimension bilinear interpolation stencil of a fine index: up to two
/// (coarse index, weight) pairs with dyadic weights. Boundary-clamped so
/// weights always sum to 1 (a fine node whose odd index has no right
/// coarse neighbour takes its left neighbour at full weight).
struct DimStencil {
  std::size_t idx[2];
  double w[2];
  std::size_t count;
};

DimStencil dim_stencil(std::size_t i, std::size_t coarse_count) {
  DimStencil s{};
  const std::size_t c = i / 2;
  if (i % 2 == 0) {
    s.idx[0] = c;
    s.w[0] = 1.0;
    s.count = 1;
  } else if (c + 1 < coarse_count) {
    s.idx[0] = c;
    s.w[0] = 0.5;
    s.idx[1] = c + 1;
    s.w[1] = 0.5;
    s.count = 2;
  } else {
    s.idx[0] = c;
    s.w[0] = 1.0;
    s.count = 1;
  }
  return s;
}

/// 5-point grid-Laplacian pattern of an nx x ny lattice (row-major
/// iy * nx + ix numbering — the GridMesh convention), ascending columns
/// per row. The finest operator a solve hands in is exactly this pattern
/// (VR shunt stamps only touch diagonals), and the symbolic Galerkin
/// chain below derives every coarse pattern from it.
void five_point_pattern(std::size_t nx, std::size_t ny,
                        std::vector<std::uint32_t>& offsets,
                        std::vector<std::uint32_t>& cols) {
  const std::size_t n = nx * ny;
  offsets.assign(n + 1, 0);
  cols.clear();
  cols.reserve(5 * n);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = iy * nx + ix;
      if (iy > 0) cols.push_back(static_cast<std::uint32_t>(i - nx));
      if (ix > 0) cols.push_back(static_cast<std::uint32_t>(i - 1));
      cols.push_back(static_cast<std::uint32_t>(i));
      if (ix + 1 < nx) cols.push_back(static_cast<std::uint32_t>(i + 1));
      if (iy + 1 < ny) cols.push_back(static_cast<std::uint32_t>(i + nx));
      offsets[i + 1] = static_cast<std::uint32_t>(cols.size());
    }
  }
}

}  // namespace

MgSymbolic::MgSymbolic(std::size_t nx, std::size_t ny) {
  VPD_REQUIRE(nx >= 2 && ny >= 2, "multigrid hierarchy needs an nx, ny >= 2 "
              "grid, got ", nx, "x", ny);
  // Pattern of the operator at the level under construction; seeded with
  // the fine 5-point stencil, replaced by each Galerkin coarse pattern.
  std::vector<std::uint32_t> a_offsets;
  std::vector<std::uint32_t> a_cols;
  five_point_pattern(nx, ny, a_offsets, a_cols);

  for (;;) {
    levels_.push_back({});
    Level& level = levels_.back();
    level.nx = nx;
    level.ny = ny;
    const std::size_t n = nx * ny;
    if (n <= kCoarsestNodes) break;  // coarsest level: solved directly

    const std::size_t cnx = coarse_dim(nx);
    const std::size_t cny = coarse_dim(ny);
    const std::size_t nc = cnx * cny;

    // Prolongation: tensor product of the per-dimension stencils. The y
    // stencil's outer position dominates the coarse index, so entries come
    // out in ascending column order.
    level.p_offsets.assign(n + 1, 0);
    level.p_cols.reserve(2 * n);
    level.p_vals.reserve(2 * n);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const DimStencil sy = dim_stencil(iy, cny);
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const DimStencil sx = dim_stencil(ix, cnx);
        const std::size_t i = iy * nx + ix;
        for (std::size_t a = 0; a < sy.count; ++a) {
          for (std::size_t b = 0; b < sx.count; ++b) {
            level.p_cols.push_back(
                static_cast<std::uint32_t>(sy.idx[a] * cnx + sx.idx[b]));
            level.p_vals.push_back(sy.w[a] * sx.w[b]);
          }
        }
        level.p_offsets[i + 1] = static_cast<std::uint32_t>(level.p_cols.size());
      }
    }

    // Restriction = P^T: counting sort by coarse column; row-major fine
    // traversal keeps fine rows ascending within each coarse node.
    level.r_offsets.assign(nc + 1, 0);
    for (std::uint32_t c : level.p_cols) ++level.r_offsets[c + 1];
    for (std::size_t c = 0; c < nc; ++c)
      level.r_offsets[c + 1] += level.r_offsets[c];
    level.r_rows.resize(level.p_cols.size());
    level.r_vals.resize(level.p_cols.size());
    {
      std::vector<std::uint32_t> cursor(level.r_offsets.begin(),
                                        level.r_offsets.end() - 1);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::uint32_t k = level.p_offsets[i]; k < level.p_offsets[i + 1];
             ++k) {
          const std::uint32_t c = level.p_cols[k];
          level.r_rows[cursor[c]] = static_cast<std::uint32_t>(i);
          level.r_vals[cursor[c]] = level.p_vals[k];
          ++cursor[c];
        }
      }
    }

    // Symbolic Galerkin pattern of P^T A P: coarse row I touches coarse
    // column J whenever some fine entry (i, j) has P(i, I) and P(j, J)
    // nonzero. Marker-swept per coarse row, columns emitted sorted.
    level.c_offsets.assign(nc + 1, 0);
    level.c_cols.clear();
    std::vector<std::uint32_t> marker(nc, 0);
    std::vector<std::uint32_t> scratch;
    for (std::size_t I = 0; I < nc; ++I) {
      scratch.clear();
      const std::uint32_t stamp = static_cast<std::uint32_t>(I) + 1;
      for (std::uint32_t t = level.r_offsets[I]; t < level.r_offsets[I + 1];
           ++t) {
        const std::uint32_t i = level.r_rows[t];
        for (std::uint32_t k = a_offsets[i]; k < a_offsets[i + 1]; ++k) {
          const std::uint32_t j = a_cols[k];
          for (std::uint32_t q = level.p_offsets[j];
               q < level.p_offsets[j + 1]; ++q) {
            const std::uint32_t J = level.p_cols[q];
            if (marker[J] != stamp) {
              marker[J] = stamp;
              scratch.push_back(J);
            }
          }
        }
      }
      std::sort(scratch.begin(), scratch.end());
      level.c_cols.insert(level.c_cols.end(), scratch.begin(), scratch.end());
      level.c_offsets[I + 1] = static_cast<std::uint32_t>(level.c_cols.size());
    }

    // The coarse pattern becomes the next level's operator pattern.
    a_offsets.assign(level.c_offsets.begin(), level.c_offsets.end());
    a_cols = level.c_cols;
    nx = cnx;
    ny = cny;
  }
}

void MgPreconditioner::factor(const CsrMatrix& a, const MgSymbolic& shared) {
  VPD_REQUIRE(!shared.empty(), "MgPreconditioner::factor with an empty "
              "hierarchy");
  VPD_REQUIRE(shared.rows() == a.rows(), "multigrid hierarchy is for a ",
              shared.rows(), "-row grid, got ", a.rows());
  VPD_REQUIRE(a.rows() == a.cols(), "multigrid requires a square matrix");

  const std::size_t depth = shared.levels_.size();
  levels_.assign(depth, {});

  // Finest operator: the matrix itself (u32 copy). Its pattern must stay
  // within the declared grid's 5-point stencil for the Galerkin scatter
  // below to be lossless; membership is checked slot by slot.
  {
    Level& fine = levels_.front();
    fine.n = a.rows();
    fine.a_offsets.assign(a.row_offsets().begin(), a.row_offsets().end());
    fine.a_cols.assign(a.col_indices().begin(), a.col_indices().end());
    fine.a_vals = a.values();
  }

  // Copy the transfer operators, then run the numeric Galerkin chain:
  // A_{l+1}(I, J) = sum_i R(I, i) sum_j A_l(i, j) P(j, J), accumulated
  // into a dense per-row scratch and gathered in pattern order, so the
  // rounding order is a fixed function of the hierarchy — deterministic.
  std::vector<double> acc;
  std::vector<std::uint32_t> touched;
  for (std::size_t l = 0; l + 1 < depth; ++l) {
    const MgSymbolic::Level& sym = shared.levels_[l];
    Level& level = levels_[l];
    level.p_offsets = sym.p_offsets;
    level.p_cols = sym.p_cols;
    level.p_vals = sym.p_vals;
    level.r_offsets = sym.r_offsets;
    level.r_rows = sym.r_rows;
    level.r_vals = sym.r_vals;

    Level& coarse = levels_[l + 1];
    const std::size_t nc = sym.r_offsets.size() - 1;
    coarse.n = nc;
    coarse.a_offsets = sym.c_offsets;
    coarse.a_cols = sym.c_cols;
    coarse.a_vals.assign(sym.c_cols.size(), 0.0);

    acc.assign(nc, 0.0);
    for (std::size_t I = 0; I < nc; ++I) {
      touched.clear();
      for (std::uint32_t t = sym.r_offsets[I]; t < sym.r_offsets[I + 1];
           ++t) {
        const std::uint32_t i = sym.r_rows[t];
        const double w_i = sym.r_vals[t];
        for (std::uint32_t k = level.a_offsets[i]; k < level.a_offsets[i + 1];
             ++k) {
          const double contrib = w_i * level.a_vals[k];
          const std::uint32_t j = level.a_cols[k];
          for (std::uint32_t q = sym.p_offsets[j]; q < sym.p_offsets[j + 1];
               ++q) {
            const std::uint32_t J = sym.p_cols[q];
            if (acc[J] == 0.0) touched.push_back(J);
            acc[J] += contrib * sym.p_vals[q];
          }
        }
      }
      // Gather in pattern order; every touched column must be a pattern
      // slot (guaranteed when the fine operator stays within the grid
      // stencil the hierarchy was built for).
      const std::uint32_t begin = sym.c_offsets[I];
      const std::uint32_t end = sym.c_offsets[I + 1];
      for (std::uint32_t s = begin; s < end; ++s) {
        coarse.a_vals[s] = acc[sym.c_cols[s]];
      }
      for (std::uint32_t J : touched) {
        const auto first = sym.c_cols.begin() + begin;
        const auto last = sym.c_cols.begin() + end;
        VPD_REQUIRE(std::binary_search(first, last, J),
                    "matrix pattern escapes the multigrid hierarchy's grid "
                    "stencil at coarse entry (", I, ",", J, ")");
        acc[J] = 0.0;
      }
    }
  }

  // Smoother diagonals. An SPD operator has a strictly positive diagonal,
  // and Galerkin products of SPD operators through full-column-rank P stay
  // SPD, so a non-positive pivot here means the input was not SPD.
  for (Level& level : levels_) {
    level.inv_diag.assign(level.n, 0.0);
    for (std::size_t r = 0; r < level.n; ++r) {
      double d = 0.0;
      for (std::uint32_t k = level.a_offsets[r]; k < level.a_offsets[r + 1];
           ++k) {
        if (level.a_cols[k] == static_cast<std::uint32_t>(r)) {
          d = level.a_vals[k];
          break;
        }
      }
      VPD_CHECK_NUMERIC(d > 0.0, "multigrid level diagonal not positive at "
                        "row ", r, " (value ", d, "); system is not SPD");
      level.inv_diag[r] = 1.0 / d;
    }
  }

  // Dense Cholesky of the coarsest operator.
  {
    const Level& bottom = levels_.back();
    coarse_n_ = bottom.n;
    coarse_chol_.assign(coarse_n_ * coarse_n_, 0.0);
    for (std::size_t r = 0; r < coarse_n_; ++r)
      for (std::uint32_t k = bottom.a_offsets[r]; k < bottom.a_offsets[r + 1];
           ++k)
        coarse_chol_[r * coarse_n_ + bottom.a_cols[k]] = bottom.a_vals[k];
    for (std::size_t j = 0; j < coarse_n_; ++j) {
      double d = coarse_chol_[j * coarse_n_ + j];
      for (std::size_t k = 0; k < j; ++k) {
        const double l_jk = coarse_chol_[j * coarse_n_ + k];
        d -= l_jk * l_jk;
      }
      VPD_CHECK_NUMERIC(d > 0.0, "multigrid coarse solve: non-positive "
                        "Cholesky pivot at row ", j, " (value ", d,
                        "); system is not SPD");
      const double l_jj = std::sqrt(d);
      coarse_chol_[j * coarse_n_ + j] = l_jj;
      for (std::size_t i = j + 1; i < coarse_n_; ++i) {
        double s = coarse_chol_[i * coarse_n_ + j];
        for (std::size_t k = 0; k < j; ++k)
          s -= coarse_chol_[i * coarse_n_ + k] *
               coarse_chol_[j * coarse_n_ + k];
        coarse_chol_[i * coarse_n_ + j] = s / l_jj;
      }
    }
  }
}

void MgPreconditioner::cycle(std::size_t l) {
  Level& level = levels_[l];
  const std::size_t n = level.n;

  if (l + 1 == levels_.size()) {
    // Coarsest: direct dense Cholesky solve, x = (L L^T)^{-1} rhs.
    level.x = level.rhs;
    for (std::size_t i = 0; i < n; ++i) {
      double s = level.x[i];
      for (std::size_t k = 0; k < i; ++k)
        s -= coarse_chol_[i * n + k] * level.x[k];
      level.x[i] = s / coarse_chol_[i * n + i];
    }
    for (std::size_t i = n; i-- > 0;) {
      double s = level.x[i];
      for (std::size_t k = i + 1; k < n; ++k)
        s -= coarse_chol_[k * n + i] * level.x[k];
      level.x[i] = s / coarse_chol_[i * n + i];
    }
    return;
  }

  // Pre-smooth (one damped-Jacobi sweep from a zero initial iterate).
  level.x.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    level.x[i] = kJacobiDamping * level.inv_diag[i] * level.rhs[i];

  // Residual r = rhs - A x.
  level.r.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::uint32_t k = level.a_offsets[i]; k < level.a_offsets[i + 1];
         ++k)
      s += level.a_vals[k] * level.x[level.a_cols[k]];
    level.r[i] = level.rhs[i] - s;
  }

  // Restrict into the coarse right-hand side and recurse.
  Level& coarse = levels_[l + 1];
  coarse.rhs.resize(coarse.n);
  for (std::size_t I = 0; I < coarse.n; ++I) {
    double s = 0.0;
    for (std::uint32_t t = level.r_offsets[I]; t < level.r_offsets[I + 1];
         ++t)
      s += level.r_vals[t] * level.r[level.r_rows[t]];
    coarse.rhs[I] = s;
  }
  cycle(l + 1);

  // Prolongate the coarse correction.
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::uint32_t k = level.p_offsets[i]; k < level.p_offsets[i + 1];
         ++k)
      s += level.p_vals[k] * coarse.x[level.p_cols[k]];
    level.x[i] += s;
  }

  // Post-smooth (the adjoint sweep: x += omega D^{-1} (rhs - A x)).
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::uint32_t k = level.a_offsets[i]; k < level.a_offsets[i + 1];
         ++k)
      s += level.a_vals[k] * level.x[level.a_cols[k]];
    level.r[i] = level.rhs[i] - s;
  }
  for (std::size_t i = 0; i < n; ++i)
    level.x[i] += kJacobiDamping * level.inv_diag[i] * level.r[i];
}

void MgPreconditioner::apply(const Vector& r, Vector& z) {
  VPD_REQUIRE(!empty(), "MgPreconditioner::apply before factor()");
  VPD_REQUIRE(r.size() == levels_.front().n, "preconditioner apply: vector "
              "has ", r.size(), " entries, expected ", levels_.front().n);
  levels_.front().rhs = r;
  cycle(0);
  z = levels_.front().x;
}

// W is the compile-time panel width (dispatched once in apply_panel):
// with the innermost loops' trip count known, the per-column accumulators
// stay in registers through every sweep of the cycle.
template <std::size_t W>
void MgPreconditioner::cycle_panel(std::size_t l) {
  Level& level = levels_[l];
  const std::size_t n = level.n;

  if (l + 1 == levels_.size()) {
    // Coarsest: dense Cholesky solve per column, panel layout preserved.
    level.panel_x.assign(level.panel_rhs.begin(), level.panel_rhs.end());
    double* x = level.panel_x.data();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < i; ++k) {
        const double l_ik = coarse_chol_[i * n + k];
        for (std::size_t j = 0; j < W; ++j)
          x[i * W + j] -= l_ik * x[k * W + j];
      }
      const double inv = 1.0 / coarse_chol_[i * n + i];
      for (std::size_t j = 0; j < W; ++j) x[i * W + j] *= inv;
    }
    for (std::size_t i = n; i-- > 0;) {
      for (std::size_t k = i + 1; k < n; ++k) {
        const double l_ki = coarse_chol_[k * n + i];
        for (std::size_t j = 0; j < W; ++j)
          x[i * W + j] -= l_ki * x[k * W + j];
      }
      const double inv = 1.0 / coarse_chol_[i * n + i];
      for (std::size_t j = 0; j < W; ++j) x[i * W + j] *= inv;
    }
    return;
  }

  level.panel_x.resize(n * W);
  level.panel_r.resize(n * W);
  double* x = level.panel_x.data();
  double* rr = level.panel_r.data();
  const double* rhs = level.panel_rhs.data();

  // Pre-smooth from zero.
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = kJacobiDamping * level.inv_diag[i];
    for (std::size_t j = 0; j < W; ++j) x[i * W + j] = scale * rhs[i * W + j];
  }
  // Residual panel.
  for (std::size_t i = 0; i < n; ++i) {
    double acc[W];
    for (std::size_t j = 0; j < W; ++j) acc[j] = rhs[i * W + j];
    for (std::uint32_t k = level.a_offsets[i]; k < level.a_offsets[i + 1];
         ++k) {
      const double v = level.a_vals[k];
      const double* xc = x + std::size_t{level.a_cols[k]} * W;
      for (std::size_t j = 0; j < W; ++j) acc[j] -= v * xc[j];
    }
    for (std::size_t j = 0; j < W; ++j) rr[i * W + j] = acc[j];
  }
  // Restrict and recurse.
  Level& coarse = levels_[l + 1];
  coarse.panel_rhs.assign(coarse.n * W, 0.0);
  for (std::size_t I = 0; I < coarse.n; ++I) {
    double* dst = coarse.panel_rhs.data() + I * W;
    for (std::uint32_t t = level.r_offsets[I]; t < level.r_offsets[I + 1];
         ++t) {
      const double v = level.r_vals[t];
      const double* src = rr + std::size_t{level.r_rows[t]} * W;
      for (std::size_t j = 0; j < W; ++j) dst[j] += v * src[j];
    }
  }
  cycle_panel<W>(l + 1);

  // Prolongate and correct.
  const double* cx = coarse.panel_x.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t k = level.p_offsets[i]; k < level.p_offsets[i + 1];
         ++k) {
      const double v = level.p_vals[k];
      const double* src = cx + std::size_t{level.p_cols[k]} * W;
      for (std::size_t j = 0; j < W; ++j) x[i * W + j] += v * src[j];
    }
  }
  // Post-smooth.
  for (std::size_t i = 0; i < n; ++i) {
    double acc[W];
    for (std::size_t j = 0; j < W; ++j) acc[j] = rhs[i * W + j];
    for (std::uint32_t k = level.a_offsets[i]; k < level.a_offsets[i + 1];
         ++k) {
      const double v = level.a_vals[k];
      const double* xc = x + std::size_t{level.a_cols[k]} * W;
      for (std::size_t j = 0; j < W; ++j) acc[j] -= v * xc[j];
    }
    for (std::size_t j = 0; j < W; ++j) rr[i * W + j] = acc[j];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = kJacobiDamping * level.inv_diag[i];
    for (std::size_t j = 0; j < W; ++j) x[i * W + j] += scale * rr[i * W + j];
  }
}

void MgPreconditioner::apply_panel(const double* r, double* z,
                                   std::size_t width) {
  VPD_REQUIRE(!empty(), "MgPreconditioner::apply_panel before factor()");
  Level& fine = levels_.front();
  fine.panel_rhs.assign(r, r + fine.n * width);
  detail::dispatch_panel_width(width,
                               [&](auto wc) { cycle_panel<wc()>(0); });
  std::copy(fine.panel_x.begin(), fine.panel_x.end(), z);
}

}  // namespace vpd
