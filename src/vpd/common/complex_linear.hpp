// Dense complex linear algebra for AC (frequency-domain) analysis:
// complex vectors, a complex dense matrix, and LU solve with partial
// pivoting. Mirrors vpd/common/matrix.hpp over std::complex<double>.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace vpd {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(std::size_t rows, std::size_t cols,
                Complex fill = Complex{0.0, 0.0});

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  Complex operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  ComplexVector data_;
};

/// Solves A x = b by LU with partial pivoting (on |pivot|). Throws
/// NumericalError if singular, InvalidArgument on shape mismatch.
ComplexVector solve_dense_complex(ComplexMatrix a, const ComplexVector& b);

/// Euclidean norm of a complex vector.
double norm2(const ComplexVector& v);

}  // namespace vpd
