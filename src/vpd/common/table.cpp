#include "vpd/common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "vpd/common/error.hpp"

namespace vpd {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VPD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  VPD_REQUIRE(cells.size() == headers_.size(), "row has ", cells.size(),
              " cells, table has ", headers_.size(), " columns");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string format_si(double value, int significant) {
  if (value == 0.0) return "0";
  static constexpr const char* kPrefixes[] = {"p", "n", "u", "m", "",
                                              "k", "M", "G", "T"};
  const double a = std::fabs(value);
  int tier = static_cast<int>(std::floor(std::log10(a) / 3.0));
  tier = std::clamp(tier, -4, 4);
  const double scaled = value / std::pow(10.0, 3 * tier);
  const double digits = std::floor(std::log10(std::fabs(scaled))) + 1;
  const int decimals =
      std::max(0, significant - static_cast<int>(digits));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%s", decimals, scaled,
                kPrefixes[tier + 4]);
  return buf;
}

}  // namespace vpd
