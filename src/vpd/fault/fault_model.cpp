#include "vpd/fault/fault_model.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "vpd/common/error.hpp"

namespace vpd {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVrDropout:
      return "vr-dropout";
    case FaultKind::kVrDerate:
      return "vr-derate";
    case FaultKind::kAttachFault:
      return "attach-fault";
    case FaultKind::kMeshRegionFault:
      return "mesh-region";
    case FaultKind::kStage2Dropout:
      return "stage2-dropout";
  }
  return "unknown";
}

void FaultSeverity::validate() const {
  VPD_REQUIRE(derate_current_limit_scale > 0.0,
              "derate_current_limit_scale must be > 0");
  VPD_REQUIRE(derate_loss_scale > 0.0, "derate_loss_scale must be > 0");
  VPD_REQUIRE(attach_resistance_scale > 0.0,
              "attach_resistance_scale must be > 0");
  VPD_REQUIRE(mesh_conductance_scale >= 0.0,
              "mesh_conductance_scale must be >= 0 (0 = fully severed "
              "copper; disconnected nodes are grounded out of the solve)");
  VPD_REQUIRE(mesh_region_side.value > 0.0, "mesh_region_side must be > 0");
}

FaultInjection to_injection(const FaultScenario& scenario,
                            const FaultSeverity& severity) {
  severity.validate();
  std::set<std::size_t> dropped;
  std::set<std::size_t> dropped2;
  std::map<std::size_t, double> attach;
  std::map<std::size_t, VrDerate> derates;
  MeshPerturbation perturbation;
  for (const Fault& fault : scenario.faults) {
    switch (fault.kind) {
      case FaultKind::kVrDropout:
        dropped.insert(fault.site);
        break;
      case FaultKind::kVrDerate: {
        VrDerate& d = derates[fault.site];  // starts at identity scales
        d.current_limit_scale *= severity.derate_current_limit_scale;
        d.loss_scale *= severity.derate_loss_scale;
        break;
      }
      case FaultKind::kAttachFault: {
        auto [it, inserted] = attach.emplace(fault.site, 1.0);
        it->second *= severity.attach_resistance_scale;
        break;
      }
      case FaultKind::kMeshRegionFault: {
        const double half = 0.5 * severity.mesh_region_side.value;
        perturbation.push_back(EdgeScaleRegion{
            Length{fault.x.value - half}, Length{fault.y.value - half},
            Length{fault.x.value + half}, Length{fault.y.value + half},
            severity.mesh_conductance_scale});
        break;
      }
      case FaultKind::kStage2Dropout:
        dropped2.insert(fault.site);
        break;
    }
  }

  FaultInjection injection;
  injection.dropped_sites.assign(dropped.begin(), dropped.end());
  injection.dropped_stage2.assign(dropped2.begin(), dropped2.end());
  for (const auto& [site, scale] : attach) {
    // A dropped VR's attach path carries no defined current: dropout wins.
    if (!dropped.count(site)) injection.attach_scale.emplace_back(site, scale);
  }
  for (const auto& [site, derate] : derates) {
    if (!dropped.count(site)) injection.derates.emplace_back(site, derate);
  }
  injection.mesh_perturbation = std::move(perturbation);
  return injection;
}

}  // namespace vpd
