// High-level fault models for the resilience subsystem: named fault
// events (VR dropout, VR derating, high-resistance attach clusters,
// lateral-metal mesh damage, below-die final-stage dropout) with a
// severity model that maps each event onto the evaluator's low-level
// FaultInjection. Scenarios compose several events; the campaign runner
// (campaign.hpp) generates and evaluates them in bulk.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vpd/arch/fault_injection.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

enum class FaultKind {
  /// A distribution-stage VR stops sourcing current entirely.
  kVrDropout,
  /// A distribution-stage VR keeps running with a reduced usable current
  /// limit and elevated conversion loss (thermal throttling, partial
  /// phase failure).
  kVrDerate,
  /// The vertical interconnect cluster under a VR output goes
  /// high-resistance (cracked solder, electromigrated vias).
  kAttachFault,
  /// A rectangular region of the distribution metal loses lateral
  /// conductance (delamination, crack across the power planes).
  kMeshRegionFault,
  /// A below-die final-stage VR drops out (two-stage architectures only);
  /// the survivors re-split the die current.
  kStage2Dropout,
};

const char* to_string(FaultKind kind);

/// One fault event. `site` addresses the mesh-driving VR stage in
/// placement order (kVrDropout / kVrDerate / kAttachFault) or the
/// below-die final stage (kStage2Dropout); `x`/`y` give the damaged-region
/// center for kMeshRegionFault in the die coordinate frame.
struct Fault {
  FaultKind kind{FaultKind::kVrDropout};
  std::size_t site{0};
  Length x{};
  Length y{};
};

/// Severity model: how hard each fault kind hits. The defaults describe a
/// serious-but-survivable fault population — a derated VR keeps half its
/// usable rating at 25% extra loss, a damaged attach cluster is 10x its
/// nominal resistance, and a damaged mesh region keeps 10% of its lateral
/// conductance over a 2 mm square (kept above zero so the mesh stays
/// connected and the CG solve remains well-posed).
struct FaultSeverity {
  double derate_current_limit_scale{0.5};
  double derate_loss_scale{1.25};
  double attach_resistance_scale{10.0};
  double mesh_conductance_scale{0.1};
  Length mesh_region_side{Length{2e-3}};

  /// Throws InvalidArgument unless every scale is positive — except
  /// mesh_conductance_scale, where 0 is the fully-severed-copper damage
  /// model (nodes cut off from every VR are grounded out of the solve and
  /// report 0 V) — and the region side is positive.
  void validate() const;
};

/// A named set of simultaneous fault events; the empty scenario is the
/// nominal (N-0) state.
struct FaultScenario {
  std::string label;
  std::vector<Fault> faults;

  std::size_t order() const { return faults.size(); }
};

/// Lowers a scenario onto the evaluator's injection under a severity
/// model. Duplicate events on one site collapse deterministically:
/// dropout wins over derate/attach on the same site, repeated derates or
/// attach faults on one site compound multiplicatively. The result's
/// index vectors are sorted as FaultInjection::validate requires.
FaultInjection to_injection(const FaultScenario& scenario,
                            const FaultSeverity& severity);

}  // namespace vpd
