// N-k survivability campaigns on the sweep engine. A campaign takes one
// (architecture, topology, technology) combination, evaluates it nominally
// to learn the deployment (VR counts), generates a scenario population —
// the N-0 baseline, the exhaustive N-1 set over every modeled fault site,
// and an optional Monte-Carlo sample of order-k scenarios — and evaluates
// every scenario on the sweep ThreadPool. Scenario content is seeded per
// scenario index (counter-based RNG streams), so a parallel campaign is
// bit-identical to a serial one and to any re-run with the same seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vpd/arch/evaluator.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/fault/fault_model.hpp"
#include "vpd/fault/resilience.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/sweep/sweep.hpp"

namespace vpd {

struct FaultCampaignConfig {
  FaultSeverity severity;
  ResilienceSpec resilience;
  /// Monte-Carlo scenarios beyond the exhaustive N-1 set (0 = N-1 only).
  std::size_t nk_samples{0};
  /// Simultaneous faults per sampled scenario (k of N-k), >= 2.
  std::size_t nk_order{2};
  /// Seed of the counter-based scenario RNG: scenario i draws from
  /// Rng(seed, stream = i), independent of evaluation order.
  std::uint64_t seed{0x5eedULL};
  /// Which single-fault families the exhaustive N-1 set enumerates (the
  /// Monte-Carlo sampler draws from the enabled families too).
  bool include_dropouts{true};
  bool include_derates{true};
  bool include_attach_faults{true};
  bool include_mesh_regions{true};
  bool include_stage2_dropouts{true};
  /// Mesh-damage region centers are placed on this many grid positions
  /// per die axis (the N-1 set gets grid*grid region scenarios).
  std::size_t mesh_region_grid{3};
  /// Worker pool for the scenario evaluations.
  SweepConfig sweep;
};

struct FaultScenarioOutcome {
  FaultScenario scenario;
  FaultInjection injection;
  /// False when the scenario could not be evaluated at all (e.g. the
  /// fault state is infeasible); such scenarios count as non-survivors.
  bool evaluated{false};
  /// True when the evaluation needed beyond-rating loss extrapolation
  /// (the exclusion rule's flagged estimate).
  bool extrapolated{false};
  std::string failure_reason;
  std::optional<ArchitectureEvaluation> evaluation;
  ResilienceReport resilience;

  bool survives() const { return evaluated && resilience.survives; }
};

/// Bucketed margin distribution over the evaluated scenarios.
struct MarginHistogram {
  double lo{0.0};
  double hi{0.0};
  std::vector<std::size_t> counts;
  /// Scenarios that failed to evaluate (no margin to bucket).
  std::size_t unevaluated{0};
};

struct FaultCampaignReport {
  ArchitectureKind architecture{};
  std::optional<TopologyKind> topology;
  DeviceTechnology tech{DeviceTechnology::kGalliumNitride};
  /// The fault-free evaluation the deployment was read from. Evaluated
  /// through the same sweep path as the scenarios; the campaign's N-0
  /// scenario (outcomes.front()) reuses this evaluation outright, so it
  /// reproduces it bit for bit in every batch mode — a block panel shared
  /// with fault scenarios answers to the certified backward-error
  /// tolerance, not the scalar bits, and must not leak into N-0.
  ArchitectureEvaluation nominal;
  std::vector<FaultScenarioOutcome> outcomes;
  double wall_seconds{0.0};
  /// Solver counter delta across the campaign's two sweeps (nominal +
  /// scenarios). Solves/iterations are deterministic; the
  /// factorization/reuse split is scheduling-dependent (see SweepReport).
  SolverCounters solver;
  /// Batch-engine accounting summed over the campaign's sweeps (all zero
  /// when the sweep runs with batch=false).
  BatchStats batch;

  std::size_t scenario_count() const { return outcomes.size(); }
  std::size_t survivor_count() const;
  /// Surviving fraction of the scenario population.
  double survivability() const;
  /// Worst droop fraction over the evaluated scenarios.
  double worst_droop_fraction() const;
  /// Worst load-shedding fraction the degradation policy had to apply.
  double worst_load_shed_fraction() const;
  MarginHistogram margin_histogram(std::size_t bins) const;

  /// The report's metrics in the unified telemetry shape (fault.* counters
  /// and gauges plus solver.* counters); emitted via
  /// obs::Snapshot::to_json() by the campaign benches.
  obs::Snapshot snapshot() const;
};

class FaultCampaignRunner {
 public:
  explicit FaultCampaignRunner(PowerDeliverySpec spec,
                               FaultCampaignConfig config = {});

  const PowerDeliverySpec& spec() const { return spec_; }
  const FaultCampaignConfig& config() const { return config_; }

  /// Generates the scenario population for a deployment with
  /// `site_count` mesh-stage VRs and `stage2_count` below-die final-stage
  /// VRs (0 for single-stage). Deterministic in (config, counts):
  /// N-0 first, then the exhaustive N-1 families in a fixed order, then
  /// the sampled N-k scenarios in stream order. Exposed for tests.
  std::vector<FaultScenario> generate_scenarios(
      std::size_t site_count, std::size_t stage2_count) const;

  /// Runs the campaign for one combination. `base_options` must carry an
  /// empty FaultInjection (the campaign owns the injections). Throws
  /// InfeasibleDesign when even the nominal evaluation is excluded
  /// without an extrapolated estimate.
  FaultCampaignReport run(
      ArchitectureKind architecture, TopologyKind topology,
      DeviceTechnology tech = DeviceTechnology::kGalliumNitride,
      const EvaluationOptions& base_options = {}) const;

 private:
  PowerDeliverySpec spec_;
  FaultCampaignConfig config_;
};

}  // namespace vpd
