#include "vpd/fault/transient_scenario.hpp"

#include "vpd/common/error.hpp"

namespace vpd {

const char* to_string(TransientKind kind) {
  switch (kind) {
    case TransientKind::kLoadStep:
      return "load-step";
    case TransientKind::kLoadBurst:
      return "load-burst";
    case TransientKind::kLoadRamp:
      return "load-ramp";
    case TransientKind::kVrDropout:
      return "vr-dropout";
  }
  return "unknown";
}

std::vector<TransientKind> all_transient_kinds() {
  return {TransientKind::kLoadStep, TransientKind::kLoadBurst,
          TransientKind::kLoadRamp, TransientKind::kVrDropout};
}

void TransientScenario::validate() const {
  VPD_REQUIRE(base_fraction >= 0.0 && base_fraction <= 1.0,
              "base_fraction ", base_fraction, " outside [0, 1]");
  VPD_REQUIRE(t_event.value >= 0.0, "t_event must be >= 0");
  VPD_REQUIRE(edge.value >= 0.0, "edge must be >= 0");
  if (kind == TransientKind::kVrDropout) return;
  VPD_REQUIRE(tile_x >= 0.0 && tile_x <= 1.0 && tile_y >= 0.0 &&
                  tile_y <= 1.0,
              "tile (", tile_x, ", ", tile_y, ") outside the unit die");
  VPD_REQUIRE(tile_sigma > 0.0, "tile_sigma must be positive");
  VPD_REQUIRE(tile_background >= 0.0 && tile_background < 1.0,
              "tile_background ", tile_background, " outside [0, 1)");
  VPD_REQUIRE(step_fraction > 0.0, "step_fraction must be positive");
  VPD_REQUIRE(base_fraction + step_fraction <= 1.2,
              "base + step load fraction ", base_fraction + step_fraction,
              " exceeds the 1.2x overload ceiling");
  if (kind == TransientKind::kLoadBurst) {
    VPD_REQUIRE(burst_frequency.value > 0.0,
                "burst_frequency must be positive");
    VPD_REQUIRE(burst_duty > 0.0 && burst_duty < 1.0, "burst_duty ",
                burst_duty, " outside (0, 1)");
    const double on = burst_duty / burst_frequency.value;
    VPD_REQUIRE(edge.value <= 0.5 * on, "burst edge ", edge.value,
                " s longer than half the on-window (", 0.5 * on, " s)");
  }
}

}  // namespace vpd
