#include "vpd/fault/resilience.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/converters/dpmih.hpp"
#include "vpd/converters/transformer_stage.hpp"
#include "vpd/package/interconnect.hpp"

namespace vpd {

namespace {

const VrDerate* derate_for(const FaultInjection& faults, std::size_t site) {
  for (const auto& [s, derate] : faults.derates) {
    if (s == site) return &derate;
  }
  return nullptr;
}

/// Published rating of the VR stage that drives the distribution mesh.
Current mesh_stage_rating(const ResilienceContext& ctx) {
  if (is_two_stage(ctx.architecture)) {
    const Voltage v_mid = intermediate_voltage(ctx.architecture);
    return dpmih_converter(ctx.tech)
        ->with_conversion(Voltage{48.0}, v_mid)
        ->spec()
        .max_current;
  }
  VPD_REQUIRE(ctx.topology.has_value(),
              "single-stage resilience check needs the topology");
  return make_topology(*ctx.topology, ctx.tech)->spec().max_current;
}

/// Per-site electromigration capacity of the vertical attach field: the
/// site's share of the power-net via field actually deployed at the die
/// interface. Per the paper's Section IV utilization statements these
/// fields are pitch-limited, not EM-limited — the deployed count is the
/// die-shadow availability (capped by the level's power fraction, split
/// evenly between the power and ground nets), so the nominal design
/// carries the field well below its per-via limit and the check guards
/// fault-driven current concentration. A2 sites cross both the TSV and
/// Cu-pad fields; the tighter one governs.
double site_attach_capacity(const ResilienceContext& ctx,
                            std::size_t site_count) {
  const auto capacity_at = [&](InterconnectLevel level) {
    const auto spec = interconnect_spec(level);
    const double power_net_vias =
        static_cast<double>(spec.available_count(ctx.spec.die_area)) *
        spec.max_power_fraction / 2.0;
    const double vias =
        std::max(power_net_vias / static_cast<double>(
                                      std::max<std::size_t>(site_count, 1)),
                 1.0);
    return vias * spec.max_current_per_via.value;
  };
  switch (ctx.architecture) {
    case ArchitectureKind::kA2_InterposerBelowDie:
      return std::min(capacity_at(InterconnectLevel::kThroughInterposer),
                      capacity_at(InterconnectLevel::kInterposerToDiePad));
    case ArchitectureKind::kA1_InterposerPeriphery:
    case ArchitectureKind::kA3_TwoStage12V:
    case ArchitectureKind::kA3_TwoStage6V:
      return capacity_at(InterconnectLevel::kInterposerToDieBump);
    case ArchitectureKind::kA0_PcbConversion:
      break;
  }
  throw InvalidArgument("architecture has no per-site attach field");
}

}  // namespace

void ResilienceSpec::validate() const {
  VPD_REQUIRE(droop_tolerance > 0.0 && droop_tolerance < 1.0,
              "droop_tolerance must be in (0, 1)");
  VPD_REQUIRE(vr_overcurrent_factor > 0.0,
              "vr_overcurrent_factor must be > 0");
  VPD_REQUIRE(interconnect_stress_margin >= 1.0,
              "interconnect_stress_margin must be >= 1");
  VPD_REQUIRE(transient_droop_tolerance > 0.0 &&
                  transient_droop_tolerance < 1.0,
              "transient_droop_tolerance must be in (0, 1)");
  VPD_REQUIRE(settling_time_limit > 0.0,
              "settling_time_limit must be positive");
  VPD_REQUIRE(recovery_band > 0.0 && recovery_band < 1.0,
              "recovery_band must be in (0, 1)");
  VPD_REQUIRE(steady_cycle_limit > 0,
              "steady_cycle_limit must be >= 1");
}

const char* to_string(SpecViolation::Kind kind) {
  switch (kind) {
    case SpecViolation::Kind::kDroop:
      return "droop";
    case SpecViolation::Kind::kVrOvercurrent:
      return "vr-overcurrent";
    case SpecViolation::Kind::kInterconnectOverstress:
      return "interconnect-overstress";
    case SpecViolation::Kind::kTransientDroop:
      return "transient-droop";
    case SpecViolation::Kind::kSettlingTime:
      return "settling-time";
    case SpecViolation::Kind::kNoSteadyState:
      return "no-steady-state";
  }
  return "unknown";
}

ResilienceReport check_resilience(const ArchitectureEvaluation& eval,
                                  const FaultInjection& faults,
                                  const ResilienceContext& context,
                                  const ResilienceSpec& rspec) {
  rspec.validate();
  VPD_REQUIRE(eval.distribution_rail.has_value() &&
                  eval.min_distribution_voltage.has_value(),
              "resilience check needs a distribution mesh solve (A0 "
              "evaluations have none)");
  ResilienceReport report;
  // Every surviving source sits at the same rail voltage, so the mesh
  // solve is linear in the total sink current: shedding a fraction of the
  // load scales droop and per-VR currents by the same fraction. Each
  // failing check therefore yields the exact load fraction that restores
  // its margin, and the policy takes the smallest.
  double min_load_fraction = 1.0;
  const auto require_fraction = [&](double fraction) {
    min_load_fraction = std::min(min_load_fraction, fraction);
  };
  const auto note_margin = [&](double headroom) {
    report.margin = std::min(report.margin, headroom);
  };

  // --- Rail droop -----------------------------------------------------
  const double rail = eval.distribution_rail->value;
  const double v_min = eval.min_distribution_voltage->value;
  report.droop_fraction = (rail - v_min) / rail;
  note_margin((rspec.droop_tolerance - report.droop_fraction) /
              rspec.droop_tolerance);
  if (report.droop_fraction > rspec.droop_tolerance) {
    report.violations.push_back(SpecViolation{
        SpecViolation::Kind::kDroop, static_cast<std::size_t>(-1),
        report.droop_fraction, rspec.droop_tolerance,
        detail::concat("distribution rail droops ",
                       report.droop_fraction * 100.0, "% (tolerance ",
                       rspec.droop_tolerance * 100.0, "%)")});
    require_fraction(rspec.droop_tolerance * rail / (rail - v_min));
  }

  // --- Mesh-stage per-VR currents -------------------------------------
  // Under fault the evaluator reports exact per-site currents; for the
  // nominal (N-0) state the current spread summary stands in, with its
  // max as the worst site (no per-site faults can apply).
  const bool two_stage = is_two_stage(context.architecture);
  std::vector<double> site_currents = eval.fault_site_currents;
  if (site_currents.empty()) {
    VPD_REQUIRE(eval.vr_current_spread.has_value(),
                "evaluation carries neither per-site fault currents nor a "
                "current spread");
    site_currents.assign(eval.vr_current_spread->count,
                         eval.vr_current_spread->mean);
    site_currents.front() = eval.vr_current_spread->max;
  }

  const double rating = mesh_stage_rating(context).value;
  for (std::size_t site = 0; site < site_currents.size(); ++site) {
    const double amps = site_currents[site];
    if (amps <= 0.0) continue;  // dropped site
    double allowed = rating * rspec.vr_overcurrent_factor;
    if (const VrDerate* derate = derate_for(faults, site)) {
      allowed *= derate->current_limit_scale;
    }
    report.worst_vr_utilization =
        std::max(report.worst_vr_utilization, amps / allowed);
    note_margin((allowed - amps) / allowed);
    if (amps > allowed) {
      report.violations.push_back(SpecViolation{
          SpecViolation::Kind::kVrOvercurrent, site, amps, allowed,
          detail::concat("site ", site, " carries ", amps, " A, allowed ",
                         allowed, " A")});
      require_fraction(allowed / amps);
    }
  }

  // --- Two-stage final-stage currents ----------------------------------
  if (two_stage && eval.vr_count_stage2 > 0) {
    const std::size_t live2 =
        eval.vr_count_stage2 - faults.dropped_stage2.size();
    const double i_die = context.spec.die_current().value;
    const double per_vr = i_die / static_cast<double>(live2);
    const Voltage v_mid = intermediate_voltage(context.architecture);
    VPD_REQUIRE(context.topology.has_value(),
                "two-stage resilience check needs the topology");
    const double rating2 = make_topology(*context.topology, context.tech)
                               ->with_conversion(v_mid,
                                                 context.spec.die_voltage)
                               ->spec()
                               .max_current.value;
    const double allowed2 = rating2 * rspec.vr_overcurrent_factor;
    report.worst_vr_utilization =
        std::max(report.worst_vr_utilization, per_vr / allowed2);
    note_margin((allowed2 - per_vr) / allowed2);
    if (per_vr > allowed2) {
      report.violations.push_back(SpecViolation{
          SpecViolation::Kind::kVrOvercurrent,
          static_cast<std::size_t>(-1), per_vr, allowed2,
          detail::concat("surviving final-stage VRs carry ", per_vr,
                         " A each, allowed ", allowed2, " A")});
      require_fraction(allowed2 / per_vr);
    }
  }

  // --- Vertical attach-field stress -----------------------------------
  const double capacity =
      site_attach_capacity(context, site_currents.size());
  const double allowed_ic = capacity / rspec.interconnect_stress_margin;
  for (std::size_t site = 0; site < site_currents.size(); ++site) {
    const double amps = site_currents[site];
    if (amps <= 0.0) continue;
    report.worst_interconnect_utilization =
        std::max(report.worst_interconnect_utilization, amps / allowed_ic);
    note_margin((allowed_ic - amps) / allowed_ic);
    if (amps > allowed_ic) {
      report.violations.push_back(SpecViolation{
          SpecViolation::Kind::kInterconnectOverstress, site, amps,
          allowed_ic,
          detail::concat("site ", site, " attach field carries ", amps,
                         " A against a ", capacity, " A capacity at ",
                         rspec.interconnect_stress_margin, "x margin")});
      require_fraction(allowed_ic / amps);
    }
  }

  report.survives = report.violations.empty();
  report.load_shed_fraction =
      report.survives ? 0.0 : 1.0 - std::max(0.0, min_load_fraction);
  return report;
}

}  // namespace vpd
