#include "vpd/fault/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/common/rng.hpp"

namespace vpd {

namespace {

/// Picks the evaluation an exclusion-rule entry carries: the accepted one,
/// or the flagged beyond-rating extrapolation (the paper's 3LHD
/// treatment). Nullptr when the combination failed outright.
const ArchitectureEvaluation* entry_evaluation(const ExplorationEntry& entry) {
  if (entry.evaluation.has_value()) return &*entry.evaluation;
  if (entry.extrapolated.has_value()) return &*entry.extrapolated;
  return nullptr;
}

}  // namespace

std::size_t FaultCampaignReport::survivor_count() const {
  std::size_t survivors = 0;
  for (const FaultScenarioOutcome& outcome : outcomes) {
    if (outcome.survives()) ++survivors;
  }
  return survivors;
}

double FaultCampaignReport::survivability() const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(survivor_count()) /
         static_cast<double>(outcomes.size());
}

double FaultCampaignReport::worst_droop_fraction() const {
  double worst = 0.0;
  for (const FaultScenarioOutcome& outcome : outcomes) {
    if (outcome.evaluated) {
      worst = std::max(worst, outcome.resilience.droop_fraction);
    }
  }
  return worst;
}

double FaultCampaignReport::worst_load_shed_fraction() const {
  double worst = 0.0;
  for (const FaultScenarioOutcome& outcome : outcomes) {
    if (outcome.evaluated) {
      worst = std::max(worst, outcome.resilience.load_shed_fraction);
    }
  }
  return worst;
}

MarginHistogram FaultCampaignReport::margin_histogram(
    std::size_t bins) const {
  VPD_REQUIRE(bins > 0, "margin histogram needs at least one bin");
  MarginHistogram histogram;
  histogram.counts.assign(bins, 0);
  std::vector<double> margins;
  margins.reserve(outcomes.size());
  for (const FaultScenarioOutcome& outcome : outcomes) {
    if (outcome.evaluated) {
      margins.push_back(outcome.resilience.margin);
    } else {
      ++histogram.unevaluated;
    }
  }
  if (margins.empty()) return histogram;
  histogram.lo = *std::min_element(margins.begin(), margins.end());
  histogram.hi = *std::max_element(margins.begin(), margins.end());
  const double span = histogram.hi - histogram.lo;
  for (double margin : margins) {
    std::size_t bucket = 0;
    if (span > 0.0) {
      bucket = std::min(
          bins - 1, static_cast<std::size_t>(std::floor(
                        (margin - histogram.lo) / span *
                        static_cast<double>(bins))));
    }
    ++histogram.counts[bucket];
  }
  return histogram;
}

obs::Snapshot FaultCampaignReport::snapshot() const {
  obs::Snapshot s;
  s.set_counter("fault.scenarios", scenario_count());
  s.set_counter("fault.survivors", survivor_count());
  s.set_counter("solver.cg_solves", solver.cg_solves);
  s.set_counter("solver.cg_iterations", solver.cg_iterations);
  s.set_counter("solver.precond_factorizations",
                solver.precond_factorizations);
  s.set_counter("solver.precond_reuses", solver.precond_reuses);
  s.set_counter("solver.cg_block_panels", solver.cg_block_panels);
  s.set_counter("solver.cg_block_columns", solver.cg_block_columns);
  s.set_counter("fault.batch_groups", batch.groups);
  s.set_counter("fault.batch_grouped_points", batch.grouped_points);
  s.set_counter("fault.batch_scalar_points", batch.scalar_points);
  s.set_counter("fault.batch_panel_columns", batch.panel_columns);
  s.set_counter("fault.batch_deduped_solves", batch.deduped_solves);
  s.set_gauge("fault.survivability", survivability(), survivability());
  s.set_gauge("fault.worst_droop_fraction", worst_droop_fraction(),
              worst_droop_fraction());
  s.set_gauge("fault.worst_load_shed_fraction", worst_load_shed_fraction(),
              worst_load_shed_fraction());
  s.set_gauge("fault.wall_seconds", wall_seconds, wall_seconds);
  return s;
}

FaultCampaignRunner::FaultCampaignRunner(PowerDeliverySpec spec,
                                         FaultCampaignConfig config)
    : spec_(spec), config_(std::move(config)) {
  spec_.validate();
  config_.severity.validate();
  config_.resilience.validate();
  VPD_REQUIRE(config_.nk_order >= 2,
              "nk_order must be >= 2 (order-1 scenarios are the exhaustive "
              "N-1 set)");
  VPD_REQUIRE(config_.mesh_region_grid > 0,
              "mesh_region_grid must be >= 1");
}

std::vector<FaultScenario> FaultCampaignRunner::generate_scenarios(
    std::size_t site_count, std::size_t stage2_count) const {
  VPD_REQUIRE(site_count > 0, "campaign needs at least one mesh-stage VR");
  std::vector<FaultScenario> scenarios;
  scenarios.push_back(FaultScenario{"N-0", {}});

  // Exhaustive N-1: every enabled single-fault event, fixed family order.
  if (config_.include_dropouts) {
    for (std::size_t s = 0; s < site_count; ++s) {
      scenarios.push_back(FaultScenario{
          detail::concat("drop[", s, "]"),
          {Fault{FaultKind::kVrDropout, s, Length{}, Length{}}}});
    }
  }
  if (config_.include_derates) {
    for (std::size_t s = 0; s < site_count; ++s) {
      scenarios.push_back(FaultScenario{
          detail::concat("derate[", s, "]"),
          {Fault{FaultKind::kVrDerate, s, Length{}, Length{}}}});
    }
  }
  if (config_.include_attach_faults) {
    for (std::size_t s = 0; s < site_count; ++s) {
      scenarios.push_back(FaultScenario{
          detail::concat("attach[", s, "]"),
          {Fault{FaultKind::kAttachFault, s, Length{}, Length{}}}});
    }
  }
  if (config_.include_stage2_dropouts) {
    for (std::size_t s = 0; s < stage2_count; ++s) {
      scenarios.push_back(FaultScenario{
          detail::concat("stage2-drop[", s, "]"),
          {Fault{FaultKind::kStage2Dropout, s, Length{}, Length{}}}});
    }
  }
  if (config_.include_mesh_regions) {
    const double side = spec_.die_side().value;
    const std::size_t grid = config_.mesh_region_grid;
    for (std::size_t i = 0; i < grid; ++i) {
      for (std::size_t j = 0; j < grid; ++j) {
        const double cx =
            side * static_cast<double>(i + 1) / static_cast<double>(grid + 1);
        const double cy =
            side * static_cast<double>(j + 1) / static_cast<double>(grid + 1);
        scenarios.push_back(FaultScenario{
            detail::concat("mesh[", i, ",", j, "]"),
            {Fault{FaultKind::kMeshRegionFault, 0, Length{cx}, Length{cy}}}});
      }
    }
  }

  // Sampled N-k: scenario i draws from its own counter-based stream, so
  // the population is independent of evaluation order and thread count.
  std::vector<FaultKind> families;
  if (config_.include_dropouts) families.push_back(FaultKind::kVrDropout);
  if (config_.include_derates) families.push_back(FaultKind::kVrDerate);
  if (config_.include_attach_faults) {
    families.push_back(FaultKind::kAttachFault);
  }
  if (config_.include_mesh_regions) {
    families.push_back(FaultKind::kMeshRegionFault);
  }
  if (config_.include_stage2_dropouts && stage2_count > 0) {
    families.push_back(FaultKind::kStage2Dropout);
  }
  if (config_.nk_samples > 0) {
    VPD_REQUIRE(!families.empty(),
                "nk_samples > 0 with every fault family disabled");
  }
  const double side = spec_.die_side().value;
  for (std::size_t i = 0; i < config_.nk_samples; ++i) {
    Rng rng(config_.seed, /*stream=*/i);
    FaultScenario scenario;
    scenario.label = detail::concat("N-", config_.nk_order, "[", i, "]");
    for (std::size_t k = 0; k < config_.nk_order; ++k) {
      Fault fault;
      fault.kind = families[rng.next_below(
          static_cast<std::uint32_t>(families.size()))];
      switch (fault.kind) {
        case FaultKind::kVrDropout:
        case FaultKind::kVrDerate:
        case FaultKind::kAttachFault:
          fault.site =
              rng.next_below(static_cast<std::uint32_t>(site_count));
          break;
        case FaultKind::kStage2Dropout:
          fault.site =
              rng.next_below(static_cast<std::uint32_t>(stage2_count));
          break;
        case FaultKind::kMeshRegionFault:
          fault.x = Length{rng.uniform(0.0, side)};
          fault.y = Length{rng.uniform(0.0, side)};
          break;
      }
      scenario.faults.push_back(fault);
    }
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

FaultCampaignReport FaultCampaignRunner::run(
    ArchitectureKind architecture, TopologyKind topology,
    DeviceTechnology tech, const EvaluationOptions& base_options) const {
  VPD_REQUIRE(architecture != ArchitectureKind::kA0_PcbConversion,
              "fault campaigns need distributed VRs; A0 has a single PCB "
              "regulator");
  VPD_REQUIRE(base_options.faults.empty(),
              "base_options must carry an empty FaultInjection (the "
              "campaign owns the injections)");

  // One cache across the nominal probe and every scenario: all
  // non-perturbing scenarios share the nominal operator, and each distinct
  // mesh perturbation gets its own digest-keyed entry.
  MeshSolveCache campaign_cache;
  SweepConfig sweep_config = config_.sweep;
  if (sweep_config.use_mesh_cache && sweep_config.cache == nullptr) {
    sweep_config.cache = &campaign_cache;
  }
  const SweepRunner runner(spec_, sweep_config);

  // Nominal probe: learns the deployment the scenarios address.
  SweepPoint nominal_point;
  nominal_point.architecture = architecture;
  nominal_point.topology = topology;
  nominal_point.tech = tech;
  nominal_point.options = base_options;
  nominal_point.label = sweep_point_label(architecture, topology, tech);
  const SweepReport nominal_report = runner.run({nominal_point});
  const ExplorationEntry& nominal_entry = nominal_report.outcomes[0].entry;
  const ArchitectureEvaluation* nominal = entry_evaluation(nominal_entry);
  if (nominal == nullptr) {
    throw InfeasibleDesign(detail::concat(
        "nominal evaluation failed for ", nominal_point.label, ": ",
        nominal_entry.exclusion_reason));
  }

  const bool two_stage = is_two_stage(architecture);
  const std::size_t site_count =
      two_stage ? nominal->vr_count_stage1 : nominal->vr_count_stage2;
  const std::size_t stage2_count = two_stage ? nominal->vr_count_stage2 : 0;
  const std::vector<FaultScenario> scenarios =
      generate_scenarios(site_count, stage2_count);

  // The N-0 scenario (scenarios[0]) IS the nominal evaluation — reuse the
  // probe instead of evaluating it again. This keeps the
  // outcomes.front()-reproduces-nominal invariant bit-exact by
  // construction even when block panels are in play (a panel shared with
  // fault scenarios answers to the certified tolerance, not the scalar
  // bits), and saves one evaluation per campaign.
  std::vector<SweepPoint> points;
  std::vector<FaultInjection> injections;
  points.reserve(scenarios.size() - 1);
  injections.reserve(scenarios.size());
  injections.push_back(to_injection(scenarios[0], config_.severity));
  for (std::size_t i = 1; i < scenarios.size(); ++i) {
    SweepPoint point = nominal_point;
    point.options.faults = to_injection(scenarios[i], config_.severity);
    point.label =
        detail::concat(nominal_point.label, "/", scenarios[i].label);
    injections.push_back(point.options.faults);
    points.push_back(std::move(point));
  }
  const SweepReport sweep_report = runner.run(points);

  FaultCampaignReport report;
  report.architecture = architecture;
  report.topology = topology;
  report.tech = tech;
  report.nominal = *nominal;
  report.wall_seconds = nominal_report.wall_seconds +
                        sweep_report.wall_seconds;
  report.solver = nominal_report.solver + sweep_report.solver;
  report.batch = nominal_report.batch;
  report.batch += sweep_report.batch;
  report.outcomes.reserve(scenarios.size());
  const ResilienceContext context{spec_, architecture, topology, tech};
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ExplorationEntry& entry =
        i == 0 ? nominal_entry : sweep_report.outcomes[i - 1].entry;
    FaultScenarioOutcome outcome;
    outcome.scenario = scenarios[i];
    outcome.injection = injections[i];
    if (const ArchitectureEvaluation* eval = entry_evaluation(entry)) {
      outcome.evaluated = true;
      outcome.extrapolated = eval->used_extrapolation;
      outcome.evaluation = *eval;
      outcome.resilience =
          check_resilience(*eval, injections[i], context,
                           config_.resilience);
    } else {
      outcome.failure_reason = entry.exclusion_reason;
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace vpd
