// Time-domain disturbance models for the droop campaign, the dynamic
// counterpart of fault_model.hpp's static fault events: load-step /
// burst / ramp di/dt scenarios anchored at a power-map tile, and per-VR
// dropout transients (the VR's sourced current collapses over a finite
// fall time instead of the fault subsystem's instantaneous DC re-solve).
// The campaign runner (workload/droop_campaign.hpp) lowers each scenario
// onto a DC operating point (sweep/evaluator machinery) plus a reduced
// transient netlist the MNA time-domain engine integrates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vpd/common/units.hpp"

namespace vpd {

enum class TransientKind {
  /// Load step at a power-map tile: base -> base + step over `edge`.
  kLoadStep,
  /// Periodic burst workload at a tile: base/peak plateaus at
  /// `burst_frequency` with duty `burst_duty` and `edge` slews.
  kLoadBurst,
  /// Linear load ramp at a tile: base -> base + step over [t_event,
  /// t_event + edge].
  kLoadRamp,
  /// A mesh-driving VR's sourced current collapses to zero over `edge`
  /// starting at t_event; the supply impedance steps to the post-fault
  /// DC re-solve's value.
  kVrDropout,
};

const char* to_string(TransientKind kind);
std::vector<TransientKind> all_transient_kinds();

/// One time-domain disturbance. Load scenarios address a power-map tile
/// in fractional die coordinates (the DC operating point concentrates
/// the die draw there, which sets the tile-local supply impedance of the
/// reduced model); kVrDropout addresses a mesh-driving VR site in
/// placement order, like fault_model.hpp's Fault::site.
struct TransientScenario {
  TransientKind kind{TransientKind::kLoadStep};
  std::string label;

  // --- Power-map tile (load scenarios) ---------------------------------
  double tile_x{0.5};
  double tile_y{0.5};
  /// Fractional hotspot radius and uniform-background share of the
  /// tile's sink map (hotspot_power_map semantics).
  double tile_sigma{0.15};
  double tile_background{0.3};

  // --- Disturbance shape -----------------------------------------------
  /// Pre-disturbance load as a fraction of the die current.
  double base_fraction{0.5};
  /// Disturbance amplitude on top of base, as a fraction of die current
  /// (di = step_fraction * I_die; di/dt = di / edge).
  double step_fraction{0.4};
  /// Disturbance onset. Ignored by kLoadBurst (bursts run from t = 0 so
  /// steady-cycle detection sees whole periods).
  Seconds t_event{Seconds{2e-6}};
  /// Slew of the disturbance: step rise time, burst edge time, ramp
  /// duration, or the VR current's fall time.
  Seconds edge{Seconds{100e-9}};
  // Burst shape (kLoadBurst only).
  Frequency burst_frequency{Frequency{2e6}};
  double burst_duty{0.4};

  // --- kVrDropout -------------------------------------------------------
  /// Placement-order site of the mesh-driving VR that drops out.
  std::size_t site{0};

  /// Throws InvalidArgument for out-of-range fractions, non-positive
  /// times, or burst edges longer than half the on-window.
  void validate() const;
};

}  // namespace vpd
