// Post-fault spec checks and the degradation policy. Given a faulted
// ArchitectureEvaluation (the evaluator has already redistributed load
// across the surviving VRs through the mesh solve), this layer decides
// whether the design still meets spec — droop on the distribution rail,
// per-VR current against the (possibly derated) converter rating, and
// per-site vertical-interconnect stress against the attach field's
// electromigration capacity — and, when it does not, computes the
// load-shedding fraction that restores every margin.
//
// The shedding policy is closed-form: with every surviving source held at
// the same rail voltage, the resistive solve is linear in the total sink
// current, so node droop and per-VR currents scale proportionally with
// the shed load. The policy is exact for the single-stage architectures
// and first-order for the two-stage ones (the stage-2 conversion loss
// feeding the intermediate rail is mildly nonlinear in load).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "vpd/arch/architecture.hpp"
#include "vpd/arch/fault_injection.hpp"
#include "vpd/arch/report.hpp"
#include "vpd/converters/catalog.hpp"
#include "vpd/core/spec.hpp"

namespace vpd {

/// Resilience acceptance thresholds.
struct ResilienceSpec {
  /// Maximum fractional droop on the distribution rail, (rail - v_min) /
  /// rail. 5% is a conventional DC IR-drop budget.
  double droop_tolerance{0.05};
  /// Per-VR currents may use the published rating (scaled by any derate
  /// fault) times this overload factor. The allocation derates the MEAN
  /// per-VR current to ~0.70 of rating, but the mesh solve's current
  /// spread puts hot sites (A2's die-center VRs) at ~1.06x the published
  /// limit even fault-free; 1.2 is the conventional short-duration
  /// overload allowance that accepts the nominal spread while fault-driven
  /// redistribution still trips the check.
  double vr_overcurrent_factor{1.2};
  /// Required headroom of the per-site vertical attach field: a site's
  /// current times this margin must stay within its via-field
  /// electromigration capacity. The per-via limits are already calibrated
  /// EM/thermal ceilings (Table I), so the default demands no extra
  /// headroom — A2's center sites nominally run at ~0.85 of their TSV
  /// share, and fault-driven concentration onto a site's fixed share is
  /// what trips the check. Raise above 1 to demand explicit headroom.
  double interconnect_stress_margin{1.0};

  // --- Dynamic (time-domain) droop limits -------------------------------
  // Checked by the droop campaign (workload/droop_campaign.hpp) against
  // transient simulations of the reduced PDN; the DC checks above are
  // untouched by these.

  /// Maximum fractional undershoot of the POL rail during a transient,
  /// (rail - min_t v(t)) / rail. Wider than the DC budget: the first
  /// droop rides on the loop inductance before regulation catches up.
  double transient_droop_tolerance{0.10};
  /// Maximum time the rail may take after a disturbance to re-enter (and
  /// stay inside) the recovery band around its settled value [s].
  double settling_time_limit{10e-6};
  /// Half-width of the recovery band, as a fraction of the regulated
  /// rail voltage (1% is the conventional settling band).
  double recovery_band{0.01};
  /// Periodic (burst) scenarios must reach a steady cycle — successive
  /// cycle averages within recovery_band * rail of each other, via
  /// first_steady_cycle — within this many cycles.
  std::size_t steady_cycle_limit{16};

  void validate() const;
};

/// Identifies the evaluated combination so the checker can reconstruct
/// converter ratings and interconnect capacities.
struct ResilienceContext {
  PowerDeliverySpec spec;
  ArchitectureKind architecture{};
  std::optional<TopologyKind> topology;
  DeviceTechnology tech{DeviceTechnology::kGalliumNitride};
};

struct SpecViolation {
  enum class Kind {
    kDroop,
    kVrOvercurrent,
    kInterconnectOverstress,
    // Dynamic (droop-campaign) violations.
    kTransientDroop,
    kSettlingTime,
    kNoSteadyState,
  };
  Kind kind{};
  /// Faulted site (mesh-stage placement order) for per-site violations;
  /// npos-like SIZE_MAX for rail-level violations.
  std::size_t site{static_cast<std::size_t>(-1)};
  double value{0.0};  // observed droop fraction / current [A]
  double limit{0.0};  // allowed droop fraction / current [A]
  std::string detail;
};

const char* to_string(SpecViolation::Kind kind);

struct ResilienceReport {
  bool survives{true};
  std::vector<SpecViolation> violations;

  /// Observed fractional droop on the distribution rail.
  double droop_fraction{0.0};
  /// Worst per-VR current / allowed current over the surviving mesh-stage
  /// VRs (and the stage-2 survivors for the two-stage architectures).
  double worst_vr_utilization{0.0};
  /// Worst per-site current * margin / via-field capacity.
  double worst_interconnect_utilization{0.0};
  /// Smallest relative headroom over all checks: min over checks of
  /// (limit - value) / limit. Negative when a check fails; feeds the
  /// campaign's margin histogram.
  double margin{1.0};
  /// Degradation policy: the fraction of the die load that must be shed
  /// (power-capped) to restore every margin; 0 when the fault state
  /// already meets spec.
  double load_shed_fraction{0.0};
};

/// Checks one faulted evaluation against `rspec`. `eval` must come from
/// an evaluation with a distribution mesh solve (A1/A2/A3 — not A0);
/// `faults` is the injection it was evaluated under (empty for N-0).
ResilienceReport check_resilience(const ArchitectureEvaluation& eval,
                                  const FaultInjection& faults,
                                  const ResilienceContext& context,
                                  const ResilienceSpec& rspec);

}  // namespace vpd
