#include "vpd/obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vpd {
namespace obs {

namespace {

/// Relaxed CAS add/max for doubles (std::atomic<double>::fetch_add is
/// C++20 but not universally lock-free; the CAS loop is portable and these
/// are monitoring counters, not hot math).
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current > value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- Gauge -----------------------------------------------------------------

void Gauge::set(double value) {
  value_.store(value, std::memory_order_relaxed);
  atomic_max(high_water_, value);
}

// --- HistogramData ---------------------------------------------------------

HistogramData::HistogramData(std::vector<double> bucket_bounds)
    : bounds(std::move(bucket_bounds)), counts(bounds.size() + 1, 0) {}

void HistogramData::record(double value) {
  if (counts.size() != bounds.size() + 1) counts.assign(bounds.size() + 1, 0);
  const std::size_t bucket =
      std::upper_bound(bounds.begin(), bounds.end(), value) - bounds.begin();
  ++counts[bucket];
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket, clamped to the observed range.
      const double lo = std::max(b == 0 ? min : bounds[b - 1], min);
      const double hi = std::min(b < bounds.size() ? bounds[b] : max, max);
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[b]);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cumulative = next;
  }
  return max;
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::record(double value) {
  const std::size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramData Histogram::data() const {
  HistogramData d(bounds_);
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = d.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  d.max = d.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    d.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return d;
}

std::vector<double> default_latency_bounds() {
  // 1 us .. ~100 s in half-decade steps: coarse enough to stay cheap,
  // fine enough that queue-wait vs solve-time shifts are visible.
  std::vector<double> bounds;
  double decade = 1e-6;
  for (int i = 0; i < 8; ++i) {
    bounds.push_back(decade);
    bounds.push_back(3.16227766016838e0 * decade);  // sqrt(10) step
    decade *= 10.0;
  }
  return bounds;
}

std::vector<double> default_depth_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 4096.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

// --- Snapshot --------------------------------------------------------------

namespace {

template <typename Entries, typename V>
void set_entry(Entries& entries, std::string name, V value) {
  for (auto& [existing, slot] : entries) {
    if (existing == name) {
      slot = std::move(value);
      return;
    }
  }
  entries.emplace_back(std::move(name), std::move(value));
}

template <typename Entries>
auto find_entry(const Entries& entries, std::string_view name)
    -> decltype(&entries.front().second) {
  for (const auto& [existing, slot] : entries) {
    if (existing == name) return &slot;
  }
  return nullptr;
}

}  // namespace

void Snapshot::set_counter(std::string name, std::uint64_t value) {
  set_entry(counters_, std::move(name), value);
}

void Snapshot::set_gauge(std::string name, double value, double high_water) {
  set_entry(gauges_, std::move(name), std::make_pair(value, high_water));
}

void Snapshot::set_histogram(std::string name, HistogramData data) {
  set_entry(histograms_, std::move(name), std::move(data));
}

void Snapshot::overlay(const Snapshot& other) {
  for (const auto& [name, value] : other.counters_) set_counter(name, value);
  for (const auto& [name, value] : other.gauges_) {
    set_gauge(name, value.first, value.second);
  }
  for (const auto& [name, value] : other.histograms_) {
    set_histogram(name, value);
  }
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters_) {
    if (const std::uint64_t* existing = counter(name)) {
      set_counter(name, *existing + value);
    } else {
      set_counter(name, value);
    }
  }
  for (const auto& [name, value] : other.gauges_) {
    if (const std::pair<double, double>* existing = gauge(name)) {
      set_gauge(name, std::max(existing->first, value.first),
                std::max(existing->second, value.second));
    } else {
      set_gauge(name, value.first, value.second);
    }
  }
  for (const auto& [name, data] : other.histograms_) {
    const HistogramData* existing = histogram(name);
    if (existing == nullptr) {
      set_histogram(name, data);
      continue;
    }
    VPD_REQUIRE(existing->bounds == data.bounds,
                "Snapshot::merge: histogram \"", name,
                "\" bucket bounds differ between snapshots");
    HistogramData merged = *existing;
    for (std::size_t b = 0; b < merged.counts.size(); ++b) {
      merged.counts[b] += data.counts[b];
    }
    // min/max only mean anything on the side that has samples.
    if (merged.count == 0) {
      merged.min = data.min;
      merged.max = data.max;
    } else if (data.count > 0) {
      merged.min = std::min(merged.min, data.min);
      merged.max = std::max(merged.max, data.max);
    }
    merged.count += data.count;
    merged.sum += data.sum;
    set_histogram(name, std::move(merged));
  }
}

Snapshot snapshot_from_json(const io::Value& v) {
  VPD_REQUIRE(v.is_object(), "telemetry snapshot must be a JSON object");
  const io::Value* version = v.find("schema_version");
  VPD_REQUIRE(version != nullptr,
              "telemetry snapshot is missing schema_version");
  VPD_REQUIRE(version->is_number() &&
                  version->as_number() == double(kTelemetrySchemaVersion),
              "telemetry snapshot schema_version mismatch (expected ",
              kTelemetrySchemaVersion, ")");
  Snapshot s;
  if (const io::Value* counters = v.find("counters")) {
    for (const auto& [name, value] : counters->as_object()) {
      s.set_counter(name, static_cast<std::uint64_t>(value.as_number()));
    }
  }
  if (const io::Value* gauges = v.find("gauges")) {
    for (const auto& [name, value] : gauges->as_object()) {
      s.set_gauge(name, value.at("value").as_number(),
                  value.at("high_water").as_number());
    }
  }
  if (const io::Value* histograms = v.find("histograms")) {
    for (const auto& [name, value] : histograms->as_object()) {
      HistogramData data;
      for (const io::Value& bucket : value.at("buckets").as_array()) {
        const io::Value& le = bucket.at("le");
        if (!le.is_null()) data.bounds.push_back(le.as_number());
        data.counts.push_back(
            static_cast<std::uint64_t>(bucket.at("count").as_number()));
      }
      VPD_REQUIRE(data.counts.size() == data.bounds.size() + 1,
                  "histogram \"", name,
                  "\" must end with the null-bound overflow bucket");
      data.count = static_cast<std::uint64_t>(value.at("count").as_number());
      data.sum = value.at("sum").as_number();
      data.min = value.at("min").as_number();
      data.max = value.at("max").as_number();
      s.set_histogram(name, std::move(data));
    }
  }
  return s;
}

const std::uint64_t* Snapshot::counter(std::string_view name) const {
  return find_entry(counters_, name);
}

const std::pair<double, double>* Snapshot::gauge(std::string_view name) const {
  return find_entry(gauges_, name);
}

const HistogramData* Snapshot::histogram(std::string_view name) const {
  return find_entry(histograms_, name);
}

io::Value Snapshot::to_json() const {
  io::Value v = io::Value::object();
  v.set("schema_version", kTelemetrySchemaVersion);
  io::Value counters = io::Value::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  v.set("counters", std::move(counters));
  io::Value gauges = io::Value::object();
  for (const auto& [name, value] : gauges_) {
    io::Value g = io::Value::object();
    g.set("value", value.first);
    g.set("high_water", value.second);
    gauges.set(name, std::move(g));
  }
  v.set("gauges", std::move(gauges));
  io::Value histograms = io::Value::object();
  for (const auto& [name, data] : histograms_) {
    io::Value h = io::Value::object();
    h.set("count", data.count);
    h.set("sum", data.sum);
    h.set("min", data.min);
    h.set("max", data.max);
    h.set("mean", data.mean());
    h.set("p50", data.quantile(0.50));
    h.set("p90", data.quantile(0.90));
    h.set("p99", data.quantile(0.99));
    io::Value buckets = io::Value::array();
    for (std::size_t b = 0; b < data.counts.size(); ++b) {
      io::Value bucket = io::Value::object();
      bucket.set("le", b < data.bounds.size() ? io::Value(data.bounds[b])
                                              : io::Value());
      bucket.set("count", data.counts[b]);
      buckets.push_back(std::move(bucket));
    }
    h.set("buckets", std::move(buckets));
    histograms.set(name, std::move(h));
  }
  v.set("histograms", std::move(histograms));
  return v;
}

// --- Registry --------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::latency_histogram(std::string_view name) {
  return histogram(name, default_latency_bounds());
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  for (const auto& [name, counter] : counters_) {
    s.set_counter(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    s.set_gauge(name, gauge->value(), gauge->high_water());
  }
  for (const auto& [name, histogram] : histograms_) {
    s.set_histogram(name, histogram->data());
  }
  return s;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace obs
}  // namespace vpd
