// Lightweight RAII trace spans with explicit parent context, plus per-request
// stage timing capture. Tracing is off by default: a disabled Span costs one
// relaxed atomic load in its constructor and nothing else. When enabled, spans
// record (name, ids, thread, start, duration, numeric args) into a bounded
// process-wide buffer that serializes to Chrome trace-event JSON (loadable in
// about:tracing / Perfetto) or NDJSON.
//
// Parent linkage is explicit, not ambient: callers thread an obs::TraceContext
// through options structs (EvaluationOptions -> IrDropOptions -> CgOptions),
// the same process-local pattern as EvaluationOptions::mesh_cache. Context
// never goes on the wire and never influences numerical results.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vpd {
namespace io {
class Value;
}  // namespace io

namespace obs {

/// Parent linkage for a span. span_id == 0 means "no parent" (root span).
/// Plain value type so it can ride inside options structs; never serialized
/// onto the wire schema.
struct TraceContext {
  std::uint64_t span_id{0};
};

/// Process-wide tracing switch. Off by default; flipping it never affects
/// numerical results, only whether spans record events.
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Drops all buffered events (and resets the dropped-event counter).
void clear_trace();
/// Number of events currently buffered / dropped since the last clear.
std::size_t trace_event_count();
std::uint64_t trace_events_dropped();

/// Records an externally-measured interval (e.g. queue wait, where the span
/// does not live on one stack) as if a Span had covered it.
void record_span(const char* name, TraceContext parent,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end);

/// RAII span. Construction when tracing is off is a single relaxed load;
/// when on, the span takes a timestamp and an id, and its destructor emits
/// one complete ("ph":"X") event into the trace buffer.
class Span {
 public:
  explicit Span(const char* name, TraceContext parent = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording (tracing was enabled at construction).
  bool active() const { return active_; }
  /// Context for child spans; zero (no parent) when inactive, so passing it
  /// down unconditionally is harmless.
  TraceContext context() const { return TraceContext{active_ ? id_ : 0}; }

  /// Attaches a numeric argument (shown in the trace viewer). No-op when
  /// inactive; at most kMaxArgs are kept.
  void set_arg(const char* key, double value);

  static constexpr std::size_t kMaxArgs = 6;

 private:
  const char* name_;
  std::uint64_t id_{0};
  std::uint64_t parent_id_{0};
  std::chrono::steady_clock::time_point start_{};
  const char* arg_keys_[kMaxArgs] = {};
  double arg_values_[kMaxArgs] = {};
  std::size_t arg_count_{0};
  bool active_{false};
};

/// Buffered events as a Chrome trace-event document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}); timestamps in
/// microseconds relative to the first buffered event.
io::Value chrome_trace_json();
/// Buffered events as NDJSON, one event object per line.
std::string trace_ndjson();
/// Writes chrome_trace_json() / trace_ndjson() to `path`; returns false on
/// I/O failure. The format is chosen by extension in write_trace(): ".ndjson"
/// gets NDJSON, everything else the Chrome document.
bool write_chrome_trace(const std::string& path);
bool write_trace_ndjson(const std::string& path);
bool write_trace(const std::string& path);

// --- Per-request stage timings ---------------------------------------------

/// Wall-clock decomposition of one service request. All seconds; stages that
/// did not run stay 0 (e.g. mesh_seconds on a mesh-cache hit is ~0).
struct StageTimings {
  double queue_seconds{0.0};
  double mesh_seconds{0.0};
  double solve_seconds{0.0};
  double evaluate_seconds{0.0};
  double serialize_seconds{0.0};
};

enum class Stage { kMesh, kSolve };

/// Installs `target` as the current thread's stage-capture sink for the
/// scope's lifetime; StageTimer adds elapsed time into it. Nested captures
/// restore the previous target on destruction.
class ScopedStageCapture {
 public:
  explicit ScopedStageCapture(StageTimings* target);
  ~ScopedStageCapture();

  ScopedStageCapture(const ScopedStageCapture&) = delete;
  ScopedStageCapture& operator=(const ScopedStageCapture&) = delete;

  /// The current thread's capture target (nullptr when none installed).
  static StageTimings* current();

 private:
  StageTimings* previous_;
};

/// Adds its scope's elapsed wall time to the named stage of the current
/// thread's capture target. When no target is installed the constructor is
/// one thread-local load and the destructor a branch.
class StageTimer {
 public:
  explicit StageTimer(Stage stage);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageTimings* target_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace obs
}  // namespace vpd
