#include "vpd/obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <mutex>
#include <utility>
#include <vector>

#include "vpd/io/json.hpp"

namespace vpd {
namespace obs {

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t id;
  std::uint64_t parent_id;
  std::uint32_t thread_index;
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::duration duration;
  const char* arg_keys[Span::kMaxArgs];
  double arg_values[Span::kMaxArgs];
  std::size_t arg_count;
};

// Bounded so a long tracing-enabled run cannot exhaust memory; overflow is
// counted instead of silently lost.
constexpr std::size_t kMaxTraceEvents = std::size_t(1) << 20;

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint32_t> g_next_thread_index{0};

std::mutex g_events_mutex;
std::vector<TraceEvent> g_events;

std::uint32_t thread_index() {
  thread_local const std::uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void push_event(TraceEvent event) {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  if (g_events.size() >= kMaxTraceEvents) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_events.push_back(std::move(event));
}

double to_microseconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

io::Value event_to_json(const TraceEvent& event,
                        std::chrono::steady_clock::time_point epoch) {
  io::Value v = io::Value::object();
  v.set("name", std::string(event.name));
  v.set("ph", "X");
  v.set("ts", to_microseconds(event.start - epoch));
  v.set("dur", to_microseconds(event.duration));
  v.set("pid", 1);
  v.set("tid", event.thread_index);
  io::Value args = io::Value::object();
  args.set("span_id", event.id);
  if (event.parent_id != 0) args.set("parent_span_id", event.parent_id);
  for (std::size_t i = 0; i < event.arg_count; ++i) {
    args.set(event.arg_keys[i], event.arg_values[i]);
  }
  v.set("args", std::move(args));
  return v;
}

std::vector<TraceEvent> copy_events() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  return g_events;
}

}  // namespace

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void clear_trace() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  g_events.clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  return g_events.size();
}

std::uint64_t trace_events_dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

void record_span(const char* name, TraceContext parent,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  if (!tracing_enabled()) return;
  TraceEvent event{};
  event.name = name;
  event.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event.parent_id = parent.span_id;
  event.thread_index = thread_index();
  event.start = start;
  event.duration = end - start;
  event.arg_count = 0;
  push_event(std::move(event));
}

Span::Span(const char* name, TraceContext parent) : name_(name) {
  if (!tracing_enabled()) return;
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = parent.span_id;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  TraceEvent event{};
  event.name = name_;
  event.id = id_;
  event.parent_id = parent_id_;
  event.thread_index = thread_index();
  event.start = start_;
  event.duration = std::chrono::steady_clock::now() - start_;
  event.arg_count = arg_count_;
  for (std::size_t i = 0; i < arg_count_; ++i) {
    event.arg_keys[i] = arg_keys_[i];
    event.arg_values[i] = arg_values_[i];
  }
  push_event(std::move(event));
}

void Span::set_arg(const char* key, double value) {
  if (!active_ || arg_count_ >= kMaxArgs) return;
  arg_keys_[arg_count_] = key;
  arg_values_[arg_count_] = value;
  ++arg_count_;
}

io::Value chrome_trace_json() {
  const std::vector<TraceEvent> events = copy_events();
  std::chrono::steady_clock::time_point epoch{};
  if (!events.empty()) {
    epoch = events.front().start;
    for (const TraceEvent& event : events) {
      if (event.start < epoch) epoch = event.start;
    }
  }
  io::Value doc = io::Value::object();
  io::Value list = io::Value::array();
  for (const TraceEvent& event : events) {
    list.push_back(event_to_json(event, epoch));
  }
  doc.set("traceEvents", std::move(list));
  doc.set("displayTimeUnit", "ms");
  doc.set("droppedEvents", trace_events_dropped());
  return doc;
}

std::string trace_ndjson() {
  const std::vector<TraceEvent> events = copy_events();
  std::chrono::steady_clock::time_point epoch{};
  if (!events.empty()) {
    epoch = events.front().start;
    for (const TraceEvent& event : events) {
      if (event.start < epoch) epoch = event.start;
    }
  }
  std::string out;
  for (const TraceEvent& event : events) {
    out += io::dump(event_to_json(event, epoch));
    out += '\n';
  }
  return out;
}

namespace {

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << text;
  return static_cast<bool>(file);
}

}  // namespace

bool write_chrome_trace(const std::string& path) {
  return write_text_file(path, io::dump(chrome_trace_json()));
}

bool write_trace_ndjson(const std::string& path) {
  return write_text_file(path, trace_ndjson());
}

bool write_trace(const std::string& path) {
  const std::string suffix = ".ndjson";
  if (path.size() >= suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return write_trace_ndjson(path);
  }
  return write_chrome_trace(path);
}

// --- Stage timings ----------------------------------------------------------

namespace {
thread_local StageTimings* t_stage_target = nullptr;
}  // namespace

ScopedStageCapture::ScopedStageCapture(StageTimings* target)
    : previous_(t_stage_target) {
  t_stage_target = target;
}

ScopedStageCapture::~ScopedStageCapture() { t_stage_target = previous_; }

StageTimings* ScopedStageCapture::current() { return t_stage_target; }

StageTimer::StageTimer(Stage stage) : target_(t_stage_target), stage_(stage) {
  if (target_ != nullptr) start_ = std::chrono::steady_clock::now();
}

StageTimer::~StageTimer() {
  if (target_ == nullptr) return;
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  switch (stage_) {
    case Stage::kMesh:
      target_->mesh_seconds += elapsed;
      break;
    case Stage::kSolve:
      target_->solve_seconds += elapsed;
      break;
  }
}

}  // namespace obs
}  // namespace vpd
