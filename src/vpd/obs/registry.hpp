// Process-wide observability: named counters, gauges and fixed-bucket
// histograms behind one thread-safe Registry, snapshotted into the single
// canonical telemetry JSON shape every subsystem emits (the serve metrics
// endpoint, sweep and fault-campaign reports, and the --json benches all
// speak obs::Snapshot::to_json()). Like the paper's per-packaging-level
// loss breakdown, the serving stack gets one per-stage decomposition of
// work and latency instead of three hand-rolled metric shapes.
//
// Instruments are lock-free after registration (relaxed atomics; metrics
// are monitoring data, not synchronization), registration serializes on
// one mutex, and references returned by the Registry stay valid for the
// Registry's lifetime. Nothing in this module ever influences numerical
// results: metrics are write-only from the evaluation paths.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "vpd/io/json.hpp"

namespace vpd {
namespace obs {

/// Version of the unified telemetry JSON shape (and of the wire schema at
/// large; see io::kSchemaVersion, which mirrors this).
inline constexpr int kTelemetrySchemaVersion = 2;

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level with a high-water mark, so transient peaks (queue
/// depth at backpressure onset) stay visible after the fact.
class Gauge {
 public:
  void set(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  double high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> high_water_{0.0};
};

/// Plain histogram contents: `bounds` are ascending bucket upper bounds,
/// `counts` has bounds.size() + 1 entries (the last is the overflow
/// bucket). Used both as the snapshot form of a live Histogram and as a
/// builder for report-side histograms (e.g. per-point sweep wall times).
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};

  HistogramData() = default;
  explicit HistogramData(std::vector<double> bucket_bounds);

  void record(double value);
  double mean() const { return count == 0 ? 0.0 : sum / double(count); }
  /// Bucket-interpolated quantile (q in [0, 1]); exact at the recorded
  /// min/max, linear within a bucket.
  double quantile(double q) const;
};

/// Thread-safe fixed-bucket histogram. Bucket bounds are fixed at
/// registration; record() is a relaxed atomic bump per sample.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value);
  HistogramData data() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Log-spaced latency bucket bounds, 1 us .. ~100 s. The default for every
/// duration-valued histogram so shapes compare across subsystems.
std::vector<double> default_latency_bounds();
/// Power-of-two depth/count bounds, 1 .. 4096 (queue depths, batch sizes).
std::vector<double> default_depth_bounds();

/// Immutable capture of a metric set, and the one canonical telemetry
/// JSON shape:
///   {"schema_version": 2,
///    "counters":   {"name": n, ...},
///    "gauges":     {"name": {"value": v, "high_water": h}, ...},
///    "histograms": {"name": {"count": n, "sum": s, "min": .., "max": ..,
///                            "mean": .., "p50": .., "p90": .., "p99": ..,
///                            "buckets": [{"le": bound, "count": n}, ...,
///                                        {"le": null, "count": n}]}, ...}}
/// Entries keep insertion order, so dumps are deterministic for a
/// deterministic construction order. Consumers merge subsystem snapshots
/// (service + mesh cache + solver) into one document.
class Snapshot {
 public:
  void set_counter(std::string name, std::uint64_t value);
  void set_gauge(std::string name, double value, double high_water);
  void set_histogram(std::string name, HistogramData data);
  /// Copies every entry of `other` into this snapshot (same-name entries
  /// are overwritten in place). Use for layering subsystem snapshots whose
  /// names describe the same instruments (e.g. a report refreshing its own
  /// counters); use merge() to aggregate across independent processes.
  void overlay(const Snapshot& other);
  /// Aggregates `other` into this snapshot as an independent peer (the
  /// fleet rule): same-name counters sum, same-name gauges take the max of
  /// value and of high_water (a fleet's level is its busiest member's),
  /// and same-name histograms merge exactly bucket-by-bucket — counts and
  /// sums add, min/max combine — which requires identical bucket bounds;
  /// mismatched bounds throw InvalidArgument rather than approximating.
  void merge(const Snapshot& other);

  /// Lookup helpers (nullptr when absent), mainly for tests.
  const std::uint64_t* counter(std::string_view name) const;
  const std::pair<double, double>* gauge(std::string_view name) const;
  const HistogramData* histogram(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  io::Value to_json() const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  // (name, (value, high_water))
  std::vector<std::pair<std::string, std::pair<double, double>>> gauges_;
  std::vector<std::pair<std::string, HistogramData>> histograms_;
};

/// Rebuilds a Snapshot from its to_json() document (the reverse wire
/// direction: a fleet router parsing per-shard {"cmd":"metrics"} replies).
/// The document must carry "schema_version" equal to
/// kTelemetrySchemaVersion — a missing or mismatched version throws
/// InvalidArgument (aggregating across telemetry schemas would silently
/// mix shapes). Unknown members are ignored (the v2 rule); derived
/// histogram fields (mean/p50/p90/p99) are recomputed, not trusted.
Snapshot snapshot_from_json(const io::Value& v);

/// Named-instrument registry. counter()/gauge()/histogram() find or create
/// (first registration wins the histogram bounds) and return a reference
/// that stays valid for the Registry's lifetime; snapshot() captures every
/// instrument in name order.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Duration-valued histogram with default_latency_bounds().
  Histogram& latency_histogram(std::string_view name);

  Snapshot snapshot() const;

  /// The process-wide registry, for instruments with no natural owner.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace vpd
