// Time-domain droop campaigns: couples the MNA transient engine to the
// sweep/fault stack. A campaign takes one (architecture, topology,
// technology) combination, probes it nominally through the sweep engine
// to learn the deployment, generates a TransientScenario population
// (load-step / burst / ramp di/dt events on a power-map tile grid, plus
// per-VR dropout transients), evaluates every scenario's DC operating
// point on the sweep engine (hotspot sink maps for the load scenarios,
// FaultInjection re-solves for the dropouts), lowers each operating
// point onto a reduced transient netlist, and integrates them all on the
// sweep ThreadPool against the ResilienceSpec's dynamic-droop limits.
//
// Determinism contract (the sweep contract extended to the time domain):
// a parallel campaign is bit-identical to a serial one. Every scenario is
// integrated by the same pure routine against an immutable DC report, and
// the shared TransientFactorCache hands out factorizations computed from
// matrices its keys determine bit for bit — whichever thread populates an
// entry, every consumer solves against the same factors. Only wall-time
// fields vary run to run.
//
// VR-dropout transients settle, by construction, onto the post-fault DC
// re-solve's answer: the supply Thevenin resistance steps from the
// nominal R_eff to the faulted evaluation's R_eff (a bypass switch across
// the delta opens at t_event) while the dropped VR's share of the load
// current collapses to zero over the scenario's `edge`. The t -> inf
// limit therefore matches the FaultInjection DC answer, and the transient
// adds the droop/recovery trajectory between the two DC endpoints.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "vpd/arch/evaluator.hpp"
#include "vpd/arch/transient_model.hpp"
#include "vpd/circuit/transient.hpp"
#include "vpd/core/spec.hpp"
#include "vpd/fault/resilience.hpp"
#include "vpd/fault/transient_scenario.hpp"
#include "vpd/obs/registry.hpp"
#include "vpd/obs/trace.hpp"
#include "vpd/sweep/sweep.hpp"

namespace vpd {

struct DroopCampaignConfig {
  /// Dynamic-droop acceptance limits (the transient_* / recovery fields).
  ResilienceSpec resilience;
  /// Reduced-PDN lowering knobs (decap bank, ESR).
  ReducedModelOptions model;

  // --- Integration window ----------------------------------------------
  Seconds t_stop{Seconds{20e-6}};
  Seconds dt{Seconds{2e-9}};
  IntegrationMethod method{IntegrationMethod::kTrapezoidal};

  // --- Scenario population ---------------------------------------------
  /// Load scenarios are anchored on tile_grid x tile_grid power-map tiles
  /// (hotspot sink maps at the tile centers).
  std::size_t tile_grid{2};
  double tile_sigma{0.15};
  double tile_background{0.3};
  /// Load shape: base -> base + step (fractions of the die current).
  double base_fraction{0.5};
  double step_fraction{0.4};
  Seconds t_event{Seconds{2e-6}};
  Seconds edge{Seconds{100e-9}};
  Frequency burst_frequency{Frequency{2e6}};
  double burst_duty{0.4};
  bool include_load_steps{true};
  bool include_bursts{true};
  bool include_ramps{true};
  bool include_vr_dropouts{true};
  /// Cap on the per-site dropout transients (each costs one faulted DC
  /// re-solve); 0 = every mesh-stage site.
  std::size_t max_dropout_sites{8};

  /// Parent span for the campaign's "droop.campaign" trace span.
  obs::TraceContext trace{};
  /// Worker pool for the DC re-solves and the transient integrations.
  SweepConfig sweep;

  void validate() const;
};

/// Measured dynamic response of one scenario's POL rail.
struct DroopMetrics {
  /// Regulated rail the fractions are referred to [V].
  double rail{0.0};
  /// Worst rail voltage after the disturbance onset [V].
  double v_min{0.0};
  /// Settled rail voltage: the final sample, or the last full cycle's
  /// average for burst scenarios [V].
  double v_settled{0.0};
  /// The scenario's t -> inf DC prediction [V] (tile model at the final
  /// load; post-fault re-solve for dropouts; cycle-average load for
  /// bursts). v_settled converging onto this is the transient/DC
  /// consistency the campaign tests rely on.
  double v_predicted{0.0};
  /// (rail - v_min) / rail, checked against transient_droop_tolerance.
  double undershoot_fraction{0.0};
  /// (rail - v_settled) / rail: the steady-state recovery level.
  double settled_droop_fraction{0.0};
  /// Last excursion outside the recovery band after the disturbance,
  /// checked against settling_time_limit (burst scenarios: time to the
  /// first steady cycle).
  Seconds settling_time{};
  /// Burst scenarios: first_steady_cycle index, checked against
  /// steady_cycle_limit; nullopt when the trace never reached a steady
  /// cycle (or for non-burst scenarios).
  std::optional<std::size_t> steady_cycle;
  /// Samples in the transient record (steps + 1).
  std::size_t samples{0};
};

struct TransientScenarioOutcome {
  TransientScenario scenario;
  /// False when the scenario's DC operating point or integration failed.
  bool evaluated{false};
  /// True when the DC operating point needed beyond-rating extrapolation.
  bool extrapolated{false};
  std::string failure_reason;
  DroopMetrics metrics;
  std::vector<SpecViolation> violations;
  /// Smallest relative headroom over the scenario's dynamic checks (see
  /// ResilienceReport::margin); negative when a check fails.
  double margin{1.0};

  bool passes() const { return evaluated && violations.empty(); }
};

struct DroopCampaignReport {
  ArchitectureKind architecture{};
  std::optional<TopologyKind> topology;
  DeviceTechnology tech{DeviceTechnology::kGalliumNitride};
  /// The fault-free evaluation the deployment (and the dropout model's
  /// pre-fault supply impedance) was read from.
  ArchitectureEvaluation nominal;
  /// One outcome per generated scenario, in generation order.
  std::vector<TransientScenarioOutcome> outcomes;
  double wall_seconds{0.0};
  /// Solver counter delta across the campaign's DC sweeps (nominal probe
  /// + per-scenario operating points).
  SolverCounters solver;
  /// Shared transient LU cache reuse across every integration. Both
  /// fields are deterministic: misses count distinct (netlist, method,
  /// step size, switch-state) matrices, hits the per-simulation lookups
  /// that found them, independent of scheduling.
  TransientFactorCache::Stats factors;
  /// Accepted time steps across all evaluated scenarios.
  std::size_t transient_steps{0};
  /// Per-scenario integration wall times (timing only — the one
  /// scheduling-dependent part of the report, like SweepStats).
  obs::HistogramData scenario_seconds;

  std::size_t scenario_count() const { return outcomes.size(); }
  std::size_t pass_count() const;
  /// Passing fraction of the scenario population.
  double pass_fraction() const;
  double worst_undershoot_fraction() const;
  Seconds worst_settling_time() const;
  double worst_margin() const;

  /// The report's metrics in the unified telemetry shape (transient.*
  /// counters and gauges plus solver.* counters and the
  /// transient.scenario_seconds histogram); emitted via
  /// obs::Snapshot::to_json() by the campaign bench and the service.
  obs::Snapshot snapshot() const;
};

class DroopCampaignRunner {
 public:
  explicit DroopCampaignRunner(PowerDeliverySpec spec,
                               DroopCampaignConfig config = {});

  const PowerDeliverySpec& spec() const { return spec_; }
  const DroopCampaignConfig& config() const { return config_; }

  /// Generates the scenario population for a deployment with `site_count`
  /// mesh-stage VRs. Deterministic in (config, site_count): the load
  /// families in a fixed order over the tile grid (steps, bursts, ramps),
  /// then the capped per-site dropouts. Exposed for tests.
  std::vector<TransientScenario> generate_scenarios(
      std::size_t site_count) const;

  /// Runs the campaign for one combination. `base_options` must carry an
  /// empty FaultInjection and no sink map (the campaign owns both).
  /// Throws InfeasibleDesign when the nominal evaluation is excluded
  /// without an extrapolated estimate.
  DroopCampaignReport run(
      ArchitectureKind architecture, TopologyKind topology,
      DeviceTechnology tech = DeviceTechnology::kGalliumNitride,
      const EvaluationOptions& base_options = {}) const;

 private:
  PowerDeliverySpec spec_;
  DroopCampaignConfig config_;
};

}  // namespace vpd
