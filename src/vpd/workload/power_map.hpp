// Die power maps: spatial current-draw distributions over the mesh. The
// paper's headline numbers assume uniform draw; realistic accelerators
// concentrate power in compute clusters, which is how per-VR load spreads
// like A2's reported 10-93 A arise.
#pragma once

#include "vpd/common/matrix.hpp"
#include "vpd/common/units.hpp"
#include "vpd/package/mesh.hpp"

namespace vpd {

/// Uniform draw totalling `total`.
Vector uniform_power_map(const GridMesh& mesh, Current total);

/// Gaussian hotspot centered at fractional die coordinates (cx, cy) with
/// fractional radius `sigma`, carrying (1 - background_fraction) of the
/// total on top of a uniform background.
Vector hotspot_power_map(const GridMesh& mesh, Current total, double cx,
                         double cy, double sigma,
                         double background_fraction = 0.3);

/// Alternating high/low tiles (tiles x tiles), with `contrast` = high/low
/// draw ratio.
Vector checkerboard_power_map(const GridMesh& mesh, Current total,
                              unsigned tiles, double contrast);

/// Sum of a map's sinks.
Current map_total(const Vector& sinks);

}  // namespace vpd
