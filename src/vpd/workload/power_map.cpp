#include "vpd/workload/power_map.hpp"

#include <cmath>

#include "vpd/common/error.hpp"
#include "vpd/package/irdrop.hpp"

namespace vpd {

Vector uniform_power_map(const GridMesh& mesh, Current total) {
  return uniform_sinks(mesh, total);
}

Vector hotspot_power_map(const GridMesh& mesh, Current total, double cx,
                         double cy, double sigma,
                         double background_fraction) {
  VPD_REQUIRE(total.value >= 0.0, "negative total");
  VPD_REQUIRE(cx >= 0.0 && cx <= 1.0 && cy >= 0.0 && cy <= 1.0,
              "hotspot center outside the die");
  VPD_REQUIRE(sigma > 0.0, "sigma must be positive");
  VPD_REQUIRE(background_fraction >= 0.0 && background_fraction <= 1.0,
              "background fraction outside [0,1]");

  const double w = mesh.width().value;
  const double h = mesh.height().value;
  Vector weights(mesh.node_count(), 0.0);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    const double dx = (mesh.x_of(i).value - cx * w) / (sigma * w);
    const double dy = (mesh.y_of(i).value - cy * h) / (sigma * h);
    weights[i] = std::exp(-0.5 * (dx * dx + dy * dy));
    weight_sum += weights[i];
  }
  VPD_CHECK_NUMERIC(weight_sum > 0.0, "degenerate hotspot weights");

  const double hot_total = (1.0 - background_fraction) * total.value;
  const double background =
      background_fraction * total.value / mesh.node_count();
  Vector sinks(mesh.node_count());
  for (std::size_t i = 0; i < mesh.node_count(); ++i)
    sinks[i] = background + hot_total * weights[i] / weight_sum;
  return sinks;
}

Vector checkerboard_power_map(const GridMesh& mesh, Current total,
                              unsigned tiles, double contrast) {
  VPD_REQUIRE(tiles >= 1, "need at least one tile");
  VPD_REQUIRE(contrast >= 1.0, "contrast must be >= 1");
  Vector weights(mesh.node_count());
  double sum = 0.0;
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    const double fx = mesh.x_of(i).value / mesh.width().value;
    const double fy = mesh.y_of(i).value / mesh.height().value;
    const auto tx = std::min<unsigned>(
        tiles - 1, static_cast<unsigned>(fx * tiles));
    const auto ty = std::min<unsigned>(
        tiles - 1, static_cast<unsigned>(fy * tiles));
    weights[i] = ((tx + ty) % 2 == 0) ? contrast : 1.0;
    sum += weights[i];
  }
  Vector sinks(mesh.node_count());
  for (std::size_t i = 0; i < mesh.node_count(); ++i)
    sinks[i] = total.value * weights[i] / sum;
  return sinks;
}

Current map_total(const Vector& sinks) {
  double s = 0.0;
  for (double v : sinks) s += v;
  return Current{s};
}

}  // namespace vpd
