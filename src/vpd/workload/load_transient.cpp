#include "vpd/workload/load_transient.hpp"

#include <algorithm>
#include <cmath>

#include "vpd/common/error.hpp"

namespace vpd {

SourceFn step_load(Current base, Current step, Seconds t_step,
                   Seconds rise) {
  VPD_REQUIRE(rise.value >= 0.0, "negative rise time");
  const double b = base.value;
  const double s = step.value;
  const double t0 = t_step.value;
  const double tr = rise.value;
  return [b, s, t0, tr](double t) {
    if (t <= t0) return b;
    if (tr <= 0.0 || t >= t0 + tr) return b + s;
    return b + s * (t - t0) / tr;
  };
}

SourceFn burst_load(Current base, Current peak, Frequency frequency,
                    double duty, Seconds edge) {
  VPD_REQUIRE(frequency.value > 0.0, "frequency must be positive");
  VPD_REQUIRE(duty > 0.0 && duty < 1.0, "duty ", duty, " outside (0,1)");
  const double period = 1.0 / frequency.value;
  // The boundary edge == 0.5 * duty * period is the degenerate triangular
  // plateau (rise meets fall at the peak); it is continuous and accepted,
  // matching step_load's acceptance of rise == 0. Callers compute the
  // boundary with their own arithmetic (duty / f vs duty * (1 / f)), so
  // accept within a relative ulp-scale slop and clamp onto the exact
  // half-window.
  const double half_on = 0.5 * duty * period;
  VPD_REQUIRE(edge.value >= 0.0 &&
                  edge.value <= half_on * (1.0 + 1e-12),
              "edge time ", edge.value, " s longer than half the burst "
              "plateau (", half_on, " s)");
  const double b = base.value;
  const double p = peak.value;
  const double d = duty;
  const double e = std::min(edge.value, half_on);
  return [b, p, period, d, e](double t) {
    double u = std::fmod(t, period);
    if (u < 0.0) u += period;
    const double on = d * period;
    if (u < e) return b + (p - b) * u / std::max(e, 1e-30);
    if (u < on - e) return p;
    if (u < on) return p - (p - b) * (u - (on - e)) / std::max(e, 1e-30);
    return b;
  };
}

SourceFn ramp_load(Current start, Current end, Seconds t0, Seconds t1) {
  VPD_REQUIRE(t1.value > t0.value, "ramp needs t1 > t0");
  const double a = start.value;
  const double b = end.value;
  const double lo = t0.value;
  const double hi = t1.value;
  return [a, b, lo, hi](double t) {
    if (t <= lo) return a;
    if (t >= hi) return b;
    return a + (b - a) * (t - lo) / (hi - lo);
  };
}

}  // namespace vpd
