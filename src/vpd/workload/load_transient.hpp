// Time-domain load profiles for droop / transient-response studies of the
// POL rail: step loads with finite slew, periodic burst workloads, and
// ramps, expressed as circuit-engine current-source waveforms.
#pragma once

#include "vpd/circuit/netlist.hpp"
#include "vpd/common/units.hpp"

namespace vpd {

/// Step from `base` to `base + step` at t_step with linear `rise` time.
SourceFn step_load(Current base, Current step, Seconds t_step, Seconds rise);

/// Periodic burst: `base` current with `peak` plateaus of duty `duty` at
/// `frequency` (square-ish with linear edges of `edge` seconds). The
/// waveform is continuous at the edge/plateau boundaries; edge may reach
/// half the on-window (0.5 * duty / frequency), the degenerate triangular
/// plateau.
SourceFn burst_load(Current base, Current peak, Frequency frequency,
                    double duty, Seconds edge);

/// Linear ramp from `start` to `end` over [t0, t1], flat outside.
SourceFn ramp_load(Current start, Current end, Seconds t0, Seconds t1);

}  // namespace vpd
